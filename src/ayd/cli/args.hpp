// Tiny command-line argument parser used by the bench and example
// binaries. Supports --name=value, --name value, boolean --flag, and
// --help generation. Unknown arguments are an error (bench outputs feed
// EXPERIMENTS.md; silent typos would corrupt comparisons).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ayd::cli {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declares a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Declares a string option with a default value.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses argv. Throws util::CliError on malformed/unknown arguments.
  /// If --help is present, sets help_requested() and skips validation.
  void parse(int argc, const char* const* argv);

  /// Same, for an argument vector *without* a program name (subcommand
  /// tails, service request parameters): the one bridge between
  /// string-vector callers and the argv contract, so no caller
  /// hand-rolls a synthetic argv.
  void parse_args(const std::vector<std::string>& args);

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] std::string help() const;

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] const std::string& option(const std::string& name) const;
  [[nodiscard]] double option_double(const std::string& name) const;
  [[nodiscard]] std::int64_t option_int(const std::string& name) const;
  [[nodiscard]] std::uint64_t option_uint(const std::string& name) const;

 private:
  struct Spec {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool flag_set = false;
  };

  [[nodiscard]] const Spec& lookup(const std::string& name) const;
  [[nodiscard]] Spec& lookup(const std::string& name);

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;  ///< declaration order for --help
  bool help_requested_ = false;
};

/// Reads an environment variable; empty string when unset.
[[nodiscard]] std::string env_or(const std::string& name,
                                 const std::string& fallback);

}  // namespace ayd::cli
