#include "ayd/cli/experiment.hpp"

#include <cstdio>

#include "ayd/util/strings.hpp"
#include "ayd/util/version.hpp"

namespace ayd::cli {

void add_experiment_options(ArgParser& parser) {
  parser.add_option("runs", "", "simulation replicas per point");
  parser.add_option("patterns", "", "patterns per replica");
  parser.add_option("seed", "", "base RNG seed");
  parser.add_option("threads", "0",
                    "worker threads (0 = hardware concurrency)");
  parser.add_option("csv", "", "also write the series to this CSV file");
  parser.add_option("jsonl", "",
                    "also write the series to this JSON-lines file");
  parser.add_flag("des", "use the event-queue reference simulator backend");
}

ExperimentContext read_experiment_context(const ArgParser& parser) {
  ExperimentContext ctx;

  const std::string scale = util::to_lower(env_or("AYD_SCALE", ""));
  if (scale == "paper") {
    ctx.runs = 500;
    ctx.patterns = 500;
  } else if (scale == "quick") {
    ctx.runs = 40;
    ctx.patterns = 60;
  }

  const std::string env_runs = env_or("AYD_RUNS", "");
  if (!env_runs.empty()) ctx.runs = std::stoul(env_runs);
  const std::string env_patterns = env_or("AYD_PATTERNS", "");
  if (!env_patterns.empty()) ctx.patterns = std::stoul(env_patterns);

  if (!parser.option("runs").empty()) {
    ctx.runs = static_cast<std::size_t>(parser.option_uint("runs"));
  }
  if (!parser.option("patterns").empty()) {
    ctx.patterns = static_cast<std::size_t>(parser.option_uint("patterns"));
  }
  if (!parser.option("seed").empty()) {
    ctx.seed = parser.option_uint("seed");
  }
  ctx.threads = static_cast<unsigned>(parser.option_uint("threads"));
  ctx.use_des_engine = parser.flag("des");
  ctx.csv_path = parser.option("csv");
  ctx.jsonl_path = parser.option("jsonl");
  return ctx;
}

void print_experiment_header(const std::string& title,
                             const ExperimentContext& ctx) {
  std::printf("# %s\n", title.c_str());
  std::printf("# reproduces: %s\n", util::paper_citation());
  std::printf("# library: amdahl-young-daly v%s\n", util::version_string());
  std::printf(
      "# scale: %zu runs x %zu patterns per point, seed %llu, backend %s\n",
      ctx.runs, ctx.patterns,
      static_cast<unsigned long long>(ctx.seed),
      ctx.use_des_engine ? "DES engine" : "fast sampler");
  std::printf("#\n");
}

}  // namespace ayd::cli
