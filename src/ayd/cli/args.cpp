#include "ayd/cli/args.hpp"

#include <cstdlib>
#include <sstream>

#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::cli {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  add_flag("help", "show this help and exit");
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  AYD_REQUIRE(!specs_.contains(name), "duplicate argument: " + name);
  specs_[name] = Spec{help, "", /*is_flag=*/true, false};
  order_.push_back(name);
}

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  AYD_REQUIRE(!specs_.contains(name), "duplicate argument: " + name);
  specs_[name] = Spec{help, default_value, /*is_flag=*/false, false};
  order_.push_back(name);
}

const ArgParser::Spec& ArgParser::lookup(const std::string& name) const {
  const auto it = specs_.find(name);
  AYD_REQUIRE(it != specs_.end(), "undeclared argument: " + name);
  return it->second;
}

ArgParser::Spec& ArgParser::lookup(const std::string& name) {
  const auto it = specs_.find(name);
  AYD_REQUIRE(it != specs_.end(), "undeclared argument: " + name);
  return it->second;
}

void ArgParser::parse_args(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size() + 1);
  argv.push_back(program_.c_str());  // synthetic argv[0]; parse skips it
  for (const std::string& a : args) argv.push_back(a.c_str());
  parse(static_cast<int>(argv.size()), argv.data());
}

void ArgParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!util::starts_with(arg, "--")) {
      throw util::CliError("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      throw util::CliError("unknown argument: --" + name +
                           " (see --help)");
    }
    Spec& spec = it->second;
    if (spec.is_flag) {
      if (has_value) {
        throw util::CliError("flag --" + name + " does not take a value");
      }
      spec.flag_set = true;
      if (name == "help") help_requested_ = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= args.size()) {
        throw util::CliError("option --" + name + " needs a value");
      }
      value = args[++i];
    }
    spec.value = value;
  }
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const std::string& name : order_) {
    const Spec& spec = specs_.at(name);
    std::string left = "  --" + name;
    if (!spec.is_flag) left += "=<value>";
    os << util::pad_right(left, 28) << spec.help;
    if (!spec.is_flag && !spec.value.empty()) {
      os << " (default: " << spec.value << ")";
    }
    os << "\n";
  }
  return os.str();
}

bool ArgParser::flag(const std::string& name) const {
  const Spec& spec = lookup(name);
  AYD_REQUIRE(spec.is_flag, "--" + name + " is not a flag");
  return spec.flag_set;
}

const std::string& ArgParser::option(const std::string& name) const {
  const Spec& spec = lookup(name);
  AYD_REQUIRE(!spec.is_flag, "--" + name + " is a flag, not an option");
  return spec.value;
}

double ArgParser::option_double(const std::string& name) const {
  const std::string& v = option(name);
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return d;
  } catch (const std::exception&) {
    throw util::CliError("option --" + name + " expects a number, got: " + v);
  }
}

std::int64_t ArgParser::option_int(const std::string& name) const {
  const std::string& v = option(name);
  try {
    std::size_t pos = 0;
    const long long i = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return i;
  } catch (const std::exception&) {
    throw util::CliError("option --" + name +
                         " expects an integer, got: " + v);
  }
}

std::uint64_t ArgParser::option_uint(const std::string& name) const {
  const std::int64_t i = option_int(name);
  if (i < 0) {
    throw util::CliError("option --" + name + " expects a nonnegative value");
  }
  return static_cast<std::uint64_t>(i);
}

std::string env_or(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  return v != nullptr ? std::string(v) : fallback;
}

}  // namespace ayd::cli
