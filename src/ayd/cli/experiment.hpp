// Shared scaffolding for the bench/experiment binaries: a uniform set of
// scale knobs (--runs/--patterns/--seed/--threads, AYD_SCALE=paper env)
// plus a standard header so every reproduction prints its provenance.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ayd/cli/args.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/sim/runner.hpp"

namespace ayd::cli {

struct ExperimentContext {
  std::size_t runs = 120;      ///< simulation replicas per point
  std::size_t patterns = 160;  ///< patterns per replica
  std::uint64_t seed = 0xA4D2016ULL;
  unsigned threads = 0;        ///< 0 = hardware concurrency
  bool use_des_engine = false; ///< reference DES backend instead of fast
  std::string csv_path;        ///< optional CSV dump of the series
  std::string jsonl_path;      ///< optional JSON-lines dump of the series

  [[nodiscard]] sim::ReplicationOptions replication() const {
    sim::ReplicationOptions opt;
    opt.replicas = runs;
    opt.patterns_per_replica = patterns;
    opt.seed = seed;
    opt.backend = use_des_engine ? sim::Backend::kDes : sim::Backend::kFast;
    return opt;
  }

  [[nodiscard]] std::unique_ptr<exec::ThreadPool> make_pool() const {
    return std::make_unique<exec::ThreadPool>(threads);
  }
};

/// Declares the standard options on a parser.
void add_experiment_options(ArgParser& parser);

/// Reads the standard options (after parse()), applying the AYD_SCALE /
/// AYD_RUNS / AYD_PATTERNS environment overrides:
///   AYD_SCALE=paper  -> 500 runs x 500 patterns (the paper's scale)
///   AYD_SCALE=quick  -> 40 runs x 60 patterns (CI smoke scale)
[[nodiscard]] ExperimentContext read_experiment_context(
    const ArgParser& parser);

/// Prints the standard experiment header (binary name, paper citation,
/// scale, seed) to stdout.
void print_experiment_header(const std::string& title,
                             const ExperimentContext& ctx);

}  // namespace ayd::cli
