// Numerically stable special functions.
//
// The resilience formulas in this library are built from exponentials of
// rate×time products that range from ~1e-12 (one processor, century MTBF)
// to ~1e3 (optimiser probing absurdly large P). Naive `exp` arithmetic
// either cancels catastrophically or overflows; every formula in ayd::core
// is therefore expressed through the primitives below.

#pragma once

namespace ayd::math {

/// expm1(x)/x, the "relative exponential" exprel(x).
/// Stable for all x, with exprel(0) == 1 exactly. Monotone increasing.
[[nodiscard]] double expm1_over_x(double x);

/// log(1 - exp(x)) for x < 0, stable near both x -> 0- and x -> -inf.
/// (Mächler's log1mexp.) Precondition: x < 0.
[[nodiscard]] double log1mexp(double x);

/// log(1 + exp(x)), stable for all x (softplus).
[[nodiscard]] double log1pexp(double x);

/// log(e^a + e^b) without overflow.
[[nodiscard]] double logaddexp(double a, double b);

/// log(e^a - e^b) for a > b, without overflow. Precondition: a > b.
[[nodiscard]] double logsubexp(double a, double b);

/// Probability that an Exp(rate) arrival strikes before `t`:
/// 1 - exp(-rate * t), computed as -expm1(-rate*t). Stable for tiny
/// rate*t. Preconditions: rate >= 0, t >= 0.
[[nodiscard]] double prob_before(double rate, double t);

/// Expected time lost when an Exp(rate) failure is known to strike within
/// an execution of length `w` (paper, proof of Prop. 1):
///   E_lost(w) = 1/rate - w / (e^{rate*w} - 1).
/// Stable limit w -> 0 or rate -> 0: E_lost -> w/2. Preconditions:
/// rate >= 0, w >= 0; returns w/2 when rate*w is tiny.
[[nodiscard]] double expected_time_lost(double rate, double w);

/// True if |a - b| <= atol + rtol * max(|a|, |b|). NaNs are never close.
[[nodiscard]] bool is_close(double a, double b, double rtol = 1e-9,
                            double atol = 0.0);

/// Relative difference |a - b| / max(|a|, |b|, floor). Returns 0 for a==b.
[[nodiscard]] double rel_diff(double a, double b, double floor = 1e-300);

}  // namespace ayd::math
