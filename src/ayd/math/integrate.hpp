// Adaptive Simpson quadrature.
//
// Used by the test suite to validate closed-form expectations (e.g. the
// E_lost formula from the proof of Proposition 1) against direct numerical
// integration of the defining integrals. Not on any hot path.

#pragma once

#include <functional>

namespace ayd::math {

struct IntegrateResult {
  double value = 0.0;
  double error_estimate = 0.0;
  int evaluations = 0;
  bool converged = false;
};

struct IntegrateOptions {
  double abs_tol = 1e-10;
  double rel_tol = 1e-10;
  int max_depth = 40;
  /// Subdivisions forced before the error estimate may accept a panel.
  /// Guards against false convergence when the integrand's nodes happen to
  /// alias the Simpson sample points (e.g. sin(10x) on [0, pi] is zero at
  /// the first five points and would otherwise "converge" instantly).
  int min_depth = 3;
};

/// Integrates f over [a, b] (a <= b) with adaptive Simpson's rule.
[[nodiscard]] IntegrateResult integrate(const std::function<double(double)>& f,
                                        double a, double b,
                                        const IntegrateOptions& opt = {});

}  // namespace ayd::math
