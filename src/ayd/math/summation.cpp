#include "ayd/math/summation.hpp"

namespace ayd::math {

double compensated_sum(std::span<const double> xs) {
  KahanSum s;
  for (const double x : xs) s.add(x);
  return s.value();
}

double compensated_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return compensated_sum(xs) / static_cast<double>(xs.size());
}

}  // namespace ayd::math
