// One-dimensional minimisation: golden-section and Brent's parabolic
// method, with bracket discovery. The core optimisers minimise the exact
// expected overhead over log T and log P with these routines.

#pragma once

#include <functional>

namespace ayd::math {

/// Result of a 1-D minimisation.
struct MinimizeResult {
  double x = 0.0;          ///< argmin
  double fx = 0.0;         ///< minimum value
  int iterations = 0;      ///< iterations consumed
  int evaluations = 0;     ///< function evaluations consumed
  bool converged = false;  ///< tolerance met before iteration cap
  /// True when the minimiser ended within tolerance of a search-domain
  /// endpoint (the objective is likely monotone over the domain).
  bool at_boundary = false;
};

struct MinimizeOptions {
  double x_tol = 1e-10;      ///< relative tolerance on x
  int max_iterations = 200;
};

/// A triple lo < mid < hi with f(mid) <= min(f(lo), f(hi)), certifying that
/// a local minimum lies inside [lo, hi].
struct Bracket {
  double lo = 0.0;
  double mid = 0.0;
  double hi = 0.0;
  bool valid = false;
};

/// Searches downhill from [a, b] for a bracketing triple (golden-ratio
/// expansion). `lo_limit`/`hi_limit` clamp the search domain; if the
/// function keeps decreasing up to a limit the bracket is reported invalid
/// with mid at that limit (caller decides how to treat monotone objectives).
[[nodiscard]] Bracket bracket_minimum(const std::function<double(double)>& f,
                                      double a, double b,
                                      double lo_limit, double hi_limit,
                                      int max_expansions = 100);

/// Golden-section search on [lo, hi]. No derivative or smoothness needed;
/// linear convergence. Works on any unimodal function.
[[nodiscard]] MinimizeResult golden_section(
    const std::function<double(double)>& f, double lo, double hi,
    const MinimizeOptions& opt = {});

/// Brent's minimisation (golden section + successive parabolic
/// interpolation) on [lo, hi]. Superlinear on smooth objectives.
[[nodiscard]] MinimizeResult brent_minimize(
    const std::function<double(double)>& f, double lo, double hi,
    const MinimizeOptions& opt = {});

/// Convenience: minimise f over [lo, hi] starting from a hint — brackets
/// around `hint` first, then runs Brent inside the bracket. If the
/// objective is monotone towards an endpoint, returns that endpoint with
/// `at_boundary = true`.
[[nodiscard]] MinimizeResult minimize_with_hint(
    const std::function<double(double)>& f, double lo, double hi,
    double hint, const MinimizeOptions& opt = {});

}  // namespace ayd::math
