// One-dimensional root finding: bisection and Brent's method, plus a
// bracket-expansion helper. Used by the core optimisers (stationary points
// of overhead derivatives) and by tests.

#pragma once

#include <functional>

namespace ayd::math {

/// Result of a root search.
struct RootResult {
  double x = 0.0;         ///< abscissa of the root
  double fx = 0.0;        ///< residual f(x)
  int iterations = 0;     ///< iterations consumed
  bool converged = false; ///< true if tolerance was met
};

/// Options shared by the root finders.
struct RootOptions {
  double x_tol = 1e-12;    ///< absolute tolerance on x (plus 4*eps*|x| internally)
  double f_tol = 0.0;      ///< stop early if |f(x)| <= f_tol
  int max_iterations = 200;
};

/// Finds x in [lo, hi] with f(x) = 0 by bisection.
/// Preconditions: lo < hi and f(lo), f(hi) have opposite signs (or one is 0).
/// Throws util::InvalidArgument if the bracket is invalid.
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f,
                                double lo, double hi,
                                const RootOptions& opt = {});

/// Brent's method (inverse quadratic interpolation + secant + bisection).
/// Same bracket preconditions as bisect; superlinear in practice.
[[nodiscard]] RootResult brent_root(const std::function<double(double)>& f,
                                    double lo, double hi,
                                    const RootOptions& opt = {});

/// Expands [lo, hi] geometrically (by `factor`) until f changes sign or
/// `max_expansions` is hit. Returns true and updates lo/hi on success.
/// Expansion alternates sides, starting from the given interval.
[[nodiscard]] bool expand_bracket(const std::function<double(double)>& f,
                                  double& lo, double& hi,
                                  double factor = 1.6,
                                  int max_expansions = 60);

}  // namespace ayd::math
