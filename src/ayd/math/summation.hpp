// Compensated (Neumaier/Kahan) summation.
//
// Long simulation runs accumulate millions of pattern wall-times whose
// magnitudes span several orders; compensated accumulation keeps the total
// exact to the last bit for all practical inputs.

#pragma once

#include <cstddef>
#include <span>

namespace ayd::math {

/// Neumaier-compensated accumulator. Value semantics; `merge` combines two
/// accumulators (used by parallel reductions).
class KahanSum {
 public:
  constexpr KahanSum() = default;

  constexpr void add(double x) {
    const double t = sum_ + x;
    if (abs_ge(sum_, x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
    ++count_;
  }

  constexpr void merge(const KahanSum& other) {
    // Adding the other's total and compensation separately preserves both
    // corrections.
    const std::size_t n = count_ + other.count_;
    add(other.sum_);
    add(other.comp_);
    count_ = n;
  }

  [[nodiscard]] constexpr double value() const { return sum_ + comp_; }
  [[nodiscard]] constexpr std::size_t count() const { return count_; }
  [[nodiscard]] constexpr bool empty() const { return count_ == 0; }

 private:
  static constexpr bool abs_ge(double a, double b) {
    return (a < 0 ? -a : a) >= (b < 0 ? -b : b);
  }

  double sum_ = 0.0;
  double comp_ = 0.0;
  std::size_t count_ = 0;
};

/// Sums a span with Neumaier compensation.
[[nodiscard]] double compensated_sum(std::span<const double> xs);

/// Compensated arithmetic mean; returns 0 for an empty span.
[[nodiscard]] double compensated_mean(std::span<const double> xs);

}  // namespace ayd::math
