#include "ayd/math/integrate.hpp"

#include <cmath>

#include "ayd/util/contracts.hpp"

namespace ayd::math {

namespace {

struct Ctx {
  const std::function<double(double)>& f;
  const IntegrateOptions& opt;
  int evaluations = 0;
  bool converged = true;
};

double simpson(double fa, double fm, double fb, double h) {
  return h / 6.0 * (fa + 4.0 * fm + fb);
}

double adapt(Ctx& ctx, double a, double b, double fa, double fm, double fb,
             double whole, double tol, int depth, double& err) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = ctx.f(lm);
  const double frm = ctx.f(rm);
  ctx.evaluations += 2;
  const double left = simpson(fa, flm, fm, m - a);
  const double right = simpson(fm, frm, fb, b - m);
  const double delta = left + right - whole;
  if (depth >= ctx.opt.max_depth) {
    ctx.converged = false;
    err += std::abs(delta);
    return left + right + delta / 15.0;
  }
  if (depth >= ctx.opt.min_depth && std::abs(delta) <= 15.0 * tol) {
    err += std::abs(delta) / 15.0;
    return left + right + delta / 15.0;  // Richardson extrapolation
  }
  return adapt(ctx, a, m, fa, flm, fm, left, 0.5 * tol, depth + 1, err) +
         adapt(ctx, m, b, fm, frm, fb, right, 0.5 * tol, depth + 1, err);
}

}  // namespace

IntegrateResult integrate(const std::function<double(double)>& f, double a,
                          double b, const IntegrateOptions& opt) {
  AYD_REQUIRE(a <= b, "integration bounds out of order");
  IntegrateResult res;
  if (a == b) {
    res.converged = true;
    return res;
  }
  Ctx ctx{f, opt};
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  ctx.evaluations = 3;
  const double whole = simpson(fa, fm, fb, b - a);
  const double tol =
      std::max(opt.abs_tol, opt.rel_tol * std::abs(whole));
  double err = 0.0;
  res.value = adapt(ctx, a, b, fa, fm, fb, whole, tol, 0, err);
  res.error_estimate = err;
  res.evaluations = ctx.evaluations;
  res.converged = ctx.converged;
  return res;
}

}  // namespace ayd::math
