#include "ayd/math/special.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ayd/util/contracts.hpp"

namespace ayd::math {

double expm1_over_x(double x) {
  AYD_REQUIRE_FINITE(x);
  // For |x| below ~1e-8 the quadratic Taylor term is below double epsilon
  // relative to 1, so the two-term series is exact to rounding.
  if (std::abs(x) < 1e-8) return 1.0 + 0.5 * x;
  return std::expm1(x) / x;
}

double log1mexp(double x) {
  AYD_REQUIRE(x < 0, "log1mexp requires x < 0");
  // Mächler (2012): switch at -log(2) between the two stable forms.
  static const double kLog2 = std::log(2.0);
  if (x > -kLog2) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

double log1pexp(double x) {
  if (x > 36.0) return x;           // exp(-x) below double epsilon
  if (x < -745.0) return 0.0;       // exp(x) underflows entirely
  return std::log1p(std::exp(x));
}

double logaddexp(double a, double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + log1pexp(lo - hi);
}

double logsubexp(double a, double b) {
  AYD_REQUIRE(a > b, "logsubexp requires a > b");
  if (std::isinf(b) && b < 0) return a;
  return a + log1mexp(b - a);
}

double prob_before(double rate, double t) {
  AYD_REQUIRE(rate >= 0 && t >= 0, "rate and t must be nonnegative");
  return -std::expm1(-rate * t);
}

double expected_time_lost(double rate, double w) {
  AYD_REQUIRE(rate >= 0 && w >= 0, "rate and w must be nonnegative");
  const double x = rate * w;
  // E_lost = 1/rate - w/expm1(x) = (w/x) - w/expm1(x) = w*(1/x - 1/expm1(x)).
  // The bracketed difference -> 1/2 as x -> 0; series: 1/2 - x/12 + x^3/720.
  if (x < 1e-4) {
    return w * (0.5 - x / 12.0 + x * x * x / 720.0);
  }
  if (x > 700.0) {
    // expm1(x) would overflow; the w/expm1(x) term is then exactly 0 in
    // double precision.
    return 1.0 / rate;
  }
  return 1.0 / rate - w / std::expm1(x);
}

bool is_close(double a, double b, double rtol, double atol) {
  if (std::isnan(a) || std::isnan(b)) return false;
  if (a == b) return true;  // covers equal infinities
  if (std::isinf(a) || std::isinf(b)) return false;
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= atol + rtol * scale;
}

double rel_diff(double a, double b, double floor) {
  if (a == b) return 0.0;
  const double scale = std::max({std::abs(a), std::abs(b), floor});
  return std::abs(a - b) / scale;
}

}  // namespace ayd::math
