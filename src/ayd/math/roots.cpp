#include "ayd/math/roots.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ayd/util/contracts.hpp"

namespace ayd::math {

namespace {

void check_bracket(double lo, double hi, double flo, double fhi) {
  AYD_REQUIRE(lo < hi, "root bracket requires lo < hi");
  AYD_REQUIRE(std::isfinite(flo) && std::isfinite(fhi),
              "f must be finite at the bracket ends");
  AYD_REQUIRE(flo == 0.0 || fhi == 0.0 || (flo < 0.0) != (fhi < 0.0),
              "f(lo) and f(hi) must have opposite signs");
}

double x_tolerance(const RootOptions& opt, double x) {
  return opt.x_tol + 4.0 * std::numeric_limits<double>::epsilon() *
                         std::abs(x);
}

}  // namespace

RootResult bisect(const std::function<double(double)>& f, double lo,
                  double hi, const RootOptions& opt) {
  double flo = f(lo);
  double fhi = f(hi);
  check_bracket(lo, hi, flo, fhi);
  RootResult r;
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};
  for (int i = 0; i < opt.max_iterations; ++i) {
    const double mid = lo + 0.5 * (hi - lo);
    const double fmid = f(mid);
    r.iterations = i + 1;
    if (fmid == 0.0 || std::abs(fmid) <= opt.f_tol ||
        (hi - lo) * 0.5 <= x_tolerance(opt, mid)) {
      r.x = mid;
      r.fx = fmid;
      r.converged = true;
      return r;
    }
    if ((fmid < 0.0) == (flo < 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  r.x = lo + 0.5 * (hi - lo);
  r.fx = f(r.x);
  r.converged = false;
  return r;
}

RootResult brent_root(const std::function<double(double)>& f, double lo,
                      double hi, const RootOptions& opt) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  check_bracket(a, b, fa, fb);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};

  // Classic Brent (Numerical Recipes structure): b is the best iterate,
  // a the previous one, c the counterpoint keeping the bracket.
  double c = a, fc = fa;
  double d = b - a, e = d;
  RootResult r;
  for (int i = 0; i < opt.max_iterations; ++i) {
    r.iterations = i + 1;
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol = x_tolerance(opt, b);
    const double xm = 0.5 * (c - b);
    if (std::abs(xm) <= tol || fb == 0.0 || std::abs(fb) <= opt.f_tol) {
      r.x = b;
      r.fx = fb;
      r.converged = true;
      return r;
    }
    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic / secant interpolation.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double rr = fb / fc;
        p = s * (2.0 * xm * qq * (qq - rr) - (b - a) * (rr - 1.0));
        q = (qq - 1.0) * (rr - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      const double min1 = 3.0 * xm * q - std::abs(tol * q);
      const double min2 = std::abs(e * q);
      if (2.0 * p < std::min(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    if (std::abs(d) > tol) {
      b += d;
    } else {
      b += (xm > 0.0 ? tol : -tol);
    }
    fb = f(b);
  }
  r.x = b;
  r.fx = fb;
  r.converged = false;
  return r;
}

bool expand_bracket(const std::function<double(double)>& f, double& lo,
                    double& hi, double factor, int max_expansions) {
  AYD_REQUIRE(lo < hi, "expand_bracket requires lo < hi");
  AYD_REQUIRE(factor > 1.0, "expansion factor must exceed 1");
  double flo = f(lo);
  double fhi = f(hi);
  for (int i = 0; i < max_expansions; ++i) {
    if (std::isfinite(flo) && std::isfinite(fhi) &&
        ((flo <= 0.0) != (fhi <= 0.0) || flo == 0.0 || fhi == 0.0)) {
      return true;
    }
    // Expand the side with the smaller |f| last changed; simple alternating
    // geometric growth keeps both ends moving.
    if (std::abs(flo) < std::abs(fhi)) {
      lo -= factor * (hi - lo);
      flo = f(lo);
    } else {
      hi += factor * (hi - lo);
      fhi = f(hi);
    }
  }
  return false;
}

}  // namespace ayd::math
