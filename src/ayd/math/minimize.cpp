#include "ayd/math/minimize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ayd/util/contracts.hpp"

namespace ayd::math {

namespace {

constexpr double kGolden = 0.3819660112501051;  // (3 - sqrt(5)) / 2
constexpr double kGrow = 1.6180339887498949;    // golden growth ratio

double x_tolerance(const MinimizeOptions& opt, double x) {
  return opt.x_tol * std::abs(x) +
         1e-300 +  // guards x == 0
         4.0 * std::numeric_limits<double>::epsilon() * std::abs(x);
}

}  // namespace

Bracket bracket_minimum(const std::function<double(double)>& f, double a,
                        double b, double lo_limit, double hi_limit,
                        int max_expansions) {
  AYD_REQUIRE(lo_limit < hi_limit, "bracket limits out of order");
  a = std::clamp(a, lo_limit, hi_limit);
  b = std::clamp(b, lo_limit, hi_limit);
  AYD_REQUIRE(a != b, "bracket seeds must differ after clamping");
  double fa = f(a);
  double fb = f(b);
  if (fb > fa) {  // walk downhill: ensure f(b) <= f(a)
    std::swap(a, b);
    std::swap(fa, fb);
  }
  // March c beyond b until f turns upward.
  double c = std::clamp(b + kGrow * (b - a), lo_limit, hi_limit);
  double fc = f(c);
  int n = 0;
  while (fc <= fb && n++ < max_expansions) {
    if (c == lo_limit || c == hi_limit) {
      // Monotone all the way to the domain edge.
      Bracket br;
      br.lo = std::min(a, c);
      br.hi = std::max(a, c);
      br.mid = c;
      br.valid = false;
      return br;
    }
    a = b;
    fa = fb;
    b = c;
    fb = fc;
    c = std::clamp(b + kGrow * (b - a), lo_limit, hi_limit);
    fc = f(c);
  }
  Bracket br;
  if (fc <= fb) {  // expansion budget exhausted while still descending
    br.lo = std::min(a, c);
    br.hi = std::max(a, c);
    br.mid = c;
    br.valid = false;
    return br;
  }
  br.lo = std::min(a, c);
  br.hi = std::max(a, c);
  br.mid = b;
  br.valid = (br.lo < br.mid && br.mid < br.hi && fb <= fa && fb < fc);
  return br;
}

MinimizeResult golden_section(const std::function<double(double)>& f,
                              double lo, double hi,
                              const MinimizeOptions& opt) {
  AYD_REQUIRE(lo < hi, "golden_section requires lo < hi");
  double a = lo, b = hi;
  double x1 = a + kGolden * (b - a);
  double x2 = b - kGolden * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  MinimizeResult r;
  r.evaluations = 2;
  for (int i = 0; i < opt.max_iterations; ++i) {
    r.iterations = i + 1;
    if (b - a <= 2.0 * x_tolerance(opt, 0.5 * (a + b))) break;
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = a + kGolden * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = b - kGolden * (b - a);
      f2 = f(x2);
    }
    ++r.evaluations;
  }
  if (f1 < f2) {
    r.x = x1;
    r.fx = f1;
  } else {
    r.x = x2;
    r.fx = f2;
  }
  r.converged = (b - a) <= 2.0 * x_tolerance(opt, r.x) ||
                r.iterations < opt.max_iterations;
  r.at_boundary = (r.x - lo) <= 4.0 * x_tolerance(opt, r.x) ||
                  (hi - r.x) <= 4.0 * x_tolerance(opt, r.x);
  return r;
}

MinimizeResult brent_minimize(const std::function<double(double)>& f,
                              double lo, double hi,
                              const MinimizeOptions& opt) {
  AYD_REQUIRE(lo < hi, "brent_minimize requires lo < hi");
  // Brent's algorithm, structure after Numerical Recipes `brent`.
  double a = lo, b = hi;
  double x = a + kGolden * (b - a);
  double w = x, v = x;
  double fx = f(x);
  double fw = fx, fv = fx;
  double d = 0.0, e = 0.0;
  MinimizeResult r;
  r.evaluations = 1;
  for (int i = 0; i < opt.max_iterations; ++i) {
    r.iterations = i + 1;
    const double xm = 0.5 * (a + b);
    const double tol1 = x_tolerance(opt, x);
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - xm) <= tol2 - 0.5 * (b - a)) {
      r.converged = true;
      break;
    }
    bool use_golden = true;
    if (std::abs(e) > tol1) {
      // Fit a parabola through (x, fx), (w, fw), (v, fv).
      const double rr = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * rr;
      q = 2.0 * (q - rr);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double etemp = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * etemp) && p > q * (a - x) &&
          p < q * (b - x)) {
        use_golden = false;
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) {
          d = (xm - x >= 0.0) ? tol1 : -tol1;
        }
      }
    }
    if (use_golden) {
      e = (x >= xm) ? a - x : b - x;
      d = kGolden * e;
    }
    const double u =
        (std::abs(d) >= tol1) ? x + d : x + ((d >= 0.0) ? tol1 : -tol1);
    const double fu = f(u);
    ++r.evaluations;
    if (fu <= fx) {
      if (u >= x) a = x; else b = x;
      v = w; w = x; x = u;
      fv = fw; fw = fx; fx = fu;
    } else {
      if (u < x) a = u; else b = u;
      if (fu <= fw || w == x) {
        v = w; w = u;
        fv = fw; fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  r.x = x;
  r.fx = fx;
  r.at_boundary = (x - lo) <= 8.0 * x_tolerance(opt, x) ||
                  (hi - x) <= 8.0 * x_tolerance(opt, x);
  return r;
}

MinimizeResult minimize_with_hint(const std::function<double(double)>& f,
                                  double lo, double hi, double hint,
                                  const MinimizeOptions& opt) {
  AYD_REQUIRE(lo < hi, "minimize_with_hint requires lo < hi");
  hint = std::clamp(hint, lo, hi);
  // Seed the bracket search slightly around the hint.
  const double span = hi - lo;
  double a = std::max(lo, hint - 0.01 * span);
  double b = std::min(hi, hint + 0.01 * span);
  if (a == b) {
    a = lo;
    b = hi;
  }
  const Bracket br = bracket_minimum(f, a, b, lo, hi);
  if (!br.valid) {
    // Monotone (or budget exhausted): fall back to a full-domain golden
    // search, which converges to the boundary for monotone objectives.
    MinimizeResult r = golden_section(f, lo, hi, opt);
    return r;
  }
  MinimizeResult r = brent_minimize(f, br.lo, br.hi, opt);
  return r;
}

}  // namespace ayd::math
