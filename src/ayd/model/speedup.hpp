// Application speedup profiles.
//
// The paper's analysis is for Amdahl's law, S(P) = 1/(α + (1-α)/P); its
// future-work section asks for other profiles, so the profile is a
// first-class value type here and everything downstream (exact overhead,
// numerical optimiser, simulator) is generic over it. The first-order
// closed forms (Theorems 2/3) remain Amdahl-specific and check the kind.

#pragma once

#include <functional>
#include <optional>
#include <string>

namespace ayd::model {

class Speedup {
 public:
  enum class Kind {
    kAmdahl,    ///< S(P) = 1 / (α + (1-α)/P)
    kPerfect,   ///< S(P) = P
    kGustafson, ///< S(P) = α + (1-α)·P   (scaled/weak-scaling speedup)
    kPowerLaw,  ///< S(P) = P^γ, 0 < γ <= 1
    kCustom,    ///< user-supplied S(P)
  };

  /// Amdahl profile with sequential fraction α in [0, 1]. α == 0 gives a
  /// perfectly parallel job (the paper's Section III-D case 4).
  [[nodiscard]] static Speedup amdahl(double alpha);
  /// Perfectly parallel job, S(P) = P (≡ amdahl(0), kept distinct for
  /// reporting).
  [[nodiscard]] static Speedup perfect();
  /// Gustafson (weak-scaling) profile with serial fraction α in [0, 1].
  [[nodiscard]] static Speedup gustafson(double alpha);
  /// Power-law profile S(P) = P^γ with γ in (0, 1].
  [[nodiscard]] static Speedup power_law(double gamma);
  /// Arbitrary profile. `fn` must be positive and nondecreasing on P >= 1
  /// with fn(1) == 1 (not checked beyond positivity at use).
  [[nodiscard]] static Speedup custom(std::function<double(double)> fn,
                                      std::string name);

  /// Speedup S(P); P >= 1 (real-valued: the optimiser treats P as
  /// continuous, exactly as the paper's analysis does).
  [[nodiscard]] double speedup(double p) const;

  /// Error-free execution overhead H(P) = 1 / S(P).
  [[nodiscard]] double overhead(double p) const;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Exact profile parameter: α for Amdahl/Gustafson, γ for the power
  /// law, 0 otherwise. Unlike name() (which formats to 4 significant
  /// digits for table output) this is lossless — the planning service
  /// keys its memo cache on it.
  [[nodiscard]] double parameter() const { return param_; }

  /// Sequential fraction α for Amdahl/Gustafson profiles (0 for perfect),
  /// nullopt otherwise.
  [[nodiscard]] std::optional<double> sequential_fraction() const;

  /// True for Amdahl profiles (including α == 0) and kPerfect; the
  /// first-order theorems apply only to these.
  [[nodiscard]] bool is_amdahl_family() const;

 private:
  Speedup(Kind kind, double param, std::function<double(double)> fn,
          std::string name);

  Kind kind_;
  double param_ = 0.0;  ///< α or γ depending on kind
  std::function<double(double)> fn_;  ///< only for kCustom
  std::string name_;
};

}  // namespace ayd::model
