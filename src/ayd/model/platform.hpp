// Platform profiles (the paper's Table II).
//
// Four real platforms whose failure rates and checkpoint/verification
// costs were measured for the SCR (Scalable Checkpoint/Restart) library
// evaluation [Moody et al., SC'10] and reused by the paper. Following the
// paper (after [Benoit et al., IPDPS'16]), the verification cost equals an
// in-memory checkpoint of the full footprint.

#pragma once

#include <string>
#include <vector>

#include "ayd/model/failure.hpp"

namespace ayd::model {

struct Platform {
  std::string name;
  /// Individual-processor error rate λ_ind (1/s), both error types pooled.
  double lambda_ind = 0.0;
  /// Fraction of errors that are fail-stop (f); silent fraction is 1 - f.
  double fail_stop_fraction = 0.0;
  /// Number of processors the costs below were measured on.
  double measured_procs = 0.0;
  /// Measured checkpoint cost C_P at `measured_procs` (seconds).
  double measured_checkpoint = 0.0;
  /// Measured verification cost V_P at `measured_procs` (seconds).
  double measured_verification = 0.0;

  [[nodiscard]] FailureModel failure() const {
    return {lambda_ind, fail_stop_fraction};
  }
};

/// Table II presets.
[[nodiscard]] Platform hera();
[[nodiscard]] Platform atlas();
[[nodiscard]] Platform coastal();
[[nodiscard]] Platform coastal_ssd();

/// All four platforms, in the paper's order.
[[nodiscard]] std::vector<Platform> all_platforms();

/// Looks a platform up by (case-insensitive) name; throws
/// util::InvalidArgument for unknown names.
[[nodiscard]] Platform platform_by_name(const std::string& name);

}  // namespace ayd::model
