#include "ayd/model/platform.hpp"

#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::model {

// Values are Table II of the paper, verbatim.

Platform hera() {
  return {"Hera", 1.69e-8, 0.2188, 512.0, 300.0, 15.4};
}

Platform atlas() {
  return {"Atlas", 1.62e-8, 0.0625, 1024.0, 439.0, 9.1};
}

Platform coastal() {
  return {"Coastal", 2.34e-9, 0.1667, 2048.0, 1051.0, 4.5};
}

Platform coastal_ssd() {
  return {"Coastal SSD", 2.34e-9, 0.1667, 2048.0, 2500.0, 180.0};
}

std::vector<Platform> all_platforms() {
  return {hera(), atlas(), coastal(), coastal_ssd()};
}

Platform platform_by_name(const std::string& name) {
  const std::string key = util::to_lower(util::trim(name));
  for (const Platform& p : all_platforms()) {
    if (util::to_lower(p.name) == key) return p;
  }
  // Accept the common compact spellings.
  if (key == "coastal_ssd" || key == "coastalssd" || key == "coastal-ssd") {
    return coastal_ssd();
  }
  throw util::InvalidArgument("unknown platform: " + name +
                              " (expected Hera, Atlas, Coastal, Coastal SSD)");
}

}  // namespace ayd::model
