#include "ayd/model/application.hpp"

#include "ayd/util/contracts.hpp"

namespace ayd::model {

double error_free_makespan(const Application& app,
                           double error_free_overhead) {
  AYD_REQUIRE(app.total_work >= 0.0, "total work must be >= 0");
  AYD_REQUIRE(error_free_overhead > 0.0, "overhead must be positive");
  return error_free_overhead * app.total_work;
}

double pattern_count(const Application& app, double period, double speedup) {
  AYD_REQUIRE(period > 0.0, "pattern period must be positive");
  AYD_REQUIRE(speedup > 0.0, "speedup must be positive");
  return app.total_work / (period * speedup);
}

}  // namespace ayd::model
