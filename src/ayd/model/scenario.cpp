#include "ayd/model/scenario.hpp"

#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::model {

std::vector<Scenario> all_scenarios() {
  return {Scenario::kS1, Scenario::kS2, Scenario::kS3,
          Scenario::kS4, Scenario::kS5, Scenario::kS6};
}

int scenario_number(Scenario s) { return static_cast<int>(s); }

std::string scenario_name(Scenario s) {
  return std::to_string(scenario_number(s));
}

std::string scenario_description(Scenario s) {
  switch (s) {
    case Scenario::kS1: return "C=cP,  V=v";
    case Scenario::kS2: return "C=cP,  V=u/P";
    case Scenario::kS3: return "C=a,   V=v";
    case Scenario::kS4: return "C=a,   V=u/P";
    case Scenario::kS5: return "C=b/P, V=v";
    case Scenario::kS6: return "C=b/P, V=u/P";
  }
  AYD_ENSURE(false, "unreachable scenario");
}

Scenario scenario_from_string(const std::string& s) {
  std::string key = util::to_lower(util::trim(s));
  if (!key.empty() && key[0] == 's') key = key.substr(1);
  for (const Scenario sc : all_scenarios()) {
    if (key == scenario_name(sc)) return sc;
  }
  throw util::InvalidArgument("unknown scenario: " + s +
                              " (expected 1..6 or s1..s6)");
}

ResilienceCosts resolve(const Platform& platform, Scenario s) {
  const double p = platform.measured_procs;
  AYD_REQUIRE(p >= 1.0, "platform has no measured processor count");
  const double c_meas = platform.measured_checkpoint;
  const double v_meas = platform.measured_verification;
  AYD_REQUIRE(c_meas >= 0.0 && v_meas >= 0.0,
              "platform costs must be nonnegative");

  CostModel checkpoint = CostModel::zero();
  switch (s) {
    case Scenario::kS1:
    case Scenario::kS2:
      checkpoint = CostModel::linear(c_meas / p);
      break;
    case Scenario::kS3:
    case Scenario::kS4:
      checkpoint = CostModel::constant(c_meas);
      break;
    case Scenario::kS5:
    case Scenario::kS6:
      checkpoint = CostModel::inverse(c_meas * p);
      break;
  }

  CostModel verification = CostModel::zero();
  switch (s) {
    case Scenario::kS1:
    case Scenario::kS3:
    case Scenario::kS5:
      verification = CostModel::constant(v_meas);
      break;
    case Scenario::kS2:
    case Scenario::kS4:
    case Scenario::kS6:
      verification = CostModel::inverse(v_meas * p);
      break;
  }

  return {checkpoint, checkpoint, verification};
}

CaseInfo classify(const ResilienceCosts& costs) {
  CaseInfo info;
  if (costs.checkpoint.linear_coeff() > 0.0) {
    info.first_order_case = FirstOrderCase::kLinearCheckpoint;
    info.coefficient = costs.checkpoint.linear_coeff();
    return info;
  }
  const CostModel combined = costs.combined();
  const double d = combined.constant_coeff();
  if (d > 0.0) {
    info.first_order_case = FirstOrderCase::kConstantCost;
    info.coefficient = d;
    return info;
  }
  info.first_order_case = FirstOrderCase::kDecreasingCost;
  info.coefficient = combined.inverse_coeff();
  return info;
}

}  // namespace ayd::model
