#include "ayd/model/system.hpp"

#include <cmath>
#include <utility>

#include "ayd/util/contracts.hpp"

namespace ayd::model {

System::System(FailureModel failure, ResilienceCosts costs, double downtime,
               Speedup speedup)
    : System(failure, std::move(costs), downtime, std::move(speedup),
             nullptr) {}

System::System(FailureModel failure, ResilienceCosts costs, double downtime,
               Speedup speedup, std::shared_ptr<const CorrelatedSpec> ext)
    : failure_(failure),
      costs_(std::move(costs)),
      downtime_(downtime),
      speedup_(std::move(speedup)),
      ext_(std::move(ext)) {
  AYD_REQUIRE(std::isfinite(downtime_) && downtime_ >= 0.0,
              "downtime must be finite and >= 0");
}

System System::from_platform(const Platform& platform, Scenario scenario,
                             double alpha, double downtime) {
  return System(platform.failure(), resolve(platform, scenario), downtime,
                Speedup::amdahl(alpha));
}

System System::with_lambda(double lambda_ind) const {
  return System(failure_.with_lambda(lambda_ind), costs_, downtime_,
                speedup_, ext_);
}

System System::with_downtime(double downtime) const {
  return System(failure_, costs_, downtime, speedup_, ext_);
}

System System::with_speedup(Speedup speedup) const {
  return System(failure_, costs_, downtime_, std::move(speedup), ext_);
}

System System::with_costs(ResilienceCosts costs) const {
  // The costs are replaced outright, so a two-tier refinement of the old
  // costs no longer describes anything: drop it (shock/heterogeneity are
  // cost-independent and survive).
  std::shared_ptr<const CorrelatedSpec> ext = ext_;
  if (ext != nullptr && ext->two_tier.has_value()) {
    CorrelatedSpec trimmed = *ext;
    trimmed.two_tier.reset();
    ext = trimmed.any_active()
              ? std::make_shared<const CorrelatedSpec>(std::move(trimmed))
              : nullptr;
  }
  return System(failure_, std::move(costs), downtime_, speedup_,
                std::move(ext));
}

System System::with_failure_dist(FailureDistSpec dist) const {
  return System(failure_.with_dist(std::move(dist)), costs_, downtime_,
                speedup_, ext_);
}

System System::with_extension(CorrelatedSpec spec) const {
  return System(failure_, costs_, downtime_, speedup_,
                spec.any_active()
                    ? std::make_shared<const CorrelatedSpec>(std::move(spec))
                    : nullptr);
}

System System::with_shock(const ShockSpec& spec) const {
  AYD_REQUIRE(std::isfinite(spec.correlation) && spec.correlation >= 0.0 &&
                  spec.correlation < 1.0,
              "shock correlation rho must be in [0, 1)");
  AYD_REQUIRE(std::isfinite(spec.group_fraction) &&
                  spec.group_fraction > 0.0 && spec.group_fraction <= 1.0,
              "shock group fraction must be in (0, 1]");
  CorrelatedSpec ext = ext_ != nullptr ? *ext_ : CorrelatedSpec{};
  if (spec.active()) {
    ext.shock = spec;
  } else {
    // rho == 0 is the i.i.d. single-level world: normalize it away so
    // the plain (bit-pinned) simulator path runs.
    ext.shock.reset();
  }
  return with_extension(std::move(ext));
}

System System::with_heterogeneity(const HeterogeneousSpec& spec) const {
  CorrelatedSpec ext = ext_ != nullptr ? *ext_ : CorrelatedSpec{};
  ext.heterogeneity = spec.normalized(failure_.dist());
  return with_extension(std::move(ext));
}

System System::with_two_tier(const TwoTierCostSpec& spec) const {
  // The single-tier projections the analytic planner (and every plain
  // code path) sees are the burst-buffer view: every checkpoint writes
  // both tiers, every non-shock rollback restores from the burst buffer.
  ResilienceCosts costs = costs_;
  costs.checkpoint = spec.bb_write + spec.pfs_write;
  costs.recovery = spec.bb_recovery;
  CorrelatedSpec ext = ext_ != nullptr ? *ext_ : CorrelatedSpec{};
  if (spec.distinct()) {
    ext.two_tier = spec;
  } else {
    // Equal recovery tiers: the PFS path costs exactly the burst-buffer
    // path, so the world is the folded single-tier model.
    ext.two_tier.reset();
  }
  return System(failure_, std::move(costs), downtime_, speedup_,
                ext.any_active()
                    ? std::make_shared<const CorrelatedSpec>(std::move(ext))
                    : nullptr);
}

}  // namespace ayd::model
