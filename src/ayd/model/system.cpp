#include "ayd/model/system.hpp"

#include <cmath>
#include <utility>

#include "ayd/util/contracts.hpp"

namespace ayd::model {

System::System(FailureModel failure, ResilienceCosts costs, double downtime,
               Speedup speedup)
    : failure_(failure),
      costs_(std::move(costs)),
      downtime_(downtime),
      speedup_(std::move(speedup)) {
  AYD_REQUIRE(std::isfinite(downtime_) && downtime_ >= 0.0,
              "downtime must be finite and >= 0");
}

System System::from_platform(const Platform& platform, Scenario scenario,
                             double alpha, double downtime) {
  return System(platform.failure(), resolve(platform, scenario), downtime,
                Speedup::amdahl(alpha));
}

System System::with_lambda(double lambda_ind) const {
  return System(failure_.with_lambda(lambda_ind), costs_, downtime_,
                speedup_);
}

System System::with_downtime(double downtime) const {
  return System(failure_, costs_, downtime, speedup_);
}

System System::with_speedup(Speedup speedup) const {
  return System(failure_, costs_, downtime_, std::move(speedup));
}

System System::with_costs(ResilienceCosts costs) const {
  return System(failure_, std::move(costs), downtime_, speedup_);
}

System System::with_failure_dist(FailureDistSpec dist) const {
  return System(failure_.with_dist(std::move(dist)), costs_, downtime_,
                speedup_);
}

}  // namespace ayd::model
