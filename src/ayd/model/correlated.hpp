// Correlated and multi-level failure worlds (ROADMAP item 5).
//
// The paper's model — and everything in ayd::core — assumes fail-stop
// errors form one i.i.d. renewal stream on a single storage level. Field
// studies disagree on three axes, each captured here as an optional
// extension of the System:
//
//  * ShockSpec — spatially correlated node-group failures as a
//    cascade/shock mixture: a platform-wide shock renewal process (a
//    cooling loop, a PSU cabinet, a top-of-rack switch) takes down a
//    random group of g·P nodes at once, superposed on the per-node
//    renewals. The mixture is parameterised so the *per-node marginal*
//    fail-stop rate is preserved: a correlation weight ρ ∈ [0, 1) moves
//    that fraction of each node's fail-stop intensity into the shared
//    shock process. Individual platform rate (1-ρ)·λf_P; shock rate
//    ρ·f·λ_ind/g (each shock hits a node with probability g, so the
//    per-node marginal ρ·f·λ_ind is exact). Since any failure interrupts
//    the whole coordinated application, correlation *lowers* the
//    interruption rate — failures arrive in bundles — which is exactly
//    the optimum drift bench/fig10_correlated measures.
//  * HeterogeneousSpec — per-component failure laws: the platform is
//    partitioned into groups, each a share of the nodes with its own
//    FailureDistSpec and a rate scale. Shares and the share-weighted
//    scales both sum to 1, so heterogeneity redistributes the fail-stop
//    intensity across laws without changing the platform total. The
//    platform process is the superposition of one renewal stream per
//    *distinct* (dist, scale) class — so a spec whose components all
//    share one law is, by definition and bit-for-bit, the homogeneous
//    platform (see normalized()).
//  * TwoTierCostSpec — two-tier checkpointing (burst buffer + PFS):
//    every checkpoint writes both tiers (C = bb_write + pfs_write);
//    individual failures and silent detections recover from the local
//    burst buffer, while a shock also wipes the victims' burst buffers
//    and forces the slower PFS recovery path. Equal recovery tiers fold
//    into the plain single-tier cost model (see normalized()).
//
// Degeneracy by normalization: System's with_shock / with_heterogeneity /
// with_two_tier modifiers normalize at construction — ρ = 0 drops the
// shock, identical component classes collapse, equal recovery tiers fold
// into ResilienceCosts — so a degenerate extended system IS the plain
// system (same type, same simulator path, same canonical key, bitwise
// identical results; tests/property_test.cpp pins this). Only genuinely
// extended systems route to the correlated simulators
// (sim/correlated.hpp), whose samplers the statistical tier validates
// (tests/model_correlated_test.cpp).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ayd/model/cost.hpp"
#include "ayd/model/failure_dist.hpp"
#include "ayd/model/scenario.hpp"

namespace ayd::io {
class JsonWriter;
}

namespace ayd::model {

/// Platform-wide shock renewal superposed on per-node failures.
struct ShockSpec {
  /// ρ ∈ [0, 1): fraction of each node's fail-stop intensity carried by
  /// the shock process (0 = i.i.d. single-level, the paper's world).
  double correlation = 0.0;
  /// g ∈ (0, 1]: expected fraction of the platform one shock takes down.
  /// Smaller groups mean more frequent, narrower shocks at the same ρ.
  double group_fraction = 0.05;
  /// Inter-shock law (exponential by default; Weibull k < 1 models
  /// cascading aftershock bursts).
  FailureDistSpec dist{};

  /// True when the shock process carries any intensity.
  [[nodiscard]] bool active() const { return correlation > 0.0; }
  /// Platform shock arrival rate ρ·f·λ_ind/g for a failure model with
  /// individual rate lambda_ind and fail-stop fraction f. Independent of
  /// P: shocks are platform-level events whose blast radius, not
  /// frequency, scales with the machine.
  [[nodiscard]] double shock_rate(double lambda_ind,
                                  double fail_stop_fraction) const;

  /// "rho=0.3,group=0.05" (",dist=weibull:k=0.7" when non-exponential).
  [[nodiscard]] std::string to_string() const;
  /// Parses the to_string() syntax. Throws util::InvalidArgument.
  [[nodiscard]] static ShockSpec parse(const std::string& text);
  void write_json(io::JsonWriter& w) const;
  friend bool operator==(const ShockSpec& a, const ShockSpec& b);
};

/// One component class of a heterogeneous platform.
struct ComponentGroup {
  /// Fraction of the platform's nodes in this group (> 0; all shares
  /// sum to 1).
  double share = 1.0;
  /// Rate multiplier on λ_ind for this group's nodes (>= 0; the
  /// share-weighted scales sum to 1, preserving the platform rate).
  double rate_scale = 1.0;
  /// This group's inter-failure law.
  FailureDistSpec dist{};

  friend bool operator==(const ComponentGroup& a, const ComponentGroup& b);
};

/// Per-component heterogeneous failure laws (see file header).
struct HeterogeneousSpec {
  std::vector<ComponentGroup> groups;

  /// Validates (shares > 0 summing to 1, share-weighted scales summing
  /// to 1, both within 1e-9) and merges groups with identical
  /// (dist, rate_scale) classes in first-appearance order. Returns
  /// nullopt when the result is the homogeneous platform (a single class
  /// at scale 1 whose law is `base_dist`).
  [[nodiscard]] std::optional<HeterogeneousSpec> normalized(
      const FailureDistSpec& base_dist) const;

  /// "share*scale*dist;share*scale*dist;..." e.g.
  /// "0.9*0.5*exponential;0.1*5.5*weibull:k=0.7".
  [[nodiscard]] std::string to_string() const;
  /// Parses the to_string() syntax. Throws util::InvalidArgument.
  [[nodiscard]] static HeterogeneousSpec parse(const std::string& text);
  void write_json(io::JsonWriter& w) const;
  friend bool operator==(const HeterogeneousSpec& a,
                         const HeterogeneousSpec& b);
};

/// Two-tier checkpoint/recovery cost models (see file header).
struct TwoTierCostSpec {
  CostModel bb_write = CostModel::zero();    ///< burst-buffer write
  CostModel pfs_write = CostModel::zero();   ///< PFS write (every pattern)
  CostModel bb_recovery = CostModel::zero(); ///< individual/silent path
  CostModel pfs_recovery = CostModel::zero();///< shock recovery path

  /// True when the two recovery tiers differ (coefficient-wise); equal
  /// tiers fold into the plain single-tier model.
  [[nodiscard]] bool distinct() const;

  /// Builds the spec from existing single-tier costs: the measured
  /// checkpoint cost becomes the burst-buffer write, the measured
  /// recovery the burst-buffer restore, and the PFS recovery is
  /// `pfs_penalty` (>= 1) times slower. pfs_penalty == 1 folds back into
  /// the plain model bit-for-bit.
  [[nodiscard]] static TwoTierCostSpec from_penalty(
      const ResilienceCosts& base, double pfs_penalty);

  void write_json(io::JsonWriter& w) const;
  friend bool operator==(const TwoTierCostSpec& a, const TwoTierCostSpec& b);
};

/// The bundle of active extensions a System carries (model/system.hpp).
/// Systems hold this normalized: every present member is genuinely
/// active (ShockSpec::active(), non-degenerate groups,
/// TwoTierCostSpec::distinct()).
struct CorrelatedSpec {
  std::optional<ShockSpec> shock;
  std::optional<HeterogeneousSpec> heterogeneity;
  std::optional<TwoTierCostSpec> two_tier;

  [[nodiscard]] bool any_active() const {
    return shock.has_value() || heterogeneity.has_value() ||
           two_tier.has_value();
  }
  void write_json(io::JsonWriter& w) const;
};

}  // namespace ayd::model
