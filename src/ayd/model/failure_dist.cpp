#include "ayd/model/failure_dist.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <numeric>
#include <utility>

#include "ayd/io/json.hpp"
#include "ayd/rng/simd.hpp"
#include "ayd/stats/online_fit.hpp"
#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::model {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The rate-0 degenerate case shared by every kind: the arrival never
/// comes. Keeping it a distinct implementation is what makes the
/// error-free path (lambda == 0) yield +inf instead of the NaNs a naive
/// quantile inversion with an infinite scale would produce.
class NeverFails final : public FailureDistribution {
 public:
  explicit NeverFails(FailureDistKind kind) : kind_(kind) {}

  [[nodiscard]] FailureDistKind kind() const override { return kind_; }
  [[nodiscard]] double rate() const override { return 0.0; }
  [[nodiscard]] double pdf(double) const override { return 0.0; }
  [[nodiscard]] double cdf(double) const override { return 0.0; }
  [[nodiscard]] double quantile(double) const override { return kInf; }
  [[nodiscard]] double mean() const override { return kInf; }
  [[nodiscard]] double sample(rng::RngStream&) const override { return kInf; }
  [[nodiscard]] bool memoryless() const override { return true; }

 private:
  FailureDistKind kind_;
};

class ExponentialDist final : public FailureDistribution {
 public:
  explicit ExponentialDist(double rate) : rate_(rate) {}

  [[nodiscard]] FailureDistKind kind() const override {
    return FailureDistKind::kExponential;
  }
  [[nodiscard]] double rate() const override { return rate_; }
  [[nodiscard]] double pdf(double x) const override {
    return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x);
  }
  [[nodiscard]] double cdf(double x) const override {
    return x <= 0.0 ? 0.0 : -std::expm1(-rate_ * x);
  }
  [[nodiscard]] double quantile(double u) const override {
    AYD_REQUIRE(u >= 0.0 && u < 1.0, "quantile argument must be in [0,1)");
    return -std::log1p(-u) / rate_;
  }
  [[nodiscard]] double mean() const override { return 1.0 / rate_; }
  [[nodiscard]] double sample(rng::RngStream& rng) const override {
    // Must stay word-for-word identical to the simulators' historical
    // draw so exponential experiments remain bit-reproducible.
    return rng.next_exponential(rate_);
  }
  [[nodiscard]] bool memoryless() const override { return true; }
  [[nodiscard]] bool unit_samplable() const override { return true; }
  [[nodiscard]] double sample_value(double u) const override {
    // Exactly rng::exponential's arithmetic on the word it would draw.
    return -std::log(1.0 - u) / rate_;
  }
  void sample_units(rng::RngStream& rng, double* z,
                    std::size_t n) const override {
    rng.fill_uniform01(z, n);
    for (std::size_t i = 0; i < n; ++i) z[i] = -std::log(1.0 - z[i]);
  }
  [[nodiscard]] double from_unit(double z) const override {
    return z / rate_;
  }
  void sample_units_fast(rng::RngStream& rng, double* z,
                         std::size_t n) const override {
    rng.fill_uniform01(z, n);
    rng::simd::exponential_units(z, n);
  }
  void units_from_uniforms(double* z, std::size_t n) const override {
    rng::simd::exponential_units(z, n);
  }
  void from_unit_bulk(const double* z, double* out,
                      std::size_t n) const override {
    // IEEE division is exactly rounded, so this loop is bitwise equal to
    // elementwise from_unit however the compiler vectorizes it.
    for (std::size_t i = 0; i < n; ++i) out[i] = z[i] / rate_;
  }

 private:
  double rate_;
};

class WeibullDist final : public FailureDistribution {
 public:
  WeibullDist(double shape, double rate)
      : k_(shape),
        inv_k_(1.0 / shape),
        scale_(1.0 / (rate * std::tgamma(1.0 + 1.0 / shape))),
        rate_(rate) {
    // Defense in depth behind FailureDistSpec::weibull's shape bounds: a
    // zero/inf/NaN scale would silently turn every sample into 0 or NaN.
    AYD_REQUIRE(std::isfinite(scale_) && scale_ > 0.0,
                "Weibull shape/rate combination has no finite scale");
  }

  [[nodiscard]] FailureDistKind kind() const override {
    return FailureDistKind::kWeibull;
  }
  [[nodiscard]] double rate() const override { return rate_; }
  [[nodiscard]] double pdf(double x) const override {
    if (x <= 0.0) return 0.0;
    const double z = x / scale_;
    return k_ / scale_ * std::pow(z, k_ - 1.0) * std::exp(-std::pow(z, k_));
  }
  [[nodiscard]] double cdf(double x) const override {
    return x <= 0.0 ? 0.0 : -std::expm1(-std::pow(x / scale_, k_));
  }
  [[nodiscard]] double quantile(double u) const override {
    AYD_REQUIRE(u >= 0.0 && u < 1.0, "quantile argument must be in [0,1)");
    return scale_ * std::pow(-std::log1p(-u), 1.0 / k_);
  }
  [[nodiscard]] double mean() const override { return 1.0 / rate_; }
  [[nodiscard]] double sample(rng::RngStream& rng) const override {
    return quantile(rng.next_uniform01());
  }
  [[nodiscard]] bool unit_samplable() const override { return true; }
  [[nodiscard]] double sample_value(double u) const override {
    return quantile(u);
  }
  void sample_units(rng::RngStream& rng, double* z,
                    std::size_t n) const override {
    rng.fill_uniform01(z, n);
    // Unit-scale Weibull deviate; scale_ is applied in from_unit so one
    // block can serve both the fail-stop and silent instantiations.
    for (std::size_t i = 0; i < n; ++i) {
      z[i] = std::pow(-std::log1p(-z[i]), inv_k_);
    }
  }
  [[nodiscard]] double from_unit(double z) const override {
    return scale_ * z;
  }
  void sample_units_fast(rng::RngStream& rng, double* z,
                         std::size_t n) const override {
    rng.fill_uniform01(z, n);
    rng::simd::weibull_units(z, n, inv_k_);
  }
  void units_from_uniforms(double* z, std::size_t n) const override {
    rng::simd::weibull_units(z, n, inv_k_);
  }
  void from_unit_bulk(const double* z, double* out,
                      std::size_t n) const override {
    // Exactly rounded multiplication: bitwise equal to from_unit.
    for (std::size_t i = 0; i < n; ++i) out[i] = scale_ * z[i];
  }

 private:
  double k_;
  double inv_k_;
  double scale_;
  double rate_;
};

class LogNormalDist final : public FailureDistribution {
 public:
  LogNormalDist(double sigma, double rate)
      : sigma_(sigma), mu_(-std::log(rate) - 0.5 * sigma * sigma),
        rate_(rate) {}

  [[nodiscard]] FailureDistKind kind() const override {
    return FailureDistKind::kLogNormal;
  }
  [[nodiscard]] double rate() const override { return rate_; }
  [[nodiscard]] double pdf(double x) const override {
    if (x <= 0.0) return 0.0;
    const double z = (std::log(x) - mu_) / sigma_;
    constexpr double kSqrt2Pi = 2.506628274631000502;
    return std::exp(-0.5 * z * z) / (x * sigma_ * kSqrt2Pi);
  }
  [[nodiscard]] double cdf(double x) const override {
    if (x <= 0.0) return 0.0;
    const double z = (std::log(x) - mu_) / sigma_;
    return 0.5 * std::erfc(-z / std::numbers::sqrt2);
  }
  [[nodiscard]] double quantile(double u) const override {
    AYD_REQUIRE(u >= 0.0 && u < 1.0, "quantile argument must be in [0,1)");
    if (u == 0.0) return 0.0;
    return std::exp(mu_ + sigma_ * rng::detail::normal_quantile(u));
  }
  [[nodiscard]] double mean() const override { return 1.0 / rate_; }
  [[nodiscard]] double sample(rng::RngStream& rng) const override {
    double u = rng.next_uniform01();
    if (u <= 0.0) u = 0x1.0p-53;  // same guard as rng::normal()
    return quantile(u);
  }
  [[nodiscard]] bool unit_samplable() const override { return true; }
  [[nodiscard]] double sample_value(double u) const override {
    if (u <= 0.0) u = 0x1.0p-53;
    return quantile(u);
  }
  void sample_units(rng::RngStream& rng, double* z,
                    std::size_t n) const override {
    rng.fill_uniform01(z, n);
    // Standard normal quantile; mu_/sigma_ scaling happens in from_unit
    // with exactly quantile()'s expression, so the factorization is
    // bitwise invisible.
    for (std::size_t i = 0; i < n; ++i) {
      z[i] = rng::detail::normal_quantile(z[i] <= 0.0 ? 0x1.0p-53 : z[i]);
    }
  }
  [[nodiscard]] double from_unit(double z) const override {
    return std::exp(mu_ + sigma_ * z);
  }
  void sample_units_fast(rng::RngStream& rng, double* z,
                         std::size_t n) const override {
    rng.fill_uniform01(z, n);
    rng::simd::lognormal_units(z, n);
  }
  void units_from_uniforms(double* z, std::size_t n) const override {
    rng::simd::lognormal_units(z, n);
  }
  void from_unit_bulk(const double* z, double* out,
                      std::size_t n) const override {
    rng::simd::affine_exp(z, out, n, mu_, sigma_);
  }

 private:
  double sigma_;
  double mu_;
  double rate_;
};

/// Shares the spec's gap vectors; only the scale factor is per-rate, so
/// instantiation (which happens once per replica per error source) costs
/// one O(n) sum instead of two copies and a sort.
class TraceReplayDist final : public FailureDistribution {
 public:
  TraceReplayDist(std::shared_ptr<const std::vector<double>> gaps,
                  std::shared_ptr<const std::vector<double>> sorted,
                  double rate)
      : gaps_(std::move(gaps)), sorted_(std::move(sorted)), rate_(rate) {
    const double raw_mean =
        std::accumulate(gaps_->begin(), gaps_->end(), 0.0) /
        static_cast<double>(gaps_->size());
    scale_ = (1.0 / rate) / raw_mean;
  }

  [[nodiscard]] FailureDistKind kind() const override {
    return FailureDistKind::kTraceReplay;
  }
  [[nodiscard]] double rate() const override { return rate_; }
  [[nodiscard]] double pdf(double) const override {
    return 0.0;  // empirical distribution: no density
  }
  [[nodiscard]] double cdf(double x) const override {
    // Counts raw gaps with raw * scale_ <= x; the comparison uses the
    // same rounded product sample() and quantile() return, so atom
    // membership is exact.
    const auto upper = std::upper_bound(
        sorted_->begin(), sorted_->end(), x,
        [this](double value, double raw) { return value < raw * scale_; });
    return static_cast<double>(upper - sorted_->begin()) /
           static_cast<double>(sorted_->size());
  }
  [[nodiscard]] double quantile(double u) const override {
    AYD_REQUIRE(u >= 0.0 && u < 1.0, "quantile argument must be in [0,1)");
    const auto n = static_cast<double>(sorted_->size());
    return (*sorted_)[static_cast<std::size_t>(u * n)] * scale_;
  }
  [[nodiscard]] double mean() const override { return 1.0 / rate_; }
  [[nodiscard]] double sample(rng::RngStream& rng) const override {
    return (*gaps_)[rng.next_index(gaps_->size())] * scale_;
  }

 private:
  std::shared_ptr<const std::vector<double>> gaps_;    ///< replay order
  std::shared_ptr<const std::vector<double>> sorted_;  ///< ascending
  double rate_;
  double scale_ = 1.0;  ///< maps raw gaps onto mean 1/rate
};

[[noreturn]] void throw_bad_spec(const std::string& text,
                                 const std::string& why) {
  throw util::InvalidArgument("bad failure distribution \"" + text +
                              "\": " + why);
}

double parse_param(const std::string& text, const std::string& item,
                   const std::vector<std::string>& keys) {
  const auto eq = item.find('=');
  std::string key = eq == std::string::npos ? "" : util::trim(item.substr(0, eq));
  const std::string value =
      util::trim(eq == std::string::npos ? item : item.substr(eq + 1));
  if (!key.empty() &&
      std::find(keys.begin(), keys.end(), key) == keys.end()) {
    throw_bad_spec(text, "unknown parameter \"" + key + "\" (expected " +
                             util::join(keys, " or ") + ")");
  }
  const auto v = util::parse_strict_double(value);
  if (!v.has_value()) {
    throw_bad_spec(text, "cannot parse number \"" + value + "\"");
  }
  return *v;
}

}  // namespace

double FailureDistribution::sample_value(double) const {
  throw util::LogicError(
      "sample_value: distribution does not factor through one uniform "
      "(check unit_samplable() first)");
}

void FailureDistribution::sample_units(rng::RngStream&, double*,
                                       std::size_t) const {
  throw util::LogicError(
      "sample_units: distribution has no unit-variate factorization "
      "(check unit_samplable() first)");
}

double FailureDistribution::from_unit(double) const {
  throw util::LogicError(
      "from_unit: distribution has no unit-variate factorization "
      "(check unit_samplable() first)");
}

void FailureDistribution::sample_units_fast(rng::RngStream& rng, double* z,
                                            std::size_t n) const {
  sample_units(rng, z, n);
}

void FailureDistribution::units_from_uniforms(double*, std::size_t) const {
  throw util::LogicError(
      "units_from_uniforms: distribution has no unit-variate "
      "factorization (check unit_samplable() first)");
}

void FailureDistribution::from_unit_bulk(const double* z, double* out,
                                         std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = from_unit(z[i]);
}

std::string failure_dist_kind_name(FailureDistKind k) {
  switch (k) {
    case FailureDistKind::kExponential: return "exponential";
    case FailureDistKind::kWeibull: return "weibull";
    case FailureDistKind::kLogNormal: return "lognormal";
    case FailureDistKind::kTraceReplay: return "trace";
  }
  return "unknown";
}

FailureDistSpec FailureDistSpec::exponential() { return {}; }

FailureDistSpec FailureDistSpec::weibull(double shape) {
  // Beyond [0.01, 100] the scale factor 1/(rate·Γ(1 + 1/k)) overflows or
  // degenerates (tgamma overflows for 1/k > ~170, turning every sample
  // into 0 or NaN); field-study fits live in roughly [0.3, 1.5].
  AYD_REQUIRE(std::isfinite(shape) && shape >= 0.01 && shape <= 100.0,
              "Weibull shape must be in [0.01, 100]");
  FailureDistSpec spec;
  spec.kind_ = FailureDistKind::kWeibull;
  spec.shape_ = shape;
  return spec;
}

FailureDistSpec FailureDistSpec::lognormal(double sigma) {
  // sigma above ~10 makes the sampler numerically degenerate (the median
  // exp(mu) underflows relative to the mean by e^{-sigma^2/2}).
  AYD_REQUIRE(std::isfinite(sigma) && sigma > 0.0 && sigma <= 10.0,
              "lognormal sigma must be in (0, 10]");
  FailureDistSpec spec;
  spec.kind_ = FailureDistKind::kLogNormal;
  spec.shape_ = sigma;
  return spec;
}

FailureDistSpec FailureDistSpec::trace_replay(std::vector<double> gaps,
                                              std::string source) {
  AYD_REQUIRE(!gaps.empty(), "trace replay needs at least one gap");
  double sum = 0.0;
  for (const double g : gaps) {
    AYD_REQUIRE(std::isfinite(g) && g >= 0.0,
                "trace gaps must be finite and >= 0");
    sum += g;
  }
  AYD_REQUIRE(sum > 0.0, "trace gaps must have a positive mean");
  FailureDistSpec spec;
  spec.kind_ = FailureDistKind::kTraceReplay;
  auto sorted = gaps;
  std::sort(sorted.begin(), sorted.end());
  spec.gaps_ =
      std::make_shared<const std::vector<double>>(std::move(gaps));
  spec.sorted_gaps_ =
      std::make_shared<const std::vector<double>>(std::move(sorted));
  spec.source_ = std::move(source);
  return spec;
}

const std::vector<double>& FailureDistSpec::trace_gaps() const {
  static const std::vector<double> kEmpty;
  return gaps_ == nullptr ? kEmpty : *gaps_;
}

std::unique_ptr<const FailureDistribution> FailureDistSpec::instantiate(
    double rate) const {
  AYD_REQUIRE(std::isfinite(rate) && rate >= 0.0,
              "arrival rate must be finite and >= 0");
  if (rate == 0.0) return std::make_unique<NeverFails>(kind_);
  switch (kind_) {
    case FailureDistKind::kExponential:
      return std::make_unique<ExponentialDist>(rate);
    case FailureDistKind::kWeibull:
      return std::make_unique<WeibullDist>(shape_, rate);
    case FailureDistKind::kLogNormal:
      return std::make_unique<LogNormalDist>(shape_, rate);
    case FailureDistKind::kTraceReplay:
      return std::make_unique<TraceReplayDist>(gaps_, sorted_gaps_, rate);
  }
  throw util::LogicError("unhandled failure distribution kind");
}

std::string FailureDistSpec::to_string() const {
  switch (kind_) {
    case FailureDistKind::kExponential:
      return "exponential";
    case FailureDistKind::kWeibull:
      return "weibull:k=" + util::format_sig(shape_, 12);
    case FailureDistKind::kLogNormal:
      return "lognormal:sigma=" + util::format_sig(shape_, 12);
    case FailureDistKind::kTraceReplay:
      return "trace:" + source_;
  }
  return "unknown";
}

FailureDistSpec FailureDistSpec::parse(const std::string& text) {
  const std::string s = util::trim(text);
  const auto colon = s.find(':');
  const std::string name =
      util::to_lower(util::trim(s.substr(0, colon)));
  const std::string params =
      colon == std::string::npos ? "" : util::trim(s.substr(colon + 1));

  if (name == "exponential" || name == "exp" || name == "poisson") {
    if (!params.empty()) {
      throw_bad_spec(text, "the exponential takes no parameters (the rate "
                           "comes from the failure model)");
    }
    return exponential();
  }
  if (name == "weibull") {
    if (params.empty()) throw_bad_spec(text, "missing shape, e.g. weibull:k=0.7");
    return weibull(parse_param(text, params, {"k", "shape"}));
  }
  if (name == "lognormal" || name == "lognorm") {
    if (params.empty()) {
      throw_bad_spec(text, "missing sigma, e.g. lognormal:sigma=1.2");
    }
    return lognormal(parse_param(text, params, {"sigma", "s"}));
  }
  if (name == "trace") {
    throw_bad_spec(text,
                   "trace replay cannot be parsed from a string alone; load "
                   "the log with sim::read_failure_log_csv and build the "
                   "spec with FailureDistSpec::trace_replay");
  }
  throw_bad_spec(text,
                 "unknown kind (expected exponential, weibull, lognormal, "
                 "or trace)");
}

void FailureDistSpec::write_json(io::JsonWriter& w) const {
  w.begin_object();
  w.kv("kind", failure_dist_kind_name(kind_));
  switch (kind_) {
    case FailureDistKind::kExponential:
      break;
    case FailureDistKind::kWeibull:
    case FailureDistKind::kLogNormal:
      w.kv("shape", shape_);
      break;
    case FailureDistKind::kTraceReplay:
      w.kv("source", source_);
      w.key("gaps");
      w.begin_array();
      for (const double g : trace_gaps()) w.value(g);
      w.end_array();
      break;
  }
  w.end_object();
}

bool operator==(const FailureDistSpec& a, const FailureDistSpec& b) {
  return a.kind_ == b.kind_ && a.shape_ == b.shape_ &&
         a.trace_gaps() == b.trace_gaps() && a.source_ == b.source_;
}

FittedFailureDist failure_dist_from_fit(const stats::MleFit& fit) {
  FittedFailureDist out;
  out.rate = fit.rate;
  out.log_likelihood = fit.log_likelihood;
  out.count = fit.count;
  if (!fit.valid || !(fit.rate > 0.0)) return out;
  switch (fit.family) {
    case stats::FitFamily::kExponential:
      out.spec = FailureDistSpec::exponential();
      break;
    case stats::FitFamily::kWeibull:
      // The fitters clamp shape to [0.05, 20], well inside the spec's
      // [0.01, 100] domain; instantiate(rate) rebuilds the Weibull scale
      // as 1/(rate * Gamma(1 + 1/k)) == the fitted lambda.
      out.spec = FailureDistSpec::weibull(fit.shape);
      break;
    case stats::FitFamily::kLogNormal:
      // instantiate(rate) rebuilds mu = -ln(rate) - sigma^2/2 == the
      // fitted mu (rate = exp(-(mu + sigma^2/2)) by construction).
      out.spec = FailureDistSpec::lognormal(fit.shape);
      break;
  }
  out.valid = true;
  return out;
}

FittedFailureDist fit_failure_dist(std::span<const double> gaps) {
  return failure_dist_from_fit(stats::fit_best_mle(gaps));
}

}  // namespace ayd::model
