#include "ayd/model/speedup.hpp"

#include <cmath>
#include <utility>

#include "ayd/util/contracts.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::model {

Speedup::Speedup(Kind kind, double param, std::function<double(double)> fn,
                 std::string name)
    : kind_(kind), param_(param), fn_(std::move(fn)), name_(std::move(name)) {}

Speedup Speedup::amdahl(double alpha) {
  AYD_REQUIRE(alpha >= 0.0 && alpha <= 1.0,
              "Amdahl sequential fraction must be in [0,1]");
  return Speedup(Kind::kAmdahl, alpha, {},
                 "amdahl(alpha=" + util::format_sig(alpha) + ")");
}

Speedup Speedup::perfect() {
  return Speedup(Kind::kPerfect, 0.0, {}, "perfect");
}

Speedup Speedup::gustafson(double alpha) {
  AYD_REQUIRE(alpha >= 0.0 && alpha <= 1.0,
              "Gustafson serial fraction must be in [0,1]");
  return Speedup(Kind::kGustafson, alpha, {},
                 "gustafson(alpha=" + util::format_sig(alpha) + ")");
}

Speedup Speedup::power_law(double gamma) {
  AYD_REQUIRE(gamma > 0.0 && gamma <= 1.0,
              "power-law exponent must be in (0,1]");
  return Speedup(Kind::kPowerLaw, gamma, {},
                 "power_law(gamma=" + util::format_sig(gamma) + ")");
}

Speedup Speedup::custom(std::function<double(double)> fn, std::string name) {
  AYD_REQUIRE(static_cast<bool>(fn), "custom speedup needs a function");
  return Speedup(Kind::kCustom, 0.0, std::move(fn), std::move(name));
}

double Speedup::speedup(double p) const {
  AYD_REQUIRE(p >= 1.0, "processor count must be >= 1");
  switch (kind_) {
    case Kind::kAmdahl:
      return 1.0 / (param_ + (1.0 - param_) / p);
    case Kind::kPerfect:
      return p;
    case Kind::kGustafson:
      return param_ + (1.0 - param_) * p;
    case Kind::kPowerLaw:
      return std::pow(p, param_);
    case Kind::kCustom: {
      const double s = fn_(p);
      AYD_REQUIRE(s > 0.0, "custom speedup must be positive");
      return s;
    }
  }
  AYD_ENSURE(false, "unreachable speedup kind");
}

double Speedup::overhead(double p) const { return 1.0 / speedup(p); }

std::optional<double> Speedup::sequential_fraction() const {
  switch (kind_) {
    case Kind::kAmdahl:
    case Kind::kGustafson:
      return param_;
    case Kind::kPerfect:
      return 0.0;
    case Kind::kPowerLaw:
    case Kind::kCustom:
      return std::nullopt;
  }
  return std::nullopt;
}

bool Speedup::is_amdahl_family() const {
  return kind_ == Kind::kAmdahl || kind_ == Kind::kPerfect;
}

}  // namespace ayd::model
