// Resilience scenarios (the paper's Table III) and their resolution into
// concrete cost models for a given platform.
//
//   Scenario   1     2     3     4     5     6
//   C_P, R_P   cP    cP    a     a     b/P   b/P
//   V_P        v     u/P   v     u/P   v     u/P
//
// Scenarios 1–2 model coordination-dominated coordinated checkpointing to
// stable storage; 3–4 model I/O-bandwidth-bound stable storage; 5–6 model
// in-memory / network-bound checkpointing. The coefficient for each
// scenario is fitted so the model reproduces the platform's measured cost
// at its measured processor count, exactly as the paper's Section IV-A
// prescribes.

#pragma once

#include <string>
#include <vector>

#include "ayd/model/cost.hpp"
#include "ayd/model/platform.hpp"

namespace ayd::model {

enum class Scenario : int {
  kS1 = 1,  ///< C = cP,  V = v
  kS2 = 2,  ///< C = cP,  V = u/P
  kS3 = 3,  ///< C = a,   V = v
  kS4 = 4,  ///< C = a,   V = u/P
  kS5 = 5,  ///< C = b/P, V = v
  kS6 = 6,  ///< C = b/P, V = u/P
};

/// All six scenarios in paper order.
[[nodiscard]] std::vector<Scenario> all_scenarios();

/// "1".."6" and "C=cP, V=v"-style descriptions.
[[nodiscard]] std::string scenario_name(Scenario s);
[[nodiscard]] std::string scenario_description(Scenario s);

/// Scenario number (1-based) for table output.
[[nodiscard]] int scenario_number(Scenario s);

/// Parses "1".."6" / "s1".."s6"; throws util::InvalidArgument otherwise.
[[nodiscard]] Scenario scenario_from_string(const std::string& s);

/// Concrete cost models for one (platform, scenario) pair. Recovery cost
/// always equals checkpoint cost (same I/O), following the paper.
struct ResilienceCosts {
  CostModel checkpoint = CostModel::zero();
  CostModel recovery = CostModel::zero();
  CostModel verification = CostModel::zero();

  /// C_P + V_P, the combined resilience cost the analysis works with.
  [[nodiscard]] CostModel combined() const {
    return checkpoint + verification;
  }
};

/// Fits the scenario's coefficients to the platform measurements:
/// e.g. scenario 1 sets c = C_meas / P_meas and v = V_meas.
[[nodiscard]] ResilienceCosts resolve(const Platform& platform, Scenario s);

/// The analysis case of Section III-D a scenario falls into (for an
/// Amdahl application with α > 0).
enum class FirstOrderCase {
  kLinearCheckpoint,    ///< case 1: C_P = cP + o(P)         (scenarios 1, 2)
  kConstantCost,        ///< case 2: C_P + V_P = d + o(1)    (scenarios 3, 4, 5)
  kDecreasingCost,      ///< case 3: C_P + V_P = h/P         (scenario 6)
};

/// Classification plus the case's governing coefficient (c, d, or h).
struct CaseInfo {
  FirstOrderCase first_order_case = FirstOrderCase::kConstantCost;
  double coefficient = 0.0;  ///< c, d, or h depending on the case
};

/// Classifies arbitrary resilience costs into the paper's cases.
[[nodiscard]] CaseInfo classify(const ResilienceCosts& costs);

}  // namespace ayd::model
