#include "ayd/model/correlated.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ayd/io/json.hpp"
#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::model {

namespace {

/// Validation tolerance for the heterogeneity sum constraints. Inputs are
/// modeling choices typed by humans ("0.9;0.1"), so exact floating-point
/// sums cannot be demanded; 1e-9 relative is far below any simulated
/// effect while still catching genuinely unnormalized specs.
constexpr double kSumTolerance = 1e-9;

[[noreturn]] void throw_bad(const std::string& what, const std::string& text,
                            const std::string& why) {
  throw util::InvalidArgument("bad " + what + " \"" + text + "\": " + why);
}

double parse_double_field(const std::string& what, const std::string& text,
                          const std::string& value) {
  const auto v = util::parse_strict_double(util::trim(value));
  if (!v.has_value()) {
    throw_bad(what, text, "cannot parse number \"" + value + "\"");
  }
  return *v;
}

bool cost_equal(const CostModel& a, const CostModel& b) {
  // CostModel intentionally has no operator== (it is an evaluable, not a
  // value key); tier folding needs exact coefficient identity.
  return a.constant_coeff() == b.constant_coeff() &&
         a.inverse_coeff() == b.inverse_coeff() &&
         a.linear_coeff() == b.linear_coeff();
}

void write_cost_array(io::JsonWriter& w, std::string_view key,
                      const CostModel& cost) {
  w.key(key);
  w.begin_array();
  w.value(cost.constant_coeff());
  w.value(cost.inverse_coeff());
  w.value(cost.linear_coeff());
  w.end_array();
}

}  // namespace

// --- ShockSpec -----------------------------------------------------------

double ShockSpec::shock_rate(double lambda_ind,
                             double fail_stop_fraction) const {
  if (!active()) return 0.0;
  return correlation * fail_stop_fraction * lambda_ind / group_fraction;
}

std::string ShockSpec::to_string() const {
  std::string out = "rho=" + util::format_sig(correlation, 12) +
                    ",group=" + util::format_sig(group_fraction, 12);
  if (dist.kind() != FailureDistKind::kExponential) {
    out += ",dist=" + dist.to_string();
  }
  return out;
}

ShockSpec ShockSpec::parse(const std::string& text) {
  ShockSpec spec;
  spec.correlation = -1.0;  // sentinel: rho is mandatory
  for (const std::string& raw : util::split(util::trim(text), ',')) {
    const std::string item = util::trim(raw);
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw_bad("shock spec", text, "expected key=value, got \"" + item + "\"");
    }
    const std::string key = util::to_lower(util::trim(item.substr(0, eq)));
    const std::string value = util::trim(item.substr(eq + 1));
    if (key == "rho" || key == "correlation") {
      spec.correlation = parse_double_field("shock spec", text, value);
    } else if (key == "group" || key == "g") {
      spec.group_fraction = parse_double_field("shock spec", text, value);
    } else if (key == "dist") {
      spec.dist = FailureDistSpec::parse(value);
    } else {
      throw_bad("shock spec", text,
                "unknown parameter \"" + key +
                    "\" (expected rho, group, or dist)");
    }
  }
  if (spec.correlation < 0.0) {
    throw_bad("shock spec", text, "missing rho, e.g. rho=0.3,group=0.05");
  }
  AYD_REQUIRE(std::isfinite(spec.correlation) && spec.correlation >= 0.0 &&
                  spec.correlation < 1.0,
              "shock correlation rho must be in [0, 1)");
  AYD_REQUIRE(std::isfinite(spec.group_fraction) &&
                  spec.group_fraction > 0.0 && spec.group_fraction <= 1.0,
              "shock group fraction must be in (0, 1]");
  return spec;
}

void ShockSpec::write_json(io::JsonWriter& w) const {
  w.begin_object();
  w.kv("correlation", correlation);
  w.kv("group_fraction", group_fraction);
  w.key("dist");
  dist.write_json(w);
  w.end_object();
}

bool operator==(const ShockSpec& a, const ShockSpec& b) {
  return a.correlation == b.correlation &&
         a.group_fraction == b.group_fraction && a.dist == b.dist;
}

// --- HeterogeneousSpec ---------------------------------------------------

bool operator==(const ComponentGroup& a, const ComponentGroup& b) {
  return a.share == b.share && a.rate_scale == b.rate_scale &&
         a.dist == b.dist;
}

std::optional<HeterogeneousSpec> HeterogeneousSpec::normalized(
    const FailureDistSpec& base_dist) const {
  AYD_REQUIRE(!groups.empty(), "heterogeneous spec needs at least one group");
  double share_sum = 0.0;
  double rate_sum = 0.0;
  for (const ComponentGroup& g : groups) {
    AYD_REQUIRE(std::isfinite(g.share) && g.share > 0.0,
                "component shares must be finite and > 0");
    AYD_REQUIRE(std::isfinite(g.rate_scale) && g.rate_scale >= 0.0,
                "component rate scales must be finite and >= 0");
    share_sum += g.share;
    rate_sum += g.share * g.rate_scale;
  }
  AYD_REQUIRE(std::abs(share_sum - 1.0) <= kSumTolerance,
              "component shares must sum to 1");
  AYD_REQUIRE(std::abs(rate_sum - 1.0) <= kSumTolerance,
              "share-weighted rate scales must sum to 1 (heterogeneity "
              "redistributes the platform rate, it does not change it)");

  // The platform process is one renewal stream per distinct (dist, scale)
  // class, so merging equal classes (first-appearance order, shares
  // summed) is exact by definition — not an approximation.
  HeterogeneousSpec merged;
  for (const ComponentGroup& g : groups) {
    auto it = std::find_if(merged.groups.begin(), merged.groups.end(),
                           [&](const ComponentGroup& m) {
                             return m.rate_scale == g.rate_scale &&
                                    m.dist == g.dist;
                           });
    if (it != merged.groups.end()) {
      it->share += g.share;
    } else {
      merged.groups.push_back(g);
    }
  }

  // A single class at scale 1 whose law is the base law IS the
  // homogeneous platform: drop the spec so the plain (bit-pinned)
  // simulator path runs and canonical keys identify the two.
  if (merged.groups.size() == 1 && merged.groups.front().rate_scale == 1.0 &&
      merged.groups.front().dist == base_dist) {
    return std::nullopt;
  }
  return merged;
}

std::string HeterogeneousSpec::to_string() const {
  std::vector<std::string> parts;
  parts.reserve(groups.size());
  for (const ComponentGroup& g : groups) {
    parts.push_back(util::format_sig(g.share, 12) + "*" +
                    util::format_sig(g.rate_scale, 12) + "*" +
                    g.dist.to_string());
  }
  return util::join(parts, ";");
}

HeterogeneousSpec HeterogeneousSpec::parse(const std::string& text) {
  HeterogeneousSpec spec;
  for (const std::string& raw : util::split(util::trim(text), ';')) {
    const std::string item = util::trim(raw);
    if (item.empty()) continue;
    const std::vector<std::string> fields = util::split(item, '*');
    if (fields.size() != 3) {
      throw_bad("heterogeneity spec", text,
                "expected share*scale*dist, got \"" + item + "\"");
    }
    ComponentGroup g;
    g.share = parse_double_field("heterogeneity spec", text, fields[0]);
    g.rate_scale = parse_double_field("heterogeneity spec", text, fields[1]);
    g.dist = FailureDistSpec::parse(fields[2]);
    spec.groups.push_back(std::move(g));
  }
  if (spec.groups.empty()) {
    throw_bad("heterogeneity spec", text,
              "expected at least one share*scale*dist group");
  }
  return spec;
}

void HeterogeneousSpec::write_json(io::JsonWriter& w) const {
  w.begin_array();
  for (const ComponentGroup& g : groups) {
    w.begin_object();
    w.kv("share", g.share);
    w.kv("rate_scale", g.rate_scale);
    w.key("dist");
    g.dist.write_json(w);
    w.end_object();
  }
  w.end_array();
}

bool operator==(const HeterogeneousSpec& a, const HeterogeneousSpec& b) {
  return a.groups == b.groups;
}

// --- TwoTierCostSpec -----------------------------------------------------

bool TwoTierCostSpec::distinct() const {
  return !cost_equal(bb_recovery, pfs_recovery);
}

TwoTierCostSpec TwoTierCostSpec::from_penalty(const ResilienceCosts& base,
                                              double pfs_penalty) {
  AYD_REQUIRE(std::isfinite(pfs_penalty) && pfs_penalty >= 1.0,
              "PFS recovery penalty must be finite and >= 1");
  TwoTierCostSpec spec;
  spec.bb_write = base.checkpoint;
  spec.pfs_write = CostModel::zero();
  spec.bb_recovery = base.recovery;
  spec.pfs_recovery =
      CostModel(base.recovery.constant_coeff() * pfs_penalty,
                base.recovery.inverse_coeff() * pfs_penalty,
                base.recovery.linear_coeff() * pfs_penalty);
  return spec;
}

void TwoTierCostSpec::write_json(io::JsonWriter& w) const {
  w.begin_object();
  write_cost_array(w, "bb_write", bb_write);
  write_cost_array(w, "pfs_write", pfs_write);
  write_cost_array(w, "bb_recovery", bb_recovery);
  write_cost_array(w, "pfs_recovery", pfs_recovery);
  w.end_object();
}

bool operator==(const TwoTierCostSpec& a, const TwoTierCostSpec& b) {
  return cost_equal(a.bb_write, b.bb_write) &&
         cost_equal(a.pfs_write, b.pfs_write) &&
         cost_equal(a.bb_recovery, b.bb_recovery) &&
         cost_equal(a.pfs_recovery, b.pfs_recovery);
}

// --- CorrelatedSpec ------------------------------------------------------

void CorrelatedSpec::write_json(io::JsonWriter& w) const {
  w.begin_object();
  if (shock.has_value()) {
    w.key("shock");
    shock->write_json(w);
  }
  if (heterogeneity.has_value()) {
    w.key("heterogeneity");
    heterogeneity->write_json(w);
  }
  if (two_tier.has_value()) {
    w.key("two_tier");
    two_tier->write_json(w);
  }
  w.end_object();
}

}  // namespace ayd::model
