#include "ayd/model/cost.hpp"

#include <cmath>

#include "ayd/util/contracts.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::model {

CostModel::CostModel(double constant, double inverse, double linear)
    : a_(constant), b_(inverse), c_(linear) {
  AYD_REQUIRE(std::isfinite(a_) && a_ >= 0.0,
              "constant cost coefficient must be finite and >= 0");
  AYD_REQUIRE(std::isfinite(b_) && b_ >= 0.0,
              "inverse cost coefficient must be finite and >= 0");
  AYD_REQUIRE(std::isfinite(c_) && c_ >= 0.0,
              "linear cost coefficient must be finite and >= 0");
}

double CostModel::cost(double p) const {
  AYD_REQUIRE(p >= 1.0, "processor count must be >= 1");
  return a_ + b_ / p + c_ * p;
}

std::string CostModel::describe() const {
  if (is_zero()) return "0";
  std::string out;
  const auto append = [&out](const std::string& term) {
    if (!out.empty()) out += " + ";
    out += term;
  };
  if (a_ != 0.0) append(util::format_sig(a_));
  if (b_ != 0.0) append(util::format_sig(b_) + "/P");
  if (c_ != 0.0) append(util::format_sig(c_) + "*P");
  return out;
}

}  // namespace ayd::model
