// Application workload description.
//
// The paper's applications are long-lasting: total work W_total (measured
// in seconds of sequential execution), divided into periodic patterns of
// useful length T run at speedup S(P). Error-free makespan is
// H(P)·W_total; the expected makespan under errors is
// E(pattern)·W_total/(T·S(P)).

#pragma once

#include <string>

namespace ayd::model {

struct Application {
  std::string name = "app";
  /// Total work in seconds of sequential execution (W_total).
  double total_work = 0.0;
  /// Resident memory footprint in GiB (informational; cost models already
  /// encode its effect on checkpoint time).
  double memory_gib = 0.0;
};

/// Error-free makespan H(P)·W_total for a speedup overhead H(P).
[[nodiscard]] double error_free_makespan(const Application& app,
                                         double error_free_overhead);

/// Number of patterns the application divides into: W_total / (T·S(P)).
[[nodiscard]] double pattern_count(const Application& app, double period,
                                   double speedup);

}  // namespace ayd::model
