#include "ayd/model/failure.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "ayd/util/contracts.hpp"

namespace ayd::model {

FailureModel::FailureModel(double lambda_ind, double fail_stop_fraction)
    : FailureModel(lambda_ind, fail_stop_fraction, FailureDistSpec{}) {}

FailureModel::FailureModel(double lambda_ind, double fail_stop_fraction,
                           FailureDistSpec dist)
    : lambda_ind_(lambda_ind),
      f_(fail_stop_fraction),
      dist_(std::move(dist)) {
  AYD_REQUIRE(std::isfinite(lambda_ind_) && lambda_ind_ >= 0.0,
              "individual error rate must be finite and >= 0");
  AYD_REQUIRE(f_ >= 0.0 && f_ <= 1.0,
              "fail-stop fraction must be in [0,1]");
}

FailureModel FailureModel::from_mtbf(double mtbf_seconds,
                                     double fail_stop_fraction) {
  AYD_REQUIRE(mtbf_seconds > 0.0, "MTBF must be positive");
  return {1.0 / mtbf_seconds, fail_stop_fraction};
}

double FailureModel::mtbf_ind() const {
  return lambda_ind_ > 0.0 ? 1.0 / lambda_ind_
                           : std::numeric_limits<double>::infinity();
}

double FailureModel::fail_stop_rate(double p) const {
  AYD_REQUIRE(p >= 1.0, "processor count must be >= 1");
  return f_ * lambda_ind_ * p;
}

double FailureModel::silent_rate(double p) const {
  AYD_REQUIRE(p >= 1.0, "processor count must be >= 1");
  return (1.0 - f_) * lambda_ind_ * p;
}

double FailureModel::total_rate(double p) const {
  AYD_REQUIRE(p >= 1.0, "processor count must be >= 1");
  return lambda_ind_ * p;
}

double FailureModel::platform_mtbf(double p) const {
  const double rate = total_rate(p);
  return rate > 0.0 ? 1.0 / rate : std::numeric_limits<double>::infinity();
}

}  // namespace ayd::model
