// Resilience operation cost models.
//
// The paper's general form (Table I) is
//   C_P = a + b/P + cP   (checkpoint; recovery R_P uses the same form)
//   V_P = v + u/P        (verification; a cost model with zero linear term)
// where
//   a    — start-up / I/O-bandwidth-bound component (constant in P),
//   b/P  — network-bound component (memory footprint split across P),
//   cP   — coordination/message-passing component (grows with P).

#pragma once

#include <string>

namespace ayd::model {

class CostModel {
 public:
  /// Builds cost(P) = constant + inverse/P + linear*P. All coefficients
  /// must be nonnegative and finite.
  CostModel(double constant, double inverse, double linear);

  /// The zero cost model.
  [[nodiscard]] static CostModel zero() { return {0.0, 0.0, 0.0}; }
  /// cost(P) = a (I/O-bandwidth-bound coordinated checkpoint).
  [[nodiscard]] static CostModel constant(double a) { return {a, 0.0, 0.0}; }
  /// cost(P) = b/P (in-memory / network-bound, perfectly strided).
  [[nodiscard]] static CostModel inverse(double b) { return {0.0, b, 0.0}; }
  /// cost(P) = cP (coordination-dominated).
  [[nodiscard]] static CostModel linear(double c) { return {0.0, 0.0, c}; }

  /// Evaluates the cost at (real-valued) processor count P >= 1.
  [[nodiscard]] double cost(double p) const;

  [[nodiscard]] double constant_coeff() const { return a_; }
  [[nodiscard]] double inverse_coeff() const { return b_; }
  [[nodiscard]] double linear_coeff() const { return c_; }

  [[nodiscard]] bool is_zero() const {
    return a_ == 0.0 && b_ == 0.0 && c_ == 0.0;
  }

  /// Componentwise sum (used for C_P + V_P in the analysis).
  [[nodiscard]] CostModel operator+(const CostModel& o) const {
    return {a_ + o.a_, b_ + o.b_, c_ + o.c_};
  }

  /// "a + b/P + cP" with zero terms omitted, for table output.
  [[nodiscard]] std::string describe() const;

 private:
  double a_;  ///< constant coefficient
  double b_;  ///< 1/P coefficient
  double c_;  ///< linear coefficient
};

}  // namespace ayd::model
