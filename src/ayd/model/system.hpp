// System: the complete input to the analysis and the simulator.
//
// Bundles the failure model, the resilience cost models, the downtime, and
// the application speedup profile. This is the single value every function
// in ayd::core and ayd::sim takes.

#pragma once

#include <memory>
#include <string>

#include "ayd/model/correlated.hpp"
#include "ayd/model/cost.hpp"
#include "ayd/model/failure.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/model/speedup.hpp"

namespace ayd::model {

class System {
 public:
  System(FailureModel failure, ResilienceCosts costs, double downtime,
         Speedup speedup);

  /// The paper's standard construction: platform preset + Table III
  /// scenario + Amdahl α (default 0.1) + downtime (default one hour).
  [[nodiscard]] static System from_platform(const Platform& platform,
                                            Scenario scenario,
                                            double alpha = 0.1,
                                            double downtime = 3600.0);

  [[nodiscard]] const FailureModel& failure() const { return failure_; }
  [[nodiscard]] const ResilienceCosts& costs() const { return costs_; }
  [[nodiscard]] double downtime() const { return downtime_; }
  [[nodiscard]] const Speedup& speedup_model() const { return speedup_; }

  // -- Frequently used projections ------------------------------------

  [[nodiscard]] double fail_stop_rate(double p) const {
    return failure_.fail_stop_rate(p);
  }
  [[nodiscard]] double silent_rate(double p) const {
    return failure_.silent_rate(p);
  }
  [[nodiscard]] double checkpoint_cost(double p) const {
    return costs_.checkpoint.cost(p);
  }
  [[nodiscard]] double recovery_cost(double p) const {
    return costs_.recovery.cost(p);
  }
  [[nodiscard]] double verification_cost(double p) const {
    return costs_.verification.cost(p);
  }
  /// C_P + V_P.
  [[nodiscard]] double resilience_cost(double p) const {
    return checkpoint_cost(p) + verification_cost(p);
  }
  [[nodiscard]] double speedup(double p) const {
    return speedup_.speedup(p);
  }
  /// Error-free overhead H(P) = 1/S(P).
  [[nodiscard]] double error_free_overhead(double p) const {
    return speedup_.overhead(p);
  }

  // -- Correlated / multi-level extensions (model/correlated.hpp) ------

  /// True when any extension survived normalization; extended systems
  /// route to the correlated simulators (sim/correlated.hpp) and are
  /// excluded from CRN variate pooling.
  [[nodiscard]] bool extended() const { return ext_ != nullptr; }
  /// The normalized extension bundle (nullptr for plain systems).
  [[nodiscard]] const CorrelatedSpec* extension() const {
    return ext_.get();
  }

  // -- Value-semantic modifiers (copy with one field replaced) ---------
  //
  // All of them preserve any active extensions, except with_costs, which
  // replaces the cost models outright and therefore drops a two-tier
  // extension (that extension is a refinement of the costs it was built
  // from).

  [[nodiscard]] System with_lambda(double lambda_ind) const;
  [[nodiscard]] System with_downtime(double downtime) const;
  [[nodiscard]] System with_speedup(Speedup speedup) const;
  [[nodiscard]] System with_costs(ResilienceCosts costs) const;
  /// Same rates, different failure inter-arrival distribution shape.
  [[nodiscard]] System with_failure_dist(FailureDistSpec dist) const;

  // -- Normalizing extension modifiers ---------------------------------
  //
  // Each replaces its extension axis after normalizing: a degenerate
  // argument (rho == 0 shock, all-identical component classes, equal
  // recovery tiers) clears the axis instead of storing it, so degenerate
  // extended systems are bitwise the plain system — same simulator path,
  // same canonical key (tests/property_test.cpp pins this).

  /// Replaces the shock axis. spec.correlation == 0 clears it.
  [[nodiscard]] System with_shock(const ShockSpec& spec) const;
  /// Replaces the heterogeneity axis; the groups are validated and
  /// merged by HeterogeneousSpec::normalized against the current base
  /// failure distribution. A spec equivalent to the homogeneous platform
  /// clears the axis.
  [[nodiscard]] System with_heterogeneity(const HeterogeneousSpec& spec) const;
  /// Replaces the two-tier cost axis. The single-tier projections are
  /// rebuilt from the spec either way (checkpoint := bb_write +
  /// pfs_write, recovery := bb_recovery — the burst-buffer path every
  /// non-shock rollback takes); equal recovery tiers fold into that
  /// plain model and clear the axis.
  [[nodiscard]] System with_two_tier(const TwoTierCostSpec& spec) const;

 private:
  System(FailureModel failure, ResilienceCosts costs, double downtime,
         Speedup speedup, std::shared_ptr<const CorrelatedSpec> ext);

  /// Stores `spec` normalized: no active member leaves ext_ null.
  [[nodiscard]] System with_extension(CorrelatedSpec spec) const;

  FailureModel failure_;
  ResilienceCosts costs_;
  double downtime_;
  Speedup speedup_;
  /// Normalized extension bundle; null for plain systems (the common
  /// case), shared because System travels by value through every grid.
  std::shared_ptr<const CorrelatedSpec> ext_;
};

}  // namespace ayd::model
