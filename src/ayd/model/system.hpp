// System: the complete input to the analysis and the simulator.
//
// Bundles the failure model, the resilience cost models, the downtime, and
// the application speedup profile. This is the single value every function
// in ayd::core and ayd::sim takes.

#pragma once

#include <string>

#include "ayd/model/cost.hpp"
#include "ayd/model/failure.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/model/speedup.hpp"

namespace ayd::model {

class System {
 public:
  System(FailureModel failure, ResilienceCosts costs, double downtime,
         Speedup speedup);

  /// The paper's standard construction: platform preset + Table III
  /// scenario + Amdahl α (default 0.1) + downtime (default one hour).
  [[nodiscard]] static System from_platform(const Platform& platform,
                                            Scenario scenario,
                                            double alpha = 0.1,
                                            double downtime = 3600.0);

  [[nodiscard]] const FailureModel& failure() const { return failure_; }
  [[nodiscard]] const ResilienceCosts& costs() const { return costs_; }
  [[nodiscard]] double downtime() const { return downtime_; }
  [[nodiscard]] const Speedup& speedup_model() const { return speedup_; }

  // -- Frequently used projections ------------------------------------

  [[nodiscard]] double fail_stop_rate(double p) const {
    return failure_.fail_stop_rate(p);
  }
  [[nodiscard]] double silent_rate(double p) const {
    return failure_.silent_rate(p);
  }
  [[nodiscard]] double checkpoint_cost(double p) const {
    return costs_.checkpoint.cost(p);
  }
  [[nodiscard]] double recovery_cost(double p) const {
    return costs_.recovery.cost(p);
  }
  [[nodiscard]] double verification_cost(double p) const {
    return costs_.verification.cost(p);
  }
  /// C_P + V_P.
  [[nodiscard]] double resilience_cost(double p) const {
    return checkpoint_cost(p) + verification_cost(p);
  }
  [[nodiscard]] double speedup(double p) const {
    return speedup_.speedup(p);
  }
  /// Error-free overhead H(P) = 1/S(P).
  [[nodiscard]] double error_free_overhead(double p) const {
    return speedup_.overhead(p);
  }

  // -- Value-semantic modifiers (copy with one field replaced) ---------

  [[nodiscard]] System with_lambda(double lambda_ind) const;
  [[nodiscard]] System with_downtime(double downtime) const;
  [[nodiscard]] System with_speedup(Speedup speedup) const;
  [[nodiscard]] System with_costs(ResilienceCosts costs) const;
  /// Same rates, different failure inter-arrival distribution shape.
  [[nodiscard]] System with_failure_dist(FailureDistSpec dist) const;

 private:
  FailureModel failure_;
  ResilienceCosts costs_;
  double downtime_;
  Speedup speedup_;
};

}  // namespace ayd::model
