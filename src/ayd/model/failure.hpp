// Failure model: fail-stop and silent errors as independent arrival
// processes.
//
// Each individual processor has error rate λ_ind (MTBF μ_ind = 1/λ_ind)
// counting both error types; a fraction f of errors are fail-stop and
// s = 1 - f are silent. On P processors the platform rates are
// λ^f_P = f·λ_ind·P and λ^s_P = s·λ_ind·P (He rault & Robert, Prop. 1.2).
//
// The *shape* of the inter-arrival law around those rates is a pluggable
// FailureDistSpec (exponential by default, which is the Poisson process
// the paper analyses; Weibull / lognormal / trace replay open the
// robustness scenarios the paper could not run). The rate projections
// below are shape-independent: every distribution is instantiated with
// mean inter-arrival 1/rate.

#pragma once

#include <utility>

#include "ayd/model/failure_dist.hpp"

namespace ayd::model {

class FailureModel {
 public:
  /// λ_ind >= 0 (per second), f in [0, 1]; exponential inter-arrivals.
  FailureModel(double lambda_ind, double fail_stop_fraction);

  /// Same rates with an explicit inter-arrival distribution shape.
  FailureModel(double lambda_ind, double fail_stop_fraction,
               FailureDistSpec dist);

  /// Convenience: from an individual MTBF in seconds.
  [[nodiscard]] static FailureModel from_mtbf(double mtbf_seconds,
                                              double fail_stop_fraction);

  /// A platform that never fails (useful baseline in tests/examples).
  [[nodiscard]] static FailureModel error_free() { return {0.0, 0.0}; }

  [[nodiscard]] double lambda_ind() const { return lambda_ind_; }
  /// Individual-processor MTBF μ_ind = 1/λ_ind (+inf when error-free).
  [[nodiscard]] double mtbf_ind() const;

  [[nodiscard]] double fail_stop_fraction() const { return f_; }
  [[nodiscard]] double silent_fraction() const { return 1.0 - f_; }

  /// Fail-stop error rate λ^f_P = f·λ_ind·P on P processors.
  [[nodiscard]] double fail_stop_rate(double p) const;
  /// Silent error rate λ^s_P = s·λ_ind·P on P processors.
  [[nodiscard]] double silent_rate(double p) const;
  /// Combined platform error rate λ_ind·P.
  [[nodiscard]] double total_rate(double p) const;
  /// Platform MTBF μ_ind / P (+inf when error-free).
  [[nodiscard]] double platform_mtbf(double p) const;

  /// The λ-weighting (f/2 + s)·λ_ind that appears in all the paper's
  /// first-order optima (Theorems 1–3).
  [[nodiscard]] double weighted_lambda() const {
    return (f_ / 2.0 + (1.0 - f_)) * lambda_ind_;
  }

  /// Copy with a different λ_ind (used by the λ-sweep experiments).
  /// Preserves the inter-arrival distribution shape.
  [[nodiscard]] FailureModel with_lambda(double lambda_ind) const {
    return {lambda_ind, f_, dist_};
  }

  /// The inter-arrival distribution shape (exponential by default).
  [[nodiscard]] const FailureDistSpec& dist() const { return dist_; }

  /// Copy with a different inter-arrival shape (same rates).
  [[nodiscard]] FailureModel with_dist(FailureDistSpec dist) const {
    return {lambda_ind_, f_, std::move(dist)};
  }

 private:
  double lambda_ind_;
  double f_;
  FailureDistSpec dist_;
};

}  // namespace ayd::model
