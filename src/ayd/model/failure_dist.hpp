// Pluggable inter-arrival distributions for the failure process.
//
// The paper (and FailureModel's rate algebra) assumes failures form a
// Poisson process, but field studies of real HPC failure logs
// consistently fit Weibull (bursty for shape k < 1) and lognormal
// inter-arrival times. This module separates the two concerns:
//
//  * FailureDistSpec — the value-semantic *shape* of the inter-arrival
//    law (exponential / Weibull k / lognormal sigma / an empirical trace
//    replay). It travels inside FailureModel, serializes to the CLI and
//    scenario syntax ("weibull:k=0.7"), and is what grids sweep.
//  * FailureDistribution — the spec instantiated at a concrete platform
//    rate (fail-stop or silent rate at P processors): pdf/cdf/quantile/
//    mean plus quantile-inversion sampling from an RngStream. The mean
//    inter-arrival is always 1/rate, so FailureModel's rate projections
//    keep their meaning; only the shape around that mean changes.
//
// Semantics under non-exponential laws: the simulators renew the arrival
// clock at each attempt/recovery boundary (a renewal process per
// execution segment). For the exponential this coincides with the
// memoryless process the paper analyses, and the simulators keep their
// historical draw sequence bit-for-bit; the analytic formulas in
// ayd::core remain exponential-only (see README "Failure distributions").

#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ayd/rng/stream.hpp"

namespace ayd::io {
class JsonWriter;
}

namespace ayd::stats {
struct MleFit;
}

namespace ayd::model {

enum class FailureDistKind : int {
  kExponential,  ///< Poisson arrivals (the paper's model; the default)
  kWeibull,      ///< Weibull(k): k < 1 bursty, k > 1 wear-out
  kLogNormal,    ///< lognormal(sigma) inter-arrivals
  kTraceReplay,  ///< empirical gaps replayed from a failure log
};

[[nodiscard]] std::string failure_dist_kind_name(FailureDistKind k);

/// A spec instantiated at a concrete arrival rate. Implementations are
/// immutable and safe to share across threads.
class FailureDistribution {
 public:
  virtual ~FailureDistribution() = default;

  [[nodiscard]] virtual FailureDistKind kind() const = 0;
  /// Arrival rate = 1/mean inter-arrival; 0 means "never fails".
  [[nodiscard]] virtual double rate() const = 0;
  /// Density at x (0 for x < 0; empirical traces have no density and
  /// return 0 everywhere).
  [[nodiscard]] virtual double pdf(double x) const = 0;
  /// P(arrival <= x); 0 for x <= 0.
  [[nodiscard]] virtual double cdf(double x) const = 0;
  /// Inverse CDF on [0, 1); quantile(0) is the infimum of the support.
  /// The degenerate rate-0 distribution yields +inf everywhere.
  [[nodiscard]] virtual double quantile(double u) const = 0;
  /// Mean inter-arrival (1/rate; +inf when rate == 0).
  [[nodiscard]] virtual double mean() const = 0;
  /// One inter-arrival draw by quantile inversion. The analytic kinds
  /// consume exactly one engine word when rate() > 0 (the exponential
  /// word-for-word like the historical sampler); trace replay draws an
  /// index by Lemire rejection and may occasionally consume more. The
  /// degenerate rate-0 case consumes none, matching the simulators'
  /// historical stream discipline (error-free sources do not shift the
  /// stream).
  [[nodiscard]] virtual double sample(rng::RngStream& rng) const = 0;
  /// Memoryless laws let the simulators keep pending arrivals across
  /// renewal points (the exponential fast path).
  [[nodiscard]] virtual bool memoryless() const { return false; }

  // --- batched sampling -------------------------------------------------
  //
  // The analytic kinds factor a draw into a *unit variate* (the
  // rate-independent part of the quantile inversion: the rate-1
  // exponential deviate, the unit-scale Weibull deviate, or the standard
  // normal quantile) and a cheap per-distribution scaling. The unit part
  // is what the batched samplers precompute in bulk; because two
  // distributions instantiated from the same spec at different rates
  // (the simulators' fail-stop and silent sources) share one unit
  // transform, a single block can feed both without perturbing the
  // shared stream's draw order.
  //
  // Reproducibility contract (pinned by rng/failure-dist tests):
  //   from_unit(z_i) with z from sample_units() is bit-identical to
  //   sample() fed the same engine words, and sample_value(u) is
  //   bit-identical to sample() had it drawn the uniform u.

  /// True when one sample() consumes exactly one uniform01 word and the
  /// value factors through the unit-variate API below. False for trace
  /// replay (variable word consumption via Lemire rejection) and the
  /// degenerate rate-0 distribution (no consumption).
  [[nodiscard]] virtual bool unit_samplable() const { return false; }
  /// The value sample() would have produced had it drawn the uniform `u`
  /// (in [0, 1)). Only meaningful when unit_samplable(); the default
  /// throws util::LogicError.
  [[nodiscard]] virtual double sample_value(double u) const;
  /// Bulk unit-variate fill: consumes exactly `n` uniform01 words in
  /// order and writes the rate-independent deviates. Only meaningful when
  /// unit_samplable(); the default throws util::LogicError.
  virtual void sample_units(rng::RngStream& rng, double* z,
                            std::size_t n) const;
  /// Scales a unit variate to an inter-arrival time;
  /// from_unit(unit-of(u)) == sample_value(u) bitwise. Only meaningful
  /// when unit_samplable(); the default throws util::LogicError.
  [[nodiscard]] virtual double from_unit(double z) const;

  // --- SIMD-tier bulk sampling ------------------------------------------
  //
  // Tier-aware variants dispatched through rng::simd::active_tier().
  // They consume exactly the same engine words in the same order as
  // their scalar counterparts; under the scalar (reference) tier the
  // values are bit-identical too, while under a SIMD tier the
  // transcendental transforms run vectorized and may differ from the
  // scalar tier by a few ULP (the two-golden-tier policy,
  // docs/reproducing-the-paper.md). The scalar methods above are pinned
  // and never change.

  /// Tier-aware sample_units: same words, same order; bit-identical to
  /// sample_units under the scalar tier. Default forwards to
  /// sample_units (so non-analytic kinds keep their exact behaviour).
  virtual void sample_units_fast(rng::RngStream& rng, double* z,
                                 std::size_t n) const;
  /// Transforms `n` uniform01 values in place into unit variates —
  /// exactly the transform sample_units_fast applies after its fill.
  /// Lets callers that already own the uniform words (the variate pool,
  /// the fast simulator's block pipeline) run the tier-dispatched bulk
  /// transform without touching a stream. Only meaningful when
  /// unit_samplable(); the default throws util::LogicError.
  virtual void units_from_uniforms(double* z, std::size_t n) const;
  /// Bulk from_unit: out[i] = from_unit(z[i]) elementwise. Exact (any
  /// tier) for the linear scalings (exponential, Weibull); the
  /// lognormal's exp runs vectorized under a SIMD tier. Default loops
  /// over from_unit.
  virtual void from_unit_bulk(const double* z, double* out,
                              std::size_t n) const;
};

/// Value-semantic shape spec; lives inside FailureModel.
class FailureDistSpec {
 public:
  /// Default-constructs the exponential (the paper's model).
  FailureDistSpec() = default;

  [[nodiscard]] static FailureDistSpec exponential();
  /// Weibull with shape k > 0 (k == 1 reduces to the exponential but is
  /// sampled through the Weibull quantile, so streams differ).
  [[nodiscard]] static FailureDistSpec weibull(double shape);
  /// Lognormal with log-space standard deviation sigma > 0.
  [[nodiscard]] static FailureDistSpec lognormal(double sigma);
  /// Replays empirical inter-arrival gaps (seconds, each >= 0, mean > 0)
  /// from a failure log, rescaled so the mean matches the platform rate.
  /// `source` labels the origin (typically the CSV path); see
  /// sim::read_failure_log_csv for the loader.
  [[nodiscard]] static FailureDistSpec trace_replay(
      std::vector<double> gaps, std::string source = "");

  [[nodiscard]] FailureDistKind kind() const { return kind_; }
  [[nodiscard]] bool memoryless() const {
    return kind_ == FailureDistKind::kExponential;
  }
  /// Shape parameter: Weibull k or lognormal sigma (1 otherwise).
  [[nodiscard]] double shape() const { return shape_; }
  /// Raw (unscaled) trace gaps; empty for the analytic kinds.
  [[nodiscard]] const std::vector<double>& trace_gaps() const;
  [[nodiscard]] const std::string& trace_source() const { return source_; }

  /// Instantiates the shape at an arrival rate (mean inter-arrival
  /// 1/rate). rate == 0 yields the degenerate "never fails" distribution
  /// (+inf samples, zero CDF) for every kind — the error-free path.
  [[nodiscard]] std::unique_ptr<const FailureDistribution> instantiate(
      double rate) const;

  /// Scenario / CLI syntax: "exponential", "weibull:k=0.7",
  /// "lognormal:sigma=1.2", "trace:<source>".
  [[nodiscard]] std::string to_string() const;
  /// Parses the to_string() syntax (analytic kinds only; "trace:PATH"
  /// must be loaded through sim::read_failure_log_csv + trace_replay).
  /// Throws util::InvalidArgument on unknown kinds or parameters.
  [[nodiscard]] static FailureDistSpec parse(const std::string& text);

  /// Serializes as a JSON object: {"kind": ..., "shape": ...} (trace
  /// specs include "source" and "gaps").
  void write_json(io::JsonWriter& w) const;

  friend bool operator==(const FailureDistSpec& a, const FailureDistSpec& b);

 private:
  FailureDistKind kind_ = FailureDistKind::kExponential;
  double shape_ = 1.0;
  // Trace gaps are shared, not copied: specs travel by value through
  // FailureModel/System and a simulator is constructed per replica, so
  // holding a 10k-row machine log by value would copy and re-sort it
  // hundreds of times per grid point. `sorted_gaps_` is computed once at
  // construction; instantiations only scale lazily.
  std::shared_ptr<const std::vector<double>> gaps_;
  std::shared_ptr<const std::vector<double>> sorted_gaps_;
  std::string source_;
};

// --- telemetry fitting ---------------------------------------------------
//
// The model-vocabulary half of the online estimator (stats/online_fit):
// an MleFit carries family + parameters + implied arrival rate, and these
// entry points translate that into a spec + rate pair such that
// `fitted.spec.instantiate(fitted.rate)` reproduces exactly the fitted
// density. The fitted rate is the *total* rate of the observed arrival
// process; callers deploying it onto a System divide by the processor
// count first (FailureModel's lambda_ind is per processor).

/// A distribution estimate expressed in model vocabulary.
struct FittedFailureDist {
  FailureDistSpec spec;
  /// Total arrival rate of the observed process (1 / fitted mean gap).
  double rate = 0.0;
  /// Maximized log-likelihood over the fitted sample.
  double log_likelihood = 0.0;
  /// Sample size the fit used.
  std::size_t count = 0;
  /// False when the sample was too small or degenerate to fit.
  bool valid = false;
};

/// Translates a stats-layer fit into a spec + rate pair (see above).
[[nodiscard]] FittedFailureDist failure_dist_from_fit(
    const stats::MleFit& fit);

/// Fits exponential/Weibull/lognormal MLEs to observed inter-arrival gaps
/// (seconds; non-positive and non-finite entries are ignored), selects by
/// AIC, and returns the estimate in model vocabulary. Deterministic.
[[nodiscard]] FittedFailureDist fit_failure_dist(
    std::span<const double> gaps);

}  // namespace ayd::model
