// Time-unit helpers.
//
// The whole library works in SI seconds (double). These helpers make call
// sites that express platform parameters (one-hour downtime, century MTBF)
// readable, and convert back for display.

#pragma once

namespace ayd::util {

inline constexpr double kSecondsPerMinute = 60.0;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 86400.0;
/// Julian year (365.25 days), the conventional value for MTBF arithmetic.
inline constexpr double kSecondsPerYear = 365.25 * kSecondsPerDay;

[[nodiscard]] constexpr double minutes(double m) {
  return m * kSecondsPerMinute;
}
[[nodiscard]] constexpr double hours(double h) { return h * kSecondsPerHour; }
[[nodiscard]] constexpr double days(double d) { return d * kSecondsPerDay; }
[[nodiscard]] constexpr double years(double y) { return y * kSecondsPerYear; }

[[nodiscard]] constexpr double to_hours(double seconds) {
  return seconds / kSecondsPerHour;
}
[[nodiscard]] constexpr double to_days(double seconds) {
  return seconds / kSecondsPerDay;
}
[[nodiscard]] constexpr double to_years(double seconds) {
  return seconds / kSecondsPerYear;
}

}  // namespace ayd::util
