#include "ayd/util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "ayd/util/contracts.hpp"

namespace ayd::util {

namespace {

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<double> parse_strict_double(const std::string& s) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string format_sig(double value, int digits) {
  AYD_REQUIRE(digits >= 1 && digits <= 17, "digits out of range");
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

std::string format_duration(double seconds) {
  if (std::isnan(seconds)) return "nan";
  if (std::isinf(seconds)) return seconds > 0 ? "inf" : "-inf";
  const bool negative = seconds < 0;
  double s = std::abs(seconds);
  std::string out = negative ? "-" : "";
  if (s < 60.0) {
    out += format_sig(s, 4) + "s";
    return out;
  }
  const auto total = static_cast<long long>(std::llround(s));
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long sec = total % 60;
  char buf[64];
  if (h > 0) {
    std::snprintf(buf, sizeof buf, "%lldh%02lldm", h, m);
  } else if (sec > 0) {
    std::snprintf(buf, sizeof buf, "%lldm%02llds", m, sec);
  } else {
    std::snprintf(buf, sizeof buf, "%lldm", m);
  }
  out += buf;
  return out;
}

std::string format_si(double value, int digits) {
  AYD_REQUIRE(value >= 0, "format_si expects a nonnegative value");
  static constexpr const char* kSuffix[] = {"", "k", "M", "G", "T", "P", "E"};
  int idx = 0;
  double v = value;
  while (v >= 1000.0 && idx < 6) {
    v /= 1000.0;
    ++idx;
  }
  if (idx == 0) return format_sig(value, digits);
  return format_sig(v, digits) + kSuffix[idx];
}

std::string pad_left(std::string_view s, std::size_t w) {
  if (s.size() >= w) return std::string(s);
  return std::string(w - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t w) {
  if (s.size() >= w) return std::string(s);
  return std::string(s) + std::string(w - s.size(), ' ');
}

}  // namespace ayd::util
