#include "ayd/util/version.hpp"

namespace ayd::util {

const char* version_string() { return "1.0.0"; }

const char* paper_citation() {
  return "A. Cavelan, J. Li, Y. Robert, H. Sun, \"When Amdahl Meets "
         "Young/Daly\", IEEE Cluster 2016";
}

}  // namespace ayd::util
