// Library version and provenance strings, shown by example/bench binaries.

#pragma once

namespace ayd::util {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

/// "1.0.0"
[[nodiscard]] const char* version_string();

/// One-line description of the reproduced paper.
[[nodiscard]] const char* paper_citation();

}  // namespace ayd::util
