// Contract-checking macros.
//
// AYD_REQUIRE  — precondition on a public API; throws InvalidArgument.
// AYD_ENSURE   — internal invariant / postcondition; throws LogicError.
// AYD_REQUIRE_FINITE — convenience precondition that a floating-point
//                      argument is finite.
//
// Contracts are always on (they guard user input and numerical sanity, and
// their cost is negligible next to the numerical work in this library).
// They throw rather than abort so tests can assert on violations.

#pragma once

#include <cmath>
#include <sstream>
#include <string>

#include "ayd/util/error.hpp"

namespace ayd::util::detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}

[[noreturn]] inline void throw_ensure(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw LogicError(os.str());
}

}  // namespace ayd::util::detail

#define AYD_REQUIRE(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::ayd::util::detail::throw_require(#cond, __FILE__, __LINE__,     \
                                         (msg));                        \
    }                                                                   \
  } while (false)

#define AYD_ENSURE(cond, msg)                                           \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::ayd::util::detail::throw_ensure(#cond, __FILE__, __LINE__,      \
                                        (msg));                         \
    }                                                                   \
  } while (false)

#define AYD_REQUIRE_FINITE(value)                                       \
  AYD_REQUIRE(std::isfinite(value), #value " must be finite")
