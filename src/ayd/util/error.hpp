// Exception hierarchy for the AYD library.
//
// All library errors derive from ayd::util::Error so callers can catch one
// type. Preconditions on public APIs throw InvalidArgument; internal
// invariant violations throw LogicError; numerical failures (non-convergence,
// overflow of an intermediate that cannot be recovered) throw NumericalError.

#pragma once

#include <stdexcept>
#include <string>

namespace ayd::util {

/// Base class of every exception thrown by the AYD library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An internal invariant of the library was violated (a bug in AYD itself).
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// A numerical routine failed: no convergence, empty bracket, overflow that
/// could not be handled in log space, etc.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// A stochastic simulation exceeded its resource bound (e.g. a pattern whose
/// per-attempt success probability is so small that it would re-execute
/// practically forever). Indicates pathological input parameters rather than
/// a bug; callers should reduce the error rate or the pattern length.
class SimulationDiverged : public Error {
 public:
  explicit SimulationDiverged(const std::string& what) : Error(what) {}
};

/// Reading or writing a file / stream failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Command-line arguments could not be parsed.
class CliError : public Error {
 public:
  explicit CliError(const std::string& what) : Error(what) {}
};

}  // namespace ayd::util
