// Small string utilities used across the library (table printing, CLI
// parsing, trace rendering). Kept deliberately free of locale dependence.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ayd::util {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string trim(std::string_view s);

/// Splits `s` on `sep`. Adjacent separators produce empty fields; an empty
/// input yields a single empty field (CSV semantics).
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII characters only.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Parses `s` as a double, requiring the whole string to be consumed
/// (no trailing junk). Returns nullopt on any parse failure; the caller
/// applies its own range checks and error type.
[[nodiscard]] std::optional<double> parse_strict_double(
    const std::string& s);

/// Formats `value` with `digits` significant digits, trimming trailing
/// zeros ("12.5", "1.7e-09", "300"). Used for compact table cells.
[[nodiscard]] std::string format_sig(double value, int digits = 4);

/// Formats a duration in seconds as a human-readable string, e.g.
/// "90s" -> "1m30s", "5400s" -> "1h30m". Sub-second values keep decimals.
[[nodiscard]] std::string format_duration(double seconds);

/// Formats a nonnegative count with SI suffixes: 1200 -> "1.2k",
/// 3.4e6 -> "3.4M". Exact below 1000.
[[nodiscard]] std::string format_si(double value, int digits = 3);

/// Left/right pads `s` with spaces to width `w` (no-op if already wider).
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t w);
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t w);

}  // namespace ayd::util
