// Internal command table of the `ayd` tool plus the helpers shared by the
// subcommand implementations (system construction from flags, uniform
// option groups). Not installed; include tool.hpp from outside.

#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "ayd/cli/args.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/model/application.hpp"
#include "ayd/model/system.hpp"
#include "ayd/service/replan.hpp"
#include "ayd/sim/runner.hpp"

namespace ayd::tool {

/// One subcommand: parses its own arguments (program name excluded) and
/// writes to `out`. Errors are reported by throwing (run_tool catches).
using CommandFn = int (*)(const std::vector<std::string>& args,
                          std::ostream& out);

struct Command {
  const char* name;
  const char* summary;
  CommandFn fn;
};

/// All registered subcommands, in help order.
[[nodiscard]] const std::vector<Command>& commands();

int cmd_platforms(const std::vector<std::string>& args, std::ostream& out);
int cmd_optimize(const std::vector<std::string>& args, std::ostream& out);
int cmd_simulate(const std::vector<std::string>& args, std::ostream& out);
int cmd_sweep(const std::vector<std::string>& args, std::ostream& out);
int cmd_plan(const std::vector<std::string>& args, std::ostream& out);
int cmd_protocols(const std::vector<std::string>& args, std::ostream& out);
int cmd_serve(const std::vector<std::string>& args, std::ostream& out);
int cmd_call(const std::vector<std::string>& args, std::ostream& out);
int cmd_cache(const std::vector<std::string>& args, std::ostream& out);
int cmd_watch(const std::vector<std::string>& args, std::ostream& out);

// -- Shared system-description options ---------------------------------

/// Declares the option group that describes the system under study:
///   --platform, --scenario, --alpha, --profile, --gamma, --downtime,
///   --lambda, --fail-stop-fraction, --failure-dist, and the custom cost
///   coefficients --ckpt-const/--ckpt-inv/--ckpt-lin,
///   --verif-const/--verif-inv.
void add_system_options(cli::ArgParser& parser);

/// A parsed --failure-dist value. The spec syntax is
///   exponential | weibull:k=K | lognormal:sigma=S | trace:PATH
/// where weibull/lognormal accept extra ",mtbf=SECONDS" or
/// ",lambda=RATE" entries that override the per-processor error rate
/// (the `--failure-dist weibull:k=0.7,mtbf=...` shorthand), and
/// trace:PATH loads inter-arrival gaps with sim::read_failure_log_csv.
struct ParsedFailureDist {
  model::FailureDistSpec spec;
  std::optional<double> lambda_override;
};
[[nodiscard]] ParsedFailureDist parse_failure_dist(const std::string& text);

/// Builds the System a parsed command line describes. Platform presets
/// resolve their scenario cost models first; any explicit cost/rate
/// option then overrides that piece. Throws util::CliError /
/// util::InvalidArgument on inconsistent combinations.
[[nodiscard]] model::System system_from_args(const cli::ArgParser& parser);

/// Prints a one-paragraph description of the system (rates, costs at the
/// reference processor count, profile) so every command's output records
/// its inputs.
void print_system(const model::System& sys, std::ostream& out);

// -- Shared simulation options ------------------------------------------

/// Declares --runs, --patterns, --seed, --des.
void add_simulation_options(cli::ArgParser& parser);

/// Reads them into ReplicationOptions.
[[nodiscard]] sim::ReplicationOptions replication_from_args(
    const cli::ArgParser& parser);

/// Parses a subcommand argument vector with the standard help handling:
/// returns true if --help was printed (caller should return 0).
[[nodiscard]] bool parse_or_help(cli::ArgParser& parser,
                                 const std::vector<std::string>& args,
                                 std::ostream& out);

// -- Shared op bodies (one-shot CLI + planning service) -----------------
//
// `ayd simulate` / `ayd plan` and the service's "simulate" / "plan" ops
// must answer identically, so their option declarations, default
// resolution, and report math live here once (exactly like
// optimize_json.hpp does for "optimize"). The front-ends differ only in
// presentation: tables vs JSON.

/// Declares --period and --procs with the `ayd simulate` semantics
/// (both default to the numerically optimal pattern).
void add_pattern_options(cli::ArgParser& parser);

/// The pattern a simulate request runs after default resolution.
struct ResolvedPattern {
  double period = 0.0;
  double procs = 0.0;
  /// True when no --procs was given and the joint numerical optimum
  /// filled both fields (the CLI prints a note).
  bool procs_defaulted = false;
};

/// Resolves --period/--procs against the numerical optimum for `sys`:
/// no --procs -> joint (T, P) optimum; --procs without --period -> the
/// fixed-P period optimum; explicit values always win.
[[nodiscard]] ResolvedPattern resolve_pattern_from_args(
    const cli::ArgParser& parser, const model::System& sys);

/// Declares --work, --name, and --max-procs with the `ayd plan`
/// defaults.
void add_plan_options(cli::ArgParser& parser);

/// The capacity-planning numbers `ayd plan` and the service report.
struct PlanReport {
  core::AllocationOptimum optimum;
  double expected_makespan = 0.0;
  double error_free_makespan = 0.0;
  /// Patterns the job divides into (callers round up for the checkpoint
  /// count).
  double patterns = 0.0;
};

/// Optimal plan for `app` on `sys` with the allocation search capped at
/// `max_procs`.
[[nodiscard]] PlanReport compute_plan(const model::System& sys,
                                      const model::Application& app,
                                      double max_procs);

// -- Shared re-planning options (ayd watch + the "subscribe" op) --------

/// Declares the online re-planning option group: --procs plus the
/// estimator knobs (--window, --min-events, --refit-interval,
/// --drift-ci-level, --min-mean-llr) and the re-optimization knobs
/// (the standard simulation options, --ci-rel-tol, --max-reps).
void add_replan_options(cli::ArgParser& parser);

/// Reads the group into service::ReplanOptions. An empty --procs
/// defaults to the numerically optimal allocation for `sys`, like
/// `ayd simulate`.
[[nodiscard]] service::ReplanOptions replan_options_from_args(
    const cli::ArgParser& parser, const model::System& sys);

}  // namespace ayd::tool
