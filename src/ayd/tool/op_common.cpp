// Shared bodies of the simulate and plan operations: option declaration,
// default resolution, and report math used by both the one-shot CLI
// commands and the planning service (see commands.hpp). Keeping these in
// one place is what guarantees a served answer cannot drift from the
// corresponding `ayd simulate` / `ayd plan` run.

#include "ayd/tool/commands.hpp"

#include "ayd/core/overhead.hpp"
#include "ayd/engine/evaluator.hpp"
#include "ayd/util/error.hpp"

namespace ayd::tool {

void add_pattern_options(cli::ArgParser& parser) {
  parser.add_option("period", "",
                    "pattern length T in seconds (default: the numerically "
                    "optimal period for --procs)");
  parser.add_option("procs", "",
                    "processor allocation P (default: the numerically "
                    "optimal allocation)");
}

ResolvedPattern resolve_pattern_from_args(const cli::ArgParser& parser,
                                          const model::System& sys) {
  engine::EvalSpec defaults;
  defaults.numerical = true;
  ResolvedPattern out;
  if (parser.option("procs").empty()) {
    const engine::PointEval ev = engine::evaluate_point(sys, defaults);
    out.procs = ev.allocation->procs;
    out.period = ev.allocation->period;
    out.procs_defaulted = true;
  } else {
    out.procs = parser.option_double("procs");
    if (parser.option("period").empty()) {
      out.period =
          engine::evaluate_point(sys, defaults, out.procs).period->period;
    }
  }
  if (!parser.option("period").empty()) {
    out.period = parser.option_double("period");
  }
  return out;
}

void add_plan_options(cli::ArgParser& parser) {
  parser.add_option("work", "1e7",
                    "total work W_total in seconds of sequential execution");
  parser.add_option("name", "job", "job name for the report");
  parser.add_option("max-procs", "1e7",
                    "largest allocation available to the job");
}

void add_replan_options(cli::ArgParser& parser) {
  parser.add_option("procs", "",
                    "deployed allocation P the telemetry was observed at "
                    "(default: the numerically optimal allocation)");
  parser.add_option("window", "256", "rolling fit window in events");
  parser.add_option("min-events", "64",
                    "events observed before the first refit");
  parser.add_option("refit-interval", "16",
                    "events between refits once warmed up");
  parser.add_option("drift-ci-level", "0.99",
                    "confidence level of the Student-t bound the mean "
                    "log-likelihood ratio must clear before a re-plan");
  parser.add_option("min-mean-llr", "0.02",
                    "drift noise floor: mean per-event log-likelihood "
                    "ratio (nats) the fresh fit must gain over the "
                    "deployed model");
  add_simulation_options(parser);
  parser.add_option("ci-rel-tol", "0.02",
                    "adaptive replication target of each re-optimization: "
                    "CI half-width <= this fraction of the mean overhead");
  parser.add_option("max-reps", "4096",
                    "adaptive replication cap per candidate pattern");
}

service::ReplanOptions replan_options_from_args(const cli::ArgParser& parser,
                                                const model::System& sys) {
  service::ReplanOptions opt;
  opt.fit.window = static_cast<std::size_t>(parser.option_uint("window"));
  opt.fit.min_events =
      static_cast<std::size_t>(parser.option_uint("min-events"));
  opt.fit.refit_interval =
      static_cast<std::size_t>(parser.option_uint("refit-interval"));
  opt.fit.drift_ci_level = parser.option_double("drift-ci-level");
  opt.fit.min_mean_llr = parser.option_double("min-mean-llr");
  if (opt.fit.window == 0) {
    throw util::CliError("--window must be >= 1");
  }
  if (!(opt.fit.drift_ci_level > 0.0 && opt.fit.drift_ci_level < 1.0)) {
    throw util::CliError("--drift-ci-level must be in (0, 1)");
  }

  opt.search.replication = replication_from_args(parser);
  if (opt.search.replication.replicas < 2) {
    throw util::CliError(
        "re-planning needs --runs >= 2 (a CI requires two replicas)");
  }
  opt.search.adaptive.min_replicas = opt.search.replication.replicas;
  opt.search.adaptive.ci_rel_tol = parser.option_double("ci-rel-tol");
  opt.search.adaptive.max_replicas =
      static_cast<std::size_t>(parser.option_uint("max-reps"));
  if (opt.search.adaptive.max_replicas < 2) {
    throw util::CliError("--max-reps must be >= 2");
  }
  if (opt.search.adaptive.max_replicas < opt.search.adaptive.min_replicas) {
    opt.search.adaptive.min_replicas = opt.search.adaptive.max_replicas;
  }

  if (parser.option("procs").empty()) {
    engine::EvalSpec defaults;
    defaults.numerical = true;
    opt.procs = engine::evaluate_point(sys, defaults).allocation->procs;
  } else {
    opt.procs = parser.option_double("procs");
  }
  return opt;
}

PlanReport compute_plan(const model::System& sys,
                        const model::Application& app, double max_procs) {
  core::AllocationSearchOptions search;
  search.max_procs = max_procs;
  PlanReport report;
  report.optimum = core::optimal_allocation(sys, search);
  const core::Pattern best{report.optimum.period, report.optimum.procs};
  report.expected_makespan = core::expected_makespan(sys, best, app);
  report.error_free_makespan =
      app.total_work * sys.error_free_overhead(report.optimum.procs);
  report.patterns = model::pattern_count(app, report.optimum.period,
                                         sys.speedup(report.optimum.procs));
  return report;
}

}  // namespace ayd::tool
