// Shared bodies of the simulate and plan operations: option declaration,
// default resolution, and report math used by both the one-shot CLI
// commands and the planning service (see commands.hpp). Keeping these in
// one place is what guarantees a served answer cannot drift from the
// corresponding `ayd simulate` / `ayd plan` run.

#include "ayd/tool/commands.hpp"

#include "ayd/core/overhead.hpp"
#include "ayd/engine/evaluator.hpp"

namespace ayd::tool {

void add_pattern_options(cli::ArgParser& parser) {
  parser.add_option("period", "",
                    "pattern length T in seconds (default: the numerically "
                    "optimal period for --procs)");
  parser.add_option("procs", "",
                    "processor allocation P (default: the numerically "
                    "optimal allocation)");
}

ResolvedPattern resolve_pattern_from_args(const cli::ArgParser& parser,
                                          const model::System& sys) {
  engine::EvalSpec defaults;
  defaults.numerical = true;
  ResolvedPattern out;
  if (parser.option("procs").empty()) {
    const engine::PointEval ev = engine::evaluate_point(sys, defaults);
    out.procs = ev.allocation->procs;
    out.period = ev.allocation->period;
    out.procs_defaulted = true;
  } else {
    out.procs = parser.option_double("procs");
    if (parser.option("period").empty()) {
      out.period =
          engine::evaluate_point(sys, defaults, out.procs).period->period;
    }
  }
  if (!parser.option("period").empty()) {
    out.period = parser.option_double("period");
  }
  return out;
}

void add_plan_options(cli::ArgParser& parser) {
  parser.add_option("work", "1e7",
                    "total work W_total in seconds of sequential execution");
  parser.add_option("name", "job", "job name for the report");
  parser.add_option("max-procs", "1e7",
                    "largest allocation available to the job");
}

PlanReport compute_plan(const model::System& sys,
                        const model::Application& app, double max_procs) {
  core::AllocationSearchOptions search;
  search.max_procs = max_procs;
  PlanReport report;
  report.optimum = core::optimal_allocation(sys, search);
  const core::Pattern best{report.optimum.period, report.optimum.procs};
  report.expected_makespan = core::expected_makespan(sys, best, app);
  report.error_free_makespan =
      app.total_work * sys.error_free_overhead(report.optimum.procs);
  report.patterns = model::pattern_count(app, report.optimum.period,
                                         sys.speedup(report.optimum.procs));
  return report;
}

}  // namespace ayd::tool
