// `ayd call` — the scripted client of a shared-memory `ayd serve --shm`
// session: one NDJSON request per stdin line, one NDJSON reply per
// stdout line, round trips through the segment's lock-free rings
// instead of a pipe. Because call() is a blocking round trip, replies
// come back in request order — handy for diffing against a pipe
// session. The transport lives in src/ayd/service/shm_transport.hpp.

#include "ayd/tool/commands.hpp"

#include <chrono>
#include <iostream>
#include <memory>
#include <ostream>
#include <thread>

#include "ayd/service/shm_transport.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::tool {

int cmd_call(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser(
      "ayd call",
      "client of a shared-memory planning-service segment: reads one "
      "JSON request per stdin line, attaches to the segment published "
      "by `ayd serve --shm NAME`, and writes each reply to stdout in "
      "request order — see docs/service.md");
  parser.add_option("shm", "", "segment name to attach to (required)");
  parser.add_option("timeout-ms", "60000",
                    "per-request reply timeout in milliseconds");
  parser.add_option("wait-ms", "0",
                    "keep retrying the attach for this long when the "
                    "segment does not exist yet (races a just-started "
                    "server)");
  if (parse_or_help(parser, args, out)) return 0;

  const std::string name = parser.option("shm");
  if (name.empty()) {
    throw util::CliError("ayd call: --shm NAME is required");
  }
  const auto timeout_ms = parser.option_uint("timeout-ms");
  const auto wait_ms = parser.option_uint("wait-ms");

  // Attach, optionally waiting out the window where the server was
  // launched but has not published the segment yet.
  std::unique_ptr<service::ShmClient> client;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wait_ms);
  for (;;) {
    try {
      client = std::make_unique<service::ShmClient>(name);
      break;
    } catch (const service::ShmError&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (util::trim(line).empty()) continue;
    out << client->call(line, timeout_ms) << '\n' << std::flush;
  }
  return 0;
}

}  // namespace ayd::tool
