// `ayd protocols` — the three resilience protocols compared on one
// system: base VC (Theorem 1), multi-verification (n verifications per
// checkpoint) and two-level checkpointing (verified in-memory level-1
// checkpoints between stable level-2 checkpoints). Each row shows the
// protocol's optimal parameters and its simulated overhead.

#include "ayd/tool/commands.hpp"

#include <memory>
#include <ostream>

#include "ayd/core/multi_verification.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/two_level.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/io/table.hpp"
#include "ayd/sim/multi_protocol.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/sim/two_level_protocol.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::tool {

int cmd_protocols(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser(
      "ayd protocols",
      "compare the VC, multi-verification and two-level protocols on one "
      "system (the multi-level extensions of the paper's Section V)");
  add_system_options(parser);
  add_simulation_options(parser);
  parser.add_option("procs", "",
                    "processor allocation (default: the base protocol's "
                    "numerically optimal allocation)");
  parser.add_option("threads", "0",
                    "worker threads (0 = hardware concurrency)");
  if (parse_or_help(parser, args, out)) return 0;

  const model::System sys = system_from_args(parser);
  print_system(sys, out);

  const double procs = parser.option("procs").empty()
                           ? core::optimal_allocation(sys).procs
                           : parser.option_double("procs");
  out << "allocation: P = " << util::format_sig(procs, 6) << "\n\n";

  const sim::ReplicationOptions opt = replication_from_args(parser);
  exec::ThreadPool pool(static_cast<unsigned>(parser.option_uint("threads")));

  io::Table table({"Protocol", "n", "T* (s)", "H predicted", "H simulated"});
  table.set_align(0, io::Align::kLeft);

  const core::PeriodOptimum base = core::optimal_period(sys, procs);
  const sim::ReplicationResult base_sim =
      sim::simulate_overhead(sys, {base.period, procs}, opt, &pool);
  table.add_row({"VC (verify + checkpoint)", "1",
                 util::format_sig(base.period, 4),
                 util::format_sig(base.overhead, 4),
                 util::format_sig(base_sim.overhead.mean, 4) + " ±" +
                     util::format_sig(base_sim.overhead.ci.half_width(), 2)});

  const core::MultiOptimum mv = core::optimal_multi_pattern(sys, procs);
  const sim::ReplicationResult mv_sim = sim::simulate_multi_overhead(
      sys, {mv.period, procs, mv.segments}, opt, &pool);
  table.add_row({"multi-verification", std::to_string(mv.segments),
                 util::format_sig(mv.period, 4),
                 util::format_sig(mv.overhead, 4),
                 util::format_sig(mv_sim.overhead.mean, 4) + " ±" +
                     util::format_sig(mv_sim.overhead.ci.half_width(), 2)});

  const core::TwoLevelSystem two_sys =
      core::TwoLevelSystem::with_memory_level1(sys);
  const core::TwoLevelOptimum two =
      core::optimal_two_level_pattern(two_sys, procs);
  const sim::ReplicationResult two_sim = sim::simulate_two_level_overhead(
      two_sys, {two.period, procs, two.segments}, opt, &pool);
  table.add_row({"two-level checkpointing", std::to_string(two.segments),
                 util::format_sig(two.period, 4),
                 util::format_sig(two.overhead, 4),
                 util::format_sig(two_sim.overhead.mean, 4) + " ±" +
                     util::format_sig(two_sim.overhead.ci.half_width(), 2)});

  out << table.to_string();
  out << "\nn = verifications per stable checkpoint. The two-level row "
         "assumes the level-1 checkpoint costs the same as a verification "
         "(both are in-memory copies of the footprint, the paper's own "
         "convention for V_P).\n";
  return 0;
}

}  // namespace ayd::tool
