// `ayd sweep` — one-variable parameter sweeps over the optimal pattern:
// the programmable versions of the paper's Figures 3-7. Each row gives the
// first-order and numerical optima at one value of the swept variable;
// --csv dumps the series for plotting. The sweep itself is an engine grid:
// a one-axis GridSpec evaluated point-parallel and emitted through the
// table/CSV/JSONL sinks.

#include "ayd/tool/commands.hpp"

#include <cmath>
#include <ostream>

#include "ayd/engine/engine.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::tool {

namespace {

void validate_variable(const std::string& s) {
  if (s == "lambda" || s == "alpha" || s == "procs" || s == "downtime" ||
      s == "weibull-k" || s == "lognormal-sigma" || s == "shock-rho" ||
      s == "shock-group" || s == "pfs-penalty") {
    return;
  }
  throw util::CliError("unknown sweep variable: " + s +
                       " (expected lambda, alpha, procs, downtime, "
                       "weibull-k, lognormal-sigma, shock-rho, "
                       "shock-group, pfs-penalty)");
}

/// CLI variables use dashes; engine axis names use underscores.
std::string axis_name(std::string var) {
  for (char& c : var) {
    if (c == '-') c = '_';
  }
  return var;
}

}  // namespace

int cmd_sweep(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser(
      "ayd sweep",
      "sweep one variable and tabulate the optimal pattern at each value "
      "(generalises the paper's Figures 3-7)");
  add_system_options(parser);
  add_simulation_options(parser);
  parser.add_option("var", "lambda",
                    "swept variable: lambda, alpha, procs, downtime, "
                    "weibull-k, lognormal-sigma, shock-rho, shock-group, "
                    "pfs-penalty");
  parser.add_option("from", "1e-12", "lower end of the sweep");
  parser.add_option("to", "1e-8", "upper end of the sweep");
  parser.add_option("points", "5", "number of grid points");
  parser.add_flag("linear", "force linear spacing (default: log spacing "
                            "for lambda/alpha/procs, linear for downtime "
                            "and the distribution-shape variables)");
  parser.add_flag("simulate",
                  "also simulate the numerically optimal pattern at each "
                  "point under the configured --failure-dist (implied for "
                  "the distribution-shape variables, whose effect is "
                  "invisible to the analytic columns)");
  parser.add_flag("crn",
                  "common random numbers: share one unit-variate pool "
                  "across all points of the sweep (one sampling pass per "
                  "grid; identical results to independent sampling under "
                  "AYD_SIMD=off, and smoother point-to-point differences "
                  "everywhere)");
  parser.add_option("max-procs", "1e7",
                    "upper edge of the numerical allocation search");
  parser.add_option("threads", "0",
                    "worker threads (0 = hardware concurrency)");
  parser.add_option("csv", "", "also write the series to this CSV file");
  parser.add_option("jsonl", "",
                    "also write the series to this JSON-lines file");
  if (parse_or_help(parser, args, out)) return 0;

  const model::System base = system_from_args(parser);
  const std::string var = parser.option("var");
  validate_variable(var);
  const std::string axis = axis_name(var);
  const bool ext_sweep = var == "shock-rho" || var == "shock-group" ||
                         var == "pfs-penalty";
  const bool log_spacing = !parser.flag("linear") && var != "downtime" &&
                           var != "weibull-k" && var != "lognormal-sigma" &&
                           !ext_sweep;
  const bool fixed_procs = var == "procs";
  const bool shape_sweep = var == "weibull-k" || var == "lognormal-sigma" ||
                           ext_sweep;
  // The analytic columns assume exponential i.i.d. arrivals, so a shape
  // or correlated-world sweep without simulation would print rows
  // independent of the swept value.
  const bool simulate = parser.flag("simulate") || shape_sweep;

  // The --from/--to defaults are lambda-oriented; catch out-of-range
  // shape sweeps here with a message naming the flags instead of letting
  // FailureDistSpec throw from inside the evaluation loop.
  if (var == "weibull-k" && (parser.option_double("from") < 0.01 ||
                             parser.option_double("to") > 100.0)) {
    throw util::CliError(
        "--var weibull-k needs --from/--to within [0.01, 100] "
        "(e.g. --from 0.5 --to 2); the defaults target lambda sweeps");
  }
  if (var == "lognormal-sigma" && (parser.option_double("from") <= 0.0 ||
                                   parser.option_double("to") > 10.0)) {
    throw util::CliError(
        "--var lognormal-sigma needs --from/--to within (0, 10] "
        "(e.g. --from 0.4 --to 1.6); the defaults target lambda sweeps");
  }
  if (var == "shock-rho" && (parser.option_double("from") < 0.0 ||
                             parser.option_double("to") >= 1.0)) {
    throw util::CliError(
        "--var shock-rho needs --from/--to within [0, 1) "
        "(e.g. --from 0 --to 0.6); the defaults target lambda sweeps");
  }
  if (var == "shock-group" && (parser.option_double("from") <= 0.0 ||
                               parser.option_double("to") > 1.0)) {
    throw util::CliError(
        "--var shock-group needs --from/--to within (0, 1] "
        "(e.g. --from 0.01 --to 0.5); the defaults target lambda sweeps");
  }
  if (var == "pfs-penalty" && (parser.option_double("from") < 1.0 ||
                               parser.option_double("to") < 1.0)) {
    throw util::CliError(
        "--var pfs-penalty needs --from/--to >= 1 (PHI multiplies the "
        "burst-buffer recovery cost); the defaults target lambda sweeps");
  }
  // A PFS-penalty sweep is invisible unless shocks actually occur, and a
  // group-fraction sweep needs a correlation to scale.
  if ((var == "pfs-penalty" || var == "shock-group") &&
      (base.extension() == nullptr ||
       !base.extension()->shock.has_value())) {
    throw util::CliError("--var " + var +
                         " needs --shock rho=... (the swept value only "
                         "matters when shocks occur)");
  }

  engine::GridSpec grid;
  grid.axis(engine::Axis::spaced(
      axis, parser.option_double("from"), parser.option_double("to"),
      static_cast<int>(parser.option_int("points")), log_spacing));

  engine::EvalSpec spec;
  spec.first_order = true;
  spec.numerical = true;
  spec.simulate_numerical = simulate;
  spec.replication = replication_from_args(parser);
  spec.search.max_procs = parser.option_double("max-procs");
  // The cache must outlive the grid run; pools resolve lazily per
  // (shape, seed) scenario as points evaluate.
  sim::VariateCache crn_cache;
  if (parser.flag("crn") && simulate) spec.crn = &crn_cache;

  print_system(base, out);
  const auto pts = grid.points();
  out << "sweeping " << var << " over ["
      << util::format_sig(pts.front().var(axis), 4) << ", "
      << util::format_sig(pts.back().var(axis), 4) << "], " << pts.size()
      << " points\n";
  if (shape_sweep) {
    out << "(analytic columns assume exponential i.i.d. arrivals; the "
           "swept value only moves H (sim))\n";
  }
  out << "\n";

  exec::ThreadPool pool(static_cast<unsigned>(parser.option_uint("threads")));
  const auto records =
      engine::run_points(pts, &pool, [&](const engine::Point& pt) {
        const model::System sys = engine::apply_axes(base, pt);
        engine::Record r;
        r.set("x", pt.var(axis));
        if (fixed_procs) {
          // procs sweep: Theorem 1 vs exact period optimum at fixed P.
          const double p = pt.var(axis);
          const engine::PointEval ev = engine::evaluate_point(sys, spec, p);
          r.set("opt_procs", p);
          if (std::isfinite(*ev.fo_period)) {
            r.set("fo_procs", p);
            r.set("fo_period", *ev.fo_period);
            r.set("fo_overhead",
                  core::optimal_overhead_fixed_procs(sys, p));
          } else {
            r.set("fo_procs", p);
          }
          r.set("opt_period", ev.period->period);
          r.set("opt_overhead", ev.period->overhead);
          if (ev.sim_numerical.has_value()) {
            r.set("sim_overhead", ev.sim_numerical->overhead.mean);
            r.set("sim_cell",
                  engine::mean_ci_cell(ev.sim_numerical->overhead));
          }
        } else {
          const engine::PointEval ev = engine::evaluate_point(sys, spec);
          if (ev.first_order->has_optimum) {
            r.set("fo_procs", ev.first_order->procs);
            r.set("fo_period", ev.first_order->period);
            r.set("fo_overhead", ev.first_order->overhead);
          }
          r.set("opt_procs", ev.allocation->procs);
          r.set("opt_period", ev.allocation->period);
          r.set("opt_overhead", ev.allocation->overhead);
          if (ev.sim_numerical.has_value()) {
            r.set("sim_overhead", ev.sim_numerical->overhead.mean);
            r.set("sim_cell",
                  engine::mean_ci_cell(ev.sim_numerical->overhead));
          }
        }
        return r;
      });

  std::vector<engine::ColumnSpec> table_cols{{var, "x", 4},
                                             {"P* (FO)", "fo_procs", 4},
                                             {"T* (FO)", "fo_period", 4},
                                             {"H (FO)", "fo_overhead", 4},
                                             {"P* (opt)", "opt_procs", 4},
                                             {"T* (opt)", "opt_period", 4},
                                             {"H (opt)", "opt_overhead", 4}};
  std::vector<engine::ColumnSpec> series_cols{{var, "x", 4},
                                              {"procs_fo", "fo_procs", 4},
                                              {"period_fo", "fo_period", 4},
                                              {"overhead_fo", "fo_overhead", 4},
                                              {"procs_opt", "opt_procs", 4},
                                              {"period_opt", "opt_period", 4},
                                              {"overhead_opt", "opt_overhead",
                                               4}};
  if (simulate) {
    table_cols.push_back({"H (sim)", "sim_cell"});
    series_cols.push_back({"overhead_sim", "sim_overhead", 6});
  }

  engine::TableSink table(table_cols);
  engine::CsvSink csv(parser.option("csv"), series_cols, &out);
  std::vector<engine::ColumnSpec> jsonl_cols;
  for (const auto& col : series_cols) {
    jsonl_cols.push_back({col.header, col.field()});
  }
  engine::JsonlSink jsonl(parser.option("jsonl"), jsonl_cols);
  engine::emit(records, {&table});
  out << table.to_string();
  engine::emit(records, {&csv, &jsonl});
  return 0;
}

}  // namespace ayd::tool
