// `ayd sweep` — one-variable parameter sweeps over the optimal pattern:
// the programmable versions of the paper's Figures 3-7. Each row gives the
// first-order and numerical optima at one value of the swept variable;
// --csv dumps the series for plotting. The sweep itself is an engine grid:
// a one-axis GridSpec evaluated point-parallel and emitted through the
// table/CSV/JSONL sinks.

#include "ayd/tool/commands.hpp"

#include <cmath>
#include <ostream>

#include "ayd/engine/engine.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::tool {

namespace {

const char* validate_variable(const std::string& s) {
  if (s == "lambda" || s == "alpha" || s == "procs" || s == "downtime") {
    return s.c_str();
  }
  throw util::CliError("unknown sweep variable: " + s +
                       " (expected lambda, alpha, procs, downtime)");
}

}  // namespace

int cmd_sweep(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser(
      "ayd sweep",
      "sweep one variable and tabulate the optimal pattern at each value "
      "(generalises the paper's Figures 3-7)");
  add_system_options(parser);
  parser.add_option("var", "lambda",
                    "swept variable: lambda, alpha, procs, downtime");
  parser.add_option("from", "1e-12", "lower end of the sweep");
  parser.add_option("to", "1e-8", "upper end of the sweep");
  parser.add_option("points", "5", "number of grid points");
  parser.add_flag("linear", "force linear spacing (default: log spacing "
                            "for lambda/alpha/procs, linear for downtime)");
  parser.add_option("max-procs", "1e7",
                    "upper edge of the numerical allocation search");
  parser.add_option("threads", "0",
                    "worker threads (0 = hardware concurrency)");
  parser.add_option("csv", "", "also write the series to this CSV file");
  parser.add_option("jsonl", "",
                    "also write the series to this JSON-lines file");
  if (parse_or_help(parser, args, out)) return 0;

  const model::System base = system_from_args(parser);
  const std::string var = validate_variable(parser.option("var"));
  const bool log_spacing = !parser.flag("linear") && var != "downtime";
  const bool fixed_procs = var == "procs";

  engine::GridSpec grid;
  grid.axis(engine::Axis::spaced(
      var, parser.option_double("from"), parser.option_double("to"),
      static_cast<int>(parser.option_int("points")), log_spacing));

  engine::EvalSpec spec;
  spec.first_order = true;
  spec.numerical = true;
  spec.search.max_procs = parser.option_double("max-procs");

  print_system(base, out);
  const auto pts = grid.points();
  out << "sweeping " << var << " over ["
      << util::format_sig(pts.front().var(var), 4) << ", "
      << util::format_sig(pts.back().var(var), 4) << "], " << pts.size()
      << " points\n\n";

  exec::ThreadPool pool(static_cast<unsigned>(parser.option_uint("threads")));
  const auto records =
      engine::run_points(pts, &pool, [&](const engine::Point& pt) {
        const model::System sys = engine::apply_axes(base, pt);
        engine::Record r;
        r.set("x", pt.var(var));
        if (fixed_procs) {
          // procs sweep: Theorem 1 vs exact period optimum at fixed P.
          const double p = pt.var(var);
          const engine::PointEval ev = engine::evaluate_point(sys, spec, p);
          r.set("opt_procs", p);
          if (std::isfinite(*ev.fo_period)) {
            r.set("fo_procs", p);
            r.set("fo_period", *ev.fo_period);
            r.set("fo_overhead",
                  core::optimal_overhead_fixed_procs(sys, p));
          } else {
            r.set("fo_procs", p);
          }
          r.set("opt_period", ev.period->period);
          r.set("opt_overhead", ev.period->overhead);
        } else {
          const engine::PointEval ev = engine::evaluate_point(sys, spec);
          if (ev.first_order->has_optimum) {
            r.set("fo_procs", ev.first_order->procs);
            r.set("fo_period", ev.first_order->period);
            r.set("fo_overhead", ev.first_order->overhead);
          }
          r.set("opt_procs", ev.allocation->procs);
          r.set("opt_period", ev.allocation->period);
          r.set("opt_overhead", ev.allocation->overhead);
        }
        return r;
      });

  engine::TableSink table({{var, "x", 4},
                           {"P* (FO)", "fo_procs", 4},
                           {"T* (FO)", "fo_period", 4},
                           {"H (FO)", "fo_overhead", 4},
                           {"P* (opt)", "opt_procs", 4},
                           {"T* (opt)", "opt_period", 4},
                           {"H (opt)", "opt_overhead", 4}});
  engine::CsvSink csv(parser.option("csv"),
                      {{var, "x", 4},
                       {"procs_fo", "fo_procs", 4},
                       {"period_fo", "fo_period", 4},
                       {"overhead_fo", "fo_overhead", 4},
                       {"procs_opt", "opt_procs", 4},
                       {"period_opt", "opt_period", 4},
                       {"overhead_opt", "opt_overhead", 4}},
                      &out);
  engine::JsonlSink jsonl(parser.option("jsonl"),
                          {{var, "x"},
                           {"procs_fo", "fo_procs"},
                           {"period_fo", "fo_period"},
                           {"overhead_fo", "fo_overhead"},
                           {"procs_opt", "opt_procs"},
                           {"period_opt", "opt_period"},
                           {"overhead_opt", "opt_overhead"}});
  engine::emit(records, {&table});
  out << table.to_string();
  engine::emit(records, {&csv, &jsonl});
  return 0;
}

}  // namespace ayd::tool
