// `ayd sweep` — one-variable parameter sweeps over the optimal pattern:
// the programmable versions of the paper's Figures 3-7. Each row gives the
// first-order and numerical optima at one value of the swept variable;
// --csv dumps the series for plotting.

#include "ayd/tool/commands.hpp"

#include <cmath>
#include <ostream>
#include <vector>

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/io/csv.hpp"
#include "ayd/io/table.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::tool {

namespace {

enum class Variable { kLambda, kAlpha, kProcs, kDowntime };

Variable variable_from_string(const std::string& s) {
  if (s == "lambda") return Variable::kLambda;
  if (s == "alpha") return Variable::kAlpha;
  if (s == "procs") return Variable::kProcs;
  if (s == "downtime") return Variable::kDowntime;
  throw util::CliError("unknown sweep variable: " + s +
                       " (expected lambda, alpha, procs, downtime)");
}

/// The sweep grid: logarithmic for scale-free variables (lambda, alpha,
/// procs), linear for downtime, honouring an explicit --log/--linear.
std::vector<double> make_grid(double from, double to, int points,
                              bool log_spacing) {
  AYD_REQUIRE(points >= 2, "a sweep needs at least two points");
  AYD_REQUIRE(to > from, "sweep range must satisfy --to > --from");
  if (log_spacing) {
    AYD_REQUIRE(from > 0.0, "log-spaced sweeps need --from > 0");
  }
  std::vector<double> grid(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / (points - 1);
    grid[static_cast<std::size_t>(i)] =
        log_spacing ? from * std::pow(to / from, t)
                    : from + (to - from) * t;
  }
  return grid;
}

}  // namespace

int cmd_sweep(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser(
      "ayd sweep",
      "sweep one variable and tabulate the optimal pattern at each value "
      "(generalises the paper's Figures 3-7)");
  add_system_options(parser);
  parser.add_option("var", "lambda",
                    "swept variable: lambda, alpha, procs, downtime");
  parser.add_option("from", "1e-12", "lower end of the sweep");
  parser.add_option("to", "1e-8", "upper end of the sweep");
  parser.add_option("points", "5", "number of grid points");
  parser.add_flag("linear", "force linear spacing (default: log spacing "
                            "for lambda/alpha/procs, linear for downtime)");
  parser.add_option("max-procs", "1e7",
                    "upper edge of the numerical allocation search");
  parser.add_option("csv", "", "also write the series to this CSV file");
  if (parse_or_help(parser, args, out)) return 0;

  const model::System base = system_from_args(parser);
  const Variable var = variable_from_string(parser.option("var"));
  const bool log_spacing =
      !parser.flag("linear") && var != Variable::kDowntime;
  const std::vector<double> grid =
      make_grid(parser.option_double("from"), parser.option_double("to"),
                static_cast<int>(parser.option_int("points")), log_spacing);
  core::AllocationSearchOptions search;
  search.max_procs = parser.option_double("max-procs");

  print_system(base, out);
  out << "sweeping " << parser.option("var") << " over ["
      << util::format_sig(grid.front(), 4) << ", "
      << util::format_sig(grid.back(), 4) << "], " << grid.size()
      << " points\n\n";

  io::Table table({parser.option("var"), "P* (FO)", "T* (FO)", "H (FO)",
                   "P* (opt)", "T* (opt)", "H (opt)"});
  std::vector<std::vector<std::string>> csv_rows;

  for (const double x : grid) {
    model::System sys = base;
    double fixed_procs = 0.0;
    switch (var) {
      case Variable::kLambda: sys = base.with_lambda(x); break;
      case Variable::kAlpha:
        sys = base.with_speedup(model::Speedup::amdahl(x));
        break;
      case Variable::kProcs: fixed_procs = x; break;
      case Variable::kDowntime: sys = base.with_downtime(x); break;
    }

    std::vector<std::string> row;
    row.push_back(util::format_sig(x, 4));
    if (fixed_procs > 0.0) {
      // procs sweep: Theorem 1 vs exact period optimum at fixed P.
      const double t_fo = core::optimal_period_first_order(sys, fixed_procs);
      const core::PeriodOptimum num = core::optimal_period(sys, fixed_procs);
      row.push_back(util::format_sig(fixed_procs, 4));
      row.push_back(std::isfinite(t_fo) ? util::format_sig(t_fo, 4) : "-");
      row.push_back(std::isfinite(t_fo)
                        ? util::format_sig(core::optimal_overhead_fixed_procs(
                                               sys, fixed_procs), 4)
                        : "-");
      row.push_back(util::format_sig(fixed_procs, 4));
      row.push_back(util::format_sig(num.period, 4));
      row.push_back(util::format_sig(num.overhead, 4));
    } else {
      const core::FirstOrderSolution fo = core::solve_first_order(sys);
      const core::AllocationOptimum num =
          core::optimal_allocation(sys, search);
      if (fo.has_optimum) {
        row.push_back(util::format_sig(fo.procs, 4));
        row.push_back(util::format_sig(fo.period, 4));
        row.push_back(util::format_sig(fo.overhead, 4));
      } else {
        row.insert(row.end(), {"-", "-", "-"});
      }
      row.push_back(util::format_sig(num.procs, 4));
      row.push_back(util::format_sig(num.period, 4));
      row.push_back(util::format_sig(num.overhead, 4));
    }
    table.add_row(row);
    csv_rows.push_back(row);
  }
  out << table.to_string();

  const std::string csv_path = parser.option("csv");
  if (!csv_path.empty()) {
    std::vector<std::vector<std::string>> all;
    all.push_back({parser.option("var"), "procs_fo", "period_fo",
                   "overhead_fo", "procs_opt", "period_opt", "overhead_opt"});
    all.insert(all.end(), csv_rows.begin(), csv_rows.end());
    io::write_csv_file(csv_path, all);
    out << "(series written to " << csv_path << ")\n";
  }
  return 0;
}

}  // namespace ayd::tool
