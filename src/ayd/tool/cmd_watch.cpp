// `ayd watch` — the streaming front-end of the online re-planning loop
// (service/replan.hpp): failure-log CSV lines in (a file or stdin),
// NDJSON schedule records out. One "plan" record on startup, one
// "replan" record every time the rolling estimate drifts past the CI
// noise floor, one "summary" record at end of stream; malformed
// telemetry lines produce "error" records and the loop keeps consuming
// (a live feed must not wedge on one bad row). The record stream is a
// pure function of the input stream and the options — byte-identical
// across runs and thread counts — which is what the replay test tier
// pins (tests/replan_replay_test.cpp).

#include "ayd/tool/commands.hpp"

#include <fstream>
#include <iostream>
#include <optional>
#include <ostream>
#include <sstream>

#include "ayd/exec/thread_pool.hpp"
#include "ayd/io/json.hpp"
#include "ayd/sim/trace.hpp"
#include "ayd/util/error.hpp"

namespace ayd::tool {

namespace {

std::string error_record(std::size_t line, const std::string& message) {
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.kv("type", "error");
  w.kv("line", static_cast<std::uint64_t>(line));
  w.kv("message", message);
  w.end_object();
  return os.str();
}

}  // namespace

int cmd_watch(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser(
      "ayd watch",
      "online re-planning from live failure telemetry: streams a "
      "failure-log CSV (--trace FILE or stdin), maintains a rolling "
      "windowed MLE of the inter-arrival law, and re-publishes the "
      "simulation-true optimal checkpoint period (warm-started from the "
      "deployed one) whenever the estimate drifts past the CI noise "
      "floor. Emits one NDJSON record per decision — see docs/cli.md");
  add_system_options(parser);
  add_replan_options(parser);
  parser.add_option("trace", "",
                    "failure-log CSV to stream (default: read stdin, one "
                    "line at a time)");
  parser.add_option("threads", "0",
                    "worker threads of each re-optimization's replica pool "
                    "(0 = hardware concurrency; the record stream is "
                    "identical at any value)");
  if (parse_or_help(parser, args, out)) return 0;

  const model::System sys = system_from_args(parser);
  const service::ReplanOptions opts = replan_options_from_args(parser, sys);

  std::ifstream file;
  const std::string trace_path = parser.option("trace");
  if (!trace_path.empty()) {
    file.open(trace_path, std::ios::binary);
    if (!file.good()) {
      throw util::IoError("cannot open failure log: " + trace_path);
    }
  }
  std::istream& in = trace_path.empty() ? std::cin : file;

  exec::ThreadPool pool(
      static_cast<unsigned>(parser.option_uint("threads")));
  service::Replanner replanner(sys, opts, &pool);
  out << replanner.initial_record() << '\n' << std::flush;

  sim::FailureLogReader reader;
  std::string line;
  while (std::getline(in, line)) {
    std::optional<double> gap;
    try {
      gap = reader.feed(line);
    } catch (const util::Error& e) {
      out << error_record(reader.lines(), e.what()) << '\n' << std::flush;
      continue;
    }
    if (!gap.has_value()) continue;
    if (const auto record = replanner.on_gap(*gap)) {
      out << *record << '\n' << std::flush;
    }
  }
  out << replanner.summary_record() << '\n' << std::flush;
  return 0;
}

}  // namespace ayd::tool
