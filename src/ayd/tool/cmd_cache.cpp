// `ayd cache` — operate on the persistent answer store that backs
// `ayd serve --cache-dir` / `ayd optimize --cache-dir`:
//
//   ayd cache stats  --cache-dir DIR [--json]
//   ayd cache export --cache-dir DIR --out FILE
//   ayd cache import --cache-dir DIR --from FILE
//
// `export` writes a compacted, deduplicated copy of the store — the
// artifact a CI matrix or a serve fleet pre-warms from; `import` merges
// such an artifact into a store, validating the header (format version
// and hash seed) and every record's checksum before a single byte is
// mixed in. `stats` reports what the opening scan found, including any
// torn-tail truncation or quarantine the recovery logic performed.

#include "ayd/tool/commands.hpp"

#include <ostream>

#include "ayd/io/json.hpp"
#include "ayd/service/store.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/version.hpp"

namespace ayd::tool {

namespace {

/// Opens the store under --cache-dir (shared by all three verbs).
service::AnswerStore open_store(const cli::ArgParser& parser) {
  const std::string dir = parser.option("cache-dir");
  if (dir.empty()) {
    throw util::CliError("ayd cache: --cache-dir is required");
  }
  return service::AnswerStore(service::AnswerStore::path_in_dir(dir));
}

void print_open_report(const service::AnswerStore& store,
                       std::ostream& out) {
  const service::StoreOpenStats& open = store.open_stats();
  if (open.truncated_bytes > 0) {
    out << "note: truncated a torn tail of " << open.truncated_bytes
        << " bytes (crash mid-append)\n";
  }
  if (open.quarantined) {
    out << "warning: store had a corrupt record; the damaged file was "
           "moved to "
        << open.quarantine_path << " and a fresh store was started\n";
  }
}

int cache_stats(const cli::ArgParser& parser, std::ostream& out) {
  service::AnswerStore store = open_store(parser);
  if (parser.flag("json")) {
    io::JsonWriter w(out, /*pretty=*/true);
    w.begin_object();
    w.kv("path", store.path());
    w.kv("format_version",
         static_cast<std::uint64_t>(service::AnswerStore::kFormatVersion));
    w.kv("entries", static_cast<std::uint64_t>(store.entries()));
    w.kv("file_bytes", store.file_bytes());
    w.kv("records_scanned", store.open_stats().records_scanned);
    w.kv("truncated_bytes", store.open_stats().truncated_bytes);
    w.kv("quarantined", store.open_stats().quarantined);
    w.kv("version", util::version_string());
    w.end_object();
    out << "\n";
    return 0;
  }
  out << "answer store " << store.path() << "\n"
      << "  format version: " << service::AnswerStore::kFormatVersion
      << "\n"
      << "  entries:        " << store.entries() << "\n"
      << "  file bytes:     " << store.file_bytes() << "\n"
      << "  records scanned:" << " " << store.open_stats().records_scanned
      << "\n";
  print_open_report(store, out);
  return 0;
}

int cache_export(const cli::ArgParser& parser, std::ostream& out) {
  const std::string out_path = parser.option("out");
  if (out_path.empty()) {
    throw util::CliError("ayd cache export: --out FILE is required");
  }
  service::AnswerStore store = open_store(parser);
  print_open_report(store, out);
  store.export_to(out_path);
  out << "exported " << store.entries() << " answers to " << out_path
      << "\n";
  return 0;
}

int cache_import(const cli::ArgParser& parser, std::ostream& out) {
  const std::string from = parser.option("from");
  if (from.empty()) {
    throw util::CliError("ayd cache import: --from FILE is required");
  }
  service::AnswerStore store = open_store(parser);
  print_open_report(store, out);
  const service::AnswerStore::ImportStats stats = store.import_from(from);
  out << "imported " << stats.imported << " answers from " << from << " ("
      << stats.skipped << " already present, " << store.entries()
      << " total)\n";
  return 0;
}

}  // namespace

int cmd_cache(const std::vector<std::string>& args, std::ostream& out) {
  const char* kUsage =
      "usage: ayd cache <stats|export|import> --cache-dir DIR [options]\n"
      "  stats   --cache-dir DIR [--json]    store size and recovery "
      "report\n"
      "  export  --cache-dir DIR --out FILE  write a compacted artifact\n"
      "  import  --cache-dir DIR --from FILE merge an artifact "
      "(header-validated)\n";
  if (args.empty() || args[0] == "--help" || args[0] == "-h" ||
      args[0] == "help") {
    out << kUsage;
    return args.empty() ? 1 : 0;
  }
  const std::string verb = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());

  cli::ArgParser parser("ayd cache " + verb,
                        "persistent answer-store maintenance (see "
                        "docs/service.md, \"Persistent cache\")");
  parser.add_option("cache-dir", "",
                    "directory holding the answer store (answers.aydstore)");
  if (verb == "stats") {
    parser.add_flag("json", "emit a machine-readable record");
  } else if (verb == "export") {
    parser.add_option("out", "", "path of the exported artifact");
  } else if (verb == "import") {
    parser.add_option("from", "", "store file or exported artifact to merge");
  } else {
    throw util::CliError("ayd cache: unknown verb '" + verb +
                         "' (expected stats, export, import)");
  }
  if (parse_or_help(parser, rest, out)) return 0;

  if (verb == "stats") return cache_stats(parser, out);
  if (verb == "export") return cache_export(parser, out);
  return cache_import(parser, out);
}

}  // namespace ayd::tool
