// Dispatch and top-level help of the `ayd` tool.

#include "ayd/tool/tool.hpp"

#include <exception>
#include <ostream>

#include "ayd/tool/commands.hpp"
#include "ayd/util/version.hpp"

namespace ayd::tool {

const std::vector<Command>& commands() {
  static const std::vector<Command> kCommands = {
      {"platforms", "list the built-in Table II platform presets",
       &cmd_platforms},
      {"optimize",
       "optimal checkpointing period and processor allocation "
       "(first-order and numerical)",
       &cmd_optimize},
      {"simulate", "replicated simulation of a checkpointing pattern",
       &cmd_simulate},
      {"sweep", "sweep lambda / alpha / procs / downtime and tabulate optima",
       &cmd_sweep},
      {"plan", "application-level capacity planning (makespan, checkpoints)",
       &cmd_plan},
      {"protocols",
       "compare VC, multi-verification and two-level protocols",
       &cmd_protocols},
      {"serve",
       "long-lived NDJSON planning service with a sharded memo cache "
       "(stdin/stdout; see docs/service.md)",
       &cmd_serve},
      {"call",
       "client of a shared-memory `ayd serve --shm` segment: NDJSON "
       "requests on stdin, replies on stdout",
       &cmd_call},
      {"cache",
       "inspect, export or import the persistent answer store "
       "(--cache-dir)",
       &cmd_cache},
      {"watch",
       "online re-planning from streamed failure telemetry: rolling "
       "MLE + drift detection, NDJSON re-plan records out",
       &cmd_watch},
  };
  return kCommands;
}

namespace {

void print_usage(std::ostream& out) {
  out << "ayd " << util::version_string()
      << " — optimal checkpointing under fail-stop and silent errors\n"
      << "reproduces: " << util::paper_citation() << "\n\n"
      << "usage: ayd <command> [options]   (ayd <command> --help for "
         "details)\n\ncommands:\n";
  for (const Command& c : commands()) {
    out << "  ";
    out.width(10);
    out.setf(std::ios::left, std::ios::adjustfield);
    out << c.name;
    out.unsetf(std::ios::adjustfield);
    out << " " << c.summary << "\n";
  }
}

}  // namespace

int run_tool(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  try {
    if (args.empty() || args[0] == "help" || args[0] == "--help" ||
        args[0] == "-h") {
      print_usage(out);
      return args.empty() ? 1 : 0;
    }
    if (args[0] == "--version" || args[0] == "version") {
      out << "ayd " << util::version_string() << "\n";
      return 0;
    }
    for (const Command& c : commands()) {
      if (args[0] == c.name) {
        const std::vector<std::string> rest(args.begin() + 1, args.end());
        return c.fn(rest, out);
      }
    }
    err << "error: unknown command '" << args[0] << "' (see `ayd help`)\n";
    return 1;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace ayd::tool
