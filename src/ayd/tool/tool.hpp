// The `ayd` command-line tool: the library's analysis and simulation
// packaged for interactive use and scripting.
//
// Subcommands (see `ayd help`):
//   platforms  — list the built-in Table II platform presets
//   optimize   — optimal checkpointing period and processor allocation
//   simulate   — replicated simulation of a given pattern
//   sweep      — parameter sweeps (lambda / alpha / procs / downtime)
//   plan       — application-level capacity planning (makespan, #ckpts)
//
// The tool is a library function so tests can drive it end-to-end with
// captured streams; apps/ayd_main.cpp is the thin binary wrapper.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ayd::tool {

/// Runs the tool on `args` (excluding the program name), writing normal
/// output to `out` and error messages to `err`. Returns the process exit
/// code: 0 on success (including --help), 1 on any error. Never throws.
int run_tool(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);

}  // namespace ayd::tool
