// `ayd plan` — application-level capacity planning: given the total work
// of a job, report the optimal pattern, the expected makespan, the number
// of checkpoints the run will take, and how alternative allocations
// compare. The question the paper's introduction opens with ("what is the
// optimal number of processors to execute this application?"), answered
// for one concrete job.

#include "ayd/tool/commands.hpp"

#include <cmath>
#include <ostream>

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/engine/engine.hpp"
#include "ayd/model/application.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::tool {

int cmd_plan(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser(
      "ayd plan",
      "capacity-plan a job: optimal pattern, expected makespan and "
      "checkpoint count, plus how nearby allocations compare");
  add_system_options(parser);
  add_plan_options(parser);
  if (parse_or_help(parser, args, out)) return 0;

  const model::System sys = system_from_args(parser);
  const model::Application app{parser.option("name"),
                               parser.option_double("work"), 0.0};
  print_system(sys, out);
  out << "job: " << app.name << ", W_total = "
      << util::format_sig(app.total_work, 4) << " s sequential ("
      << util::format_duration(app.total_work) << ")\n\n";

  // The report math is shared with the service's "plan" op.
  const PlanReport report =
      compute_plan(sys, app, parser.option_double("max-procs"));
  const core::AllocationOptimum& opt = report.optimum;
  const double makespan = report.expected_makespan;
  const double error_free = report.error_free_makespan;
  const double patterns = report.patterns;

  out << "optimal plan:\n"
      << "  processors      P* = " << util::format_sig(opt.procs, 6)
      << (opt.at_boundary ? "  (at --max-procs boundary)" : "") << "\n"
      << "  period          T* = " << util::format_sig(opt.period, 6)
      << " s (" << util::format_duration(opt.period) << " between "
      << "checkpoints)\n"
      << "  overhead        H  = " << util::format_sig(opt.overhead, 6)
      << "\n"
      << "  exp. makespan      " << util::format_duration(makespan)
      << "  (error-free at this P: " << util::format_duration(error_free)
      << ", +"
      << util::format_sig(100.0 * (makespan / error_free - 1.0), 3)
      << "%)\n"
      << "  checkpoints        " << util::format_sig(std::ceil(patterns), 4)
      << " (one every " << util::format_duration(opt.period) << ")\n\n";

  // Alternatives: how sensitive is the makespan to the allocation?
  engine::GridSpec alternatives;
  alternatives.axis(
      engine::Axis::list("factor", {0.25, 0.5, 1.0, 2.0, 4.0}));
  engine::EvalSpec spec;
  spec.numerical = true;
  const auto records =
      engine::run_grid(alternatives, nullptr, [&](const engine::Point& pt) {
        const double factor = pt.var("factor");
        const double procs = std::max(1.0, std::round(opt.procs * factor));
        const engine::PointEval ev = engine::evaluate_point(sys, spec, procs);
        const double m = core::expected_makespan(
            sys, {ev.period->period, procs}, app);
        engine::Record r;
        r.set("allocation", factor == 1.0
                                ? std::string("P* (optimal)")
                                : util::format_sig(factor, 3) + " x P*");
        r.set("P", procs);
        r.set("T* (s)", ev.period->period);
        r.set("H", ev.period->overhead);
        r.set("exp. makespan", util::format_duration(m));
        r.set("vs optimal",
              (m >= makespan ? "+" : "") +
                  util::format_sig(100.0 * (m / makespan - 1.0), 3) + "%");
        return r;
      });
  engine::TableSink table({{"allocation", "", 4, "", io::Align::kLeft},
                           {"P", "", 6},
                           {"T* (s)", "", 4},
                           {"H", "", 4},
                           {"exp. makespan"},
                           {"vs optimal"}});
  engine::emit(records, {&table});
  out << table.to_string();
  out << "\nEnrolling more processors than P* makes the job *slower*: "
         "failures and resilience costs outgrow the speedup (the paper's "
         "headline result).\n";
  return 0;
}

}  // namespace ayd::tool
