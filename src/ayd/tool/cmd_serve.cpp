// `ayd serve` — the long-lived planning service: NDJSON requests on
// stdin, NDJSON replies on stdout, answers memoised in a sharded
// single-flight LRU cache keyed by canonical scenario identity. The CLI
// entry is a thin shim; the machinery lives in src/ayd/service/ and the
// wire protocol is specified in docs/service.md.

#include "ayd/tool/commands.hpp"

#include <iostream>
#include <ostream>

#include "ayd/service/server.hpp"

namespace ayd::tool {

int cmd_serve(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser(
      "ayd serve",
      "long-lived planning service: one JSON request per stdin line "
      "({\"op\":\"optimize\"|\"simulate\"|\"plan\"|\"stats\", \"id\":..., "
      "params...}), one JSON reply per stdout line (same id; replies may "
      "complete out of order), every answer memoised in a sharded LRU "
      "cache — see docs/service.md for the wire protocol");
  parser.add_option("threads", "0",
                    "request worker threads (0 = hardware concurrency)");
  parser.add_option("cache-entries", "4096",
                    "memo-cache capacity in cached replies");
  parser.add_option("cache-shards", "16",
                    "lock shards of the memo cache (rounded up to a power "
                    "of two)");
  if (parse_or_help(parser, args, out)) return 0;

  service::ServiceOptions options;
  options.threads = static_cast<unsigned>(parser.option_uint("threads"));
  options.cache_entries =
      static_cast<std::size_t>(parser.option_uint("cache-entries"));
  options.cache_shards =
      static_cast<std::size_t>(parser.option_uint("cache-shards"));

  service::PlanningService service(options);
  service.serve(std::cin, out);
  return 0;
}

}  // namespace ayd::tool
