// `ayd serve` — the long-lived planning service: NDJSON requests on
// stdin, NDJSON replies on stdout, answers memoised in a sharded
// single-flight LRU cache keyed by canonical scenario identity, with an
// optional persistent answer store (--cache-dir) that survives
// restarts. The CLI entry is a thin shim; the machinery lives in
// src/ayd/service/ and the wire protocol is specified in
// docs/service.md.

#include "ayd/tool/commands.hpp"

#include <csignal>
#include <iostream>
#include <memory>
#include <ostream>

#include "ayd/service/server.hpp"
#include "ayd/service/shm_transport.hpp"
#include "ayd/util/error.hpp"

namespace ayd::tool {

int cmd_serve(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser(
      "ayd serve",
      "long-lived planning service: one JSON request per stdin line "
      "({\"op\":\"optimize\"|\"simulate\"|\"plan\"|\"stats\", \"id\":..., "
      "params...}), one JSON reply per stdout line (same id; replies may "
      "complete out of order), every answer memoised in a sharded LRU "
      "cache — see docs/service.md for the wire protocol");
  parser.add_option("threads", "0",
                    "request worker threads (0 = hardware concurrency)");
  parser.add_option("cache-entries", "4096",
                    "memo-cache capacity in cached replies");
  parser.add_option("cache-shards", "16",
                    "lock shards of the memo cache (rounded up to a power "
                    "of two)");
  parser.add_option("cache-dir", "",
                    "directory of the persistent answer store (tier 2): "
                    "answers survive restarts and pre-warm the memo cache; "
                    "empty disables the disk tier");
  parser.add_option("shm", "",
                    "also serve a named shared-memory segment (clients: "
                    "`ayd call --shm NAME`); the pipe and the segment share "
                    "one cache and worker pool — see docs/service.md");
  parser.add_option("shm-slots", "64",
                    "request-ring slots of the --shm segment (rounded up "
                    "to a power of two)");
  if (parse_or_help(parser, args, out)) return 0;

  service::ServiceOptions options;
  options.threads = static_cast<unsigned>(parser.option_uint("threads"));
  options.cache_entries =
      static_cast<std::size_t>(parser.option_uint("cache-entries"));
  options.cache_shards =
      static_cast<std::size_t>(parser.option_uint("cache-shards"));
  options.cache_dir = parser.option("cache-dir");

#ifdef SIGPIPE
  // A client that closes the pipe mid-session must surface as a stream
  // write failure (serve() returns false), not kill the process with
  // the default SIGPIPE disposition before it can clean up.
  std::signal(SIGPIPE, SIG_IGN);
#endif

  service::PlanningService service(options);

  // The shm transport serves ALONGSIDE the stdin/stdout pipe (same
  // PlanningService, so both transports hit one memo cache); stdin EOF
  // remains the shutdown signal, and the ShmServer destructor drains and
  // unlinks the segment on the way out.
  std::unique_ptr<service::ShmServer> shm;
  const std::string shm_name = parser.option("shm");
  if (!shm_name.empty()) {
    service::ShmOptions shm_options;
    shm_options.request_slots =
        static_cast<std::size_t>(parser.option_uint("shm-slots"));
    shm = std::make_unique<service::ShmServer>(shm_name, service,
                                               shm_options);
    // stdout is the pipe's reply channel; operator notices go to stderr.
    std::cerr << "ayd serve: shared-memory transport at "
              << service::ShmServer::segment_path(shm_name)
              << " (EOF on stdin shuts down both transports)\n";
  }

  if (!service.serve(std::cin, out)) {
    // Reporting on `out` is pointless — it is the stream that died.
    throw util::IoError(
        "ayd serve: reply write failed (client closed the pipe?); "
        "shutting down");
  }
  return 0;
}

}  // namespace ayd::tool
