// The `ayd optimize` option set, request resolution, and machine-readable
// record emitter, shared between the one-shot CLI (`ayd optimize --json`)
// and the planning service (`ayd serve`, op "optimize"). Keeping both on
// one writer-call sequence is what makes cached service replies
// value-identical to the one-shot JSON output — a contract pinned by
// tests/service_protocol_test.cpp.

#pragma once

#include <optional>

#include "ayd/cli/args.hpp"
#include "ayd/core/sim_optimizer.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/io/json.hpp"
#include "ayd/model/system.hpp"

namespace ayd::tool {

/// The semantic request behind `ayd optimize`, resolved from a parsed
/// command line or an NDJSON service request.
struct OptimizeRequest {
  /// Fixed allocation (Theorem-1 mode) when set; joint (T, P) otherwise.
  std::optional<double> procs;
  /// Upper edge of the numerical allocation search.
  double max_procs = 1e7;
  /// Also run the simulation-driven robust optimum search.
  bool simulate = false;
  /// Knobs of the simulated search (meaningful when `simulate`).
  core::SimAllocationSearchOptions sim_search{};
};

/// Declares the optimize option group: the shared system options, --procs,
/// --max-procs, the simulation knobs, --simulate, --ci-rel-tol and
/// --max-reps. The CLI-only knobs (--json, --threads) stay in cmd_optimize;
/// the service owns its own thread pool and always speaks JSON.
void add_optimize_options(cli::ArgParser& parser);

/// Reads the parsed options into an OptimizeRequest. Validates the
/// --simulate knobs (replica floor, --max-reps >= 2) exactly like the CLI;
/// a request without --simulate never rejects simulation knobs.
[[nodiscard]] OptimizeRequest optimize_request_from_args(
    const cli::ArgParser& parser);

/// Computes the requested optima and writes the machine-readable record
/// (the body of `ayd optimize --json`): a "system" echo plus
/// "first_order" / "higher_order" / "numerical" objects and, when
/// `req.simulate`, the "simulated" object with CI bounds. `pool`
/// parallelises the simulated search's replicas (null runs serially;
/// results are bit-identical either way).
void write_optimize_record(io::JsonWriter& w, const model::System& sys,
                           const OptimizeRequest& req,
                           exec::ThreadPool* pool = nullptr);

}  // namespace ayd::tool
