#include "ayd/tool/optimize_json.hpp"

#include <cmath>

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/core/young_daly.hpp"
#include "ayd/tool/commands.hpp"
#include "ayd/util/error.hpp"

namespace ayd::tool {

namespace {

/// The shared shape of the "simulated" JSON object for both search modes.
void write_sim_json(io::JsonWriter& w, double period, double procs,
                    const stats::Summary& overhead, std::uint64_t total,
                    bool used_closed_form, bool converged, bool ci_converged,
                    bool ci_limited, bool at_boundary) {
  w.key("simulated");
  w.begin_object();
  if (procs > 0.0) w.kv("procs", procs);
  w.kv("period", period);
  w.kv("overhead", overhead.mean);
  w.kv("overhead_ci_lo", overhead.ci.lo);
  w.kv("overhead_ci_hi", overhead.ci.hi);
  w.kv("replicas", static_cast<double>(overhead.count));
  w.kv("total_replicas", static_cast<double>(total));
  w.kv("used_closed_form", used_closed_form);
  w.kv("converged", converged);
  w.kv("ci_converged", ci_converged);
  w.kv("ci_limited", ci_limited);
  w.kv("at_boundary", at_boundary);
  w.end_object();
}

}  // namespace

void add_optimize_options(cli::ArgParser& parser) {
  add_system_options(parser);
  parser.add_option("procs", "",
                    "fix the processor count and optimise the period only "
                    "(Theorem 1 mode)");
  parser.add_option("max-procs", "1e7",
                    "upper edge of the numerical allocation search");
  add_simulation_options(parser);
  parser.add_flag("simulate",
                  "also search for the simulation-true optimum under the "
                  "configured --failure-dist (adaptive replication with "
                  "confidence intervals; exact closed-form fallback for "
                  "exponential inputs)");
  parser.add_option("ci-rel-tol", "0.02",
                    "adaptive replication target: CI half-width <= this "
                    "fraction of the mean overhead");
  parser.add_option("max-reps", "4096",
                    "adaptive replication cap per candidate pattern");
}

OptimizeRequest optimize_request_from_args(const cli::ArgParser& parser) {
  OptimizeRequest req;
  if (!parser.option("procs").empty()) {
    req.procs = parser.option_double("procs");
  }
  req.max_procs = parser.option_double("max-procs");
  req.simulate = parser.flag("simulate");
  // Only resolved (and validated) when the simulated search will run; a
  // plain analytic request must not reject simulation knobs.
  if (req.simulate) {
    core::SimAllocationSearchOptions& opt = req.sim_search;
    opt.max_procs = req.max_procs;
    opt.period.replication = replication_from_args(parser);
    if (opt.period.replication.replicas < 2) {
      throw util::CliError(
          "--simulate needs --runs >= 2 (a CI requires two replicas)");
    }
    opt.period.adaptive.min_replicas = opt.period.replication.replicas;
    opt.period.adaptive.ci_rel_tol = parser.option_double("ci-rel-tol");
    opt.period.adaptive.max_replicas =
        static_cast<std::size_t>(parser.option_uint("max-reps"));
    if (opt.period.adaptive.max_replicas < 2) {
      throw util::CliError("--max-reps must be >= 2");
    }
    if (opt.period.adaptive.max_replicas < opt.period.adaptive.min_replicas) {
      opt.period.adaptive.min_replicas = opt.period.adaptive.max_replicas;
    }
  }
  return req;
}

void write_optimize_record(io::JsonWriter& w, const model::System& sys,
                           const OptimizeRequest& req,
                           exec::ThreadPool* pool) {
  w.begin_object();
  w.key("system");
  w.begin_object();
  w.kv("lambda_ind", sys.failure().lambda_ind());
  w.kv("fail_stop_fraction", sys.failure().fail_stop_fraction());
  w.kv("downtime", sys.downtime());
  w.kv("profile", sys.speedup_model().name());
  w.kv("failure_dist", sys.failure().dist().to_string());
  w.kv("checkpoint", sys.costs().checkpoint.describe());
  w.kv("verification", sys.costs().verification.describe());
  w.end_object();
  if (req.procs.has_value()) {
    // Fixed allocation: Theorem 1 against the exact period optimum.
    const double procs = *req.procs;
    w.kv("procs", procs);
    const double t_fo = core::optimal_period_first_order(sys, procs);
    const core::PeriodOptimum num = core::optimal_period(sys, procs);
    w.key("first_order");
    w.begin_object();
    w.kv("period", t_fo);
    if (std::isfinite(t_fo)) {
      w.kv("overhead", core::pattern_overhead(sys, {t_fo, procs}));
    }
    w.end_object();
    if (std::isfinite(t_fo)) {
      const double t_ho = core::daly_period_vc(sys, procs);
      w.key("higher_order");
      w.begin_object();
      w.kv("period", t_ho);
      w.kv("overhead", core::pattern_overhead(sys, {t_ho, procs}));
      w.end_object();
    }
    w.key("numerical");
    w.begin_object();
    w.kv("period", num.period);
    w.kv("overhead", num.overhead);
    w.kv("at_boundary", num.at_boundary);
    w.end_object();
    if (req.simulate) {
      const core::SimPeriodOptimum sim =
          core::sim_optimal_period(sys, procs, req.sim_search.period, pool);
      write_sim_json(w, sim.period, 0.0, sim.overhead, sim.total_replicas,
                     sim.used_closed_form, sim.converged, sim.ci_converged,
                     sim.ci_limited, sim.at_boundary);
    }
  } else {
    // Joint optimisation.
    const core::FirstOrderSolution fo = core::solve_first_order(sys);
    core::AllocationSearchOptions search;
    search.max_procs = req.max_procs;
    const core::AllocationOptimum num = core::optimal_allocation(sys, search);
    w.key("first_order");
    w.begin_object();
    w.kv("has_optimum", fo.has_optimum);
    if (fo.has_optimum) {
      w.kv("procs", fo.procs);
      w.kv("period", fo.period);
      w.kv("overhead", fo.overhead);
    }
    if (!fo.note.empty()) w.kv("note", fo.note);
    w.end_object();
    w.key("numerical");
    w.begin_object();
    w.kv("procs", num.procs);
    w.kv("period", num.period);
    w.kv("overhead", num.overhead);
    w.kv("at_boundary", num.at_boundary);
    w.end_object();
    if (req.simulate) {
      const core::SimAllocationOptimum sim =
          core::sim_optimal_allocation(sys, req.sim_search, pool);
      write_sim_json(w, sim.period, sim.procs, sim.overhead,
                     sim.total_replicas, sim.used_closed_form, sim.converged,
                     sim.ci_converged, /*ci_limited=*/false, sim.at_boundary);
    }
  }
  w.end_object();
}

}  // namespace ayd::tool
