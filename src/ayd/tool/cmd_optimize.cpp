// `ayd optimize` — the paper's core question answered for one system:
// how long should the checkpointing period be, and how many processors
// should the job enroll? Prints the closed-form first-order solution
// (Theorems 1-3) next to the exact numerical optimum and, with
// --simulate, the simulation-driven robust optimum under the configured
// failure distribution (the only optimum that is meaningful when
// --failure-dist is not exponential).

#include "ayd/tool/commands.hpp"

#include <cmath>
#include <ostream>

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/core/sim_optimizer.hpp"
#include "ayd/core/young_daly.hpp"
#include "ayd/engine/sink.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/io/json.hpp"
#include "ayd/io/table.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::tool {

namespace {

/// Reads the --simulate knobs into the nested search options. `--runs`
/// seeds the adaptive driver's starting count; the CI target and cap come
/// from --ci-rel-tol / --max-reps.
core::SimAllocationSearchOptions sim_search_from_args(
    const cli::ArgParser& parser) {
  core::SimAllocationSearchOptions opt;
  opt.max_procs = parser.option_double("max-procs");
  opt.period.replication = replication_from_args(parser);
  if (opt.period.replication.replicas < 2) {
    throw util::CliError(
        "--simulate needs --runs >= 2 (a CI requires two replicas)");
  }
  opt.period.adaptive.min_replicas = opt.period.replication.replicas;
  opt.period.adaptive.ci_rel_tol = parser.option_double("ci-rel-tol");
  opt.period.adaptive.max_replicas =
      static_cast<std::size_t>(parser.option_uint("max-reps"));
  if (opt.period.adaptive.max_replicas < 2) {
    throw util::CliError("--max-reps must be >= 2");
  }
  if (opt.period.adaptive.max_replicas < opt.period.adaptive.min_replicas) {
    opt.period.adaptive.min_replicas = opt.period.adaptive.max_replicas;
  }
  return opt;
}

std::string sim_row_label(const model::System& sys, bool used_closed_form) {
  if (used_closed_form) return "simulated (exponential: closed form)";
  return "simulated (" + sys.failure().dist().to_string() + ")";
}

/// The status lines below the table, shared by the fixed-P and joint
/// modes so the two cannot drift apart.
struct SimNotes {
  std::uint64_t total_replicas = 0;
  int evaluations = 0;
  const char* unit = "candidate periods";
  bool used_closed_form = false;
  bool ci_limited = false;
  bool converged = true;
  bool ci_converged = true;
  bool ladder_edge = false;
  bool period_edge = false;
};

void print_sim_notes(const SimNotes& n, double ci_rel_tol,
                     std::ostream& out) {
  out << "simulated optimum: " << n.total_replicas << " replicas over "
      << n.evaluations << " " << n.unit << ", CI target "
      << util::format_sig(ci_rel_tol, 3) << " relative";
  if (n.used_closed_form) {
    out << " (exponential input: closed-form optimum, CI attached)";
  } else if (n.ci_limited) {
    out << " (stopped at the noise floor; tighten --ci-rel-tol to "
           "localise further)";
  }
  out << "\n";
  if (!n.ci_converged) {
    out << "warning: --max-reps capped the replication before the CI "
           "target was met; the reported interval is wider than "
           "requested\n";
  }
  if (!n.converged) {
    out << "warning: the simulated search hit its iteration cap before "
           "converging\n";
  }
  if (n.ladder_edge) {
    out << "note: the best allocation sits at the candidate-ladder edge; "
           "the true optimum may lie further out\n";
  }
  if (n.period_edge) {
    out << "note: the simulated period optimum sits on the period "
           "search-domain edge\n";
  }
}

SimNotes notes_for(const core::SimPeriodOptimum& sim) {
  return {sim.total_replicas, sim.evaluations,     "candidate periods",
          sim.used_closed_form, sim.ci_limited,    sim.converged,
          sim.ci_converged,     /*ladder_edge=*/false,
          sim.at_boundary && !sim.used_closed_form};
}

SimNotes notes_for(const core::SimAllocationOptimum& sim) {
  return {sim.total_replicas,   sim.outer_evaluations,
          "candidate allocations", sim.used_closed_form,
          /*ci_limited=*/false, sim.converged,
          sim.ci_converged,     sim.at_boundary && !sim.used_closed_form,
          sim.period_at_boundary};
}

void write_sim_json(io::JsonWriter& w, const char* key, double period,
                    double procs, const stats::Summary& overhead,
                    const SimNotes& notes, bool at_boundary) {
  w.key(key);
  w.begin_object();
  if (procs > 0.0) w.kv("procs", procs);
  w.kv("period", period);
  w.kv("overhead", overhead.mean);
  w.kv("overhead_ci_lo", overhead.ci.lo);
  w.kv("overhead_ci_hi", overhead.ci.hi);
  w.kv("replicas", static_cast<double>(overhead.count));
  w.kv("total_replicas", static_cast<double>(notes.total_replicas));
  w.kv("used_closed_form", notes.used_closed_form);
  w.kv("converged", notes.converged);
  w.kv("ci_converged", notes.ci_converged);
  w.kv("ci_limited", notes.ci_limited);
  w.kv("at_boundary", at_boundary);
  w.end_object();
}

}  // namespace

int cmd_optimize(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser(
      "ayd optimize",
      "optimal checkpointing period T* and processor allocation P* "
      "(first-order formulas vs. exact numerical optimisation, plus the "
      "simulation-driven optimum under any failure distribution)");
  add_system_options(parser);
  parser.add_option("procs", "",
                    "fix the processor count and optimise the period only "
                    "(Theorem 1 mode)");
  parser.add_option("max-procs", "1e7",
                    "upper edge of the numerical allocation search");
  add_simulation_options(parser);
  parser.add_flag("simulate",
                  "also search for the simulation-true optimum under the "
                  "configured --failure-dist (adaptive replication with "
                  "confidence intervals; exact closed-form fallback for "
                  "exponential inputs)");
  parser.add_option("ci-rel-tol", "0.02",
                    "adaptive replication target: CI half-width <= this "
                    "fraction of the mean overhead");
  parser.add_option("max-reps", "4096",
                    "adaptive replication cap per candidate pattern");
  parser.add_option("threads", "0",
                    "worker threads for the simulated search (0 = "
                    "hardware concurrency)");
  parser.add_flag("json", "emit a machine-readable JSON record instead of "
                          "tables");
  if (parse_or_help(parser, args, out)) return 0;

  const model::System sys = system_from_args(parser);
  const bool json = parser.flag("json");
  const bool simulate = parser.flag("simulate");
  // Only resolved (and validated) when the simulated search will run; a
  // plain analytic `ayd optimize` must not reject simulation knobs.
  core::SimAllocationSearchOptions sim_search;
  if (simulate) sim_search = sim_search_from_args(parser);
  // The pool only ever parallelises the simulated search's replicas;
  // don't spin up workers for the purely analytic paths.
  std::unique_ptr<exec::ThreadPool> pool_storage;
  if (simulate) {
    pool_storage = std::make_unique<exec::ThreadPool>(
        static_cast<unsigned>(parser.option_uint("threads")));
  }
  exec::ThreadPool* pool = pool_storage.get();
  if (!json) {
    print_system(sys, out);
    out << "\n";
  }

  if (json) {
    // Machine-readable record: inputs + first-order, higher-order (fixed
    // P only), numerical and (on request) simulated solutions.
    io::JsonWriter w(out, /*pretty=*/true);
    w.begin_object();
    w.key("system");
    w.begin_object();
    w.kv("lambda_ind", sys.failure().lambda_ind());
    w.kv("fail_stop_fraction", sys.failure().fail_stop_fraction());
    w.kv("downtime", sys.downtime());
    w.kv("profile", sys.speedup_model().name());
    w.kv("failure_dist", sys.failure().dist().to_string());
    w.kv("checkpoint", sys.costs().checkpoint.describe());
    w.kv("verification", sys.costs().verification.describe());
    w.end_object();
    if (!parser.option("procs").empty()) {
      const double procs = parser.option_double("procs");
      w.kv("procs", procs);
      const double t_fo = core::optimal_period_first_order(sys, procs);
      const core::PeriodOptimum num = core::optimal_period(sys, procs);
      w.key("first_order");
      w.begin_object();
      w.kv("period", t_fo);
      if (std::isfinite(t_fo)) {
        w.kv("overhead", core::pattern_overhead(sys, {t_fo, procs}));
      }
      w.end_object();
      if (std::isfinite(t_fo)) {
        const double t_ho = core::daly_period_vc(sys, procs);
        w.key("higher_order");
        w.begin_object();
        w.kv("period", t_ho);
        w.kv("overhead", core::pattern_overhead(sys, {t_ho, procs}));
        w.end_object();
      }
      w.key("numerical");
      w.begin_object();
      w.kv("period", num.period);
      w.kv("overhead", num.overhead);
      w.kv("at_boundary", num.at_boundary);
      w.end_object();
      if (simulate) {
        const core::SimPeriodOptimum sim =
            core::sim_optimal_period(sys, procs, sim_search.period, pool);
        write_sim_json(w, "simulated", sim.period, 0.0, sim.overhead,
                       notes_for(sim), sim.at_boundary);
      }
    } else {
      const core::FirstOrderSolution fo = core::solve_first_order(sys);
      core::AllocationSearchOptions search;
      search.max_procs = parser.option_double("max-procs");
      const core::AllocationOptimum num =
          core::optimal_allocation(sys, search);
      w.key("first_order");
      w.begin_object();
      w.kv("has_optimum", fo.has_optimum);
      if (fo.has_optimum) {
        w.kv("procs", fo.procs);
        w.kv("period", fo.period);
        w.kv("overhead", fo.overhead);
      }
      if (!fo.note.empty()) w.kv("note", fo.note);
      w.end_object();
      w.key("numerical");
      w.begin_object();
      w.kv("procs", num.procs);
      w.kv("period", num.period);
      w.kv("overhead", num.overhead);
      w.kv("at_boundary", num.at_boundary);
      w.end_object();
      if (simulate) {
        const core::SimAllocationOptimum sim =
            core::sim_optimal_allocation(sys, sim_search, pool);
        write_sim_json(w, "simulated", sim.period, sim.procs, sim.overhead,
                       notes_for(sim), sim.at_boundary);
      }
    }
    w.end_object();
    out << "\n";
    return 0;
  }

  if (!parser.option("procs").empty()) {
    // Fixed allocation: Theorem 1 against the exact period optimum.
    const double procs = parser.option_double("procs");
    const double t_fo = core::optimal_period_first_order(sys, procs);
    const core::PeriodOptimum num = core::optimal_period(sys, procs);

    io::Table table({"Solution", "T* (s)", "H(T*, P)"});
    table.set_align(0, io::Align::kLeft);
    if (std::isfinite(t_fo)) {
      table.add_row({"first-order (Theorem 1)", util::format_sig(t_fo, 6),
                     util::format_sig(
                         core::pattern_overhead(sys, {t_fo, procs}), 6)});
      const double t_ho = core::daly_period_vc(sys, procs);
      table.add_row({"higher-order (Daly-style)", util::format_sig(t_ho, 6),
                     util::format_sig(
                         core::pattern_overhead(sys, {t_ho, procs}), 6)});
    } else {
      table.add_row({"first-order (Theorem 1)", "inf (error-free)", "-"});
    }
    table.add_row({num.at_boundary ? "numerical (at search boundary)"
                                   : "numerical",
                   util::format_sig(num.period, 6),
                   util::format_sig(num.overhead, 6)});
    std::optional<core::SimPeriodOptimum> sim;
    if (simulate) {
      sim = core::sim_optimal_period(sys, procs, sim_search.period, pool);
      table.add_row({sim_row_label(sys, sim->used_closed_form),
                     util::format_sig(sim->period, 6),
                     engine::mean_ci_cell(sim->overhead)});
    }
    out << "P fixed at " << util::format_sig(procs, 6) << ":\n"
        << table.to_string();
    if (sim.has_value()) {
      print_sim_notes(notes_for(*sim), sim_search.period.adaptive.ci_rel_tol,
                      out);
    }
    return 0;
  }

  // Joint optimisation.
  const core::FirstOrderSolution fo = core::solve_first_order(sys);
  core::AllocationSearchOptions search;
  search.max_procs = parser.option_double("max-procs");
  const core::AllocationOptimum num = core::optimal_allocation(sys, search);

  io::Table table({"Solution", "P*", "T* (s)", "overhead H"});
  table.set_align(0, io::Align::kLeft);
  if (fo.has_optimum) {
    table.add_row({"first-order (Thm 2/3)", util::format_sig(fo.procs, 6),
                   util::format_sig(fo.period, 6),
                   util::format_sig(fo.overhead, 6)});
  } else {
    table.add_row({"first-order (Thm 2/3)", "-", "-", "-"});
  }
  table.add_row({num.at_boundary ? "numerical (at search boundary)"
                                 : "numerical",
                 util::format_sig(num.procs, 6),
                 util::format_sig(num.period, 6),
                 util::format_sig(num.overhead, 6)});
  std::optional<core::SimAllocationOptimum> sim;
  if (simulate) {
    sim = core::sim_optimal_allocation(sys, sim_search, pool);
    table.add_row({sim_row_label(sys, sim->used_closed_form),
                   util::format_sig(sim->procs, 6),
                   util::format_sig(sim->period, 6),
                   engine::mean_ci_cell(sim->overhead)});
  }
  out << table.to_string();
  if (!fo.note.empty()) out << "note: " << fo.note << "\n";
  if (num.at_boundary) {
    out << "note: the overhead is monotone in P over the search domain; "
           "raise --max-procs to explore further.\n";
  }
  if (sim.has_value()) {
    print_sim_notes(notes_for(*sim), sim_search.period.adaptive.ci_rel_tol,
                    out);
  }
  return 0;
}

}  // namespace ayd::tool
