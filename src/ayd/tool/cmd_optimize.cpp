// `ayd optimize` — the paper's core question answered for one system:
// how long should the checkpointing period be, and how many processors
// should the job enroll? Prints the closed-form first-order solution
// (Theorems 1-3) next to the exact numerical optimum and, with
// --simulate, the simulation-driven robust optimum under the configured
// failure distribution (the only optimum that is meaningful when
// --failure-dist is not exponential).
//
// The option set and the --json record live in optimize_json.{hpp,cpp},
// shared with the planning service (`ayd serve`) so the one-shot record
// and a cached service reply cannot drift apart.

#include "ayd/tool/commands.hpp"

#include <cmath>
#include <memory>
#include <ostream>
#include <sstream>

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/core/sim_optimizer.hpp"
#include "ayd/core/young_daly.hpp"
#include "ayd/engine/sink.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/io/json.hpp"
#include "ayd/io/table.hpp"
#include "ayd/service/canonical.hpp"
#include "ayd/service/store.hpp"
#include "ayd/tool/optimize_json.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::tool {

namespace {

std::string sim_row_label(const model::System& sys, bool used_closed_form) {
  if (used_closed_form) return "simulated (exponential: closed form)";
  return "simulated (" + sys.failure().dist().to_string() + ")";
}

/// The status lines below the table, shared by the fixed-P and joint
/// modes so the two cannot drift apart.
struct SimNotes {
  std::uint64_t total_replicas = 0;
  int evaluations = 0;
  const char* unit = "candidate periods";
  bool used_closed_form = false;
  bool ci_limited = false;
  bool converged = true;
  bool ci_converged = true;
  bool ladder_edge = false;
  bool period_edge = false;
};

void print_sim_notes(const SimNotes& n, double ci_rel_tol,
                     std::ostream& out) {
  out << "simulated optimum: " << n.total_replicas << " replicas over "
      << n.evaluations << " " << n.unit << ", CI target "
      << util::format_sig(ci_rel_tol, 3) << " relative";
  if (n.used_closed_form) {
    out << " (exponential input: closed-form optimum, CI attached)";
  } else if (n.ci_limited) {
    out << " (stopped at the noise floor; tighten --ci-rel-tol to "
           "localise further)";
  }
  out << "\n";
  if (!n.ci_converged) {
    out << "warning: --max-reps capped the replication before the CI "
           "target was met; the reported interval is wider than "
           "requested\n";
  }
  if (!n.converged) {
    out << "warning: the simulated search hit its iteration cap before "
           "converging\n";
  }
  if (n.ladder_edge) {
    out << "note: the best allocation sits at the candidate-ladder edge; "
           "the true optimum may lie further out\n";
  }
  if (n.period_edge) {
    out << "note: the simulated period optimum sits on the period "
           "search-domain edge\n";
  }
}

SimNotes notes_for(const core::SimPeriodOptimum& sim) {
  return {sim.total_replicas, sim.evaluations,     "candidate periods",
          sim.used_closed_form, sim.ci_limited,    sim.converged,
          sim.ci_converged,     /*ladder_edge=*/false,
          sim.at_boundary && !sim.used_closed_form};
}

SimNotes notes_for(const core::SimAllocationOptimum& sim) {
  return {sim.total_replicas,   sim.outer_evaluations,
          "candidate allocations", sim.used_closed_form,
          /*ci_limited=*/false, sim.converged,
          sim.ci_converged,     sim.at_boundary && !sim.used_closed_form,
          sim.period_at_boundary};
}

}  // namespace

int cmd_optimize(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser(
      "ayd optimize",
      "optimal checkpointing period T* and processor allocation P* "
      "(first-order formulas vs. exact numerical optimisation, plus the "
      "simulation-driven optimum under any failure distribution)");
  add_optimize_options(parser);
  parser.add_option("threads", "0",
                    "worker threads for the simulated search (0 = "
                    "hardware concurrency)");
  parser.add_flag("json", "emit a machine-readable JSON record instead of "
                          "tables");
  parser.add_option("cache-dir", "",
                    "persistent answer store shared with `ayd serve "
                    "--cache-dir`: with --json, serve the record from the "
                    "store when present and persist it after computing "
                    "(output is the compact canonical form)");
  if (parse_or_help(parser, args, out)) return 0;

  const model::System sys = system_from_args(parser);
  const bool json = parser.flag("json");
  const std::string cache_dir = parser.option("cache-dir");
  if (!cache_dir.empty() && !json) {
    throw util::CliError(
        "--cache-dir requires --json (only the machine-readable record "
        "is cached)");
  }
  const OptimizeRequest req = optimize_request_from_args(parser);
  // The pool only ever parallelises the simulated search's replicas;
  // don't spin up workers for the purely analytic paths.
  std::unique_ptr<exec::ThreadPool> pool_storage;
  if (req.simulate) {
    pool_storage = std::make_unique<exec::ThreadPool>(
        static_cast<unsigned>(parser.option_uint("threads")));
  }
  exec::ThreadPool* pool = pool_storage.get();

  if (!cache_dir.empty()) {
    // Read-through/write-behind against the same store `ayd serve
    // --cache-dir` keys (identical canonical-key sequence), so a CI
    // matrix can pre-warm a serve fleet with one-shot runs and vice
    // versa. Cold and warm output are byte-identical: both print the
    // compact canonical record.
    const service::CanonicalKey key =
        service::optimize_canonical_key(sys, req);
    service::AnswerStore store(service::AnswerStore::path_in_dir(cache_dir));
    std::string record;
    if (std::optional<std::string> persisted = store.get(key.text)) {
      record = *std::move(persisted);
    } else {
      std::ostringstream os;
      io::JsonWriter w(os, /*pretty=*/false);
      write_optimize_record(w, sys, req, pool);
      record = os.str();
      store.put(key.text, key.hash, record);
    }
    out << record << "\n";
    return 0;
  }

  if (json) {
    // Machine-readable record: inputs + first-order, higher-order (fixed
    // P only), numerical and (on request) simulated solutions.
    io::JsonWriter w(out, /*pretty=*/true);
    write_optimize_record(w, sys, req, pool);
    out << "\n";
    return 0;
  }

  print_system(sys, out);
  out << "\n";

  if (req.procs.has_value()) {
    // Fixed allocation: Theorem 1 against the exact period optimum.
    const double procs = *req.procs;
    const double t_fo = core::optimal_period_first_order(sys, procs);
    const core::PeriodOptimum num = core::optimal_period(sys, procs);

    io::Table table({"Solution", "T* (s)", "H(T*, P)"});
    table.set_align(0, io::Align::kLeft);
    if (std::isfinite(t_fo)) {
      table.add_row({"first-order (Theorem 1)", util::format_sig(t_fo, 6),
                     util::format_sig(
                         core::pattern_overhead(sys, {t_fo, procs}), 6)});
      const double t_ho = core::daly_period_vc(sys, procs);
      table.add_row({"higher-order (Daly-style)", util::format_sig(t_ho, 6),
                     util::format_sig(
                         core::pattern_overhead(sys, {t_ho, procs}), 6)});
    } else {
      table.add_row({"first-order (Theorem 1)", "inf (error-free)", "-"});
    }
    table.add_row({num.at_boundary ? "numerical (at search boundary)"
                                   : "numerical",
                   util::format_sig(num.period, 6),
                   util::format_sig(num.overhead, 6)});
    std::optional<core::SimPeriodOptimum> sim;
    if (req.simulate) {
      sim = core::sim_optimal_period(sys, procs, req.sim_search.period, pool);
      table.add_row({sim_row_label(sys, sim->used_closed_form),
                     util::format_sig(sim->period, 6),
                     engine::mean_ci_cell(sim->overhead)});
    }
    out << "P fixed at " << util::format_sig(procs, 6) << ":\n"
        << table.to_string();
    if (sim.has_value()) {
      print_sim_notes(notes_for(*sim),
                      req.sim_search.period.adaptive.ci_rel_tol, out);
    }
    return 0;
  }

  // Joint optimisation.
  const core::FirstOrderSolution fo = core::solve_first_order(sys);
  core::AllocationSearchOptions search;
  search.max_procs = req.max_procs;
  const core::AllocationOptimum num = core::optimal_allocation(sys, search);

  io::Table table({"Solution", "P*", "T* (s)", "overhead H"});
  table.set_align(0, io::Align::kLeft);
  if (fo.has_optimum) {
    table.add_row({"first-order (Thm 2/3)", util::format_sig(fo.procs, 6),
                   util::format_sig(fo.period, 6),
                   util::format_sig(fo.overhead, 6)});
  } else {
    table.add_row({"first-order (Thm 2/3)", "-", "-", "-"});
  }
  table.add_row({num.at_boundary ? "numerical (at search boundary)"
                                 : "numerical",
                 util::format_sig(num.procs, 6),
                 util::format_sig(num.period, 6),
                 util::format_sig(num.overhead, 6)});
  std::optional<core::SimAllocationOptimum> sim;
  if (req.simulate) {
    sim = core::sim_optimal_allocation(sys, req.sim_search, pool);
    table.add_row({sim_row_label(sys, sim->used_closed_form),
                   util::format_sig(sim->procs, 6),
                   util::format_sig(sim->period, 6),
                   engine::mean_ci_cell(sim->overhead)});
  }
  out << table.to_string();
  if (!fo.note.empty()) out << "note: " << fo.note << "\n";
  if (num.at_boundary) {
    out << "note: the overhead is monotone in P over the search domain; "
           "raise --max-procs to explore further.\n";
  }
  if (sim.has_value()) {
    print_sim_notes(notes_for(*sim),
                    req.sim_search.period.adaptive.ci_rel_tol, out);
  }
  return 0;
}

}  // namespace ayd::tool
