// `ayd optimize` — the paper's core question answered for one system:
// how long should the checkpointing period be, and how many processors
// should the job enroll? Prints the closed-form first-order solution
// (Theorems 1-3) next to the exact numerical optimum.

#include "ayd/tool/commands.hpp"

#include <cmath>
#include <ostream>

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/core/young_daly.hpp"
#include "ayd/io/json.hpp"
#include "ayd/io/table.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::tool {

int cmd_optimize(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser(
      "ayd optimize",
      "optimal checkpointing period T* and processor allocation P* "
      "(first-order formulas vs. exact numerical optimisation)");
  add_system_options(parser);
  parser.add_option("procs", "",
                    "fix the processor count and optimise the period only "
                    "(Theorem 1 mode)");
  parser.add_option("max-procs", "1e7",
                    "upper edge of the numerical allocation search");
  parser.add_flag("json", "emit a machine-readable JSON record instead of "
                          "tables");
  if (parse_or_help(parser, args, out)) return 0;

  const model::System sys = system_from_args(parser);
  const bool json = parser.flag("json");
  if (!json) {
    print_system(sys, out);
    out << "\n";
  }

  if (json) {
    // Machine-readable record: inputs + first-order, higher-order (fixed
    // P only) and numerical solutions.
    io::JsonWriter w(out, /*pretty=*/true);
    w.begin_object();
    w.key("system");
    w.begin_object();
    w.kv("lambda_ind", sys.failure().lambda_ind());
    w.kv("fail_stop_fraction", sys.failure().fail_stop_fraction());
    w.kv("downtime", sys.downtime());
    w.kv("profile", sys.speedup_model().name());
    w.kv("checkpoint", sys.costs().checkpoint.describe());
    w.kv("verification", sys.costs().verification.describe());
    w.end_object();
    if (!parser.option("procs").empty()) {
      const double procs = parser.option_double("procs");
      w.kv("procs", procs);
      const double t_fo = core::optimal_period_first_order(sys, procs);
      const core::PeriodOptimum num = core::optimal_period(sys, procs);
      w.key("first_order");
      w.begin_object();
      w.kv("period", t_fo);
      if (std::isfinite(t_fo)) {
        w.kv("overhead", core::pattern_overhead(sys, {t_fo, procs}));
      }
      w.end_object();
      if (std::isfinite(t_fo)) {
        const double t_ho = core::daly_period_vc(sys, procs);
        w.key("higher_order");
        w.begin_object();
        w.kv("period", t_ho);
        w.kv("overhead", core::pattern_overhead(sys, {t_ho, procs}));
        w.end_object();
      }
      w.key("numerical");
      w.begin_object();
      w.kv("period", num.period);
      w.kv("overhead", num.overhead);
      w.kv("at_boundary", num.at_boundary);
      w.end_object();
    } else {
      const core::FirstOrderSolution fo = core::solve_first_order(sys);
      core::AllocationSearchOptions search;
      search.max_procs = parser.option_double("max-procs");
      const core::AllocationOptimum num =
          core::optimal_allocation(sys, search);
      w.key("first_order");
      w.begin_object();
      w.kv("has_optimum", fo.has_optimum);
      if (fo.has_optimum) {
        w.kv("procs", fo.procs);
        w.kv("period", fo.period);
        w.kv("overhead", fo.overhead);
      }
      if (!fo.note.empty()) w.kv("note", fo.note);
      w.end_object();
      w.key("numerical");
      w.begin_object();
      w.kv("procs", num.procs);
      w.kv("period", num.period);
      w.kv("overhead", num.overhead);
      w.kv("at_boundary", num.at_boundary);
      w.end_object();
    }
    w.end_object();
    out << "\n";
    return 0;
  }

  if (!parser.option("procs").empty()) {
    // Fixed allocation: Theorem 1 against the exact period optimum.
    const double procs = parser.option_double("procs");
    const double t_fo = core::optimal_period_first_order(sys, procs);
    const core::PeriodOptimum num = core::optimal_period(sys, procs);

    io::Table table({"Solution", "T* (s)", "H(T*, P)"});
    table.set_align(0, io::Align::kLeft);
    if (std::isfinite(t_fo)) {
      table.add_row({"first-order (Theorem 1)", util::format_sig(t_fo, 6),
                     util::format_sig(
                         core::pattern_overhead(sys, {t_fo, procs}), 6)});
      const double t_ho = core::daly_period_vc(sys, procs);
      table.add_row({"higher-order (Daly-style)", util::format_sig(t_ho, 6),
                     util::format_sig(
                         core::pattern_overhead(sys, {t_ho, procs}), 6)});
    } else {
      table.add_row({"first-order (Theorem 1)", "inf (error-free)", "-"});
    }
    table.add_row({num.at_boundary ? "numerical (at search boundary)"
                                   : "numerical",
                   util::format_sig(num.period, 6),
                   util::format_sig(num.overhead, 6)});
    out << "P fixed at " << util::format_sig(procs, 6) << ":\n"
        << table.to_string();
    return 0;
  }

  // Joint optimisation.
  const core::FirstOrderSolution fo = core::solve_first_order(sys);
  core::AllocationSearchOptions search;
  search.max_procs = parser.option_double("max-procs");
  const core::AllocationOptimum num = core::optimal_allocation(sys, search);

  io::Table table({"Solution", "P*", "T* (s)", "overhead H"});
  table.set_align(0, io::Align::kLeft);
  if (fo.has_optimum) {
    table.add_row({"first-order (Thm 2/3)", util::format_sig(fo.procs, 6),
                   util::format_sig(fo.period, 6),
                   util::format_sig(fo.overhead, 6)});
  } else {
    table.add_row({"first-order (Thm 2/3)", "-", "-", "-"});
  }
  table.add_row({num.at_boundary ? "numerical (at search boundary)"
                                 : "numerical",
                 util::format_sig(num.procs, 6),
                 util::format_sig(num.period, 6),
                 util::format_sig(num.overhead, 6)});
  out << table.to_string();
  if (!fo.note.empty()) out << "note: " << fo.note << "\n";
  if (num.at_boundary) {
    out << "note: the overhead is monotone in P over the search domain; "
           "raise --max-procs to explore further.\n";
  }
  return 0;
}

}  // namespace ayd::tool
