// `ayd simulate` — replicated Monte-Carlo simulation of a checkpointing
// pattern, reported against the exact analytical prediction. Follows the
// paper's Section IV protocol (independent replicas of many patterns;
// overhead = faulty time / fault-free time). A single-point experiment:
// defaults come from the engine evaluator, the report goes through a
// TableSink.

#include "ayd/tool/commands.hpp"

#include <cmath>
#include <ostream>

#include "ayd/engine/engine.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::tool {

int cmd_simulate(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser(
      "ayd simulate",
      "simulate PATTERN(T, P) under fail-stop and silent errors and compare "
      "the measured overhead with the analytical prediction");
  add_system_options(parser);
  add_simulation_options(parser);
  add_pattern_options(parser);
  parser.add_option("threads", "0",
                    "worker threads (0 = hardware concurrency)");
  if (parse_or_help(parser, args, out)) return 0;

  const model::System sys = system_from_args(parser);
  print_system(sys, out);

  exec::ThreadPool pool(
      static_cast<unsigned>(parser.option_uint("threads")));

  // Fill unspecified pattern parameters from the engine's evaluator
  // (shared with the service's "simulate" op).
  const ResolvedPattern resolved = resolve_pattern_from_args(parser, sys);
  const double procs = resolved.procs;
  const double period = resolved.period;
  if (resolved.procs_defaulted) {
    out << "(no --procs given: using the numerical optimum)\n";
  }

  const core::Pattern pattern{period, procs};
  const sim::ReplicationOptions opt = replication_from_args(parser);
  const sim::ReplicationResult r =
      sim::simulate_overhead(sys, pattern, opt, &pool);

  out << "pattern: T = " << util::format_sig(period, 6)
      << " s, P = " << util::format_sig(procs, 6) << "  ("
      << opt.replicas << " replicas x " << opt.patterns_per_replica
      << " patterns, "
      << (opt.backend == sim::Backend::kDes ? "DES engine" : "fast sampler")
      << ")\n\n";

  const auto quantity = [](const char* name, const std::string& simulated,
                           const std::string& analytic) {
    engine::Record rec;
    rec.set("Quantity", name);
    rec.set("simulated", simulated);
    rec.set("analytic", analytic);
    return rec;
  };
  const std::vector<engine::Record> rows{
      quantity("execution overhead H",
               util::format_sig(r.overhead.mean, 5) + " ±" +
                   util::format_sig(r.overhead.ci.half_width(), 2),
               util::format_sig(r.analytic_overhead, 5)),
      quantity("pattern time E (s)",
               util::format_sig(r.pattern_time.mean, 6) + " ±" +
                   util::format_sig(r.pattern_time.ci.half_width(), 2),
               util::format_sig(r.analytic_pattern_time, 6)),
      quantity("fail-stop errors / pattern",
               util::format_sig(r.fail_stops_per_pattern, 4), "-"),
      quantity("silent detections / pattern",
               util::format_sig(r.silent_detections_per_pattern, 4), "-"),
      quantity("masked silent / pattern",
               util::format_sig(r.masked_silent_per_pattern, 4), "-"),
      quantity("attempts / pattern",
               util::format_sig(r.attempts_per_pattern, 4), "-")};

  engine::TableSink table({{"Quantity", "", 4, "", io::Align::kLeft},
                           {"simulated"},
                           {"analytic"}});
  engine::emit(rows, {&table});
  out << table.to_string();

  const double z = (r.overhead.mean - r.analytic_overhead) /
                   std::max(r.overhead.stderr_mean, 1e-300);
  if (sys.failure().dist().memoryless()) {
    out << "agreement: z = " << util::format_sig(z, 3)
        << " (|z| < 3 is expected when the model holds)\n";
  } else {
    out << "agreement: z = " << util::format_sig(z, 3)
        << " (analytic column assumes exponential arrivals; |z| measures "
           "the drift caused by " << sys.failure().dist().to_string()
        << " failures)\n";
  }
  return 0;
}

}  // namespace ayd::tool
