// `ayd platforms` — the Table II presets with derived MTBFs and the
// scenario cost models each one resolves to.

#include "ayd/tool/commands.hpp"

#include <ostream>

#include "ayd/io/table.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::tool {

int cmd_platforms(const std::vector<std::string>& args, std::ostream& out) {
  cli::ArgParser parser("ayd platforms",
                        "list the built-in platform presets (paper Table II, "
                        "measured for the SCR library study)");
  parser.add_flag("scenarios",
                  "also print the resolved cost models for all six Table "
                  "III scenarios");
  if (parse_or_help(parser, args, out)) return 0;

  io::Table table({"Platform", "lambda_ind", "f", "s", "P", "C_P (s)",
                   "V_P (s)", "node MTBF", "platform MTBF"});
  table.set_align(0, io::Align::kLeft);
  for (const model::Platform& p : model::all_platforms()) {
    table.add_row({p.name, util::format_sig(p.lambda_ind, 3),
                   util::format_sig(p.fail_stop_fraction, 4),
                   util::format_sig(1.0 - p.fail_stop_fraction, 4),
                   util::format_sig(p.measured_procs, 4),
                   util::format_sig(p.measured_checkpoint, 4),
                   util::format_sig(p.measured_verification, 4),
                   util::format_duration(1.0 / p.lambda_ind),
                   util::format_duration(1.0 / (p.lambda_ind *
                                                p.measured_procs))});
  }
  out << table.to_string();

  if (parser.flag("scenarios")) {
    out << "\n";
    io::Table models({"Platform", "Scenario", "C_P = R_P", "V_P"});
    models.set_align(0, io::Align::kLeft);
    models.set_align(2, io::Align::kLeft);
    models.set_align(3, io::Align::kLeft);
    for (const model::Platform& p : model::all_platforms()) {
      for (const model::Scenario s : model::all_scenarios()) {
        const model::ResilienceCosts costs = model::resolve(p, s);
        models.add_row({p.name, model::scenario_name(s),
                        costs.checkpoint.describe(),
                        costs.verification.describe()});
      }
    }
    out << models.to_string();
  }
  return 0;
}

}  // namespace ayd::tool
