// Shared option handling of the `ayd` tool: every subcommand describes the
// system under study with the same flag vocabulary, either a platform
// preset + Table III scenario (the paper's construction) or fully custom
// rates and cost coefficients, with piecewise overrides allowed on top of
// a preset.

#include "ayd/tool/commands.hpp"

#include <ostream>

#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::tool {

namespace {

bool set(const cli::ArgParser& p, const std::string& name) {
  return !p.option(name).empty();
}

}  // namespace

void add_system_options(cli::ArgParser& parser) {
  parser.add_option("platform", "hera",
                    "platform preset (hera, atlas, coastal, coastal-ssd) "
                    "or 'custom'");
  parser.add_option("scenario", "3",
                    "Table III resilience scenario (1-6); ignored when all "
                    "costs are given explicitly");
  parser.add_option("alpha", "0.1",
                    "sequential fraction of the application (Amdahl / "
                    "Gustafson profiles)");
  parser.add_option("profile", "amdahl",
                    "speedup profile: amdahl, gustafson, perfect, power");
  parser.add_option("gamma", "0.8", "exponent of the power-law profile");
  parser.add_option("downtime", "3600",
                    "downtime D after a fail-stop error (seconds)");
  parser.add_option("lambda", "",
                    "override lambda_ind, the per-processor error rate "
                    "(1/s; required with --platform=custom)");
  parser.add_option("fail-stop-fraction", "",
                    "override f, the fail-stop fraction of errors "
                    "(required with --platform=custom)");
  parser.add_option("ckpt-const", "",
                    "checkpoint cost: constant coefficient a of "
                    "C_P = a + b/P + cP (seconds)");
  parser.add_option("ckpt-inv", "",
                    "checkpoint cost: 1/P coefficient b (seconds)");
  parser.add_option("ckpt-lin", "",
                    "checkpoint cost: linear coefficient c (seconds)");
  parser.add_option("verif-const", "",
                    "verification cost: constant coefficient v of "
                    "V_P = v + u/P (seconds)");
  parser.add_option("verif-inv", "",
                    "verification cost: 1/P coefficient u (seconds)");
}

model::System system_from_args(const cli::ArgParser& parser) {
  const std::string platform_name =
      util::to_lower(util::trim(parser.option("platform")));
  const bool custom = platform_name == "custom";
  const bool ckpt_given = set(parser, "ckpt-const") ||
                          set(parser, "ckpt-inv") || set(parser, "ckpt-lin");
  const bool verif_given =
      set(parser, "verif-const") || set(parser, "verif-inv");

  double lambda = 0.0;
  double fail_stop_fraction = 0.0;
  model::ResilienceCosts costs;

  if (custom) {
    if (!set(parser, "lambda") || !set(parser, "fail-stop-fraction")) {
      throw util::CliError(
          "--platform=custom requires --lambda and --fail-stop-fraction");
    }
    if (!ckpt_given) {
      throw util::CliError(
          "--platform=custom requires at least one of --ckpt-const, "
          "--ckpt-inv, --ckpt-lin");
    }
  } else {
    const model::Platform platform = model::platform_by_name(platform_name);
    const model::Scenario scenario =
        model::scenario_from_string(parser.option("scenario"));
    lambda = platform.lambda_ind;
    fail_stop_fraction = platform.fail_stop_fraction;
    costs = model::resolve(platform, scenario);
  }

  if (set(parser, "lambda")) lambda = parser.option_double("lambda");
  if (set(parser, "fail-stop-fraction")) {
    fail_stop_fraction = parser.option_double("fail-stop-fraction");
  }
  const auto coeff = [&parser](const std::string& name) {
    return set(parser, name) ? parser.option_double(name) : 0.0;
  };
  if (ckpt_given) {
    const model::CostModel checkpoint(coeff("ckpt-const"), coeff("ckpt-inv"),
                                      coeff("ckpt-lin"));
    costs.checkpoint = checkpoint;
    costs.recovery = checkpoint;  // R_P = C_P (same I/O), as in the paper
  }
  if (verif_given) {
    costs.verification =
        model::CostModel(coeff("verif-const"), coeff("verif-inv"), 0.0);
  }

  const std::string profile = util::to_lower(parser.option("profile"));
  const double alpha = parser.option_double("alpha");
  model::Speedup speedup = model::Speedup::amdahl(alpha);
  if (profile == "amdahl") {
    speedup = model::Speedup::amdahl(alpha);
  } else if (profile == "gustafson") {
    speedup = model::Speedup::gustafson(alpha);
  } else if (profile == "perfect") {
    speedup = model::Speedup::perfect();
  } else if (profile == "power") {
    speedup = model::Speedup::power_law(parser.option_double("gamma"));
  } else {
    throw util::CliError("unknown profile: " + profile +
                         " (expected amdahl, gustafson, perfect, power)");
  }

  return {model::FailureModel(lambda, fail_stop_fraction), costs,
          parser.option_double("downtime"), speedup};
}

void print_system(const model::System& sys, std::ostream& out) {
  const model::FailureModel& failure = sys.failure();
  const std::string mtbf =
      failure.lambda_ind() > 0.0
          ? util::format_duration(1.0 / failure.lambda_ind())
          : "error-free";
  out << "system: lambda_ind = " << util::format_sig(failure.lambda_ind(), 4)
      << "/s (node MTBF " << mtbf << "), f = "
      << util::format_sig(failure.fail_stop_fraction(), 4)
      << ", s = " << util::format_sig(failure.silent_fraction(), 4)
      << ", D = " << util::format_duration(sys.downtime()) << "\n"
      << "costs:  C_P = R_P = " << sys.costs().checkpoint.describe()
      << ",  V_P = " << sys.costs().verification.describe() << "\n"
      << "profile: " << sys.speedup_model().name() << "\n";
}

void add_simulation_options(cli::ArgParser& parser) {
  parser.add_option("runs", "120", "independent simulation replicas");
  parser.add_option("patterns", "160", "patterns per replica");
  parser.add_option("seed", "172826646", "RNG seed");
  parser.add_flag("des",
                  "use the event-queue reference simulator instead of the "
                  "fast sampler");
}

sim::ReplicationOptions replication_from_args(const cli::ArgParser& parser) {
  sim::ReplicationOptions opt;
  opt.replicas = static_cast<std::size_t>(parser.option_uint("runs"));
  opt.patterns_per_replica =
      static_cast<std::size_t>(parser.option_uint("patterns"));
  opt.seed = parser.option_uint("seed");
  opt.backend = parser.flag("des") ? sim::Backend::kDes : sim::Backend::kFast;
  return opt;
}

bool parse_or_help(cli::ArgParser& parser,
                   const std::vector<std::string>& args, std::ostream& out) {
  std::vector<const char*> argv;
  argv.reserve(args.size() + 1);
  argv.push_back("ayd");
  for (const std::string& a : args) argv.push_back(a.c_str());
  parser.parse(static_cast<int>(argv.size()), argv.data());
  if (parser.help_requested()) {
    out << parser.help();
    return true;
  }
  return false;
}

}  // namespace ayd::tool
