// Shared option handling of the `ayd` tool: every subcommand describes the
// system under study with the same flag vocabulary, either a platform
// preset + Table III scenario (the paper's construction) or fully custom
// rates and cost coefficients, with piecewise overrides allowed on top of
// a preset.

#include "ayd/tool/commands.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/trace.hpp"
#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::tool {

namespace {

bool set(const cli::ArgParser& p, const std::string& name) {
  return !p.option(name).empty();
}

double parse_rate_entry(const std::string& key, const std::string& value) {
  const auto parsed = util::parse_strict_double(value);
  if (!parsed.has_value()) {
    throw util::CliError("--failure-dist: cannot parse " + key + "=" +
                         value);
  }
  const double v = *parsed;
  if (key == "mtbf") {
    if (v <= 0.0) throw util::CliError("--failure-dist: mtbf must be > 0");
    return 1.0 / v;
  }
  if (v < 0.0) throw util::CliError("--failure-dist: lambda must be >= 0");
  return v;
}

/// True if `item` is a "mtbf=NUMBER" / "lambda=NUMBER" rate-override
/// entry (used to split them off a trace path's tail).
bool is_rate_entry(const std::string& item) {
  const auto eq = item.find('=');
  if (eq == std::string::npos) return false;
  const std::string key = util::to_lower(util::trim(item.substr(0, eq)));
  return (key == "mtbf" || key == "lambda") &&
         util::parse_strict_double(util::trim(item.substr(eq + 1)))
             .has_value();
}

}  // namespace

ParsedFailureDist parse_failure_dist(const std::string& text) {
  ParsedFailureDist out;
  const std::string s = util::trim(text);
  const auto colon = s.find(':');
  const auto comma = s.find(',');
  // The kind is everything before the first ':' or ',' delimiter.
  const std::string name =
      util::to_lower(util::trim(s.substr(0, std::min(colon, comma))));

  if (name == "trace") {
    if (colon == std::string::npos || util::trim(s.substr(colon + 1)).empty()) {
      throw util::CliError("--failure-dist trace: needs a CSV path, e.g. "
                           "trace:failures.csv");
    }
    // The tail is the log path, except for trailing rate-override
    // entries ("trace:log.csv,mtbf=3e9"). Paths may contain '=' or ','
    // themselves, so only well-formed trailing entries are split off.
    std::string path = util::trim(s.substr(colon + 1));
    for (auto last = path.rfind(','); last != std::string::npos;
         last = path.rfind(',')) {
      const std::string entry = util::trim(path.substr(last + 1));
      if (!is_rate_entry(entry)) break;
      const auto eq = entry.find('=');
      // Entries are visited right to left; the rightmost wins, matching
      // the left-to-right overwrite order of the non-trace kinds.
      if (!out.lambda_override.has_value()) {
        out.lambda_override = parse_rate_entry(
            util::to_lower(util::trim(entry.substr(0, eq))),
            util::trim(entry.substr(eq + 1)));
      }
      path = util::trim(path.substr(0, last));
    }
    if (path.empty()) {
      throw util::CliError("--failure-dist trace: needs a CSV path, e.g. "
                           "trace:failures.csv");
    }
    out.spec = model::FailureDistSpec::trace_replay(
        sim::read_failure_log_csv(path), path);
    return out;
  }

  // Pull "mtbf=..." / "lambda=..." entries out of the comma list; what
  // remains is the distribution spec proper. The entries work with or
  // without distribution parameters ("exponential,mtbf=3.15e9" and
  // "weibull:k=0.7,mtbf=3.15e9" are both valid).
  std::string tail;
  if (colon != std::string::npos) {
    tail = s.substr(colon + 1);
  } else if (comma != std::string::npos) {
    tail = s.substr(comma + 1);
  }
  std::vector<std::string> kept;
  for (const std::string& raw : util::split(tail, ',')) {
    const std::string item = util::trim(raw);
    if (item.empty()) continue;
    const auto eq = item.find('=');
    const std::string key =
        eq == std::string::npos
            ? ""
            : util::to_lower(util::trim(item.substr(0, eq)));
    if (key == "mtbf" || key == "lambda") {
      out.lambda_override =
          parse_rate_entry(key, util::trim(item.substr(eq + 1)));
    } else {
      kept.push_back(item);
    }
  }
  std::string spec_text = name;
  if (!kept.empty()) {
    spec_text += ':';
    spec_text += util::join(kept, ",");
  }
  out.spec = model::FailureDistSpec::parse(spec_text);
  return out;
}

void add_system_options(cli::ArgParser& parser) {
  parser.add_option("platform", "hera",
                    "platform preset (hera, atlas, coastal, coastal-ssd) "
                    "or 'custom'");
  parser.add_option("scenario", "3",
                    "Table III resilience scenario (1-6); ignored when all "
                    "costs are given explicitly");
  parser.add_option("alpha", "0.1",
                    "sequential fraction of the application (Amdahl / "
                    "Gustafson profiles)");
  parser.add_option("profile", "amdahl",
                    "speedup profile: amdahl, gustafson, perfect, power");
  parser.add_option("gamma", "0.8", "exponent of the power-law profile");
  parser.add_option("downtime", "3600",
                    "downtime D after a fail-stop error (seconds)");
  parser.add_option("lambda", "",
                    "override lambda_ind, the per-processor error rate "
                    "(1/s; required with --platform=custom)");
  parser.add_option("failure-dist", "exponential",
                    "failure inter-arrival distribution: exponential, "
                    "weibull:k=K, lognormal:sigma=S, or trace:FILE.csv; "
                    "an extra ,mtbf=SECONDS (or ,lambda=RATE) entry "
                    "sets the per-processor error rate (mutually "
                    "exclusive with --lambda)");
  parser.add_option("fail-stop-fraction", "",
                    "override f, the fail-stop fraction of errors "
                    "(required with --platform=custom)");
  parser.add_option("ckpt-const", "",
                    "checkpoint cost: constant coefficient a of "
                    "C_P = a + b/P + cP (seconds)");
  parser.add_option("ckpt-inv", "",
                    "checkpoint cost: 1/P coefficient b (seconds)");
  parser.add_option("ckpt-lin", "",
                    "checkpoint cost: linear coefficient c (seconds)");
  parser.add_option("verif-const", "",
                    "verification cost: constant coefficient v of "
                    "V_P = v + u/P (seconds)");
  parser.add_option("verif-inv", "",
                    "verification cost: 1/P coefficient u (seconds)");
  parser.add_option("shock", "",
                    "correlated node-group failures: rho=RHO[,group=G]"
                    "[,dist=SPEC] mixes a platform-wide shock stream "
                    "(fraction rho of the fail-stop rate, hitting a "
                    "fraction G of the nodes per event) into the "
                    "individual renewals (simulation only)");
  parser.add_option("hetero", "",
                    "heterogeneous components: SHARE*SCALE*DIST[;...] "
                    "splits the platform into classes with relative "
                    "failure-rate scales (shares sum to 1, share-weighted "
                    "scales sum to 1; simulation only)");
  parser.add_option("pfs-penalty", "",
                    "two-tier checkpoint cost: recovery from the parallel "
                    "file system costs PHI x the burst-buffer recovery; "
                    "shock-triggered rollbacks pay the PFS path "
                    "(simulation only, requires --shock)");
}

model::System system_from_args(const cli::ArgParser& parser) {
  const std::string platform_name =
      util::to_lower(util::trim(parser.option("platform")));
  const bool custom = platform_name == "custom";
  const bool ckpt_given = set(parser, "ckpt-const") ||
                          set(parser, "ckpt-inv") || set(parser, "ckpt-lin");
  const bool verif_given =
      set(parser, "verif-const") || set(parser, "verif-inv");

  double lambda = 0.0;
  double fail_stop_fraction = 0.0;
  model::ResilienceCosts costs;

  const ParsedFailureDist dist =
      parse_failure_dist(parser.option("failure-dist"));
  // Two explicit sources for the same rate is a contradiction, not a
  // precedence question — silently picking one would hand the user
  // results computed at a rate they did not ask for.
  if (dist.lambda_override.has_value() && set(parser, "lambda")) {
    throw util::CliError(
        "--lambda conflicts with the mtbf=/lambda= entry in "
        "--failure-dist; pass the rate through only one of them");
  }

  if (custom) {
    if ((!set(parser, "lambda") && !dist.lambda_override.has_value()) ||
        !set(parser, "fail-stop-fraction")) {
      throw util::CliError(
          "--platform=custom requires --lambda (or an mtbf=/lambda= entry "
          "in --failure-dist) and --fail-stop-fraction");
    }
    if (!ckpt_given) {
      throw util::CliError(
          "--platform=custom requires at least one of --ckpt-const, "
          "--ckpt-inv, --ckpt-lin");
    }
  } else {
    const model::Platform platform = model::platform_by_name(platform_name);
    const model::Scenario scenario =
        model::scenario_from_string(parser.option("scenario"));
    lambda = platform.lambda_ind;
    fail_stop_fraction = platform.fail_stop_fraction;
    costs = model::resolve(platform, scenario);
  }

  if (set(parser, "lambda")) lambda = parser.option_double("lambda");
  if (set(parser, "fail-stop-fraction")) {
    fail_stop_fraction = parser.option_double("fail-stop-fraction");
  }
  const auto coeff = [&parser](const std::string& name) {
    return set(parser, name) ? parser.option_double(name) : 0.0;
  };
  if (ckpt_given) {
    const model::CostModel checkpoint(coeff("ckpt-const"), coeff("ckpt-inv"),
                                      coeff("ckpt-lin"));
    costs.checkpoint = checkpoint;
    costs.recovery = checkpoint;  // R_P = C_P (same I/O), as in the paper
  }
  if (verif_given) {
    costs.verification =
        model::CostModel(coeff("verif-const"), coeff("verif-inv"), 0.0);
  }

  const std::string profile = util::to_lower(parser.option("profile"));
  const double alpha = parser.option_double("alpha");
  model::Speedup speedup = model::Speedup::amdahl(alpha);
  if (profile == "amdahl") {
    speedup = model::Speedup::amdahl(alpha);
  } else if (profile == "gustafson") {
    speedup = model::Speedup::gustafson(alpha);
  } else if (profile == "perfect") {
    speedup = model::Speedup::perfect();
  } else if (profile == "power") {
    speedup = model::Speedup::power_law(parser.option_double("gamma"));
  } else {
    throw util::CliError("unknown profile: " + profile +
                         " (expected amdahl, gustafson, perfect, power)");
  }

  if (dist.lambda_override.has_value()) lambda = *dist.lambda_override;

  model::System sys{model::FailureModel(lambda, fail_stop_fraction, dist.spec),
                    costs, parser.option_double("downtime"), speedup};

  // Correlated-world extensions ride on top of the finished base system;
  // --pfs-penalty last so it refines the final cost model.
  if (set(parser, "shock")) {
    sys = sys.with_shock(model::ShockSpec::parse(parser.option("shock")));
  }
  if (set(parser, "hetero")) {
    sys = sys.with_heterogeneity(
        model::HeterogeneousSpec::parse(parser.option("hetero")));
  }
  if (set(parser, "pfs-penalty")) {
    sys = sys.with_two_tier(model::TwoTierCostSpec::from_penalty(
        sys.costs(), parser.option_double("pfs-penalty")));
  }
  return sys;
}

void print_system(const model::System& sys, std::ostream& out) {
  const model::FailureModel& failure = sys.failure();
  const std::string mtbf =
      failure.lambda_ind() > 0.0
          ? util::format_duration(1.0 / failure.lambda_ind())
          : "error-free";
  out << "system: lambda_ind = " << util::format_sig(failure.lambda_ind(), 4)
      << "/s (node MTBF " << mtbf << "), f = "
      << util::format_sig(failure.fail_stop_fraction(), 4)
      << ", s = " << util::format_sig(failure.silent_fraction(), 4)
      << ", D = " << util::format_duration(sys.downtime()) << "\n"
      << "costs:  C_P = R_P = " << sys.costs().checkpoint.describe()
      << ",  V_P = " << sys.costs().verification.describe() << "\n"
      << "profile: " << sys.speedup_model().name() << "\n";
  if (!failure.dist().memoryless()) {
    out << "failures: " << failure.dist().to_string()
        << " inter-arrivals (simulation only; analytic formulas assume "
           "exponential)\n";
  }
  if (const model::CorrelatedSpec* ext = sys.extension()) {
    if (ext->shock.has_value()) {
      out << "shock:  " << ext->shock->to_string()
          << " (simulation only; analytic formulas see the i.i.d. "
             "marginal)\n";
    }
    if (ext->heterogeneity.has_value()) {
      out << "hetero: " << ext->heterogeneity->to_string()
          << " (simulation only)\n";
    }
    if (ext->two_tier.has_value()) {
      out << "tiers:  BB recovery "
          << ext->two_tier->bb_recovery.describe() << ", PFS recovery "
          << ext->two_tier->pfs_recovery.describe()
          << " (shock rollbacks pay the PFS path)\n";
    }
  }
}

void add_simulation_options(cli::ArgParser& parser) {
  parser.add_option("runs", "120", "independent simulation replicas");
  parser.add_option("patterns", "160", "patterns per replica");
  parser.add_option("seed", "172826646", "RNG seed");
  parser.add_flag("des",
                  "use the event-queue reference simulator instead of the "
                  "fast sampler");
}

sim::ReplicationOptions replication_from_args(const cli::ArgParser& parser) {
  sim::ReplicationOptions opt;
  opt.replicas = static_cast<std::size_t>(parser.option_uint("runs"));
  opt.patterns_per_replica =
      static_cast<std::size_t>(parser.option_uint("patterns"));
  opt.seed = parser.option_uint("seed");
  opt.backend = parser.flag("des") ? sim::Backend::kDes : sim::Backend::kFast;
  return opt;
}

bool parse_or_help(cli::ArgParser& parser,
                   const std::vector<std::string>& args, std::ostream& out) {
  parser.parse_args(args);
  if (parser.help_requested()) {
    out << parser.help();
    return true;
  }
  return false;
}

}  // namespace ayd::tool
