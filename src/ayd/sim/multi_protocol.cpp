#include "ayd/sim/multi_protocol.hpp"

#include <limits>
#include <vector>

#include "ayd/util/contracts.hpp"

namespace ayd::sim {

MultiVerifSimulator::MultiVerifSimulator(const model::System& sys,
                                         const core::MultiPattern& pattern)
    : pattern_(pattern),
      lf_(sys.fail_stop_rate(pattern.procs)),
      ls_(sys.silent_rate(pattern.procs)),
      w_(pattern.period / pattern.segments),
      v_(sys.verification_cost(pattern.procs)),
      c_(sys.checkpoint_cost(pattern.procs)),
      r_(sys.recovery_cost(pattern.procs)),
      d_(sys.downtime()) {
  core::validate(pattern);
}

PatternStats MultiVerifSimulator::simulate_pattern(rng::RngStream& rng) {
  PatternStats stats;
  double wall = 0.0;

  const auto sample = [&](double rate) {
    return rate > 0.0 ? rng.next_exponential(rate)
                      : std::numeric_limits<double>::infinity();
  };
  const auto run_recovery = [&] {
    for (;;) {
      const double y = sample(lf_);
      if (y < r_) {
        ++stats.fail_stop_errors;
        ++stats.recovery_fail_stops;
        wall += y + d_;
        continue;
      }
      wall += r_;
      return;
    }
  };

  for (;;) {  // attempts
    ++stats.attempts;
    bool restart = false;
    for (int i = 0; i < pattern_.segments; ++i) {
      // Memorylessness: fresh draws per segment are exact.
      const double x = sample(lf_);
      const double s_arrival = sample(ls_);
      const bool silent = s_arrival < w_;
      if (x < w_ + v_) {
        ++stats.fail_stop_errors;
        if (silent && s_arrival < x) ++stats.masked_silent;
        wall += x + d_;
        run_recovery();
        restart = true;
        break;
      }
      wall += w_ + v_;
      if (silent) {
        ++stats.silent_detections;
        run_recovery();
        restart = true;
        break;
      }
    }
    if (restart) continue;
    const double x = sample(lf_);
    if (x < c_) {
      ++stats.fail_stop_errors;
      wall += x + d_;
      run_recovery();
      continue;
    }
    wall += c_;
    stats.wall_time = wall;
    return stats;
  }
}

ReplicationResult simulate_multi_overhead(const model::System& sys,
                                          const core::MultiPattern& pattern,
                                          const ReplicationOptions& opt,
                                          exec::ThreadPool* pool) {
  AYD_REQUIRE(opt.replicas >= 1, "need at least one replica");
  AYD_REQUIRE(opt.patterns_per_replica >= 1,
              "need at least one pattern per replica");
  core::validate(pattern);

  struct Outcome {
    double overhead = 0.0;
    double mean_time = 0.0;
    PatternStats totals;
  };
  const auto run_replica = [&](std::size_t i) {
    rng::RngStream rng(opt.seed, i);
    MultiVerifSimulator simulator(sys, pattern);
    PatternStats totals;
    for (std::size_t k = 0; k < opt.patterns_per_replica; ++k) {
      totals.merge(simulator.simulate_pattern(rng));
    }
    const auto n = static_cast<double>(opt.patterns_per_replica);
    const double work = n * pattern.period * sys.speedup(pattern.procs);
    return Outcome{totals.wall_time / work, totals.wall_time / n, totals};
  };

  std::vector<Outcome> outcomes;
  if (pool != nullptr) {
    outcomes = exec::parallel_map(*pool, opt.replicas, run_replica);
  } else {
    outcomes.reserve(opt.replicas);
    for (std::size_t i = 0; i < opt.replicas; ++i) {
      outcomes.push_back(run_replica(i));
    }
  }

  stats::RunningStats overhead_stats;
  stats::RunningStats time_stats;
  PatternStats totals;
  for (const Outcome& o : outcomes) {
    overhead_stats.add(o.overhead);
    time_stats.add(o.mean_time);
    totals.merge(o.totals);
  }

  ReplicationResult result;
  result.overhead = stats::summarize(overhead_stats, opt.ci_level);
  result.pattern_time = stats::summarize(time_stats, opt.ci_level);
  result.analytic_overhead = core::multi_pattern_overhead(sys, pattern);
  result.analytic_pattern_time =
      core::expected_multi_pattern_time(sys, pattern);
  result.total_patterns =
      static_cast<std::uint64_t>(opt.replicas) * opt.patterns_per_replica;
  const auto n = static_cast<double>(result.total_patterns);
  result.fail_stops_per_pattern =
      static_cast<double>(totals.fail_stop_errors) / n;
  result.silent_detections_per_pattern =
      static_cast<double>(totals.silent_detections) / n;
  result.masked_silent_per_pattern =
      static_cast<double>(totals.masked_silent) / n;
  result.attempts_per_pattern = static_cast<double>(totals.attempts) / n;
  return result;
}

}  // namespace ayd::sim
