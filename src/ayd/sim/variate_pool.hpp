// Sweep-aware common random numbers: one sampling pass per grid.
//
// Two grid points that share a (failure-dist shape, seed) scenario but
// differ only in rate / period / allocation draw *the same* engine words
// in the same order — replica i always reads RNG substream (seed, i) —
// and the expensive part of each draw, the unit-variate transform
// (-log(1-u), the unit Weibull deviate, the normal quantile), does not
// depend on the rate at all (model/failure_dist.hpp). So the unit
// variates of replica i form one shared sequence: every such point
// consumes a prefix of it, scaled per point by the cheap from_unit.
//
// UnitVariatePool materializes that sequence once, lazily, per replica:
// append-only chunks generated with the tier-dispatched bulk transform
// (rng/simd.hpp), shared read-only by every simulator that walks them
// through a Cursor. A fig5-style lambda sweep then pays for variate
// generation once for the whole grid instead of once per point — and the
// points become *common-random-number* comparisons, the classic variance
// reduction for comparing configurations (differences between neighboring
// points are no longer polluted by independent sampling noise).
//
// Reproducibility: under the scalar reference tier the pooled variates
// are bit-identical to what per-point sampling produces, so CRN is
// invisible in results there (tests/engine_crn_test.cpp pins this); under
// a SIMD tier the pool inherits that tier's golden tier. Results remain
// bit-identical at any thread count either way: chunk k of replica i has
// exactly one possible content, whichever thread generates it first.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ayd/model/failure_dist.hpp"
#include "ayd/rng/stream.hpp"

namespace ayd::sim {

/// Unit variates generated per growth step. Small enough that a
/// replica's store stays close to what it actually consumes (a typical
/// replica draws a few hundred variates, so the last chunk's average
/// waste — half a chunk — must stay a small fraction of that), big
/// enough for the bulk transforms to amortize dispatch. Chunking is
/// invisible in the values: chunk k holds words [k·N, (k+1)·N) of the
/// replica's stream, so the concatenated sequence does not depend on N.
inline constexpr std::size_t kVariatePoolChunk = 256;

/// The shared unit-variate sequences of one (failure-dist shape, seed)
/// scenario, one lazily grown store per replica. Thread-safe: cursors
/// only synchronize at chunk boundaries, and a chunk's content is a pure
/// function of (spec, seed, replica, chunk index).
class UnitVariatePool {
 public:
  /// `spec` must be eligible() (analytic kinds); trace replay does not
  /// factor through unit variates (variable word consumption).
  UnitVariatePool(const model::FailureDistSpec& spec, std::uint64_t seed);

  /// True when the spec factors through the unit-variate API, i.e. a
  /// pool can serve it.
  [[nodiscard]] static bool eligible(const model::FailureDistSpec& spec) {
    return spec.kind() != model::FailureDistKind::kTraceReplay;
  }

  struct ReplicaStore;

  /// A position in one replica's variate sequence. Starts at draw 0;
  /// next() returns successive unit variates, growing the shared store
  /// on demand. Cheap to copy-construct from cursor(); not thread-safe
  /// itself (one cursor per consuming simulator), but any number of
  /// cursors may walk the same replica concurrently.
  class Cursor {
   public:
    Cursor() = default;

    [[nodiscard]] double next() {
      if (remaining_ == 0) refill();
      --remaining_;
      return *ptr_++;
    }

    /// Two consecutive variates with a single boundary check — the
    /// simulator's attempt step always consumes a (fail, silent) pair,
    /// and pairs straddle a chunk edge at most once per chunk.
    void next2(double& a, double& b) {
      if (remaining_ >= 2) {
        a = ptr_[0];
        b = ptr_[1];
        ptr_ += 2;
        remaining_ -= 2;
        return;
      }
      a = next();
      b = next();
    }

    [[nodiscard]] bool valid() const { return pool_ != nullptr; }

   private:
    friend class UnitVariatePool;
    Cursor(UnitVariatePool* pool, ReplicaStore* store)
        : pool_(pool), store_(store) {}

    void refill();

    UnitVariatePool* pool_ = nullptr;
    ReplicaStore* store_ = nullptr;
    const double* ptr_ = nullptr;
    std::size_t remaining_ = 0;
    std::size_t next_chunk_ = 0;
  };

  /// Cursor at the start of replica i's sequence (the position a fresh
  /// RngStream(seed, i) would sample from).
  [[nodiscard]] Cursor cursor(std::size_t replica);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const model::FailureDistSpec& spec() const { return spec_; }
  /// Telemetry: unit variates generated so far, across all replicas.
  [[nodiscard]] std::size_t generated() const {
    return generated_.load(std::memory_order_relaxed);
  }

  struct ReplicaStore {
    explicit ReplicaStore(rng::RngStream s) : stream(s) {}
    std::mutex mu;
    /// Append-only; each chunk is fully generated before it becomes
    /// visible, then immutable (what makes lock-free reads safe).
    std::vector<std::unique_ptr<std::array<double, kVariatePoolChunk>>>
        chunks;
    /// Positioned after the words consumed by the generated chunks.
    rng::RngStream stream;
  };

 private:
  /// Chunk `index` of `store`, generating it (and any gap) if needed.
  [[nodiscard]] const double* acquire_chunk(ReplicaStore& store,
                                            std::size_t index);

  model::FailureDistSpec spec_;
  std::uint64_t seed_;
  /// Rate-1 instantiation: only its unit transform is used, which is
  /// rate-independent by the factorization contract.
  std::unique_ptr<const model::FailureDistribution> unit_dist_;
  std::mutex mu_;
  std::vector<std::unique_ptr<ReplicaStore>> replicas_;
  std::atomic<std::size_t> generated_{0};
};

/// Engine-level registry: one UnitVariatePool per (failure-dist shape,
/// seed) scenario encountered during a sweep. Returns nullptr for specs
/// that cannot pool (trace replay) — callers fall back to independent
/// per-point sampling. Thread-safe; pools live as long as the cache (or
/// any caller-held shared_ptr).
class VariateCache {
 public:
  [[nodiscard]] std::shared_ptr<UnitVariatePool> pool_for(
      const model::FailureDistSpec& spec, std::uint64_t seed);

  /// Number of distinct (shape, seed) pools created so far.
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    model::FailureDistSpec spec;
    std::uint64_t seed;
    std::shared_ptr<UnitVariatePool> pool;
  };
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace ayd::sim
