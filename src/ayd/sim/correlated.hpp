// Simulators for the correlated / multi-level failure worlds
// (model/correlated.hpp).
//
// A plain System has one fail-stop renewal source and one silent source;
// the bit-pinned simulators in sim/protocol.hpp own that world and are
// never touched by this extension. An *extended* System (sys.extended())
// instead carries up to three more axes, and the replication driver
// (sim/runner.cpp) routes it here:
//
//  * Fail-stop arrivals are the superposition of K per-component renewal
//    streams (one per heterogeneity class; K = 1 when homogeneous) plus
//    an optional platform-wide shock stream. Every source renews at each
//    attempt start and each recovery try — the same renewal points the
//    plain simulators use for non-memoryless laws — drawing one arrival
//    per source in a fixed order (component classes in spec order, the
//    shock last); the earliest strictly-smallest arrival strikes. Any
//    strike interrupts the whole coordinated application, so what the
//    origin changes is telemetry (PatternStats::shock_errors) and, under
//    a two-tier cost spec, the recovery path.
//  * Silent errors stay one homogeneous stream at the System's base law
//    (detectors are application-level, not component-level); see
//    docs/theory.md.
//  * Two-tier recovery: a rollback chain triggered by an individual
//    failure or a silent detection restores from the burst buffer
//    (sys.recovery_cost); a shock wipes its victims' burst buffers, so a
//    chain that contains a shock restores from the PFS
//    (TwoTierCostSpec::pfs_recovery). The PFS tier is sticky within one
//    rollback chain — a failed restore leaves the burst buffer stale —
//    and resets once a recovery completes and a fresh attempt begins.
//
// Draw discipline: zero-rate sources consume no engine words (the
// NeverFails discipline of the plain simulators), all other draws go
// through FailureDistribution::sample, and replica i always reads RNG
// substream (seed, i) — so results are byte-identical across runs and
// thread counts. There is no CRN pool mode: an extended world's draw
// sequence interleaves several laws, so the engine's variate cache
// excludes extended systems (engine/evaluator.cpp) and the replication
// driver rejects a shared pool for them. The two backends below make
// independent draw sequences but identical distributional assumptions;
// tests/sim_backend_equivalence_test.cpp holds them together, and
// tests/model_correlated_test.cpp validates the samplers against
// closed-form marginals.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ayd/core/pattern.hpp"
#include "ayd/model/system.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/sim/event_queue.hpp"
#include "ayd/sim/protocol.hpp"
#include "ayd/sim/variate_pool.hpp"

namespace ayd::sim {

namespace detail {

/// One fail-stop arrival source of an extended world.
struct FailSource {
  std::unique_ptr<const model::FailureDistribution> dist;
  bool is_shock = false;
};

/// Everything both correlated backends share: the resolved sources, the
/// per-pattern segment costs, and the two recovery tiers.
class CorrelatedWorld {
 public:
  CorrelatedWorld(const model::System& sys, const core::Pattern& pattern);

  [[nodiscard]] const std::vector<FailSource>& fail_sources() const {
    return fail_sources_;
  }
  [[nodiscard]] const model::FailureDistribution& silent() const {
    return *silent_dist_;
  }
  [[nodiscard]] double t() const { return t_; }
  [[nodiscard]] double v() const { return v_; }
  [[nodiscard]] double c() const { return c_; }
  [[nodiscard]] double d() const { return d_; }
  /// Recovery cost of the tier a rollback chain is on.
  [[nodiscard]] double recovery_cost(bool pfs) const {
    return pfs ? r_pfs_ : r_bb_;
  }
  /// True when a shock strike escalates the chain to the PFS tier (a
  /// two-tier spec is active; without one both tiers read the same).
  [[nodiscard]] bool tiered() const { return r_pfs_ != r_bb_; }
  [[nodiscard]] bool silent_active() const { return ls_ > 0.0; }
  /// For divergence diagnostics.
  [[nodiscard]] double total_fail_rate() const { return lf_total_; }
  [[nodiscard]] double silent_rate() const { return ls_; }

 private:
  std::vector<FailSource> fail_sources_;
  std::unique_ptr<const model::FailureDistribution> silent_dist_;
  double t_, v_, c_, d_;
  double r_bb_, r_pfs_;
  double lf_total_ = 0.0;
  double ls_ = 0.0;
};

}  // namespace detail

/// Closed-form per-segment sampler for extended worlds, modeled on
/// FastProtocolSimulator's general loop: one fresh arrival per source per
/// attempt / per recovery try, earliest strike wins. The default backend.
class CorrelatedFastSimulator {
 public:
  CorrelatedFastSimulator(const model::System& sys,
                          const core::Pattern& pattern);

  [[nodiscard]] PatternStats simulate_pattern(rng::RngStream& rng);
  /// n patterns back to back, stats merged (the replication driver's
  /// loop; equivalent to n simulate_pattern calls, bitwise).
  [[nodiscard]] PatternStats simulate_replica(rng::RngStream& rng,
                                              std::size_t n);

  /// Nothing is prefetched across replicas, so this is a no-op; it
  /// exists so the replication driver's template fits.
  void begin_replica() {}
  /// Extended worlds have no CRN pool mode (see file header); only the
  /// nullptr reset is accepted.
  void set_unit_cursor(UnitVariatePool::Cursor* cursor);

  [[nodiscard]] const core::Pattern& pattern() const { return pattern_; }

 private:
  core::Pattern pattern_;
  detail::CorrelatedWorld world_;
};

/// Event-queue reference backend for extended worlds: the phase machine
/// of DesProtocolSimulator with one pending arrival per source, all
/// sources renewed at each attempt start and each recovery try (arrivals
/// at or beyond their renewal boundary are discarded unscheduled, so a
/// boundary tie never strikes — matching the fast loop's strict-<
/// windows). Distributionally identical to CorrelatedFastSimulator
/// (tests/sim_backend_equivalence_test.cpp).
class CorrelatedDesSimulator {
 public:
  CorrelatedDesSimulator(const model::System& sys,
                         const core::Pattern& pattern);

  [[nodiscard]] PatternStats simulate_pattern(rng::RngStream& rng);
  [[nodiscard]] PatternStats simulate_replica(rng::RngStream& rng,
                                              std::size_t n);

  void begin_replica() {}
  /// See CorrelatedFastSimulator::set_unit_cursor.
  void set_unit_cursor(UnitVariatePool::Cursor* cursor);

  [[nodiscard]] const core::Pattern& pattern() const { return pattern_; }

 private:
  core::Pattern pattern_;
  detail::CorrelatedWorld world_;
  EventQueue queue_;
  /// Pending fail-stop event id per source (kNoEvent when none); the
  /// popped event id identifies its source by lookup here.
  std::vector<std::uint64_t> pending_;
};

}  // namespace ayd::sim
