#include "ayd/sim/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "ayd/rng/simd.hpp"
#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"

namespace ayd::sim {

namespace {

constexpr std::uint64_t kNoEvent = std::numeric_limits<std::uint64_t>::max();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Minimum mean fraction of below-threshold (transform-needing) draws
/// for the fast simulator's SIMD block pipeline to beat the
/// scalar-dispatch loop. The block path transforms every lane, so it
/// wins once the scalar loop would pay the per-element transform on
/// roughly half the draws; measured crossover on the reference container
/// is ~0.5 for the Weibull (the only shape whose transform is expensive
/// enough to vectorize profitably), and the gate adds margin.
constexpr double kBlockModeMinTransformFraction = 0.55;

[[noreturn]] void throw_diverged(const core::Pattern& pattern, double lf,
                                 double ls) {
  std::ostringstream os;
  os << "pattern did not complete within " << kMaxPatternAttempts
     << " attempts (T=" << pattern.period << ", P=" << pattern.procs
     << ", lambda_f=" << lf << ", lambda_s=" << ls
     << "); the per-attempt success probability is too small";
  throw util::SimulationDiverged(os.str());
}

/// True when every *active* error source (rate > 0) draws exactly one
/// uniform per sample and factors through the unit-variate API.
bool sources_unit_samplable(double lf, const model::FailureDistribution& fd,
                            double ls, const model::FailureDistribution& sd) {
  if (lf > 0.0 && !fd.unit_samplable()) return false;
  if (ls > 0.0 && !sd.unit_samplable()) return false;
  return true;
}

}  // namespace

std::uint64_t safe_word_threshold(const model::FailureDistribution& dist,
                                  double window) {
  // The margin must dominate the *inconsistency* between cdf() and the
  // quantile inversion behind sample_value(), not just rounding noise.
  // Exponential and Weibull use algebraically matched expm1/log1p/pow
  // forms (disagreement ~1e-15 relative in u). The lognormal is the
  // hard case: its cdf uses accurate erfc while its quantile uses
  // Acklam's approximation (|rel err| ~1.15e-9 in z-space), which maps
  // to a u-space disagreement of up to ~1.15e-9 * z^2 relative to the
  // cdf value; words never reach below u = 2^-53, so |z| <= 8.2 and the
  // worst case is ~8e-8. The 1e-4 relative margin clears that by three
  // orders of magnitude, and its only cost is that a 1e-4 sliver of
  // below-threshold draws computes the exact arrival unnecessarily
  // (tests/sim_bitcompat_test.cpp scans the boundary for violations).
  const double c = dist.cdf(window);
  const double thr = std::min(1.0, c + (c * 1e-4 + 1e-300));
  return static_cast<std::uint64_t>(std::ceil(thr * 0x1.0p53));
}

DesProtocolSimulator::DesProtocolSimulator(const model::System& sys,
                                           const core::Pattern& pattern)
    : pattern_(pattern),
      lf_(sys.fail_stop_rate(pattern.procs)),
      ls_(sys.silent_rate(pattern.procs)),
      t_(pattern.period),
      v_(sys.verification_cost(pattern.procs)),
      c_(sys.checkpoint_cost(pattern.procs)),
      r_(sys.recovery_cost(pattern.procs)),
      d_(sys.downtime()),
      fail_dist_(sys.failure().dist().instantiate(lf_)),
      silent_dist_(sys.failure().dist().instantiate(ls_)),
      renewal_(!fail_dist_->memoryless()),
      batched_(sources_unit_samplable(lf_, *fail_dist_, ls_, *silent_dist_)) {
  core::validate(pattern);
  if (batched_) {
    unit_src_ = lf_ > 0.0 ? fail_dist_.get() : silent_dist_.get();
  }
  queue_.reserve(8);
}

void DesProtocolSimulator::set_unit_cursor(UnitVariatePool::Cursor* cursor) {
  AYD_REQUIRE(cursor == nullptr || batched_,
              "set_unit_cursor: an active source does not factor through "
              "unit variates");
  pool_cursor_ = cursor;
}

double DesProtocolSimulator::draw(const model::FailureDistribution& dist,
                                  rng::RngStream& rng) {
  // Pool (CRN) mode: the unit variate comes from the shared sequence and
  // the stream is left untouched; only the cheap scaling runs here.
  if (pool_cursor_ != nullptr) return dist.from_unit(pool_cursor_->next());
  if (!batched_) return dist.sample(rng);
  // Shared unit block: uniforms leave the stream in the historical draw
  // order, the expensive inversion runs in bulk (tier-dispatched: the
  // scalar reference transform or the vectorized kernels), and each draw
  // is dist.from_unit(z) == the value dist.sample() would have produced
  // under the scalar tier.
  return dist.from_unit(units_.next([&](double* z, std::size_t n) {
    unit_src_->sample_units_fast(rng, z, n);
    expected_state_ = rng.engine().state();
  }));
}

PatternStats DesProtocolSimulator::simulate_pattern(rng::RngStream& rng,
                                                    Trace* trace,
                                                    double start_time) {
  enum class Phase { kWork, kVerify, kCheckpoint, kRecovery };

  PatternStats stats;
  // Fresh id epoch per pattern: ids (and so tie-breaks) are identical to
  // the historical fresh-queue-per-pattern behaviour, but the arena is
  // reused — no allocation once warm.
  queue_.clear();
  // Stale-prefetch guard: variates buffered from a previous call are
  // only valid if `rng` is the same stream at the same position. A
  // fingerprint mismatch means the caller switched streams without
  // begin_replica(); discard the buffer so the new stream's own words
  // are consumed in order.
  if (batched_ && units_.buffered() > 0 &&
      rng.engine().state() != expected_state_) {
    units_.reset();
  }
  double clock = start_time;

  Phase phase = Phase::kWork;
  double phase_start = clock;
  bool silent_struck = false;
  std::uint64_t phase_end_id = kNoEvent;
  std::uint64_t silent_id = kNoEvent;
  std::uint64_t fail_stop_id = kNoEvent;

  // `discard_at` is the exact event time at which the scheduled arrival
  // would be discarded anyway: under renewal the pending fail-stop dies
  // at the next renewal point (attempt end ((clock+T)+V)+C or recovery
  // end clock+R — computed with the same additions the phase-end chain
  // will perform, so the comparison is exact). An arrival strictly
  // beyond that point can never fire, so skipping its push spares the
  // heap the schedule-then-discard round trip; the draw still consumed
  // its words. The comparison must be strict: a fail-stop pushed at an
  // attempt start carries an *older* id than the verify/checkpoint
  // phase-ends pushed later, so on an exact time tie at the attempt end
  // the fail-stop pops first and must strike (trace-replay
  // distributions have atoms, so exact ties carry real probability).
  // At a tie on a recovery end the recovery phase-end is older and pops
  // first, and the pushed arrival is then cancelled by the renewal —
  // bit-identical to the historical schedule-then-cancel path.
  // Memoryless sources keep their pending arrival across renewal points
  // and are always pushed.
  const auto schedule_fail_stop = [&](double discard_at) {
    if (lf_ > 0.0) {
      const double arrival = clock + draw(*fail_dist_, rng);
      if (renewal_ && arrival > discard_at) return;
      fail_stop_id = queue_.push(arrival, EventType::kFailStop);
    }
  };
  const auto attempt_end = [&] { return ((clock + t_) + v_) + c_; };
  const auto begin_phase = [&](Phase next, double duration) {
    phase = next;
    phase_start = clock;
    phase_end_id = queue_.push(clock + duration, EventType::kPhaseEnd);
  };
  const auto begin_attempt = [&] {
    if (stats.attempts >= kMaxPatternAttempts) {
      throw_diverged(pattern_, lf_, ls_);
    }
    ++stats.attempts;
    silent_struck = false;
    begin_phase(Phase::kWork, t_);
    if (ls_ > 0.0) {
      const double arrival = clock + draw(*silent_dist_, rng);
      // A silent arrival at or beyond the work phase-end can never fire:
      // the phase-end (same time or earlier, and the older id) pops
      // first and cancels it. Skipping the push spares the heap the
      // schedule-then-cancel round trip of almost every silent arrival;
      // the draw itself still happened, so the stream is unchanged.
      if (arrival < clock + t_) {
        silent_id = queue_.push(arrival, EventType::kSilent);
      }
    }
  };
  const auto cancel_if_pending = [&](std::uint64_t& id) {
    if (id != kNoEvent) {
      queue_.cancel(id);
      id = kNoEvent;
    }
  };
  // Renewal point for non-memoryless distributions: discard the pending
  // arrival and draw a fresh one, mirroring the fast sampler's one-draw-
  // per-attempt / per-recovery-try structure. Memoryless arrivals keep
  // their pending draw (the historical exponential path, bit-for-bit).
  const auto renew_fail_stop = [&](double discard_at) {
    if (!renewal_) return;
    cancel_if_pending(fail_stop_id);
    schedule_fail_stop(discard_at);
  };
  const auto trace_segment = [&](double begin, double end, SegmentKind kind) {
    if (trace != nullptr) trace->add(begin, end, kind);
  };
  const auto phase_kind = [&]() -> SegmentKind {
    switch (phase) {
      case Phase::kWork: return SegmentKind::kCompute;
      case Phase::kVerify: return SegmentKind::kVerify;
      case Phase::kCheckpoint: return SegmentKind::kCheckpoint;
      case Phase::kRecovery: return SegmentKind::kRecovery;
    }
    AYD_ENSURE(false, "unreachable phase");
  };

  begin_attempt();
  schedule_fail_stop(attempt_end());

  for (;;) {
    const auto event = queue_.pop();
    AYD_ENSURE(event.has_value(), "protocol simulation ran out of events");
    clock = event->time;

    switch (event->type) {
      case EventType::kSilent: {
        silent_id = kNoEvent;
        // Fires only during the work phase: it is scheduled at work start
        // and cancelled when the phase ends or is preempted.
        AYD_ENSURE(phase == Phase::kWork, "silent error outside computation");
        silent_struck = true;
        break;
      }

      case EventType::kFailStop: {
        fail_stop_id = kNoEvent;
        if (stats.fail_stop_errors >= kMaxPatternAttempts) {
          throw_diverged(pattern_, lf_, ls_);
        }
        ++stats.fail_stop_errors;
        if (phase == Phase::kRecovery) ++stats.recovery_fail_stops;
        if (silent_struck) {
          // Masked: the rollback the fail-stop forces also repairs the
          // corruption, so the verification never has to catch it.
          ++stats.masked_silent;
          silent_struck = false;
        }
        cancel_if_pending(phase_end_id);
        cancel_if_pending(silent_id);
        // The partial phase execution is lost.
        trace_segment(phase_start, clock,
                      phase == Phase::kWork ? SegmentKind::kWasted
                                            : phase_kind());
        // Downtime: nothing can fail, no events pending by construction.
        trace_segment(clock, clock + d_, SegmentKind::kDowntime);
        clock += d_;
        begin_phase(Phase::kRecovery, r_);
        schedule_fail_stop(clock + r_);  // fresh arrival after downtime
        break;
      }

      case EventType::kPhaseEnd: {
        phase_end_id = kNoEvent;
        switch (phase) {
          case Phase::kWork:
            cancel_if_pending(silent_id);
            trace_segment(phase_start, clock,
                          silent_struck ? SegmentKind::kWasted
                                        : SegmentKind::kCompute);
            begin_phase(Phase::kVerify, v_);
            break;
          case Phase::kVerify:
            trace_segment(phase_start, clock, SegmentKind::kVerify);
            if (silent_struck) {
              ++stats.silent_detections;
              silent_struck = false;
              begin_phase(Phase::kRecovery, r_);
              renew_fail_stop(clock + r_);  // fresh draw per recovery try
            } else {
              begin_phase(Phase::kCheckpoint, c_);
            }
            break;
          case Phase::kCheckpoint:
            trace_segment(phase_start, clock, SegmentKind::kCheckpoint);
            stats.wall_time = clock - start_time;
            return stats;
          case Phase::kRecovery:
            trace_segment(phase_start, clock, SegmentKind::kRecovery);
            begin_attempt();
            renew_fail_stop(attempt_end());  // fresh draw per attempt
            break;
        }
        break;
      }
    }
  }
}

FastProtocolSimulator::FastProtocolSimulator(const model::System& sys,
                                             const core::Pattern& pattern)
    : pattern_(pattern),
      lf_(sys.fail_stop_rate(pattern.procs)),
      ls_(sys.silent_rate(pattern.procs)),
      t_(pattern.period),
      v_(sys.verification_cost(pattern.procs)),
      c_(sys.checkpoint_cost(pattern.procs)),
      r_(sys.recovery_cost(pattern.procs)),
      d_(sys.downtime()),
      tv_(t_ + v_),
      tvc_(t_ + v_ + c_),
      fail_dist_(sys.failure().dist().instantiate(lf_)),
      silent_dist_(sys.failure().dist().instantiate(ls_)),
      lazy_(sources_unit_samplable(lf_, *fail_dist_, ls_, *silent_dist_)) {
  core::validate(pattern);
  if (lazy_) {
    if (lf_ > 0.0) {
      mthr_fail_ = safe_word_threshold(*fail_dist_, tvc_);
      mthr_rec_ = safe_word_threshold(*fail_dist_, r_);
    }
    if (ls_ > 0.0) mthr_silent_ = safe_word_threshold(*silent_dist_, t_);

    // Devirtualized from_unit scaling for the pool and block loops. The
    // expressions reproduce the scalar from_unit bit-for-bit: the
    // Weibull multiplies by its scale (from_unit(1.0) == the scale
    // exactly), the exponential divides by its rate, and the lognormal
    // stays a virtual call (its scaling is an exp, not a constant).
    const auto scaling_of = [](const model::FailureDistribution& dist,
                               UnitScaling& scaling, double& factor) {
      switch (dist.kind()) {
        case model::FailureDistKind::kWeibull:
          scaling = UnitScaling::kLinear;
          factor = dist.from_unit(1.0);
          break;
        case model::FailureDistKind::kExponential:
          scaling = UnitScaling::kDivide;
          factor = dist.rate();
          break;
        default:
          scaling = UnitScaling::kVirtual;
          factor = 0.0;
          break;
      }
    };
    if (lf_ > 0.0) scaling_of(*fail_dist_, fail_scaling_, fail_factor_);
    if (ls_ > 0.0) scaling_of(*silent_dist_, silent_scaling_, silent_factor_);

    if (lf_ > 0.0 || ls_ > 0.0) {
      unit_src_ = lf_ > 0.0 ? fail_dist_.get() : silent_dist_.get();
      // The block pipeline pays a fixed per-draw staging cost (engine
      // words staged through arrays instead of registers) and transforms
      // every lane, so it only beats the scalar-dispatch loop when the
      // unit transform is genuinely expensive per element — the
      // Weibull's pow; the lognormal's scalar quantile is already cheap
      // — AND enough draws land below threshold that the historical loop
      // would pay that cost often. Each attempt draws once per active
      // channel, so the mean of the active thresholds (as a fraction of
      // the 2^53 word space) is exactly the expected transformed-draw
      // rate. The exponential never enables it, so its fast path stays
      // byte-identical to the scalar tier under every tier; the shapes
      // that stay scalar here still reach the vectorized kernels through
      // the DES prefetcher and the CRN variate pools, which batch
      // naturally with no staging penalty.
      std::uint64_t thr_sum = 0;
      int channels = 0;
      if (lf_ > 0.0) thr_sum += mthr_fail_, ++channels;
      if (ls_ > 0.0) thr_sum += mthr_silent_, ++channels;
      const double mean_transform_fraction =
          static_cast<double>(thr_sum) * 0x1.0p-53 /
          static_cast<double>(channels);
      block_mode_ = !unit_src_->memoryless() &&
                    unit_src_->kind() == model::FailureDistKind::kWeibull &&
                    mean_transform_fraction >= kBlockModeMinTransformFraction &&
                    rng::simd::active_tier() != rng::simd::Tier::kScalar;
    }
  }
}

void FastProtocolSimulator::set_unit_cursor(UnitVariatePool::Cursor* cursor) {
  AYD_REQUIRE(cursor == nullptr || lazy_,
              "set_unit_cursor: an active source does not factor through "
              "unit variates");
  pool_cursor_ = cursor;
}

PatternStats FastProtocolSimulator::simulate_pattern(rng::RngStream& rng) {
  if (!lazy_) return simulate_pattern_general(rng);
  // One pattern is the n == 1 replica (merging into zeroed totals is the
  // identity, bitwise: every counter starts at 0 and wall_time > 0).
  return simulate_replica(rng, 1);
}

PatternStats FastProtocolSimulator::simulate_pattern_general(
    rng::RngStream& rng) {
  PatternStats stats;
  double wall = 0.0;

  // A fresh arrival per attempt / per recovery try. Exponential draws go
  // through the historical inverse-CDF path (identical words consumed);
  // other distributions sample by quantile inversion. Zero-rate sources
  // skip the stream entirely, as they always did.
  const auto sample_fail = [&] {
    return lf_ > 0.0 ? fail_dist_->sample(rng) : kInf;
  };
  const auto sample_silent = [&] {
    return ls_ > 0.0 ? silent_dist_->sample(rng) : kInf;
  };
  // Repeated recovery attempts until one completes without a fail-stop.
  const auto run_recovery = [&] {
    for (;;) {
      const double y = sample_fail();
      if (y < r_) {
        if (stats.fail_stop_errors >= kMaxPatternAttempts) {
          throw_diverged(pattern_, lf_, ls_);
        }
        ++stats.fail_stop_errors;
        ++stats.recovery_fail_stops;
        wall += y + d_;
        continue;
      }
      wall += r_;
      return;
    }
  };

  for (;;) {
    if (stats.attempts >= kMaxPatternAttempts) {
      throw_diverged(pattern_, lf_, ls_);
    }
    ++stats.attempts;
    const double x = sample_fail();
    const double s_arrival = sample_silent();
    const bool silent = s_arrival < t_;

    if (x < t_ + v_) {
      // Fail-stop during compute or verification.
      ++stats.fail_stop_errors;
      if (silent && s_arrival < x) ++stats.masked_silent;
      wall += x + d_;
      run_recovery();
      continue;
    }
    if (silent) {
      // Survived to the end of verification; the silent error is caught.
      ++stats.silent_detections;
      wall += t_ + v_;
      run_recovery();
      continue;
    }
    if (x < t_ + v_ + c_) {
      // Fail-stop while storing the checkpoint.
      ++stats.fail_stop_errors;
      wall += x + d_;
      run_recovery();
      continue;
    }
    wall += t_ + v_ + c_;
    stats.wall_time = wall;
    return stats;
  }
}

PatternStats DesProtocolSimulator::simulate_replica(rng::RngStream& rng,
                                                    std::size_t n) {
  PatternStats totals;
  for (std::size_t p = 0; p < n; ++p) {
    totals.merge(simulate_pattern(rng));
  }
  return totals;
}

PatternStats FastProtocolSimulator::simulate_replica(rng::RngStream& rng,
                                                     std::size_t n) {
  PatternStats totals;
  if (!lazy_) {
    for (std::size_t p = 0; p < n; ++p) {
      totals.merge(simulate_pattern_general(rng));
    }
    return totals;
  }
  if (pool_cursor_ != nullptr) return simulate_replica_pool(n);
  if (block_mode_) return simulate_replica_block(rng, n);

  // The threshold-filtered replica loop. Each draw consumes exactly the
  // word the historical sampler would have, but the expensive quantile
  // inversion only happens when the word lands below the precomputed CDF
  // threshold — i.e. when the arrival *can* strike inside the window the
  // decision needs. A draw left at +inf behaves in every comparison
  // below exactly like the exact value would (the threshold guarantees
  // the exact value lies beyond every window it is compared against).
  //
  // The engine state is copied into a local so the common case — two
  // words, two integer compares, one accumulate per pattern — runs
  // entirely in registers; the guard object writes the state back even
  // if the divergence bound throws mid-replica.
  rng::Xoshiro256 eng = rng.engine();
  struct SyncEngine {
    rng::Xoshiro256& local;
    rng::RngStream& stream;
    ~SyncEngine() { stream.engine() = local; }
  } sync{eng, rng};

  const bool have_fail = lf_ > 0.0;
  const bool have_silent = ls_ > 0.0;
  const std::uint64_t mthr_fail = mthr_fail_;
  const std::uint64_t mthr_silent = mthr_silent_;
  const std::uint64_t mthr_rec = mthr_rec_;
  const double t = t_, tv = tv_, tvc = tvc_, r = r_, d = d_;

  for (std::size_t p = 0; p < n; ++p) {
    // Per-pattern accumulators live in registers; PatternStats is only
    // touched once per pattern, at the merge below.
    double wall = 0.0;
    std::uint64_t attempts = 0;
    std::uint64_t fail_stops = 0;
    std::uint64_t recovery_fails = 0;
    std::uint64_t detections = 0;
    std::uint64_t masked = 0;

    const auto run_recovery = [&] {
      for (;;) {
        double y = kInf;
        if (have_fail) {
          const std::uint64_t m = eng() >> 11;
          if (m < mthr_rec) {
            y = fail_dist_->sample_value(static_cast<double>(m) * 0x1.0p-53);
          }
        }
        if (y < r) {
          if (fail_stops >= kMaxPatternAttempts) {
            throw_diverged(pattern_, lf_, ls_);
          }
          ++fail_stops;
          ++recovery_fails;
          wall += y + d;
          continue;
        }
        wall += r;
        return;
      }
    };

    for (;;) {
      if (attempts >= kMaxPatternAttempts) {
        throw_diverged(pattern_, lf_, ls_);
      }
      ++attempts;
      // First fail-stop arrival within this attempt (the renewal point;
      // for the exponential, memorylessness makes this equivalent to a
      // persistent arrival clock).
      double x = kInf;
      if (have_fail) {
        const std::uint64_t m = eng() >> 11;
        if (m < mthr_fail) {
          x = fail_dist_->sample_value(static_cast<double>(m) * 0x1.0p-53);
        }
      }
      // First silent arrival within the computation.
      double s_arrival = kInf;
      if (have_silent) {
        const std::uint64_t m = eng() >> 11;
        if (m < mthr_silent) {
          s_arrival =
              silent_dist_->sample_value(static_cast<double>(m) * 0x1.0p-53);
        }
      }
      const bool silent = s_arrival < t;

      if (x < tv) {
        // Fail-stop during compute or verification.
        ++fail_stops;
        if (silent && s_arrival < x) ++masked;
        wall += x + d;
        run_recovery();
        continue;
      }
      if (silent) {
        // Survived to the end of verification; the silent error is
        // caught.
        ++detections;
        wall += tv;
        run_recovery();
        continue;
      }
      if (x < tvc) {
        // Fail-stop while storing the checkpoint.
        ++fail_stops;
        wall += x + d;
        run_recovery();
        continue;
      }
      wall += tvc;
      break;
    }

    totals.wall_time += wall;
    totals.attempts += attempts;
    totals.fail_stop_errors += fail_stops;
    totals.recovery_fail_stops += recovery_fails;
    totals.silent_detections += detections;
    totals.masked_silent += masked;
  }
  return totals;
}

PatternStats FastProtocolSimulator::simulate_replica_pool(std::size_t n) {
  // Under a SIMD tier the unit-space walk below is preferred: it makes
  // the same decisions up to the rounding of the rescaled window bounds,
  // which is exactly the freedom the SIMD golden tier declares. The
  // scalar reference tier must stay bit-identical to per-point sampling
  // (tests/engine_crn_test.cpp), so it keeps the exact loop.
  if (rng::simd::active_tier() != rng::simd::Tier::kScalar &&
      (lf_ <= 0.0 || fail_scaling_ != UnitScaling::kVirtual) &&
      (ls_ <= 0.0 || silent_scaling_ != UnitScaling::kVirtual)) {
    return simulate_replica_pool_units(n);
  }
  // CRN replica loop: the expensive unit transforms were paid once, in
  // the shared pool; each draw here is one cursor read plus the cheap
  // from_unit scaling. Computing every arrival exactly (no threshold
  // filter) is bit-identical to the filtered loop in the scalar tier:
  // the filter only ever suppresses computing values that lose every
  // comparison they appear in, and here the value is nearly free.
  // The cursor is walked through a local copy (as the filtered loop does
  // with the engine state) so its position and chunk pointer live in
  // registers between the rare refills; the guard writes the position
  // back even if the divergence bound throws mid-replica. The scaling
  // selectors and factors are hoisted for the same reason — they are
  // loop-invariant, but the compiler cannot prove that across the stats
  // stores without the local copies.
  UnitVariatePool::Cursor cur = *pool_cursor_;
  struct SyncCursor {
    UnitVariatePool::Cursor& local;
    UnitVariatePool::Cursor& shared;
    ~SyncCursor() { shared = local; }
  } sync{cur, *pool_cursor_};
  PatternStats totals;

  const bool have_fail = lf_ > 0.0;
  const bool have_silent = ls_ > 0.0;
  const UnitScaling fail_scaling = fail_scaling_;
  const UnitScaling silent_scaling = silent_scaling_;
  const double fail_factor = fail_factor_;
  const double silent_factor = silent_factor_;
  const double t = t_, tv = tv_, tvc = tvc_, r = r_, d = d_;

  const auto fail_arrival = [&]() -> double {
    if (!have_fail) return kInf;
    const double z = cur.next();
    switch (fail_scaling) {
      case UnitScaling::kLinear: return fail_factor * z;
      case UnitScaling::kDivide: return z / fail_factor;
      default: return fail_dist_->from_unit(z);
    }
  };
  const auto silent_arrival = [&]() -> double {
    if (!have_silent) return kInf;
    const double z = cur.next();
    switch (silent_scaling) {
      case UnitScaling::kLinear: return silent_factor * z;
      case UnitScaling::kDivide: return z / silent_factor;
      default: return silent_dist_->from_unit(z);
    }
  };

  for (std::size_t p = 0; p < n; ++p) {
    double wall = 0.0;
    std::uint64_t attempts = 0;
    std::uint64_t fail_stops = 0;
    std::uint64_t recovery_fails = 0;
    std::uint64_t detections = 0;
    std::uint64_t masked = 0;

    const auto run_recovery = [&] {
      for (;;) {
        const double y = fail_arrival();
        if (y < r) {
          if (fail_stops >= kMaxPatternAttempts) {
            throw_diverged(pattern_, lf_, ls_);
          }
          ++fail_stops;
          ++recovery_fails;
          wall += y + d;
          continue;
        }
        wall += r;
        return;
      }
    };

    for (;;) {
      if (attempts >= kMaxPatternAttempts) {
        throw_diverged(pattern_, lf_, ls_);
      }
      ++attempts;
      const double x = fail_arrival();
      const double s_arrival = silent_arrival();
      const bool silent = s_arrival < t;

      if (x < tv) {
        ++fail_stops;
        if (silent && s_arrival < x) ++masked;
        wall += x + d;
        run_recovery();
        continue;
      }
      if (silent) {
        ++detections;
        wall += tv;
        run_recovery();
        continue;
      }
      if (x < tvc) {
        ++fail_stops;
        wall += x + d;
        run_recovery();
        continue;
      }
      wall += tvc;
      break;
    }

    totals.wall_time += wall;
    totals.attempts += attempts;
    totals.fail_stop_errors += fail_stops;
    totals.recovery_fail_stops += recovery_fails;
    totals.silent_detections += detections;
    totals.masked_silent += masked;
  }
  return totals;
}

PatternStats FastProtocolSimulator::simulate_replica_pool_units(
    std::size_t n) {
  // Unit-space CRN walk (SIMD golden tier). Instead of scaling every
  // pool read into an arrival time and comparing it against the pattern
  // windows, the windows are rescaled into unit space once — z < w/f
  // decides what f·z < w decides, up to one rounding of the bound — so
  // the hot path is a raw sequential read and a compare. Arrival times
  // are materialized (with the exact from_unit expressions) only on the
  // branches that add them to the wall clock or compare across channels,
  // i.e. at the failure rate, not the draw rate. Decisions can differ
  // from the exact loop only when a draw lands within an ulp of a
  // window bound; that freedom belongs to the SIMD tier, whose results
  // are its own golden tier — the scalar reference tier never routes
  // here.
  UnitVariatePool::Cursor cur = *pool_cursor_;
  struct SyncCursor {
    UnitVariatePool::Cursor& local;
    UnitVariatePool::Cursor& shared;
    ~SyncCursor() { shared = local; }
  } sync{cur, *pool_cursor_};
  PatternStats totals;

  const bool have_fail = lf_ > 0.0;
  const bool have_silent = ls_ > 0.0;
  const bool both = have_fail && have_silent;
  const UnitScaling fsc = fail_scaling_;
  const UnitScaling ssc = silent_scaling_;
  const double ff = fail_factor_;
  const double sf = silent_factor_;
  // A window bound in unit space; inactive channels draw kInf, which
  // loses against any finite (or zero) bound just as the exact loop's
  // kInf arrival loses against any window.
  const auto unit_bound = [](UnitScaling sc, double factor, double window) {
    return sc == UnitScaling::kLinear ? window / factor : window * factor;
  };
  const auto arrival_of = [](UnitScaling sc, double factor, double z) {
    return sc == UnitScaling::kLinear ? factor * z : z / factor;
  };
  const double tv_z = have_fail ? unit_bound(fsc, ff, tv_) : 0.0;
  const double tvc_z = have_fail ? unit_bound(fsc, ff, tvc_) : 0.0;
  const double r_z = have_fail ? unit_bound(fsc, ff, r_) : 0.0;
  const double t_z = have_silent ? unit_bound(ssc, sf, t_) : 0.0;
  const double tv = tv_, tvc = tvc_, r = r_, d = d_;

  for (std::size_t p = 0; p < n; ++p) {
    // The wall clock decomposes into counter-weighted constants plus the
    // sum of the consumed arrivals: every fail stop adds its arrival and
    // one downtime d, every recovery that ends clean adds one r (each
    // non-completing attempt runs recovery exactly once, so that count
    // is attempts - 1), every detection adds one tv, and the completing
    // attempt adds tvc. Accumulating the raw unit variates and scaling
    // the sum once per pattern keeps the hot loop's only loop-carried
    // float chain at one add per fail stop; the resulting rounding
    // differs from the exact loop's running sum, which is within the
    // SIMD tier's golden freedom.
    double z_sum = 0.0;
    std::uint64_t attempts = 0;
    std::uint64_t fail_stops = 0;
    std::uint64_t recovery_fails = 0;
    std::uint64_t detections = 0;
    std::uint64_t masked = 0;

    const auto run_recovery = [&] {
      for (;;) {
        const double y_z = have_fail ? cur.next() : kInf;
        if (y_z < r_z) {
          if (fail_stops >= kMaxPatternAttempts) {
            throw_diverged(pattern_, lf_, ls_);
          }
          ++fail_stops;
          ++recovery_fails;
          z_sum += y_z;
          continue;
        }
        return;
      }
    };

    for (;;) {
      if (attempts >= kMaxPatternAttempts) {
        throw_diverged(pattern_, lf_, ls_);
      }
      ++attempts;
      double x_z, s_z;
      if (both) {
        cur.next2(x_z, s_z);
      } else {
        x_z = have_fail ? cur.next() : kInf;
        s_z = have_silent ? cur.next() : kInf;
      }
      const bool silent = s_z < t_z;

      if (x_z < tv_z) {
        ++fail_stops;
        if (silent &&
            arrival_of(ssc, sf, s_z) < arrival_of(fsc, ff, x_z)) {
          ++masked;
        }
        z_sum += x_z;
        run_recovery();
        continue;
      }
      if (silent) {
        ++detections;
        run_recovery();
        continue;
      }
      if (x_z < tvc_z) {
        ++fail_stops;
        z_sum += x_z;
        run_recovery();
        continue;
      }
      break;
    }

    totals.wall_time += arrival_of(fsc, ff, z_sum) +
                        d * static_cast<double>(fail_stops) +
                        r * static_cast<double>(attempts - 1) +
                        tv * static_cast<double>(detections) + tvc;
    totals.attempts += attempts;
    totals.fail_stop_errors += fail_stops;
    totals.recovery_fail_stops += recovery_fails;
    totals.silent_detections += detections;
    totals.masked_silent += masked;
  }
  return totals;
}

PatternStats FastProtocolSimulator::simulate_replica_block(rng::RngStream& rng,
                                                           std::size_t n) {
  // SIMD-tier block pipeline for expensive non-memoryless transforms.
  // Words leave the engine in the historical order but in blocks of
  // kVariateBlockSize, and every lane is pushed through one full-width
  // vectorized units_from_uniforms call — transforming all lanes beats
  // compacting the below-threshold ones, because the vector kernel at
  // full width costs less than the scatter/gather and the ragged-count
  // calls the compaction needs. The attempt loop below then never calls
  // a transcendental: a draw is two array reads, and a below-threshold
  // arrival is one multiply (Weibull) away.
  //
  // Like the DES prefetcher, buffered words survive call boundaries via
  // the engine-state fingerprint, so simulate_pattern n times ==
  // simulate_replica(rng, n) and stream switches self-heal.
  if (block_len_ > block_pos_ && rng.engine().state() != expected_state_) {
    block_pos_ = block_len_ = 0;
  }

  rng::Xoshiro256 eng = rng.engine();
  struct SyncEngine {
    rng::Xoshiro256& local;
    rng::RngStream& stream;
    ~SyncEngine() { stream.engine() = local; }
  } sync{eng, rng};

  PatternStats totals;
  const bool have_fail = lf_ > 0.0;
  const bool have_silent = ls_ > 0.0;
  const std::uint64_t mthr_fail = mthr_fail_;
  const std::uint64_t mthr_silent = mthr_silent_;
  const std::uint64_t mthr_rec = mthr_rec_;
  const double t = t_, tv = tv_, tvc = tvc_, r = r_, d = d_;

  const auto refill = [&] {
    for (std::size_t i = 0; i < rng::kVariateBlockSize; ++i) {
      const std::uint64_t m = eng() >> 11;
      block_m_[i] = m;
      block_z_[i] = static_cast<double>(m) * 0x1.0p-53;
    }
    unit_src_->units_from_uniforms(block_z_.data(), rng::kVariateBlockSize);
    block_pos_ = 0;
    block_len_ = rng::kVariateBlockSize;
    expected_state_ = eng.state();
  };
  // Every lane carries a valid unit variate; above-threshold draws just
  // never read theirs.
  const auto next_draw = [&](std::uint64_t& m, double& z) {
    if (block_pos_ == block_len_) refill();
    m = block_m_[block_pos_];
    z = block_z_[block_pos_];
    ++block_pos_;
  };
  const auto scale_fail = [&](double z) {
    switch (fail_scaling_) {
      case UnitScaling::kLinear: return fail_factor_ * z;
      case UnitScaling::kDivide: return z / fail_factor_;
      default: return fail_dist_->from_unit(z);
    }
  };
  const auto scale_silent = [&](double z) {
    switch (silent_scaling_) {
      case UnitScaling::kLinear: return silent_factor_ * z;
      case UnitScaling::kDivide: return z / silent_factor_;
      default: return silent_dist_->from_unit(z);
    }
  };

  for (std::size_t p = 0; p < n; ++p) {
    double wall = 0.0;
    std::uint64_t attempts = 0;
    std::uint64_t fail_stops = 0;
    std::uint64_t recovery_fails = 0;
    std::uint64_t detections = 0;
    std::uint64_t masked = 0;

    const auto run_recovery = [&] {
      for (;;) {
        double y = kInf;
        if (have_fail) {
          std::uint64_t m;
          double z;
          next_draw(m, z);
          if (m < mthr_rec) y = scale_fail(z);
        }
        if (y < r) {
          if (fail_stops >= kMaxPatternAttempts) {
            throw_diverged(pattern_, lf_, ls_);
          }
          ++fail_stops;
          ++recovery_fails;
          wall += y + d;
          continue;
        }
        wall += r;
        return;
      }
    };

    for (;;) {
      if (attempts >= kMaxPatternAttempts) {
        throw_diverged(pattern_, lf_, ls_);
      }
      ++attempts;
      double x = kInf;
      if (have_fail) {
        std::uint64_t m;
        double z;
        next_draw(m, z);
        if (m < mthr_fail) x = scale_fail(z);
      }
      double s_arrival = kInf;
      if (have_silent) {
        std::uint64_t m;
        double z;
        next_draw(m, z);
        if (m < mthr_silent) s_arrival = scale_silent(z);
      }
      const bool silent = s_arrival < t;

      if (x < tv) {
        ++fail_stops;
        if (silent && s_arrival < x) ++masked;
        wall += x + d;
        run_recovery();
        continue;
      }
      if (silent) {
        ++detections;
        wall += tv;
        run_recovery();
        continue;
      }
      if (x < tvc) {
        ++fail_stops;
        wall += x + d;
        run_recovery();
        continue;
      }
      wall += tvc;
      break;
    }

    totals.wall_time += wall;
    totals.attempts += attempts;
    totals.fail_stop_errors += fail_stops;
    totals.recovery_fail_stops += recovery_fails;
    totals.silent_detections += detections;
    totals.masked_silent += masked;
  }
  return totals;
}

}  // namespace ayd::sim
