#include "ayd/sim/protocol.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"

namespace ayd::sim {

namespace {

constexpr std::uint64_t kNoEvent = std::numeric_limits<std::uint64_t>::max();

[[noreturn]] void throw_diverged(const core::Pattern& pattern, double lf,
                                 double ls) {
  std::ostringstream os;
  os << "pattern did not complete within " << kMaxPatternAttempts
     << " attempts (T=" << pattern.period << ", P=" << pattern.procs
     << ", lambda_f=" << lf << ", lambda_s=" << ls
     << "); the per-attempt success probability is too small";
  throw util::SimulationDiverged(os.str());
}

}  // namespace

DesProtocolSimulator::DesProtocolSimulator(const model::System& sys,
                                           const core::Pattern& pattern)
    : pattern_(pattern),
      lf_(sys.fail_stop_rate(pattern.procs)),
      ls_(sys.silent_rate(pattern.procs)),
      t_(pattern.period),
      v_(sys.verification_cost(pattern.procs)),
      c_(sys.checkpoint_cost(pattern.procs)),
      r_(sys.recovery_cost(pattern.procs)),
      d_(sys.downtime()),
      fail_dist_(sys.failure().dist().instantiate(lf_)),
      silent_dist_(sys.failure().dist().instantiate(ls_)),
      renewal_(!fail_dist_->memoryless()) {
  core::validate(pattern);
}

PatternStats DesProtocolSimulator::simulate_pattern(rng::RngStream& rng,
                                                    Trace* trace,
                                                    double start_time) {
  enum class Phase { kWork, kVerify, kCheckpoint, kRecovery };

  PatternStats stats;
  EventQueue queue;
  double clock = start_time;

  Phase phase = Phase::kWork;
  double phase_start = clock;
  bool silent_struck = false;
  std::uint64_t phase_end_id = kNoEvent;
  std::uint64_t silent_id = kNoEvent;
  std::uint64_t fail_stop_id = kNoEvent;

  const auto schedule_fail_stop = [&] {
    if (lf_ > 0.0) {
      fail_stop_id = queue.push(clock + fail_dist_->sample(rng),
                                EventType::kFailStop);
    }
  };
  const auto begin_phase = [&](Phase next, double duration) {
    phase = next;
    phase_start = clock;
    phase_end_id = queue.push(clock + duration, EventType::kPhaseEnd);
  };
  const auto begin_attempt = [&] {
    if (stats.attempts >= kMaxPatternAttempts) {
      throw_diverged(pattern_, lf_, ls_);
    }
    ++stats.attempts;
    silent_struck = false;
    begin_phase(Phase::kWork, t_);
    if (ls_ > 0.0) {
      silent_id =
          queue.push(clock + silent_dist_->sample(rng), EventType::kSilent);
    }
  };
  const auto cancel_if_pending = [&](std::uint64_t& id) {
    if (id != kNoEvent) {
      queue.cancel(id);
      id = kNoEvent;
    }
  };
  // Renewal point for non-memoryless distributions: discard the pending
  // arrival and draw a fresh one, mirroring the fast sampler's one-draw-
  // per-attempt / per-recovery-try structure. Memoryless arrivals keep
  // their pending draw (the historical exponential path, bit-for-bit).
  const auto renew_fail_stop = [&] {
    if (!renewal_) return;
    cancel_if_pending(fail_stop_id);
    schedule_fail_stop();
  };
  const auto trace_segment = [&](double begin, double end, SegmentKind kind) {
    if (trace != nullptr) trace->add(begin, end, kind);
  };
  const auto phase_kind = [&]() -> SegmentKind {
    switch (phase) {
      case Phase::kWork: return SegmentKind::kCompute;
      case Phase::kVerify: return SegmentKind::kVerify;
      case Phase::kCheckpoint: return SegmentKind::kCheckpoint;
      case Phase::kRecovery: return SegmentKind::kRecovery;
    }
    AYD_ENSURE(false, "unreachable phase");
  };

  begin_attempt();
  schedule_fail_stop();

  for (;;) {
    const auto event = queue.pop();
    AYD_ENSURE(event.has_value(), "protocol simulation ran out of events");
    clock = event->time;

    switch (event->type) {
      case EventType::kSilent: {
        silent_id = kNoEvent;
        // Fires only during the work phase: it is scheduled at work start
        // and cancelled when the phase ends or is preempted.
        AYD_ENSURE(phase == Phase::kWork, "silent error outside computation");
        silent_struck = true;
        break;
      }

      case EventType::kFailStop: {
        fail_stop_id = kNoEvent;
        if (stats.fail_stop_errors >= kMaxPatternAttempts) {
          throw_diverged(pattern_, lf_, ls_);
        }
        ++stats.fail_stop_errors;
        if (phase == Phase::kRecovery) ++stats.recovery_fail_stops;
        if (silent_struck) {
          // Masked: the rollback the fail-stop forces also repairs the
          // corruption, so the verification never has to catch it.
          ++stats.masked_silent;
          silent_struck = false;
        }
        cancel_if_pending(phase_end_id);
        cancel_if_pending(silent_id);
        // The partial phase execution is lost.
        trace_segment(phase_start, clock,
                      phase == Phase::kWork ? SegmentKind::kWasted
                                            : phase_kind());
        // Downtime: nothing can fail, no events pending by construction.
        trace_segment(clock, clock + d_, SegmentKind::kDowntime);
        clock += d_;
        begin_phase(Phase::kRecovery, r_);
        schedule_fail_stop();  // fresh arrival after the quiet downtime
        break;
      }

      case EventType::kPhaseEnd: {
        phase_end_id = kNoEvent;
        switch (phase) {
          case Phase::kWork:
            cancel_if_pending(silent_id);
            trace_segment(phase_start, clock,
                          silent_struck ? SegmentKind::kWasted
                                        : SegmentKind::kCompute);
            begin_phase(Phase::kVerify, v_);
            break;
          case Phase::kVerify:
            trace_segment(phase_start, clock, SegmentKind::kVerify);
            if (silent_struck) {
              ++stats.silent_detections;
              silent_struck = false;
              begin_phase(Phase::kRecovery, r_);
              renew_fail_stop();  // fresh draw per recovery try
            } else {
              begin_phase(Phase::kCheckpoint, c_);
            }
            break;
          case Phase::kCheckpoint:
            trace_segment(phase_start, clock, SegmentKind::kCheckpoint);
            stats.wall_time = clock - start_time;
            return stats;
          case Phase::kRecovery:
            trace_segment(phase_start, clock, SegmentKind::kRecovery);
            begin_attempt();
            renew_fail_stop();  // fresh draw per attempt
            break;
        }
        break;
      }
    }
  }
}

FastProtocolSimulator::FastProtocolSimulator(const model::System& sys,
                                             const core::Pattern& pattern)
    : pattern_(pattern),
      lf_(sys.fail_stop_rate(pattern.procs)),
      ls_(sys.silent_rate(pattern.procs)),
      t_(pattern.period),
      v_(sys.verification_cost(pattern.procs)),
      c_(sys.checkpoint_cost(pattern.procs)),
      r_(sys.recovery_cost(pattern.procs)),
      d_(sys.downtime()),
      fail_dist_(sys.failure().dist().instantiate(lf_)),
      silent_dist_(sys.failure().dist().instantiate(ls_)) {
  core::validate(pattern);
}

PatternStats FastProtocolSimulator::simulate_pattern(rng::RngStream& rng) {
  PatternStats stats;
  double wall = 0.0;

  // A fresh arrival per attempt / per recovery try. Exponential draws go
  // through the historical inverse-CDF path (identical words consumed);
  // other distributions sample by quantile inversion. Zero-rate sources
  // skip the stream entirely, as they always did.
  const auto sample_fail = [&] {
    return lf_ > 0.0 ? fail_dist_->sample(rng)
                     : std::numeric_limits<double>::infinity();
  };
  const auto sample_silent = [&] {
    return ls_ > 0.0 ? silent_dist_->sample(rng)
                     : std::numeric_limits<double>::infinity();
  };
  // Repeated recovery attempts until one completes without a fail-stop.
  const auto run_recovery = [&] {
    for (;;) {
      const double y = sample_fail();
      if (y < r_) {
        if (stats.fail_stop_errors >= kMaxPatternAttempts) {
          throw_diverged(pattern_, lf_, ls_);
        }
        ++stats.fail_stop_errors;
        ++stats.recovery_fail_stops;
        wall += y + d_;
        continue;
      }
      wall += r_;
      return;
    }
  };

  for (;;) {
    if (stats.attempts >= kMaxPatternAttempts) {
      throw_diverged(pattern_, lf_, ls_);
    }
    ++stats.attempts;
    // First fail-stop arrival within this attempt (the renewal point; for
    // the exponential, memorylessness makes this equivalent to a
    // persistent arrival clock).
    const double x = sample_fail();
    // First silent arrival within the computation.
    const double s_arrival = sample_silent();
    const bool silent = s_arrival < t_;

    if (x < t_ + v_) {
      // Fail-stop during compute or verification.
      ++stats.fail_stop_errors;
      if (silent && s_arrival < x) ++stats.masked_silent;
      wall += x + d_;
      run_recovery();
      continue;
    }
    if (silent) {
      // Survived to the end of verification; the silent error is caught.
      ++stats.silent_detections;
      wall += t_ + v_;
      run_recovery();
      continue;
    }
    if (x < t_ + v_ + c_) {
      // Fail-stop while storing the checkpoint.
      ++stats.fail_stop_errors;
      wall += x + d_;
      run_recovery();
      continue;
    }
    wall += t_ + v_ + c_;
    stats.wall_time = wall;
    return stats;
  }
}

}  // namespace ayd::sim
