#include "ayd/sim/protocol.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"

namespace ayd::sim {

namespace {

constexpr std::uint64_t kNoEvent = std::numeric_limits<std::uint64_t>::max();
constexpr double kInf = std::numeric_limits<double>::infinity();

[[noreturn]] void throw_diverged(const core::Pattern& pattern, double lf,
                                 double ls) {
  std::ostringstream os;
  os << "pattern did not complete within " << kMaxPatternAttempts
     << " attempts (T=" << pattern.period << ", P=" << pattern.procs
     << ", lambda_f=" << lf << ", lambda_s=" << ls
     << "); the per-attempt success probability is too small";
  throw util::SimulationDiverged(os.str());
}

/// True when every *active* error source (rate > 0) draws exactly one
/// uniform per sample and factors through the unit-variate API.
bool sources_unit_samplable(double lf, const model::FailureDistribution& fd,
                            double ls, const model::FailureDistribution& sd) {
  if (lf > 0.0 && !fd.unit_samplable()) return false;
  if (ls > 0.0 && !sd.unit_samplable()) return false;
  return true;
}

}  // namespace

std::uint64_t safe_word_threshold(const model::FailureDistribution& dist,
                                  double window) {
  // The margin must dominate the *inconsistency* between cdf() and the
  // quantile inversion behind sample_value(), not just rounding noise.
  // Exponential and Weibull use algebraically matched expm1/log1p/pow
  // forms (disagreement ~1e-15 relative in u). The lognormal is the
  // hard case: its cdf uses accurate erfc while its quantile uses
  // Acklam's approximation (|rel err| ~1.15e-9 in z-space), which maps
  // to a u-space disagreement of up to ~1.15e-9 * z^2 relative to the
  // cdf value; words never reach below u = 2^-53, so |z| <= 8.2 and the
  // worst case is ~8e-8. The 1e-4 relative margin clears that by three
  // orders of magnitude, and its only cost is that a 1e-4 sliver of
  // below-threshold draws computes the exact arrival unnecessarily
  // (tests/sim_bitcompat_test.cpp scans the boundary for violations).
  const double c = dist.cdf(window);
  const double thr = std::min(1.0, c + (c * 1e-4 + 1e-300));
  return static_cast<std::uint64_t>(std::ceil(thr * 0x1.0p53));
}

DesProtocolSimulator::DesProtocolSimulator(const model::System& sys,
                                           const core::Pattern& pattern)
    : pattern_(pattern),
      lf_(sys.fail_stop_rate(pattern.procs)),
      ls_(sys.silent_rate(pattern.procs)),
      t_(pattern.period),
      v_(sys.verification_cost(pattern.procs)),
      c_(sys.checkpoint_cost(pattern.procs)),
      r_(sys.recovery_cost(pattern.procs)),
      d_(sys.downtime()),
      fail_dist_(sys.failure().dist().instantiate(lf_)),
      silent_dist_(sys.failure().dist().instantiate(ls_)),
      renewal_(!fail_dist_->memoryless()),
      batched_(sources_unit_samplable(lf_, *fail_dist_, ls_, *silent_dist_)) {
  core::validate(pattern);
  if (batched_) {
    unit_src_ = lf_ > 0.0 ? fail_dist_.get() : silent_dist_.get();
  }
  queue_.reserve(8);
}

double DesProtocolSimulator::draw(const model::FailureDistribution& dist,
                                  rng::RngStream& rng) {
  if (!batched_) return dist.sample(rng);
  // Shared unit block: uniforms leave the stream in the historical draw
  // order, the expensive inversion runs in bulk, and each draw is
  // dist.from_unit(z) == the value dist.sample() would have produced.
  return dist.from_unit(units_.next([&](double* z, std::size_t n) {
    unit_src_->sample_units(rng, z, n);
    expected_state_ = rng.engine().state();
  }));
}

PatternStats DesProtocolSimulator::simulate_pattern(rng::RngStream& rng,
                                                    Trace* trace,
                                                    double start_time) {
  enum class Phase { kWork, kVerify, kCheckpoint, kRecovery };

  PatternStats stats;
  // Fresh id epoch per pattern: ids (and so tie-breaks) are identical to
  // the historical fresh-queue-per-pattern behaviour, but the arena is
  // reused — no allocation once warm.
  queue_.clear();
  // Stale-prefetch guard: variates buffered from a previous call are
  // only valid if `rng` is the same stream at the same position. A
  // fingerprint mismatch means the caller switched streams without
  // begin_replica(); discard the buffer so the new stream's own words
  // are consumed in order.
  if (batched_ && units_.buffered() > 0 &&
      rng.engine().state() != expected_state_) {
    units_.reset();
  }
  double clock = start_time;

  Phase phase = Phase::kWork;
  double phase_start = clock;
  bool silent_struck = false;
  std::uint64_t phase_end_id = kNoEvent;
  std::uint64_t silent_id = kNoEvent;
  std::uint64_t fail_stop_id = kNoEvent;

  // `discard_at` is the exact event time at which the scheduled arrival
  // would be discarded anyway: under renewal the pending fail-stop dies
  // at the next renewal point (attempt end ((clock+T)+V)+C or recovery
  // end clock+R — computed with the same additions the phase-end chain
  // will perform, so the comparison is exact). An arrival strictly
  // beyond that point can never fire, so skipping its push spares the
  // heap the schedule-then-discard round trip; the draw still consumed
  // its words. The comparison must be strict: a fail-stop pushed at an
  // attempt start carries an *older* id than the verify/checkpoint
  // phase-ends pushed later, so on an exact time tie at the attempt end
  // the fail-stop pops first and must strike (trace-replay
  // distributions have atoms, so exact ties carry real probability).
  // At a tie on a recovery end the recovery phase-end is older and pops
  // first, and the pushed arrival is then cancelled by the renewal —
  // bit-identical to the historical schedule-then-cancel path.
  // Memoryless sources keep their pending arrival across renewal points
  // and are always pushed.
  const auto schedule_fail_stop = [&](double discard_at) {
    if (lf_ > 0.0) {
      const double arrival = clock + draw(*fail_dist_, rng);
      if (renewal_ && arrival > discard_at) return;
      fail_stop_id = queue_.push(arrival, EventType::kFailStop);
    }
  };
  const auto attempt_end = [&] { return ((clock + t_) + v_) + c_; };
  const auto begin_phase = [&](Phase next, double duration) {
    phase = next;
    phase_start = clock;
    phase_end_id = queue_.push(clock + duration, EventType::kPhaseEnd);
  };
  const auto begin_attempt = [&] {
    if (stats.attempts >= kMaxPatternAttempts) {
      throw_diverged(pattern_, lf_, ls_);
    }
    ++stats.attempts;
    silent_struck = false;
    begin_phase(Phase::kWork, t_);
    if (ls_ > 0.0) {
      const double arrival = clock + draw(*silent_dist_, rng);
      // A silent arrival at or beyond the work phase-end can never fire:
      // the phase-end (same time or earlier, and the older id) pops
      // first and cancels it. Skipping the push spares the heap the
      // schedule-then-cancel round trip of almost every silent arrival;
      // the draw itself still happened, so the stream is unchanged.
      if (arrival < clock + t_) {
        silent_id = queue_.push(arrival, EventType::kSilent);
      }
    }
  };
  const auto cancel_if_pending = [&](std::uint64_t& id) {
    if (id != kNoEvent) {
      queue_.cancel(id);
      id = kNoEvent;
    }
  };
  // Renewal point for non-memoryless distributions: discard the pending
  // arrival and draw a fresh one, mirroring the fast sampler's one-draw-
  // per-attempt / per-recovery-try structure. Memoryless arrivals keep
  // their pending draw (the historical exponential path, bit-for-bit).
  const auto renew_fail_stop = [&](double discard_at) {
    if (!renewal_) return;
    cancel_if_pending(fail_stop_id);
    schedule_fail_stop(discard_at);
  };
  const auto trace_segment = [&](double begin, double end, SegmentKind kind) {
    if (trace != nullptr) trace->add(begin, end, kind);
  };
  const auto phase_kind = [&]() -> SegmentKind {
    switch (phase) {
      case Phase::kWork: return SegmentKind::kCompute;
      case Phase::kVerify: return SegmentKind::kVerify;
      case Phase::kCheckpoint: return SegmentKind::kCheckpoint;
      case Phase::kRecovery: return SegmentKind::kRecovery;
    }
    AYD_ENSURE(false, "unreachable phase");
  };

  begin_attempt();
  schedule_fail_stop(attempt_end());

  for (;;) {
    const auto event = queue_.pop();
    AYD_ENSURE(event.has_value(), "protocol simulation ran out of events");
    clock = event->time;

    switch (event->type) {
      case EventType::kSilent: {
        silent_id = kNoEvent;
        // Fires only during the work phase: it is scheduled at work start
        // and cancelled when the phase ends or is preempted.
        AYD_ENSURE(phase == Phase::kWork, "silent error outside computation");
        silent_struck = true;
        break;
      }

      case EventType::kFailStop: {
        fail_stop_id = kNoEvent;
        if (stats.fail_stop_errors >= kMaxPatternAttempts) {
          throw_diverged(pattern_, lf_, ls_);
        }
        ++stats.fail_stop_errors;
        if (phase == Phase::kRecovery) ++stats.recovery_fail_stops;
        if (silent_struck) {
          // Masked: the rollback the fail-stop forces also repairs the
          // corruption, so the verification never has to catch it.
          ++stats.masked_silent;
          silent_struck = false;
        }
        cancel_if_pending(phase_end_id);
        cancel_if_pending(silent_id);
        // The partial phase execution is lost.
        trace_segment(phase_start, clock,
                      phase == Phase::kWork ? SegmentKind::kWasted
                                            : phase_kind());
        // Downtime: nothing can fail, no events pending by construction.
        trace_segment(clock, clock + d_, SegmentKind::kDowntime);
        clock += d_;
        begin_phase(Phase::kRecovery, r_);
        schedule_fail_stop(clock + r_);  // fresh arrival after downtime
        break;
      }

      case EventType::kPhaseEnd: {
        phase_end_id = kNoEvent;
        switch (phase) {
          case Phase::kWork:
            cancel_if_pending(silent_id);
            trace_segment(phase_start, clock,
                          silent_struck ? SegmentKind::kWasted
                                        : SegmentKind::kCompute);
            begin_phase(Phase::kVerify, v_);
            break;
          case Phase::kVerify:
            trace_segment(phase_start, clock, SegmentKind::kVerify);
            if (silent_struck) {
              ++stats.silent_detections;
              silent_struck = false;
              begin_phase(Phase::kRecovery, r_);
              renew_fail_stop(clock + r_);  // fresh draw per recovery try
            } else {
              begin_phase(Phase::kCheckpoint, c_);
            }
            break;
          case Phase::kCheckpoint:
            trace_segment(phase_start, clock, SegmentKind::kCheckpoint);
            stats.wall_time = clock - start_time;
            return stats;
          case Phase::kRecovery:
            trace_segment(phase_start, clock, SegmentKind::kRecovery);
            begin_attempt();
            renew_fail_stop(attempt_end());  // fresh draw per attempt
            break;
        }
        break;
      }
    }
  }
}

FastProtocolSimulator::FastProtocolSimulator(const model::System& sys,
                                             const core::Pattern& pattern)
    : pattern_(pattern),
      lf_(sys.fail_stop_rate(pattern.procs)),
      ls_(sys.silent_rate(pattern.procs)),
      t_(pattern.period),
      v_(sys.verification_cost(pattern.procs)),
      c_(sys.checkpoint_cost(pattern.procs)),
      r_(sys.recovery_cost(pattern.procs)),
      d_(sys.downtime()),
      tv_(t_ + v_),
      tvc_(t_ + v_ + c_),
      fail_dist_(sys.failure().dist().instantiate(lf_)),
      silent_dist_(sys.failure().dist().instantiate(ls_)),
      lazy_(sources_unit_samplable(lf_, *fail_dist_, ls_, *silent_dist_)) {
  core::validate(pattern);
  if (lazy_) {
    if (lf_ > 0.0) {
      mthr_fail_ = safe_word_threshold(*fail_dist_, tvc_);
      mthr_rec_ = safe_word_threshold(*fail_dist_, r_);
    }
    if (ls_ > 0.0) mthr_silent_ = safe_word_threshold(*silent_dist_, t_);
  }
}

PatternStats FastProtocolSimulator::simulate_pattern(rng::RngStream& rng) {
  if (!lazy_) return simulate_pattern_general(rng);
  // One pattern is the n == 1 replica (merging into zeroed totals is the
  // identity, bitwise: every counter starts at 0 and wall_time > 0).
  return simulate_replica(rng, 1);
}

PatternStats FastProtocolSimulator::simulate_pattern_general(
    rng::RngStream& rng) {
  PatternStats stats;
  double wall = 0.0;

  // A fresh arrival per attempt / per recovery try. Exponential draws go
  // through the historical inverse-CDF path (identical words consumed);
  // other distributions sample by quantile inversion. Zero-rate sources
  // skip the stream entirely, as they always did.
  const auto sample_fail = [&] {
    return lf_ > 0.0 ? fail_dist_->sample(rng) : kInf;
  };
  const auto sample_silent = [&] {
    return ls_ > 0.0 ? silent_dist_->sample(rng) : kInf;
  };
  // Repeated recovery attempts until one completes without a fail-stop.
  const auto run_recovery = [&] {
    for (;;) {
      const double y = sample_fail();
      if (y < r_) {
        if (stats.fail_stop_errors >= kMaxPatternAttempts) {
          throw_diverged(pattern_, lf_, ls_);
        }
        ++stats.fail_stop_errors;
        ++stats.recovery_fail_stops;
        wall += y + d_;
        continue;
      }
      wall += r_;
      return;
    }
  };

  for (;;) {
    if (stats.attempts >= kMaxPatternAttempts) {
      throw_diverged(pattern_, lf_, ls_);
    }
    ++stats.attempts;
    const double x = sample_fail();
    const double s_arrival = sample_silent();
    const bool silent = s_arrival < t_;

    if (x < t_ + v_) {
      // Fail-stop during compute or verification.
      ++stats.fail_stop_errors;
      if (silent && s_arrival < x) ++stats.masked_silent;
      wall += x + d_;
      run_recovery();
      continue;
    }
    if (silent) {
      // Survived to the end of verification; the silent error is caught.
      ++stats.silent_detections;
      wall += t_ + v_;
      run_recovery();
      continue;
    }
    if (x < t_ + v_ + c_) {
      // Fail-stop while storing the checkpoint.
      ++stats.fail_stop_errors;
      wall += x + d_;
      run_recovery();
      continue;
    }
    wall += t_ + v_ + c_;
    stats.wall_time = wall;
    return stats;
  }
}

PatternStats DesProtocolSimulator::simulate_replica(rng::RngStream& rng,
                                                    std::size_t n) {
  PatternStats totals;
  for (std::size_t p = 0; p < n; ++p) {
    totals.merge(simulate_pattern(rng));
  }
  return totals;
}

PatternStats FastProtocolSimulator::simulate_replica(rng::RngStream& rng,
                                                     std::size_t n) {
  PatternStats totals;
  if (!lazy_) {
    for (std::size_t p = 0; p < n; ++p) {
      totals.merge(simulate_pattern_general(rng));
    }
    return totals;
  }

  // The threshold-filtered replica loop. Each draw consumes exactly the
  // word the historical sampler would have, but the expensive quantile
  // inversion only happens when the word lands below the precomputed CDF
  // threshold — i.e. when the arrival *can* strike inside the window the
  // decision needs. A draw left at +inf behaves in every comparison
  // below exactly like the exact value would (the threshold guarantees
  // the exact value lies beyond every window it is compared against).
  //
  // The engine state is copied into a local so the common case — two
  // words, two integer compares, one accumulate per pattern — runs
  // entirely in registers; the guard object writes the state back even
  // if the divergence bound throws mid-replica.
  rng::Xoshiro256 eng = rng.engine();
  struct SyncEngine {
    rng::Xoshiro256& local;
    rng::RngStream& stream;
    ~SyncEngine() { stream.engine() = local; }
  } sync{eng, rng};

  const bool have_fail = lf_ > 0.0;
  const bool have_silent = ls_ > 0.0;
  const std::uint64_t mthr_fail = mthr_fail_;
  const std::uint64_t mthr_silent = mthr_silent_;
  const std::uint64_t mthr_rec = mthr_rec_;
  const double t = t_, tv = tv_, tvc = tvc_, r = r_, d = d_;

  for (std::size_t p = 0; p < n; ++p) {
    // Per-pattern accumulators live in registers; PatternStats is only
    // touched once per pattern, at the merge below.
    double wall = 0.0;
    std::uint64_t attempts = 0;
    std::uint64_t fail_stops = 0;
    std::uint64_t recovery_fails = 0;
    std::uint64_t detections = 0;
    std::uint64_t masked = 0;

    const auto run_recovery = [&] {
      for (;;) {
        double y = kInf;
        if (have_fail) {
          const std::uint64_t m = eng() >> 11;
          if (m < mthr_rec) {
            y = fail_dist_->sample_value(static_cast<double>(m) * 0x1.0p-53);
          }
        }
        if (y < r) {
          if (fail_stops >= kMaxPatternAttempts) {
            throw_diverged(pattern_, lf_, ls_);
          }
          ++fail_stops;
          ++recovery_fails;
          wall += y + d;
          continue;
        }
        wall += r;
        return;
      }
    };

    for (;;) {
      if (attempts >= kMaxPatternAttempts) {
        throw_diverged(pattern_, lf_, ls_);
      }
      ++attempts;
      // First fail-stop arrival within this attempt (the renewal point;
      // for the exponential, memorylessness makes this equivalent to a
      // persistent arrival clock).
      double x = kInf;
      if (have_fail) {
        const std::uint64_t m = eng() >> 11;
        if (m < mthr_fail) {
          x = fail_dist_->sample_value(static_cast<double>(m) * 0x1.0p-53);
        }
      }
      // First silent arrival within the computation.
      double s_arrival = kInf;
      if (have_silent) {
        const std::uint64_t m = eng() >> 11;
        if (m < mthr_silent) {
          s_arrival =
              silent_dist_->sample_value(static_cast<double>(m) * 0x1.0p-53);
        }
      }
      const bool silent = s_arrival < t;

      if (x < tv) {
        // Fail-stop during compute or verification.
        ++fail_stops;
        if (silent && s_arrival < x) ++masked;
        wall += x + d;
        run_recovery();
        continue;
      }
      if (silent) {
        // Survived to the end of verification; the silent error is
        // caught.
        ++detections;
        wall += tv;
        run_recovery();
        continue;
      }
      if (x < tvc) {
        // Fail-stop while storing the checkpoint.
        ++fail_stops;
        wall += x + d;
        run_recovery();
        continue;
      }
      wall += tvc;
      break;
    }

    totals.wall_time += wall;
    totals.attempts += attempts;
    totals.fail_stop_errors += fail_stops;
    totals.recovery_fail_stops += recovery_fails;
    totals.silent_detections += detections;
    totals.masked_silent += masked;
  }
  return totals;
}

}  // namespace ayd::sim
