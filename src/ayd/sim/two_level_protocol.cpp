#include "ayd/sim/two_level_protocol.hpp"

#include <limits>
#include <vector>

#include "ayd/sim/event_queue.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::sim {

namespace {

constexpr std::uint64_t kNoEvent = std::numeric_limits<std::uint64_t>::max();

}  // namespace

TwoLevelSimulator::TwoLevelSimulator(const core::TwoLevelSystem& sys,
                                     const core::TwoLevelPattern& pattern)
    : pattern_(pattern),
      lf_(sys.base.fail_stop_rate(pattern.procs)),
      ls_(sys.base.silent_rate(pattern.procs)),
      w_(pattern.period / pattern.segments),
      v_(sys.base.verification_cost(pattern.procs)),
      l1_(sys.level1_cost(pattern.procs)),
      c2_(sys.base.checkpoint_cost(pattern.procs)),
      r2_(sys.base.recovery_cost(pattern.procs)),
      d_(sys.base.downtime()) {
  core::validate(pattern);
}

PatternStats TwoLevelSimulator::simulate_pattern(rng::RngStream& rng) {
  PatternStats stats;
  double wall = 0.0;

  const auto sample = [&](double rate) {
    return rate > 0.0 ? rng.next_exponential(rate)
                      : std::numeric_limits<double>::infinity();
  };
  // Level-2 recovery with internal retries (each failed attempt costs its
  // lost time plus a downtime).
  const auto run_level2_recovery = [&] {
    for (;;) {
      if (stats.fail_stop_errors >= kMaxPatternAttempts) {
        throw util::SimulationDiverged(
            "two-level pattern did not complete: level-2 recovery "
            "fail-stop storm");
      }
      const double y = sample(lf_);
      if (y < r2_) {
        ++stats.fail_stop_errors;
        ++stats.recovery_fail_stops;
        wall += y + d_;
        continue;
      }
      wall += r2_;
      return;
    }
  };

  for (;;) {  // pattern attempts (restarted by fail-stop errors)
    if (stats.attempts >= kMaxPatternAttempts) {
      throw util::SimulationDiverged(
          "two-level pattern did not complete within the attempt bound");
    }
    ++stats.attempts;
    bool restart = false;
    for (int i = 0; i < pattern_.segments && !restart; ++i) {
      for (;;) {  // segment attempts (restarted by silent errors)
        // Memorylessness: fresh draws per segment attempt are exact.
        const double x = sample(lf_);
        const double s_arrival = sample(ls_);
        const bool silent = s_arrival < w_;
        if (x < w_ + v_) {
          // Fail-stop during work or verification: level-2 restart.
          ++stats.fail_stop_errors;
          if (silent && s_arrival < x) ++stats.masked_silent;
          wall += x + d_;
          run_level2_recovery();
          restart = true;
          break;
        }
        wall += w_ + v_;
        if (silent) {
          // Caught by this segment's verification: level-1 recovery, then
          // re-execute only this segment.
          ++stats.silent_detections;
          const double y = sample(lf_);
          if (y < l1_) {
            // Fail-stop during the (in-memory) recovery: level-2 restart.
            ++stats.fail_stop_errors;
            ++stats.recovery_fail_stops;
            wall += y + d_;
            run_level2_recovery();
            restart = true;
            break;
          }
          wall += l1_;
          continue;  // retry this segment
        }
        // Clean segment: store the boundary checkpoint (level-1, or
        // level-2 on the last segment).
        const double ckpt = i == pattern_.segments - 1 ? c2_ : l1_;
        const double z = sample(lf_);
        if (z < ckpt) {
          ++stats.fail_stop_errors;
          wall += z + d_;
          run_level2_recovery();
          restart = true;
          break;
        }
        wall += ckpt;
        break;  // segment complete, advance
      }
    }
    if (restart) continue;
    stats.wall_time = wall;
    return stats;
  }
}

TwoLevelDesSimulator::TwoLevelDesSimulator(const core::TwoLevelSystem& sys,
                                           const core::TwoLevelPattern& pattern)
    : pattern_(pattern),
      lf_(sys.base.fail_stop_rate(pattern.procs)),
      ls_(sys.base.silent_rate(pattern.procs)),
      w_(pattern.period / pattern.segments),
      v_(sys.base.verification_cost(pattern.procs)),
      l1_(sys.level1_cost(pattern.procs)),
      c2_(sys.base.checkpoint_cost(pattern.procs)),
      r2_(sys.base.recovery_cost(pattern.procs)),
      d_(sys.base.downtime()) {
  core::validate(pattern);
}

PatternStats TwoLevelDesSimulator::simulate_pattern(rng::RngStream& rng,
                                                    Trace* trace,
                                                    double start_time) {
  enum class Phase {
    kWork,
    kVerify,
    kCheckpoint,   // level-1 or level-2, depending on the segment
    kL1Recovery,
    kL2Recovery,
  };

  PatternStats stats;
  EventQueue queue;
  double clock = start_time;

  Phase phase = Phase::kWork;
  double phase_start = clock;
  int segment = 0;  // current segment index, 0-based
  bool silent_struck = false;
  std::uint64_t phase_end_id = kNoEvent;
  std::uint64_t silent_id = kNoEvent;
  std::uint64_t fail_stop_id = kNoEvent;

  const auto schedule_fail_stop = [&] {
    if (lf_ > 0.0) {
      fail_stop_id = queue.push(clock + rng.next_exponential(lf_),
                                EventType::kFailStop);
    }
  };
  const auto begin_phase = [&](Phase next, double duration) {
    phase = next;
    phase_start = clock;
    phase_end_id = queue.push(clock + duration, EventType::kPhaseEnd);
  };
  const auto begin_segment = [&] {
    silent_struck = false;
    begin_phase(Phase::kWork, w_);
    if (ls_ > 0.0) {
      silent_id =
          queue.push(clock + rng.next_exponential(ls_), EventType::kSilent);
    }
  };
  const auto begin_attempt = [&] {
    if (stats.attempts >= kMaxPatternAttempts) {
      throw util::SimulationDiverged(
          "two-level DES pattern did not complete within the attempt "
          "bound");
    }
    ++stats.attempts;
    segment = 0;
    begin_segment();
  };
  const auto cancel_if_pending = [&](std::uint64_t& id) {
    if (id != kNoEvent) {
      queue.cancel(id);
      id = kNoEvent;
    }
  };
  const auto trace_segment = [&](double begin, double end, SegmentKind kind) {
    if (trace != nullptr) trace->add(begin, end, kind);
  };
  const auto phase_kind = [&]() -> SegmentKind {
    switch (phase) {
      case Phase::kWork: return SegmentKind::kCompute;
      case Phase::kVerify: return SegmentKind::kVerify;
      case Phase::kCheckpoint: return SegmentKind::kCheckpoint;
      case Phase::kL1Recovery:
      case Phase::kL2Recovery: return SegmentKind::kRecovery;
    }
    AYD_ENSURE(false, "unreachable phase");
  };

  begin_attempt();
  schedule_fail_stop();

  for (;;) {
    const auto event = queue.pop();
    AYD_ENSURE(event.has_value(), "two-level simulation ran out of events");
    clock = event->time;

    switch (event->type) {
      case EventType::kSilent: {
        silent_id = kNoEvent;
        AYD_ENSURE(phase == Phase::kWork, "silent error outside computation");
        silent_struck = true;
        break;
      }

      case EventType::kFailStop: {
        fail_stop_id = kNoEvent;
        if (stats.fail_stop_errors >= kMaxPatternAttempts) {
          throw util::SimulationDiverged(
              "two-level DES pattern did not complete: fail-stop storm");
        }
        ++stats.fail_stop_errors;
        if (phase == Phase::kL1Recovery || phase == Phase::kL2Recovery) {
          ++stats.recovery_fail_stops;
        }
        if (silent_struck) {
          ++stats.masked_silent;
          silent_struck = false;
        }
        cancel_if_pending(phase_end_id);
        cancel_if_pending(silent_id);
        trace_segment(phase_start, clock,
                      phase == Phase::kWork ? SegmentKind::kWasted
                                            : phase_kind());
        trace_segment(clock, clock + d_, SegmentKind::kDowntime);
        clock += d_;
        begin_phase(Phase::kL2Recovery, r2_);
        schedule_fail_stop();
        break;
      }

      case EventType::kPhaseEnd: {
        phase_end_id = kNoEvent;
        switch (phase) {
          case Phase::kWork:
            cancel_if_pending(silent_id);
            trace_segment(phase_start, clock,
                          silent_struck ? SegmentKind::kWasted
                                        : SegmentKind::kCompute);
            begin_phase(Phase::kVerify, v_);
            break;
          case Phase::kVerify:
            trace_segment(phase_start, clock, SegmentKind::kVerify);
            if (silent_struck) {
              ++stats.silent_detections;
              silent_struck = false;
              begin_phase(Phase::kL1Recovery, l1_);
            } else {
              begin_phase(Phase::kCheckpoint,
                          segment == pattern_.segments - 1 ? c2_ : l1_);
            }
            break;
          case Phase::kCheckpoint:
            trace_segment(phase_start, clock, SegmentKind::kCheckpoint);
            if (segment == pattern_.segments - 1) {
              stats.wall_time = clock - start_time;
              return stats;
            }
            ++segment;
            begin_segment();
            break;
          case Phase::kL1Recovery:
            trace_segment(phase_start, clock, SegmentKind::kRecovery);
            begin_segment();  // retry the same segment
            break;
          case Phase::kL2Recovery:
            trace_segment(phase_start, clock, SegmentKind::kRecovery);
            begin_attempt();  // restart the whole pattern
            break;
        }
        break;
      }
    }
  }
}

ReplicationResult simulate_two_level_overhead(
    const core::TwoLevelSystem& sys, const core::TwoLevelPattern& pattern,
    const ReplicationOptions& opt, exec::ThreadPool* pool) {
  AYD_REQUIRE(opt.replicas >= 1, "need at least one replica");
  AYD_REQUIRE(opt.patterns_per_replica >= 1,
              "need at least one pattern per replica");
  core::validate(pattern);

  struct Outcome {
    double overhead = 0.0;
    double mean_time = 0.0;
    PatternStats totals;
  };
  const auto run_replica = [&](std::size_t i) {
    rng::RngStream rng(opt.seed, i);
    PatternStats totals;
    if (opt.backend == Backend::kDes) {
      TwoLevelDesSimulator simulator(sys, pattern);
      for (std::size_t k = 0; k < opt.patterns_per_replica; ++k) {
        totals.merge(simulator.simulate_pattern(rng));
      }
    } else {
      TwoLevelSimulator simulator(sys, pattern);
      for (std::size_t k = 0; k < opt.patterns_per_replica; ++k) {
        totals.merge(simulator.simulate_pattern(rng));
      }
    }
    const auto n = static_cast<double>(opt.patterns_per_replica);
    const double work =
        n * pattern.period * sys.base.speedup(pattern.procs);
    return Outcome{totals.wall_time / work, totals.wall_time / n, totals};
  };

  std::vector<Outcome> outcomes;
  if (pool != nullptr) {
    outcomes = exec::parallel_map(*pool, opt.replicas, run_replica);
  } else {
    outcomes.reserve(opt.replicas);
    for (std::size_t i = 0; i < opt.replicas; ++i) {
      outcomes.push_back(run_replica(i));
    }
  }

  stats::RunningStats overhead_stats;
  stats::RunningStats time_stats;
  PatternStats totals;
  for (const Outcome& o : outcomes) {
    overhead_stats.add(o.overhead);
    time_stats.add(o.mean_time);
    totals.merge(o.totals);
  }

  ReplicationResult result;
  result.overhead = stats::summarize(overhead_stats, opt.ci_level);
  result.pattern_time = stats::summarize(time_stats, opt.ci_level);
  result.analytic_overhead = core::two_level_overhead(sys, pattern);
  result.analytic_pattern_time = core::expected_two_level_time(sys, pattern);
  result.total_patterns =
      static_cast<std::uint64_t>(opt.replicas) * opt.patterns_per_replica;
  const auto n = static_cast<double>(result.total_patterns);
  result.fail_stops_per_pattern =
      static_cast<double>(totals.fail_stop_errors) / n;
  result.silent_detections_per_pattern =
      static_cast<double>(totals.silent_detections) / n;
  result.masked_silent_per_pattern =
      static_cast<double>(totals.masked_silent) / n;
  result.attempts_per_pattern = static_cast<double>(totals.attempts) / n;
  return result;
}

}  // namespace ayd::sim
