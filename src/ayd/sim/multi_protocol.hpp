// Simulation of multi-verification patterns (extension; see
// core/multi_verification.hpp): n work segments, each followed by a
// verification, one checkpoint at the end. Error semantics are identical
// to the base VC protocol except that a silent error is detected by the
// first verification after it strikes.

#pragma once

#include "ayd/core/multi_verification.hpp"
#include "ayd/model/system.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/sim/protocol.hpp"
#include "ayd/sim/runner.hpp"

namespace ayd::sim {

/// Closed-form per-segment sampler for MULTIPATTERN(T, P, n); with n == 1
/// it samples exactly the same process as FastProtocolSimulator.
class MultiVerifSimulator {
 public:
  MultiVerifSimulator(const model::System& sys,
                      const core::MultiPattern& pattern);

  [[nodiscard]] PatternStats simulate_pattern(rng::RngStream& rng);

  [[nodiscard]] const core::MultiPattern& pattern() const { return pattern_; }

 private:
  core::MultiPattern pattern_;
  double lf_;
  double ls_;
  double w_;  ///< segment length T/n
  double v_;
  double c_;
  double r_;
  double d_;
};

/// Replicated overhead estimate for a multi-pattern (mirrors
/// sim::simulate_overhead for the base protocol).
[[nodiscard]] ReplicationResult simulate_multi_overhead(
    const model::System& sys, const core::MultiPattern& pattern,
    const ReplicationOptions& opt = {}, exec::ThreadPool* pool = nullptr);

}  // namespace ayd::sim
