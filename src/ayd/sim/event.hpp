// Discrete-event-simulation primitives: event types and the timestamped
// event record.

#pragma once

#include <cstdint>
#include <string>

namespace ayd::sim {

enum class EventType : std::uint8_t {
  kFailStop,   ///< a fail-stop error arrival
  kSilent,     ///< a silent error arrival (corrupts data, undetected)
  kPhaseEnd,   ///< the current protocol phase completes
};

[[nodiscard]] std::string event_type_name(EventType t);

struct Event {
  double time = 0.0;     ///< absolute simulation time, seconds
  EventType type = EventType::kPhaseEnd;
  std::uint64_t id = 0;  ///< unique, monotonically increasing handle
};

/// Min-heap ordering: earliest time first; ties broken by insertion id so
/// simultaneous events fire in schedule order (deterministic replay).
struct EventAfter {
  [[nodiscard]] bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }
};

}  // namespace ayd::sim
