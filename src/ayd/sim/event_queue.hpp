// Pending-event set for the DES engine: an arena-backed implicit 4-ary
// min-heap ordered by (time, id) with lazy cancellation.
//
// This container sits on the hottest path of the reference simulator
// (three pushes and pops per simulated attempt), so it is engineered for
// reuse rather than generality:
//
//  * Storage is two flat vectors (the heap arena and a small list of
//    pending cancellation marks). Nothing is allocated per event; after
//    warm-up a simulator that owns a queue performs no steady-state
//    allocation at all, because clear() keeps capacity.
//  * The heap is 4-ary: shallower than a binary heap (fewer cache lines
//    touched per sift) at the cost of three extra comparisons per level,
//    a well-known win for small hot priority queues.
//  * A one-element front slot buffers the most recent push that precedes
//    everything buffered so far. The DES state machine's dominant
//    pattern — push the next phase-end, pop it right back as the
//    earliest event — then never touches the heap at all: the phase-end
//    lives its whole life in the slot, and only error arrivals (usually
//    far in the future) are sifted.
//  * cancel() marks an id; cancelled events are skipped during pop. This
//    is the standard technique for calendar queues whose events are
//    frequently invalidated (here: a phase-end is cancelled whenever an
//    error preempts the phase, and pending error arrivals are cancelled
//    on rollback). Marks live in a tiny unsorted vector — the simulators
//    never keep more than a couple of pending cancellations, so a linear
//    scan beats any hash table.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ayd/sim/event.hpp"

namespace ayd::sim {

/// Arena-backed priority queue of simulation events.
///
/// Ordering: earliest time first; ties broken by insertion id so
/// simultaneous events fire in schedule order (deterministic replay).
class EventQueue {
 public:
  /// Schedules an event; returns its unique id (usable with cancel()).
  /// Ids increase monotonically from 0 within one clear() epoch.
  std::uint64_t push(double time, EventType type);

  /// Marks an event as cancelled. Re-cancelling an id that is currently
  /// marked, and cancelling an id this queue never issued, are no-ops.
  /// Cancelling an id whose event is already gone (popped, or cancelled
  /// out of the front slot) is harmless for ordering — the stale mark
  /// can never match a live event, since ids are unique within an
  /// epoch — but the mark is only reclaimed by clear() and skews
  /// live_size() until then, so avoid it in a hot loop.
  void cancel(std::uint64_t id);

  /// Pops the earliest non-cancelled event; nullopt when drained.
  [[nodiscard]] std::optional<Event> pop();

  /// Earliest non-cancelled event without removing it.
  [[nodiscard]] std::optional<Event> peek();

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() { return !peek().has_value(); }

  /// Number of live (non-cancelled) events currently queued.
  [[nodiscard]] std::size_t live_size() const {
    return heap_.size() + (has_slot_ ? 1 : 0) - cancelled_.size();
  }

  /// Removes everything and starts a fresh id epoch (ids restart at 0).
  /// Capacity is retained, so a cleared queue schedules without
  /// allocating — this is what lets a simulator reuse one queue across
  /// millions of patterns.
  void clear();

  /// Pre-sizes the arena for `events` concurrently pending events.
  void reserve(std::size_t events);

 private:
  /// Min-heap order: (time, id) lexicographic.
  [[nodiscard]] static bool before(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.id < b.id;
  }

  [[nodiscard]] bool is_cancelled(std::uint64_t id) const;
  /// Removes cancelled events sitting at the heap root, consuming their
  /// marks (one combined scan per skipped event).
  void skip_cancelled();
  void heap_insert(const Event& e);
  void sift_down(std::size_t i);
  void remove_root();
  /// True when the next event (by (time, id) order) is the slot.
  [[nodiscard]] bool slot_is_next() const {
    return has_slot_ && (heap_.empty() || before(slot_, heap_[0]));
  }

  std::vector<Event> heap_;                ///< implicit 4-ary min-heap
  std::vector<std::uint64_t> cancelled_;   ///< pending cancellation marks
  Event slot_{};                           ///< front-slot insertion buffer
  bool has_slot_ = false;
  std::uint64_t next_id_ = 0;
};

}  // namespace ayd::sim
