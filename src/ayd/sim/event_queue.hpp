// Pending-event set for the DES engine: a binary heap ordered by
// (time, id) with lazy cancellation.
//
// cancel() marks an id; cancelled events are skipped during pop. This is
// the standard technique for calendar queues whose events are frequently
// invalidated (here: a phase-end is cancelled whenever an error preempts
// the phase, and pending error arrivals are cancelled on rollback).

#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "ayd/sim/event.hpp"

namespace ayd::sim {

class EventQueue {
 public:
  /// Schedules an event; returns its unique id (usable with cancel()).
  std::uint64_t push(double time, EventType type);

  /// Marks an event as cancelled. Cancelling an already-popped or unknown
  /// id is a harmless no-op (the mark is dropped on next encounter).
  void cancel(std::uint64_t id);

  /// Pops the earliest non-cancelled event; nullopt when drained.
  [[nodiscard]] std::optional<Event> pop();

  /// Earliest non-cancelled event without removing it.
  [[nodiscard]] std::optional<Event> peek();

  [[nodiscard]] bool empty() { return !peek().has_value(); }

  /// Number of live (non-cancelled) events currently queued.
  [[nodiscard]] std::size_t live_size() const {
    return heap_.size() - cancelled_.size();
  }

  /// Removes everything.
  void clear();

 private:
  void skip_cancelled();

  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_id_ = 0;
};

}  // namespace ayd::sim
