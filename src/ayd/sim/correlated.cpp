#include "ayd/sim/correlated.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"

namespace ayd::sim {

namespace {

constexpr std::uint64_t kNoEvent = std::numeric_limits<std::uint64_t>::max();
constexpr double kInf = std::numeric_limits<double>::infinity();

[[noreturn]] void throw_diverged(const core::Pattern& pattern,
                                 const detail::CorrelatedWorld& world) {
  std::ostringstream os;
  os << "correlated pattern did not complete within " << kMaxPatternAttempts
     << " attempts (T=" << pattern.period << ", P=" << pattern.procs
     << ", total lambda_f=" << world.total_fail_rate()
     << ", lambda_s=" << world.silent_rate()
     << "); the per-attempt success probability is too small";
  throw util::SimulationDiverged(os.str());
}

}  // namespace

namespace detail {

CorrelatedWorld::CorrelatedWorld(const model::System& sys,
                                 const core::Pattern& pattern)
    : t_(pattern.period),
      v_(sys.verification_cost(pattern.procs)),
      c_(sys.checkpoint_cost(pattern.procs)),
      d_(sys.downtime()),
      r_bb_(sys.recovery_cost(pattern.procs)),
      r_pfs_(sys.recovery_cost(pattern.procs)) {
  core::validate(pattern);
  const model::CorrelatedSpec* ext = sys.extension();
  AYD_REQUIRE(ext != nullptr,
              "CorrelatedWorld requires an extended system; plain systems "
              "take the bit-pinned simulators in sim/protocol.hpp");

  const double p = pattern.procs;
  const double lf = sys.fail_stop_rate(p);
  const double rho =
      ext->shock.has_value() ? ext->shock->correlation : 0.0;

  // Per-component (individual) sources carry the (1-rho) remainder of
  // the fail-stop intensity, split across the heterogeneity classes
  // (one homogeneous class at the base law otherwise).
  const double individual = (1.0 - rho) * lf;
  if (ext->heterogeneity.has_value()) {
    for (const model::ComponentGroup& g : ext->heterogeneity->groups) {
      FailSource src;
      src.dist = g.dist.instantiate(individual * g.share * g.rate_scale);
      fail_sources_.push_back(std::move(src));
    }
  } else {
    FailSource src;
    src.dist = sys.failure().dist().instantiate(individual);
    fail_sources_.push_back(std::move(src));
  }

  // The shock stream, last in draw order. Its rate is per platform, not
  // per processor (ShockSpec::shock_rate).
  if (ext->shock.has_value()) {
    FailSource src;
    src.dist = ext->shock->dist.instantiate(ext->shock->shock_rate(
        sys.failure().lambda_ind(), sys.failure().fail_stop_fraction()));
    src.is_shock = true;
    fail_sources_.push_back(std::move(src));
  }

  for (const FailSource& src : fail_sources_) {
    lf_total_ += src.dist->rate();
  }

  ls_ = sys.silent_rate(p);
  silent_dist_ = sys.failure().dist().instantiate(ls_);

  if (ext->two_tier.has_value()) {
    r_pfs_ = ext->two_tier->pfs_recovery.cost(p);
  }
}

}  // namespace detail

// --- CorrelatedFastSimulator ---------------------------------------------

CorrelatedFastSimulator::CorrelatedFastSimulator(const model::System& sys,
                                                 const core::Pattern& pattern)
    : pattern_(pattern), world_(sys, pattern) {}

void CorrelatedFastSimulator::set_unit_cursor(
    UnitVariatePool::Cursor* cursor) {
  AYD_REQUIRE(cursor == nullptr,
              "extended worlds have no CRN pool mode (their draw sequence "
              "interleaves several laws)");
}

PatternStats CorrelatedFastSimulator::simulate_pattern(rng::RngStream& rng) {
  return simulate_replica(rng, 1);
}

PatternStats CorrelatedFastSimulator::simulate_replica(rng::RngStream& rng,
                                                       std::size_t n) {
  PatternStats totals;
  const auto& sources = world_.fail_sources();
  const bool tiered = world_.tiered();
  const bool have_silent = world_.silent_active();
  const double t = world_.t();
  const double tv = world_.t() + world_.v();
  const double tvc = tv + world_.c();
  const double d = world_.d();

  // Earliest arrival over all fail sources this renewal interval, and
  // whether it came from the shock stream. Zero-rate sources yield +inf
  // without consuming words; strict < keeps the first source on a tie
  // (ties have measure zero for the analytic laws).
  bool min_is_shock = false;
  const auto draw_fail = [&]() -> double {
    double best = kInf;
    min_is_shock = false;
    for (const detail::FailSource& src : sources) {
      const double a =
          src.dist->rate() > 0.0 ? src.dist->sample(rng) : kInf;
      if (a < best) {
        best = a;
        min_is_shock = src.is_shock;
      }
    }
    return best;
  };

  for (std::size_t p = 0; p < n; ++p) {
    double wall = 0.0;
    std::uint64_t attempts = 0;
    std::uint64_t fail_stops = 0;
    std::uint64_t recovery_fails = 0;
    std::uint64_t detections = 0;
    std::uint64_t masked = 0;
    std::uint64_t shocks = 0;

    // One rollback chain: repeated recovery tries until one completes
    // without a fail-stop. The PFS tier is sticky within the chain.
    const auto run_recovery = [&](bool from_shock) {
      bool pfs = tiered && from_shock;
      for (;;) {
        const double r = world_.recovery_cost(pfs);
        const double y = draw_fail();
        if (y < r) {
          if (fail_stops >= kMaxPatternAttempts) {
            throw_diverged(pattern_, world_);
          }
          ++fail_stops;
          ++recovery_fails;
          if (min_is_shock) {
            ++shocks;
            pfs = pfs || tiered;
          }
          wall += y + d;
          continue;
        }
        wall += r;
        return;
      }
    };

    for (;;) {
      if (attempts >= kMaxPatternAttempts) {
        throw_diverged(pattern_, world_);
      }
      ++attempts;
      const double x = draw_fail();
      const bool x_shock = min_is_shock;
      const double s_arrival =
          have_silent ? world_.silent().sample(rng) : kInf;
      const bool silent = s_arrival < t;

      if (x < tv) {
        // Fail-stop during compute or verification.
        ++fail_stops;
        if (x_shock) ++shocks;
        if (silent && s_arrival < x) ++masked;
        wall += x + d;
        run_recovery(x_shock);
        continue;
      }
      if (silent) {
        // Survived to the end of verification; the silent error is
        // caught. Silent recoveries restore from the burst buffer.
        ++detections;
        wall += tv;
        run_recovery(/*from_shock=*/false);
        continue;
      }
      if (x < tvc) {
        // Fail-stop while storing the checkpoint.
        ++fail_stops;
        if (x_shock) ++shocks;
        wall += x + d;
        run_recovery(x_shock);
        continue;
      }
      wall += tvc;
      break;
    }

    totals.wall_time += wall;
    totals.attempts += attempts;
    totals.fail_stop_errors += fail_stops;
    totals.recovery_fail_stops += recovery_fails;
    totals.silent_detections += detections;
    totals.masked_silent += masked;
    totals.shock_errors += shocks;
  }
  return totals;
}

// --- CorrelatedDesSimulator ----------------------------------------------

CorrelatedDesSimulator::CorrelatedDesSimulator(const model::System& sys,
                                               const core::Pattern& pattern)
    : pattern_(pattern), world_(sys, pattern) {
  pending_.assign(world_.fail_sources().size(), kNoEvent);
  queue_.reserve(8 + world_.fail_sources().size());
}

void CorrelatedDesSimulator::set_unit_cursor(
    UnitVariatePool::Cursor* cursor) {
  AYD_REQUIRE(cursor == nullptr,
              "extended worlds have no CRN pool mode (their draw sequence "
              "interleaves several laws)");
}

PatternStats CorrelatedDesSimulator::simulate_replica(rng::RngStream& rng,
                                                      std::size_t n) {
  PatternStats totals;
  for (std::size_t p = 0; p < n; ++p) {
    totals.merge(simulate_pattern(rng));
  }
  return totals;
}

PatternStats CorrelatedDesSimulator::simulate_pattern(rng::RngStream& rng) {
  enum class Phase { kWork, kVerify, kCheckpoint, kRecovery };

  PatternStats stats;
  queue_.clear();
  pending_.assign(pending_.size(), kNoEvent);

  const auto& sources = world_.fail_sources();
  const bool tiered = world_.tiered();
  const double t = world_.t();
  const double v = world_.v();
  const double c = world_.c();
  const double d = world_.d();

  double clock = 0.0;
  Phase phase = Phase::kWork;
  bool silent_struck = false;
  bool pfs_chain = false;  ///< sticky PFS tier of the current rollback chain
  std::uint64_t phase_end_id = kNoEvent;
  std::uint64_t silent_id = kNoEvent;

  // Every source renews at each attempt start and each recovery try: any
  // pending arrival is cancelled and a fresh one drawn (the draw always
  // consumes its words). An arrival at or beyond `discard_at` — the
  // renewal boundary, computed with the same additions the phase-end
  // chain performs — can never strike, so it is discarded unscheduled;
  // the strict < matches the fast loop's windows even on trace atoms.
  const auto renew_fail_sources = [&](double discard_at) {
    for (std::size_t j = 0; j < sources.size(); ++j) {
      if (pending_[j] != kNoEvent) {
        queue_.cancel(pending_[j]);
        pending_[j] = kNoEvent;
      }
      if (sources[j].dist->rate() <= 0.0) continue;
      const double arrival = clock + sources[j].dist->sample(rng);
      if (arrival < discard_at) {
        pending_[j] = queue_.push(arrival, EventType::kFailStop);
      }
    }
  };
  const auto attempt_end = [&] { return ((clock + t) + v) + c; };
  const auto begin_phase = [&](Phase next, double duration) {
    phase = next;
    phase_end_id = queue_.push(clock + duration, EventType::kPhaseEnd);
  };
  const auto cancel_if_pending = [&](std::uint64_t& id) {
    if (id != kNoEvent) {
      queue_.cancel(id);
      id = kNoEvent;
    }
  };
  const auto begin_attempt = [&] {
    if (stats.attempts >= kMaxPatternAttempts) {
      throw_diverged(pattern_, world_);
    }
    ++stats.attempts;
    silent_struck = false;
    pfs_chain = false;  // a completed recovery restored the burst buffer
    begin_phase(Phase::kWork, t);
    if (world_.silent_active()) {
      const double arrival = clock + world_.silent().sample(rng);
      if (arrival < clock + t) {
        silent_id = queue_.push(arrival, EventType::kSilent);
      }
    }
    renew_fail_sources(attempt_end());
  };
  const auto begin_recovery = [&] {
    const double r = world_.recovery_cost(pfs_chain);
    begin_phase(Phase::kRecovery, r);
    renew_fail_sources(clock + r);
  };

  begin_attempt();

  for (;;) {
    const auto event = queue_.pop();
    AYD_ENSURE(event.has_value(),
               "correlated simulation ran out of events");
    clock = event->time;

    switch (event->type) {
      case EventType::kSilent: {
        silent_id = kNoEvent;
        AYD_ENSURE(phase == Phase::kWork, "silent error outside computation");
        silent_struck = true;
        break;
      }

      case EventType::kFailStop: {
        // Identify the striking source by its pending id.
        std::size_t src = sources.size();
        for (std::size_t j = 0; j < sources.size(); ++j) {
          if (pending_[j] == event->id) {
            src = j;
            break;
          }
        }
        AYD_ENSURE(src < sources.size(), "fail-stop event without a source");
        pending_[src] = kNoEvent;
        if (stats.fail_stop_errors >= kMaxPatternAttempts) {
          throw_diverged(pattern_, world_);
        }
        ++stats.fail_stop_errors;
        if (phase == Phase::kRecovery) ++stats.recovery_fail_stops;
        if (sources[src].is_shock) {
          ++stats.shock_errors;
          pfs_chain = pfs_chain || tiered;
        }
        if (silent_struck) {
          ++stats.masked_silent;
          silent_struck = false;
        }
        cancel_if_pending(phase_end_id);
        cancel_if_pending(silent_id);
        // Downtime: nothing can fail; all sources renew after it.
        clock += d;
        begin_recovery();
        break;
      }

      case EventType::kPhaseEnd: {
        phase_end_id = kNoEvent;
        switch (phase) {
          case Phase::kWork:
            cancel_if_pending(silent_id);
            begin_phase(Phase::kVerify, v);
            break;
          case Phase::kVerify:
            if (silent_struck) {
              ++stats.silent_detections;
              silent_struck = false;
              // Silent recoveries restore from the burst buffer; the
              // attempt's pending fail arrivals die at this renewal.
              begin_recovery();
            } else {
              begin_phase(Phase::kCheckpoint, c);
            }
            break;
          case Phase::kCheckpoint:
            stats.wall_time = clock;
            return stats;
          case Phase::kRecovery:
            begin_attempt();
            break;
        }
        break;
      }
    }
  }
}

}  // namespace ayd::sim
