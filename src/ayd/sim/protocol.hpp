// Discrete-event simulation of the VC protocol (verified checkpointing).
//
// Semantics, exactly as the paper's Section II / Figure 1 prescribe:
//  * The pattern executes T (compute), then V_P (verify), then C_P
//    (checkpoint).
//  * Fail-stop errors arrive with rate λf_P and can strike during
//    compute, verification, checkpointing and recovery. On a fail-stop:
//    downtime D (during which nothing can fail), then a recovery R_P
//    (itself subject to fail-stop errors), then the pattern restarts
//    from scratch.
//  * Silent errors arrive independently with rate λs_P and strike only
//    computation. A silent error is invisible until the verification at
//    the end of the pattern, which triggers a recovery (no downtime) and
//    a restart. A fail-stop error arriving after a silent error in the
//    same attempt masks it (the rollback repairs both).
//
// Inter-arrival times come from the System's model::FailureDistSpec
// (exponential by default — the paper's Poisson process — or Weibull /
// lognormal / trace replay). Non-memoryless laws renew the arrival clock
// at each attempt start and recovery start; for the exponential this is
// indistinguishable from the paper's process and the historical RNG draw
// sequence is preserved bit-for-bit. Both backends share the same
// renewal points, so they stay distributionally equivalent for every
// distribution (the statistical test tier checks this).
//
// The simulator processes each pattern as a little event-driven state
// machine over an EventQueue: pending error arrivals and phase-end events
// compete; preempted phases cancel their events lazily.

#pragma once

#include <cstdint>
#include <memory>

#include "ayd/core/pattern.hpp"
#include "ayd/model/system.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/sim/event_queue.hpp"
#include "ayd/sim/trace.hpp"

namespace ayd::sim {

/// Upper bound on re-execution attempts for a single pattern. A pattern
/// whose per-attempt success probability is below ~1/kMaxPatternAttempts
/// (i.e. λf·(T+V+C)+λs·T ≳ 16) would take effectively forever to finish;
/// the simulators throw util::SimulationDiverged instead of spinning.
inline constexpr std::uint64_t kMaxPatternAttempts = 10'000'000;

/// Counters for one simulated pattern (all re-execution included).
struct PatternStats {
  double wall_time = 0.0;            ///< start-to-checkpoint-stored time
  std::uint64_t attempts = 0;        ///< work attempts executed (>= 1)
  std::uint64_t fail_stop_errors = 0;///< fail-stop arrivals that struck
  std::uint64_t recovery_fail_stops = 0;  ///< ... of which during recovery
  std::uint64_t silent_detections = 0;    ///< silent errors caught by verify
  std::uint64_t masked_silent = 0;   ///< silent errors masked by fail-stop

  void merge(const PatternStats& o) {
    wall_time += o.wall_time;
    attempts += o.attempts;
    fail_stop_errors += o.fail_stop_errors;
    recovery_fail_stops += o.recovery_fail_stops;
    silent_detections += o.silent_detections;
    masked_silent += o.masked_silent;
  }
};

/// Event-queue-driven reference simulator. Faithful and traceable; use
/// FastProtocolSimulator for bulk replication (same distribution, ~5x
/// faster — the ablation bench quantifies it).
class DesProtocolSimulator {
 public:
  DesProtocolSimulator(const model::System& sys, const core::Pattern& pattern);

  /// Simulates one pattern to successful completion. If `trace` is given,
  /// appends labelled segments starting at `start_time`.
  [[nodiscard]] PatternStats simulate_pattern(rng::RngStream& rng,
                                              Trace* trace = nullptr,
                                              double start_time = 0.0);

  [[nodiscard]] const core::Pattern& pattern() const { return pattern_; }

 private:
  core::Pattern pattern_;
  double lf_;  ///< fail-stop rate at P
  double ls_;  ///< silent rate at P
  double t_;   ///< T
  double v_;   ///< V_P
  double c_;   ///< C_P
  double r_;   ///< R_P
  double d_;   ///< downtime D
  std::unique_ptr<const model::FailureDistribution> fail_dist_;
  std::unique_ptr<const model::FailureDistribution> silent_dist_;
  bool renewal_;  ///< redraw pending arrivals at renewal points
};

/// Closed-form per-segment sampler: draws each attempt's fate directly
/// instead of walking an event queue (one fresh arrival per attempt and
/// per recovery try). For the exponential this is the memorylessness
/// shortcut; non-memoryless distributions fall back to quantile-inversion
/// sampling with the same renewal points. Distributionally identical to
/// DesProtocolSimulator (tests compare the two statistically).
class FastProtocolSimulator {
 public:
  FastProtocolSimulator(const model::System& sys, const core::Pattern& pattern);

  [[nodiscard]] PatternStats simulate_pattern(rng::RngStream& rng);

  [[nodiscard]] const core::Pattern& pattern() const { return pattern_; }

 private:
  core::Pattern pattern_;
  double lf_;
  double ls_;
  double t_;
  double v_;
  double c_;
  double r_;
  double d_;
  std::unique_ptr<const model::FailureDistribution> fail_dist_;
  std::unique_ptr<const model::FailureDistribution> silent_dist_;
};

}  // namespace ayd::sim
