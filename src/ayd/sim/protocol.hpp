// Discrete-event simulation of the VC protocol (verified checkpointing).
//
// Semantics, exactly as the paper's Section II / Figure 1 prescribe:
//  * The pattern executes T (compute), then V_P (verify), then C_P
//    (checkpoint).
//  * Fail-stop errors arrive with rate λf_P and can strike during
//    compute, verification, checkpointing and recovery. On a fail-stop:
//    downtime D (during which nothing can fail), then a recovery R_P
//    (itself subject to fail-stop errors), then the pattern restarts
//    from scratch.
//  * Silent errors arrive independently with rate λs_P and strike only
//    computation. A silent error is invisible until the verification at
//    the end of the pattern, which triggers a recovery (no downtime) and
//    a restart. A fail-stop error arriving after a silent error in the
//    same attempt masks it (the rollback repairs both).
//
// Inter-arrival times come from the System's model::FailureDistSpec
// (exponential by default — the paper's Poisson process — or Weibull /
// lognormal / trace replay). Non-memoryless laws renew the arrival clock
// at each attempt start and recovery start; for the exponential this is
// indistinguishable from the paper's process and the historical RNG draw
// sequence is preserved bit-for-bit. Both backends share the same
// renewal points, so they stay distributionally equivalent for every
// distribution (the statistical test tier checks this).
//
// Hot-path engineering (both simulators produce results bit-identical to
// the straightforward implementations they replace; the pre-overhaul
// pins and the reference cross-check in tests/sim_bitcompat_test.cpp
// enforce this):
//
//  * DesProtocolSimulator owns an arena EventQueue reused across
//    patterns and replicas (zero steady-state allocation) and draws
//    arrivals through a batched unit-variate block — uniforms are pulled
//    from the stream in the historical order, the expensive part of the
//    quantile inversion (log / pow / normal-quantile) runs in bulk over
//    a cache-resident block, and only the cheap rate scaling happens per
//    draw.
//  * FastProtocolSimulator filters each draw through a precomputed CDF
//    threshold: an attempt whose uniforms say "no error strikes before
//    the checkpoint is stored" — the overwhelmingly common case at
//    realistic rates — costs two uniforms and two compares, with no
//    transcendental calls at all. Draws near a decision boundary or
//    inside an error window fall back to the exact historical
//    arithmetic on the very same uniform, so results cannot drift.

#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "ayd/core/pattern.hpp"
#include "ayd/model/system.hpp"
#include "ayd/rng/block.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/sim/event_queue.hpp"
#include "ayd/sim/trace.hpp"
#include "ayd/sim/variate_pool.hpp"

namespace ayd::sim {

/// Upper bound on re-execution attempts for a single pattern. A pattern
/// whose per-attempt success probability is below ~1/kMaxPatternAttempts
/// (i.e. λf·(T+V+C)+λs·T ≳ 16) would take effectively forever to finish;
/// the simulators throw util::SimulationDiverged instead of spinning.
inline constexpr std::uint64_t kMaxPatternAttempts = 10'000'000;

/// Conservative CDF threshold in the 53-bit word space of uniform01
/// draws (the uniform is (w >> 11) * 2^-53): every word w with
/// (w >> 11) >= safe_word_threshold(dist, window) is guaranteed to
/// satisfy dist.sample_value(that uniform) >= window in exact
/// floating-point evaluation, so the fast simulator can classify the
/// draw without performing the quantile inversion. The margin is sized
/// to dominate the worst cdf/quantile inconsistency across the analytic
/// kinds (see the implementation); soundness is scanned at the boundary
/// by tests/sim_bitcompat_test.cpp.
[[nodiscard]] std::uint64_t safe_word_threshold(
    const model::FailureDistribution& dist, double window);

/// Counters for one simulated pattern (all re-execution included).
struct PatternStats {
  double wall_time = 0.0;            ///< start-to-checkpoint-stored time
  std::uint64_t attempts = 0;        ///< work attempts executed (>= 1)
  std::uint64_t fail_stop_errors = 0;///< fail-stop arrivals that struck
  std::uint64_t recovery_fail_stops = 0;  ///< ... of which during recovery
  std::uint64_t silent_detections = 0;    ///< silent errors caught by verify
  std::uint64_t masked_silent = 0;   ///< silent errors masked by fail-stop
  /// Fail-stop strikes attributed to the platform-wide shock stream of a
  /// correlated world (sim/correlated.hpp); always 0 for the plain
  /// simulators in this header.
  std::uint64_t shock_errors = 0;

  void merge(const PatternStats& o) {
    wall_time += o.wall_time;
    attempts += o.attempts;
    fail_stop_errors += o.fail_stop_errors;
    recovery_fail_stops += o.recovery_fail_stops;
    silent_detections += o.silent_detections;
    masked_silent += o.masked_silent;
    shock_errors += o.shock_errors;
  }
};

/// Event-queue-driven reference simulator. Faithful and traceable; use
/// FastProtocolSimulator for bulk replication (same distribution, much
/// faster — bench/micro_sim quantifies it).
class DesProtocolSimulator {
 public:
  DesProtocolSimulator(const model::System& sys, const core::Pattern& pattern);

  /// Simulates one pattern to successful completion. If `trace` is given,
  /// appends labelled segments starting at `start_time`.
  ///
  /// The simulator may prefetch variates from `rng` (batched sampling),
  /// so `rng` can advance past the words actually consumed. Passing a
  /// *different* stream to a later call is safe — the simulator
  /// fingerprints the engine state and discards stale prefetch
  /// automatically — but interleaving other draws on the same stream
  /// between calls shifts positions relative to a prefetch-free
  /// implementation (the discarded prefetched words are skipped).
  [[nodiscard]] PatternStats simulate_pattern(rng::RngStream& rng,
                                              Trace* trace = nullptr,
                                              double start_time = 0.0);

  /// Simulates `n` patterns back to back and merges their stats —
  /// equivalent to n simulate_pattern calls (bitwise: wall times are
  /// accumulated per pattern first, exactly like PatternStats::merge),
  /// but with the pattern loop inside the simulator so nothing crosses a
  /// call boundary per pattern. This is the replication driver's loop.
  [[nodiscard]] PatternStats simulate_replica(rng::RngStream& rng,
                                              std::size_t n);

  /// Discards batched variates prefetched from the current stream.
  /// Stream switches are also detected automatically (simulate_pattern
  /// fingerprints the engine state), so this is an explicit fast-path
  /// hint for drivers that know the boundary — the replication driver
  /// calls it at every replica switch.
  void begin_replica() { units_.reset(); }

  /// Pool mode (common random numbers): draw unit variates from the
  /// shared pool cursor instead of sampling the stream. The cursor must
  /// be positioned at the replica's sequence start and outlive the
  /// simulation calls; pass nullptr to return to stream sampling. Only
  /// valid when every active source factors through the unit-variate
  /// API (the pool registry never hands out a pool otherwise). In the
  /// scalar tier, results are bit-identical to stream sampling.
  void set_unit_cursor(UnitVariatePool::Cursor* cursor);

  [[nodiscard]] const core::Pattern& pattern() const { return pattern_; }

 private:
  [[nodiscard]] double draw(const model::FailureDistribution& dist,
                            rng::RngStream& rng);

  core::Pattern pattern_;
  double lf_;  ///< fail-stop rate at P
  double ls_;  ///< silent rate at P
  double t_;   ///< T
  double v_;   ///< V_P
  double c_;   ///< C_P
  double r_;   ///< R_P
  double d_;   ///< downtime D
  std::unique_ptr<const model::FailureDistribution> fail_dist_;
  std::unique_ptr<const model::FailureDistribution> silent_dist_;
  bool renewal_;  ///< redraw pending arrivals at renewal points
  bool batched_;  ///< active sources factor through one unit block
  /// Unit-transform source for the shared block (both error sources are
  /// instantiated from one spec, so their unit transform is identical).
  const model::FailureDistribution* unit_src_ = nullptr;
  rng::VariateBlock units_;  ///< batched unit variates (arena scratch)
  /// Engine state expected on the next simulate_pattern call while
  /// prefetched variates are buffered; a mismatch means the caller
  /// switched streams, and the stale buffer is discarded (256-bit
  /// fingerprint — a cross-stream collision is not a practical concern).
  std::array<std::uint64_t, 4> expected_state_{};
  /// Non-null in pool (CRN) mode: draws come from the shared sequence.
  UnitVariatePool::Cursor* pool_cursor_ = nullptr;
  EventQueue queue_;         ///< arena event queue, reused across patterns
};

/// Closed-form per-segment sampler: draws each attempt's fate directly
/// instead of walking an event queue (one fresh arrival per attempt and
/// per recovery try). For the exponential this is the memorylessness
/// shortcut; non-memoryless distributions fall back to quantile-inversion
/// sampling with the same renewal points. Distributionally identical to
/// DesProtocolSimulator (tests compare the two statistically).
class FastProtocolSimulator {
 public:
  FastProtocolSimulator(const model::System& sys, const core::Pattern& pattern);

  [[nodiscard]] PatternStats simulate_pattern(rng::RngStream& rng);

  /// Simulates `n` patterns back to back and merges their stats —
  /// equivalent to n simulate_pattern calls, with the loop inside the
  /// simulator (see DesProtocolSimulator::simulate_replica).
  [[nodiscard]] PatternStats simulate_replica(rng::RngStream& rng,
                                              std::size_t n);

  /// Discards words prefetched by the SIMD block pipeline (scalar-tier
  /// runs never prefetch, so this is a no-op there). Stream switches are
  /// also detected automatically via the engine-state fingerprint, like
  /// the DES simulator; the replication driver calls this at every
  /// replica switch.
  void begin_replica() { block_pos_ = block_len_ = 0; }

  /// Pool mode (common random numbers): see
  /// DesProtocolSimulator::set_unit_cursor. In the scalar tier, pool-fed
  /// results are bit-identical to stream sampling.
  void set_unit_cursor(UnitVariatePool::Cursor* cursor);

  [[nodiscard]] const core::Pattern& pattern() const { return pattern_; }

 private:
  /// The historical draw-everything loop; used when a source cannot be
  /// threshold-filtered (trace replay's variable word consumption).
  [[nodiscard]] PatternStats simulate_pattern_general(rng::RngStream& rng);

  /// CRN replica loop: every draw comes from the shared pool sequence.
  [[nodiscard]] PatternStats simulate_replica_pool(std::size_t n);

  /// CRN replica loop in unit space (SIMD golden tier only): the window
  /// bounds are rescaled into the pool's unit-variate space once per
  /// replica call, so the hot path compares raw pool reads and only
  /// branches that consume an arrival time compute the scaling multiply.
  [[nodiscard]] PatternStats simulate_replica_pool_units(std::size_t n);

  /// SIMD-tier replica loop: words are pulled from the engine in blocks,
  /// the below-threshold lanes are transformed in bulk with the
  /// vectorized kernels, and the attempt loop consumes (mantissa, unit
  /// variate) pairs with no per-draw transcendental calls.
  [[nodiscard]] PatternStats simulate_replica_block(rng::RngStream& rng,
                                                    std::size_t n);

  core::Pattern pattern_;
  double lf_;
  double ls_;
  double t_;
  double v_;
  double c_;
  double r_;
  double d_;
  double tv_;   ///< T + V (precomputed with the historical expression)
  double tvc_;  ///< T + V + C
  std::unique_ptr<const model::FailureDistribution> fail_dist_;
  std::unique_ptr<const model::FailureDistribution> silent_dist_;
  bool lazy_;  ///< threshold filter usable for every active source
  /// Safe thresholds in 53-bit word space: a draw whose word w satisfies
  /// (w >> 11) >= mthr_* is guaranteed to land beyond the corresponding
  /// window in exact arithmetic, so its arrival time never needs to be
  /// computed. Comparing the integer mantissa is exact (the uniform is
  /// (w >> 11) * 2^-53, a lossless scaling) and keeps the hot path free
  /// of floating-point conversions.
  std::uint64_t mthr_fail_ = 0;    ///< fail-stop before T+V+C possible
  std::uint64_t mthr_silent_ = 0;  ///< silent arrival before T possible
  std::uint64_t mthr_rec_ = 0;     ///< fail-stop before R possible

  /// How from_unit scales a unit variate, devirtualized for the pool and
  /// block hot loops (the scalar expressions are kept bit-for-bit:
  /// Weibull multiplies by its scale, the exponential divides by its
  /// rate, the lognormal stays a virtual call).
  enum class UnitScaling : int { kLinear, kDivide, kVirtual };

  // --- SIMD block pipeline (non-memoryless sources, SIMD tier only) ----
  //
  // The exponential fast path never enables this (its draws are already
  // transcendental-free), so exponential results stay byte-identical to
  // the scalar tier under every tier.
  bool block_mode_ = false;     ///< pipeline enabled at construction
  /// Unit-transform source for the bulk kernels (fail and silent sources
  /// share one spec, hence one unit transform).
  const model::FailureDistribution* unit_src_ = nullptr;
  UnitScaling fail_scaling_ = UnitScaling::kVirtual;
  double fail_factor_ = 0.0;    ///< scale (kLinear) or rate (kDivide)
  UnitScaling silent_scaling_ = UnitScaling::kVirtual;
  double silent_factor_ = 0.0;
  /// Pre-shifted 53-bit mantissas and the bulk-transformed unit variates
  /// (above-threshold draws never read their variate).
  std::array<std::uint64_t, rng::kVariateBlockSize> block_m_{};
  std::array<double, rng::kVariateBlockSize> block_z_{};
  std::size_t block_pos_ = 0;
  std::size_t block_len_ = 0;
  /// Stale-prefetch fingerprint, exactly like the DES simulator's.
  std::array<std::uint64_t, 4> expected_state_{};
  /// Non-null in pool (CRN) mode: draws come from the shared sequence.
  UnitVariatePool::Cursor* pool_cursor_ = nullptr;
};

}  // namespace ayd::sim
