// Execution traces: a list of labelled time segments recorded by the DES
// protocol simulator, with an ASCII timeline renderer used by the
// failure_timeline example and by debugging sessions. Also home of the
// failure-log CSV format that feeds trace-replay failure distributions
// (model::FailureDistSpec::trace_replay).

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace ayd::sim {

enum class SegmentKind : int {
  kCompute,     ///< useful work
  kWasted,      ///< work destroyed by an error (re-executed later)
  kVerify,      ///< verification V_P
  kCheckpoint,  ///< checkpoint C_P
  kRecovery,    ///< recovery R_P
  kDowntime,    ///< downtime D after a fail-stop error
};

[[nodiscard]] std::string segment_kind_name(SegmentKind k);
/// One-character glyph for timeline rendering.
[[nodiscard]] char segment_kind_glyph(SegmentKind k);

struct Segment {
  double begin = 0.0;
  double end = 0.0;
  SegmentKind kind = SegmentKind::kCompute;
  [[nodiscard]] double duration() const { return end - begin; }
};

class Trace {
 public:
  void add(double begin, double end, SegmentKind kind);

  [[nodiscard]] const std::vector<Segment>& segments() const {
    return segments_;
  }
  [[nodiscard]] bool empty() const { return segments_.empty(); }
  [[nodiscard]] double total_time() const;
  [[nodiscard]] double time_in(SegmentKind kind) const;

  /// Renders the whole trace as a glyph-per-bucket timeline, `width`
  /// buckets wide, with a legend. Each bucket shows the kind that occupies
  /// most of it.
  [[nodiscard]] std::string render_timeline(std::size_t width = 100) const;

 private:
  std::vector<Segment> segments_;
};

// -- Failure-log CSV ----------------------------------------------------
//
// One inter-arrival gap in seconds per row, full precision, under a
// "gap_seconds" header:
//     gap_seconds
//     86400
//     3612.25
// The reader also accepts a column of absolute failure times under a
// "failure_time" header (non-decreasing — equal stamps yield zero gaps —
// differenced into gaps on load), the shape raw machine logs usually
// take.

/// Writes inter-arrival gaps as a failure-log CSV; throws util::IoError
/// on failure.
void write_failure_log_csv(const std::string& path,
                           const std::vector<double>& gaps);

/// Parses failure-log CSV text into inter-arrival gaps. Throws
/// util::InvalidArgument on malformed rows or an empty log.
[[nodiscard]] std::vector<double> parse_failure_log_csv(
    const std::string& text);

/// Reads and parses a failure-log CSV file.
[[nodiscard]] std::vector<double> read_failure_log_csv(
    const std::string& path);

/// Incremental line-at-a-time reader of the failure-log CSV format, for
/// streaming consumers (`ayd watch`, the service's `subscribe` op) that
/// cannot wait for the whole log. Recognises the same two headers as
/// parse_failure_log_csv and the same headerless fallback; in
/// absolute-time mode rows are differenced on the fly.
///
/// feed() throws util::InvalidArgument on a malformed row (same message
/// vocabulary as the batch parser); the reader remains usable afterwards
/// — the bad line is dropped, prior state is kept — so a telemetry
/// front-end can report the error and keep consuming.
class FailureLogReader {
 public:
  /// Feeds one raw line (without the newline). Returns the gap this line
  /// completes: every value row in gap mode, every row after the first in
  /// absolute-time mode. Blank lines and the header row return nullopt.
  std::optional<double> feed(const std::string& line);

  /// True once a "failure_time" header switched the reader to
  /// absolute-time differencing.
  [[nodiscard]] bool absolute_times() const { return absolute_times_; }
  /// Lines fed so far (including blanks and the header; 1-based in error
  /// messages).
  [[nodiscard]] std::size_t lines() const { return line_index_; }

 private:
  bool absolute_times_ = false;
  bool seen_content_ = false;
  std::optional<double> prev_time_;
  std::size_t line_index_ = 0;
};

}  // namespace ayd::sim
