#include "ayd/sim/trace.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "ayd/io/csv.hpp"
#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::sim {

std::string segment_kind_name(SegmentKind k) {
  switch (k) {
    case SegmentKind::kCompute: return "compute";
    case SegmentKind::kWasted: return "wasted";
    case SegmentKind::kVerify: return "verify";
    case SegmentKind::kCheckpoint: return "checkpoint";
    case SegmentKind::kRecovery: return "recovery";
    case SegmentKind::kDowntime: return "downtime";
  }
  return "unknown";
}

char segment_kind_glyph(SegmentKind k) {
  switch (k) {
    case SegmentKind::kCompute: return '=';
    case SegmentKind::kWasted: return 'x';
    case SegmentKind::kVerify: return 'v';
    case SegmentKind::kCheckpoint: return 'C';
    case SegmentKind::kRecovery: return 'R';
    case SegmentKind::kDowntime: return 'D';
  }
  return '?';
}

void Trace::add(double begin, double end, SegmentKind kind) {
  AYD_REQUIRE(end >= begin, "trace segment must have end >= begin");
  if (end == begin) return;  // zero-length segments carry no information
  if (!segments_.empty()) {
    AYD_REQUIRE(begin >= segments_.back().end - 1e-9,
                "trace segments must be appended in time order");
  }
  segments_.push_back({begin, end, kind});
}

double Trace::total_time() const {
  if (segments_.empty()) return 0.0;
  return segments_.back().end - segments_.front().begin;
}

double Trace::time_in(SegmentKind kind) const {
  double total = 0.0;
  for (const Segment& s : segments_) {
    if (s.kind == kind) total += s.duration();
  }
  return total;
}

std::string Trace::render_timeline(std::size_t width) const {
  AYD_REQUIRE(width >= 10, "timeline width too small");
  std::ostringstream os;
  if (segments_.empty()) {
    os << "(empty trace)\n";
    return os.str();
  }
  const double t0 = segments_.front().begin;
  const double t1 = segments_.back().end;
  const double span = t1 - t0;

  // For each bucket pick the kind covering the most time inside it.
  std::string line(width, ' ');
  for (std::size_t b = 0; b < width; ++b) {
    const double b0 = t0 + span * static_cast<double>(b) /
                               static_cast<double>(width);
    const double b1 = t0 + span * static_cast<double>(b + 1) /
                               static_cast<double>(width);
    std::array<double, 6> cover{};
    for (const Segment& s : segments_) {
      if (s.end <= b0 || s.begin >= b1) continue;
      const double overlap = std::min(s.end, b1) - std::max(s.begin, b0);
      cover[static_cast<std::size_t>(s.kind)] += overlap;
    }
    const auto best =
        std::max_element(cover.begin(), cover.end()) - cover.begin();
    if (cover[static_cast<std::size_t>(best)] > 0.0) {
      line[b] = segment_kind_glyph(static_cast<SegmentKind>(best));
    }
  }

  os << "t=" << util::format_duration(0.0) << " "
     << line << " t=" << util::format_duration(span) << "\n";
  os << "legend:";
  for (int k = 0; k <= static_cast<int>(SegmentKind::kDowntime); ++k) {
    const auto kind = static_cast<SegmentKind>(k);
    os << "  " << segment_kind_glyph(kind) << "=" << segment_kind_name(kind);
  }
  os << "\n";
  return os.str();
}

namespace {

/// Shortest decimal that round-trips the double (17 significant digits
/// always do), so write/read of a failure log is lossless.
std::string format_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double parse_time_field(const std::string& field, std::size_t row) {
  const auto v = util::parse_strict_double(field);
  if (!v.has_value() || !std::isfinite(*v) || *v < 0.0) {
    throw util::InvalidArgument("failure log row " + std::to_string(row) +
                                ": bad time value \"" + field + "\"");
  }
  return *v;
}

}  // namespace

void write_failure_log_csv(const std::string& path,
                           const std::vector<double>& gaps) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(gaps.size() + 1);
  rows.push_back({"gap_seconds"});
  for (const double g : gaps) rows.push_back({format_exact(g)});
  io::write_csv_file(path, rows);
}

std::vector<double> parse_failure_log_csv(const std::string& text) {
  const auto rows = io::parse_csv(text);
  std::vector<double> values;
  bool absolute_times = false;
  bool seen_content = false;
  std::size_t row_index = 0;
  for (const auto& row : rows) {
    ++row_index;
    if (row.empty() || (row.size() == 1 && util::trim(row[0]).empty())) {
      continue;  // blank lines anywhere are ignored
    }
    const std::string field = util::trim(row[0]);
    if (!seen_content) {
      seen_content = true;
      const std::string header = util::to_lower(field);
      if (header == "gap_seconds") continue;
      if (header == "failure_time") {
        absolute_times = true;
        continue;
      }
      // No recognised header: fall through and parse as a value.
    }
    values.push_back(parse_time_field(field, row_index));
  }
  if (!absolute_times) {
    if (values.empty()) {
      throw util::InvalidArgument("failure log contains no gaps");
    }
    return values;
  }
  // Absolute failure times: difference into gaps.
  if (values.size() < 2) {
    throw util::InvalidArgument(
        "failure log with absolute times needs at least two rows");
  }
  std::vector<double> gaps;
  gaps.reserve(values.size() - 1);
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] < values[i - 1]) {
      throw util::InvalidArgument(
          "failure log times must be non-decreasing (row " +
          std::to_string(i + 2) + ")");
    }
    gaps.push_back(values[i] - values[i - 1]);
  }
  return gaps;
}

std::optional<double> FailureLogReader::feed(const std::string& line) {
  ++line_index_;
  // First CSV field only, like the batch parser (extra columns in machine
  // logs are ignored).
  const auto comma = line.find(',');
  const std::string field = util::trim(
      comma == std::string::npos ? line : line.substr(0, comma));
  if (field.empty()) return std::nullopt;
  if (!seen_content_) {
    seen_content_ = true;
    const std::string header = util::to_lower(field);
    if (header == "gap_seconds") return std::nullopt;
    if (header == "failure_time") {
      absolute_times_ = true;
      return std::nullopt;
    }
    // No recognised header: fall through and parse as a value.
  }
  const double value = parse_time_field(field, line_index_);
  if (!absolute_times_) return value;
  if (!prev_time_.has_value()) {
    prev_time_ = value;
    return std::nullopt;
  }
  if (value < *prev_time_) {
    throw util::InvalidArgument(
        "failure log times must be non-decreasing (row " +
        std::to_string(line_index_) + ")");
  }
  const double gap = value - *prev_time_;
  prev_time_ = value;
  return gap;
}

std::vector<double> read_failure_log_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw util::IoError("cannot open failure log: " + path);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return parse_failure_log_csv(os.str());
}

}  // namespace ayd::sim
