#include "ayd/sim/event_queue.hpp"

#include "ayd/util/contracts.hpp"

namespace ayd::sim {

std::uint64_t EventQueue::push(double time, EventType type) {
  AYD_REQUIRE(time >= 0.0, "event time must be nonnegative");
  const std::uint64_t id = next_id_++;
  heap_.push(Event{time, type, id});
  return id;
}

void EventQueue::cancel(std::uint64_t id) { cancelled_.insert(id); }

void EventQueue::skip_cancelled() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

std::optional<Event> EventQueue::pop() {
  skip_cancelled();
  if (heap_.empty()) return std::nullopt;
  Event e = heap_.top();
  heap_.pop();
  return e;
}

std::optional<Event> EventQueue::peek() {
  skip_cancelled();
  if (heap_.empty()) return std::nullopt;
  return heap_.top();
}

void EventQueue::clear() {
  heap_ = {};
  cancelled_.clear();
}

}  // namespace ayd::sim
