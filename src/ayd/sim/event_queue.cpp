#include "ayd/sim/event_queue.hpp"

#include <algorithm>

#include "ayd/util/contracts.hpp"

namespace ayd::sim {

namespace {
constexpr std::size_t kArity = 4;  ///< heap fan-out
}  // namespace

std::uint64_t EventQueue::push(double time, EventType type) {
  AYD_REQUIRE(time >= 0.0, "event time must be nonnegative");
  const std::uint64_t id = next_id_++;
  const Event e{time, type, id};
  if (!has_slot_) {
    slot_ = e;
    has_slot_ = true;
  } else if (before(e, slot_)) {
    heap_insert(slot_);
    slot_ = e;
  } else {
    heap_insert(e);
  }
  return id;
}

void EventQueue::cancel(std::uint64_t id) {
  if (has_slot_ && slot_.id == id) {
    has_slot_ = false;
    return;
  }
  if (id >= next_id_) return;  // never issued in this epoch: no-op
  // Skip duplicate marks: one would survive the single consumption in
  // skip_cancelled and desynchronize live_size() forever.
  if (!is_cancelled(id)) cancelled_.push_back(id);
}

bool EventQueue::is_cancelled(std::uint64_t id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

void EventQueue::heap_insert(const Event& e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Event e = heap_[i];
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::remove_root() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::skip_cancelled() {
  while (!heap_.empty() && !cancelled_.empty()) {
    const auto it =
        std::find(cancelled_.begin(), cancelled_.end(), heap_[0].id);
    if (it == cancelled_.end()) return;
    *it = cancelled_.back();
    cancelled_.pop_back();
    remove_root();
  }
}

std::optional<Event> EventQueue::pop() {
  skip_cancelled();
  if (slot_is_next()) {
    has_slot_ = false;
    return slot_;
  }
  if (heap_.empty()) return std::nullopt;
  const Event e = heap_[0];
  remove_root();
  return e;
}

std::optional<Event> EventQueue::peek() {
  skip_cancelled();
  if (slot_is_next()) return slot_;
  if (heap_.empty()) return std::nullopt;
  return heap_[0];
}

void EventQueue::clear() {
  heap_.clear();
  cancelled_.clear();
  has_slot_ = false;
  next_id_ = 0;
}

void EventQueue::reserve(std::size_t events) { heap_.reserve(events); }

}  // namespace ayd::sim
