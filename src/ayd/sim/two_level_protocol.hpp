// Simulation of two-level checkpointing patterns (extension; see
// core/two_level.hpp): n work segments each ending in a verification and
// a level-1 (in-memory) checkpoint, a level-2 (stable-storage) checkpoint
// closing the pattern. A silent error re-executes only its segment after
// a level-1 recovery; a fail-stop error costs downtime + level-2 recovery
// and restarts the whole pattern.

#pragma once

#include "ayd/core/two_level.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/sim/protocol.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/sim/trace.hpp"

namespace ayd::sim {

/// Closed-form per-segment sampler for TWOLEVELPATTERN(T, P, n). With
/// n == 1 and a level-1 cost equal to the base recovery cost it samples
/// exactly the same process as FastProtocolSimulator.
class TwoLevelSimulator {
 public:
  TwoLevelSimulator(const core::TwoLevelSystem& sys,
                    const core::TwoLevelPattern& pattern);

  [[nodiscard]] PatternStats simulate_pattern(rng::RngStream& rng);

  [[nodiscard]] const core::TwoLevelPattern& pattern() const {
    return pattern_;
  }

 private:
  core::TwoLevelPattern pattern_;
  double lf_;
  double ls_;
  double w_;   ///< segment work length T/n
  double v_;   ///< verification cost V_P
  double l1_;  ///< level-1 checkpoint (= level-1 recovery) cost L_P
  double c2_;  ///< level-2 checkpoint cost C_P
  double r2_;  ///< level-2 recovery cost R_P
  double d_;   ///< downtime D
};

/// Event-queue reference simulator for two-level patterns: same
/// distribution as TwoLevelSimulator (tests compare the two), plus
/// labelled execution traces. Level-1 and level-2 checkpoints both trace
/// as kCheckpoint; both recovery levels trace as kRecovery.
class TwoLevelDesSimulator {
 public:
  TwoLevelDesSimulator(const core::TwoLevelSystem& sys,
                       const core::TwoLevelPattern& pattern);

  /// Simulates one pattern to completion. If `trace` is given, appends
  /// labelled segments starting at `start_time`.
  [[nodiscard]] PatternStats simulate_pattern(rng::RngStream& rng,
                                              Trace* trace = nullptr,
                                              double start_time = 0.0);

  [[nodiscard]] const core::TwoLevelPattern& pattern() const {
    return pattern_;
  }

 private:
  core::TwoLevelPattern pattern_;
  double lf_;
  double ls_;
  double w_;
  double v_;
  double l1_;
  double c2_;
  double r2_;
  double d_;
};

/// Replicated overhead estimate for a two-level pattern (mirrors
/// sim::simulate_overhead for the base protocol). opt.backend selects the
/// fast sampler (default) or the DES engine.
[[nodiscard]] ReplicationResult simulate_two_level_overhead(
    const core::TwoLevelSystem& sys, const core::TwoLevelPattern& pattern,
    const ReplicationOptions& opt = {}, exec::ThreadPool* pool = nullptr);

}  // namespace ayd::sim
