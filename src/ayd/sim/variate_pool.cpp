#include "ayd/sim/variate_pool.hpp"

#include "ayd/util/contracts.hpp"

namespace ayd::sim {

UnitVariatePool::UnitVariatePool(const model::FailureDistSpec& spec,
                                 std::uint64_t seed)
    : spec_(spec), seed_(seed), unit_dist_(spec.instantiate(1.0)) {
  AYD_REQUIRE(eligible(spec),
              "UnitVariatePool: spec does not factor through unit variates");
  AYD_REQUIRE(unit_dist_->unit_samplable(),
              "UnitVariatePool: rate-1 instantiation is not unit-samplable");
}

UnitVariatePool::Cursor UnitVariatePool::cursor(std::size_t replica) {
  std::lock_guard<std::mutex> lock(mu_);
  while (replicas_.size() <= replica) {
    replicas_.push_back(std::make_unique<ReplicaStore>(
        rng::RngStream(seed_, replicas_.size())));
  }
  return Cursor(this, replicas_[replica].get());
}

const double* UnitVariatePool::acquire_chunk(ReplicaStore& store,
                                             std::size_t index) {
  std::lock_guard<std::mutex> lock(store.mu);
  while (store.chunks.size() <= index) {
    auto chunk = std::make_unique<std::array<double, kVariatePoolChunk>>();
    // Words leave the replica's stream in exactly the order per-point
    // sampling would consume them; the tier-dispatched transform turns
    // them into unit variates in bulk.
    unit_dist_->sample_units_fast(store.stream, chunk->data(),
                                  kVariatePoolChunk);
    store.chunks.push_back(std::move(chunk));
    generated_.fetch_add(kVariatePoolChunk, std::memory_order_relaxed);
  }
  return store.chunks[index]->data();
}

void UnitVariatePool::Cursor::refill() {
  ptr_ = pool_->acquire_chunk(*store_, next_chunk_);
  ++next_chunk_;
  remaining_ = kVariatePoolChunk;
}

std::shared_ptr<UnitVariatePool> VariateCache::pool_for(
    const model::FailureDistSpec& spec, std::uint64_t seed) {
  if (!UnitVariatePool::eligible(spec)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.seed == seed && e.spec == spec) return e.pool;
  }
  entries_.push_back(
      {spec, seed, std::make_shared<UnitVariatePool>(spec, seed)});
  return entries_.back().pool;
}

std::size_t VariateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace ayd::sim
