// Replicated simulation driver.
//
// Follows the paper's experimental protocol (Section IV-A): the result of
// each experiment is an average over independent runs, each executing a
// long sequence of patterns; the expected execution overhead is estimated
// as the ratio of faulty execution time to fault-free execution time of
// the same work. Replica i draws from the RNG substream (seed, i), so the
// estimate is bit-identical no matter how many threads execute it.

#pragma once

#include <cstdint>
#include <optional>

#include "ayd/core/pattern.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/model/system.hpp"
#include "ayd/sim/protocol.hpp"
#include "ayd/stats/summary.hpp"

namespace ayd::sim {

enum class Backend {
  kFast,  ///< closed-form per-segment sampler (default)
  kDes,   ///< event-queue reference simulator
};
// Extended systems (model/correlated.hpp) keep the same two-backend
// choice; the driver routes them to the correlated simulators
// (sim/correlated.hpp) instead of the plain bit-pinned ones.

struct ReplicationOptions {
  /// Independent runs (the paper uses 500).
  std::size_t replicas = 120;
  /// Patterns per run (the paper uses >= 500).
  std::size_t patterns_per_replica = 160;
  std::uint64_t seed = 0xA4D2016ULL;
  Backend backend = Backend::kFast;
  double ci_level = 0.95;
  /// Common random numbers: when non-null, replica i draws its unit
  /// variates from shared_units->cursor(i) instead of sampling substream
  /// (seed, i) itself. The pool must have been built for the same
  /// (failure-dist shape, seed) — sim/variate_pool.hpp — which makes the
  /// draws identical in distribution (bit-identical under the scalar
  /// tier) while sweeps over rate/period/procs pay for variate
  /// generation once. Not owned; must outlive the call. Ignored by
  /// non-unit-samplable sources' fallback paths (trace replay), which is
  /// exactly the set for which VariateCache returns no pool.
  UnitVariatePool* shared_units = nullptr;
};

struct ReplicationResult {
  /// Per-replica execution overhead H = wall / (n·T·S(P)) summary.
  stats::Summary overhead;
  /// Per-replica mean pattern wall-time summary.
  stats::Summary pattern_time;
  /// Exact model predictions for comparison.
  double analytic_overhead = 0.0;
  double analytic_pattern_time = 0.0;
  /// Error-process telemetry (per pattern, averaged over everything).
  double fail_stops_per_pattern = 0.0;
  double silent_detections_per_pattern = 0.0;
  double masked_silent_per_pattern = 0.0;
  /// Shock-stream strikes of a correlated world (0 for plain systems).
  double shock_errors_per_pattern = 0.0;
  double attempts_per_pattern = 0.0;
  std::uint64_t total_patterns = 0;
  /// Replication rounds executed (1 for the fixed-count driver; the
  /// adaptive driver counts its grow-and-recheck rounds).
  int rounds = 1;
  /// True when the overhead CI met the requested relative tolerance
  /// (vacuously true for the fixed-count driver, which has no target).
  bool ci_converged = true;
};

/// Stopping rule of the adaptive replication driver: keep adding replicas
/// until the Student-t CI of the mean overhead is relatively tight, or a
/// hard replica cap is reached. The growth schedule is deterministic and
/// every replica i draws from RNG substream (seed, i), so the number of
/// replicas consumed — not just their values — is a pure function of
/// (system, pattern, options): same inputs ⇒ bit-identical replication
/// count and estimate on every machine and thread count.
struct AdaptiveOptions {
  /// Target: CI half-width <= ci_rel_tol · |mean overhead|.
  double ci_rel_tol = 0.05;
  /// Replicas of the first round (>= 2 so a CI exists).
  std::size_t min_replicas = 24;
  /// Hard cap; reaching it reports ci_converged = false.
  std::size_t max_replicas = 4096;
  /// Round-size multiplier (> 1); next target is
  /// min(max_replicas, ceil(growth · current)).
  double growth = 1.6;
};

/// One replica's reduced measurements (simulate_overhead's intermediate).
struct ReplicaOutcome {
  double overhead = 0.0;
  double mean_pattern_time = 0.0;
  PatternStats totals;
};

/// Reusable scratch for simulate_overhead: the per-replica outcome arena.
/// A sweep that evaluates thousands of grid points calls
/// simulate_overhead once per point; handing each call the same scratch
/// keeps the steady state allocation-free (the simulators' own arenas —
/// event queue, variate block — already live inside the per-call
/// simulator). Not thread-safe: use one per calling thread (the engine's
/// evaluator keeps one per worker).
struct ReplicationScratch {
  std::vector<ReplicaOutcome> outcomes;
};

/// Simulates `replicas` independent applications of
/// `patterns_per_replica` patterns each and summarises the measured
/// execution overhead against the analytic prediction. If `pool` is
/// non-null the replicas run in parallel on it (one reusable simulator
/// per contiguous worker chunk; results are bit-identical for any thread
/// count because replica i always draws from RNG substream (seed, i)).
/// `scratch`, when given, is reused across calls.
[[nodiscard]] ReplicationResult simulate_overhead(
    const model::System& sys, const core::Pattern& pattern,
    const ReplicationOptions& opt = {}, exec::ThreadPool* pool = nullptr,
    ReplicationScratch* scratch = nullptr);

/// Adaptive-replication variant: ignores `opt.replicas` and instead grows
/// the replica count on the `adapt` schedule until the Student-t CI of
/// the mean overhead satisfies `adapt.ci_rel_tol` (or `adapt.max_replicas`
/// is hit, reported via ci_converged = false). Replicas are *appended*
/// across rounds — replica i always draws substream (opt.seed, i) — so
/// the returned estimate is bit-identical to a fixed-count run at the
/// final count, and the count itself is deterministic. The returned
/// summaries carry Student-t intervals (honest at small counts), not the
/// normal-theory intervals of the fixed driver.
[[nodiscard]] ReplicationResult simulate_overhead_adaptive(
    const model::System& sys, const core::Pattern& pattern,
    const ReplicationOptions& opt, const AdaptiveOptions& adapt,
    exec::ThreadPool* pool = nullptr, ReplicationScratch* scratch = nullptr);

}  // namespace ayd::sim
