#include "ayd/sim/event.hpp"

namespace ayd::sim {

std::string event_type_name(EventType t) {
  switch (t) {
    case EventType::kFailStop: return "fail-stop";
    case EventType::kSilent: return "silent";
    case EventType::kPhaseEnd: return "phase-end";
  }
  return "unknown";
}

}  // namespace ayd::sim
