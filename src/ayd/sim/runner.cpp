#include "ayd/sim/runner.hpp"

#include <vector>

#include "ayd/core/expected_time.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::sim {

namespace {

struct ReplicaOutcome {
  double overhead = 0.0;
  double mean_pattern_time = 0.0;
  PatternStats totals;
};

ReplicaOutcome run_replica(const model::System& sys,
                           const core::Pattern& pattern,
                           const ReplicationOptions& opt,
                           std::uint64_t replica_index) {
  rng::RngStream rng(opt.seed, replica_index);
  PatternStats totals;

  if (opt.backend == Backend::kDes) {
    DesProtocolSimulator simulator(sys, pattern);
    for (std::size_t i = 0; i < opt.patterns_per_replica; ++i) {
      totals.merge(simulator.simulate_pattern(rng));
    }
  } else {
    FastProtocolSimulator simulator(sys, pattern);
    for (std::size_t i = 0; i < opt.patterns_per_replica; ++i) {
      totals.merge(simulator.simulate_pattern(rng));
    }
  }

  const auto n = static_cast<double>(opt.patterns_per_replica);
  // Fault-free time of the work contained in n patterns, in serial-time
  // units: n·T·S(P) (cf. paper, "Optimization objective").
  const double work = n * pattern.period * sys.speedup(pattern.procs);
  ReplicaOutcome out;
  out.totals = totals;
  out.overhead = totals.wall_time / work;
  out.mean_pattern_time = totals.wall_time / n;
  return out;
}

}  // namespace

ReplicationResult simulate_overhead(const model::System& sys,
                                    const core::Pattern& pattern,
                                    const ReplicationOptions& opt,
                                    exec::ThreadPool* pool) {
  AYD_REQUIRE(opt.replicas >= 1, "need at least one replica");
  AYD_REQUIRE(opt.patterns_per_replica >= 1,
              "need at least one pattern per replica");
  core::validate(pattern);

  std::vector<ReplicaOutcome> outcomes;
  if (pool != nullptr) {
    outcomes = exec::parallel_map(*pool, opt.replicas, [&](std::size_t i) {
      return run_replica(sys, pattern, opt, i);
    });
  } else {
    outcomes.reserve(opt.replicas);
    for (std::size_t i = 0; i < opt.replicas; ++i) {
      outcomes.push_back(run_replica(sys, pattern, opt, i));
    }
  }

  // Deterministic reduction in replica order.
  stats::RunningStats overhead_stats;
  stats::RunningStats time_stats;
  PatternStats totals;
  for (const ReplicaOutcome& o : outcomes) {
    overhead_stats.add(o.overhead);
    time_stats.add(o.mean_pattern_time);
    totals.merge(o.totals);
  }

  ReplicationResult result;
  result.overhead = stats::summarize(overhead_stats, opt.ci_level);
  result.pattern_time = stats::summarize(time_stats, opt.ci_level);
  result.analytic_overhead = core::pattern_overhead(sys, pattern);
  result.analytic_pattern_time = core::expected_pattern_time(sys, pattern);
  result.total_patterns =
      static_cast<std::uint64_t>(opt.replicas) * opt.patterns_per_replica;
  const auto n = static_cast<double>(result.total_patterns);
  result.fail_stops_per_pattern =
      static_cast<double>(totals.fail_stop_errors) / n;
  result.silent_detections_per_pattern =
      static_cast<double>(totals.silent_detections) / n;
  result.masked_silent_per_pattern =
      static_cast<double>(totals.masked_silent) / n;
  result.attempts_per_pattern = static_cast<double>(totals.attempts) / n;
  return result;
}

}  // namespace ayd::sim
