#include "ayd/sim/runner.hpp"

#include <cmath>
#include <vector>

#include "ayd/core/expected_time.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/sim/correlated.hpp"
#include "ayd/stats/ci.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::sim {

namespace {

/// Runs replicas [begin, end) on one reusable simulator and writes their
/// outcomes. Hoisting the simulator out of the replica loop is what makes
/// replication allocation-free steady-state: the simulator's arenas
/// (event queue, batched-variate block) and distribution instantiations
/// are paid once per chunk, not once per replica. Results are invariant
/// to the chunking because replica i's RNG stream is a pure function of
/// (seed, i).
template <typename Simulator>
void run_replica_range(const model::System& sys, const core::Pattern& pattern,
                       const ReplicationOptions& opt, std::size_t begin,
                       std::size_t end, ReplicaOutcome* out) {
  Simulator simulator(sys, pattern);
  // Fault-free time of the work contained in n patterns, in serial-time
  // units: n·T·S(P) (cf. paper, "Optimization objective").
  const auto n = static_cast<double>(opt.patterns_per_replica);
  const double work = n * pattern.period * sys.speedup(pattern.procs);

  for (std::size_t i = begin; i < end; ++i) {
    simulator.begin_replica();  // drop variates prefetched from stream i-1
    UnitVariatePool::Cursor cursor;  // keep alive through the replica
    if (opt.shared_units != nullptr) {
      cursor = opt.shared_units->cursor(i);
      simulator.set_unit_cursor(&cursor);
    }
    rng::RngStream rng(opt.seed, i);
    const PatternStats totals =
        simulator.simulate_replica(rng, opt.patterns_per_replica);
    if (opt.shared_units != nullptr) simulator.set_unit_cursor(nullptr);
    ReplicaOutcome& o = out[i - begin];
    o.totals = totals;
    o.overhead = totals.wall_time / work;
    o.mean_pattern_time = totals.wall_time / n;
  }
}

/// Runs replicas [first, outcomes.size()) into the tail of `outcomes`
/// (earlier entries are kept — this is what lets the adaptive driver
/// append rounds without re-simulating). Parallel chunks are offset by
/// `first` so replica i still draws substream (seed, i) regardless of how
/// many rounds preceded it.
void run_replicas(const model::System& sys, const core::Pattern& pattern,
                  const ReplicationOptions& opt, exec::ThreadPool* pool,
                  std::vector<ReplicaOutcome>& outcomes, std::size_t first) {
  const std::size_t count = outcomes.size() - first;
  const auto run_chunk = [&](std::size_t begin, std::size_t end) {
    if (sys.extended()) {
      // Correlated / multi-level worlds: same backend choice, different
      // simulators; the plain bit-pinned paths are never entered.
      if (opt.backend == Backend::kDes) {
        run_replica_range<CorrelatedDesSimulator>(
            sys, pattern, opt, first + begin, first + end,
            outcomes.data() + first + begin);
      } else {
        run_replica_range<CorrelatedFastSimulator>(
            sys, pattern, opt, first + begin, first + end,
            outcomes.data() + first + begin);
      }
    } else if (opt.backend == Backend::kDes) {
      run_replica_range<DesProtocolSimulator>(
          sys, pattern, opt, first + begin, first + end,
          outcomes.data() + first + begin);
    } else {
      run_replica_range<FastProtocolSimulator>(
          sys, pattern, opt, first + begin, first + end,
          outcomes.data() + first + begin);
    }
  };
  if (pool != nullptr) {
    exec::parallel_for_chunks(*pool, count, run_chunk);
  } else {
    run_chunk(0, count);
  }
}

/// Deterministic reduction of the outcomes, in replica order, into the
/// result summaries and telemetry. `student_ci` selects Student-t
/// intervals (adaptive driver) over normal-theory ones (fixed driver).
ReplicationResult reduce_outcomes(const model::System& sys,
                                  const core::Pattern& pattern,
                                  const ReplicationOptions& opt,
                                  const std::vector<ReplicaOutcome>& outcomes,
                                  bool student_ci) {
  stats::RunningStats overhead_stats;
  stats::RunningStats time_stats;
  PatternStats totals;
  for (const ReplicaOutcome& o : outcomes) {
    overhead_stats.add(o.overhead);
    time_stats.add(o.mean_pattern_time);
    totals.merge(o.totals);
  }

  ReplicationResult result;
  if (student_ci) {
    result.overhead = stats::summarize_student(overhead_stats, opt.ci_level);
    result.pattern_time = stats::summarize_student(time_stats, opt.ci_level);
  } else {
    result.overhead = stats::summarize(overhead_stats, opt.ci_level);
    result.pattern_time = stats::summarize(time_stats, opt.ci_level);
  }
  result.analytic_overhead = core::pattern_overhead(sys, pattern);
  result.analytic_pattern_time = core::expected_pattern_time(sys, pattern);
  result.total_patterns = static_cast<std::uint64_t>(outcomes.size()) *
                          opt.patterns_per_replica;
  const auto n = static_cast<double>(result.total_patterns);
  result.fail_stops_per_pattern =
      static_cast<double>(totals.fail_stop_errors) / n;
  result.silent_detections_per_pattern =
      static_cast<double>(totals.silent_detections) / n;
  result.masked_silent_per_pattern =
      static_cast<double>(totals.masked_silent) / n;
  result.shock_errors_per_pattern =
      static_cast<double>(totals.shock_errors) / n;
  result.attempts_per_pattern = static_cast<double>(totals.attempts) / n;
  return result;
}

}  // namespace

ReplicationResult simulate_overhead(const model::System& sys,
                                    const core::Pattern& pattern,
                                    const ReplicationOptions& opt,
                                    exec::ThreadPool* pool,
                                    ReplicationScratch* scratch) {
  AYD_REQUIRE(opt.replicas >= 1, "need at least one replica");
  AYD_REQUIRE(opt.patterns_per_replica >= 1,
              "need at least one pattern per replica");
  AYD_REQUIRE(opt.shared_units == nullptr ||
                  (!sys.extended() &&
                   opt.shared_units->seed() == opt.seed &&
                   opt.shared_units->spec() == sys.failure().dist()),
              "shared_units pool was built for a different (spec, seed) "
              "scenario than this replication (extended systems have no "
              "CRN pool mode)");
  core::validate(pattern);

  std::vector<ReplicaOutcome> local;
  std::vector<ReplicaOutcome>& outcomes =
      scratch != nullptr ? scratch->outcomes : local;
  outcomes.resize(opt.replicas);
  run_replicas(sys, pattern, opt, pool, outcomes, 0);
  return reduce_outcomes(sys, pattern, opt, outcomes, /*student_ci=*/false);
}

ReplicationResult simulate_overhead_adaptive(const model::System& sys,
                                             const core::Pattern& pattern,
                                             const ReplicationOptions& opt,
                                             const AdaptiveOptions& adapt,
                                             exec::ThreadPool* pool,
                                             ReplicationScratch* scratch) {
  AYD_REQUIRE(opt.patterns_per_replica >= 1,
              "need at least one pattern per replica");
  AYD_REQUIRE(adapt.min_replicas >= 2,
              "adaptive replication needs min_replicas >= 2 for a CI");
  AYD_REQUIRE(adapt.max_replicas >= adapt.min_replicas,
              "adaptive replication cap below the starting count");
  AYD_REQUIRE(adapt.ci_rel_tol > 0.0 && std::isfinite(adapt.ci_rel_tol),
              "ci_rel_tol must be finite and > 0");
  AYD_REQUIRE(adapt.growth > 1.0, "adaptive growth factor must be > 1");
  AYD_REQUIRE(opt.shared_units == nullptr ||
                  (!sys.extended() &&
                   opt.shared_units->seed() == opt.seed &&
                   opt.shared_units->spec() == sys.failure().dist()),
              "shared_units pool was built for a different (spec, seed) "
              "scenario than this replication (extended systems have no "
              "CRN pool mode)");
  core::validate(pattern);

  std::vector<ReplicaOutcome> local;
  std::vector<ReplicaOutcome>& outcomes =
      scratch != nullptr ? scratch->outcomes : local;
  outcomes.clear();

  // Grow-and-recheck rounds. The CI is recomputed over *all* replicas so
  // far (replica order, so the reduction matches a fixed-count run); the
  // next round size depends only on the current one, never on timing.
  int rounds = 0;
  bool converged = false;
  std::size_t target = adapt.min_replicas;
  while (true) {
    const std::size_t first = outcomes.size();
    outcomes.resize(target);
    run_replicas(sys, pattern, opt, pool, outcomes, first);
    ++rounds;

    stats::RunningStats overhead_stats;
    for (const ReplicaOutcome& o : outcomes) overhead_stats.add(o.overhead);
    const stats::ConfidenceInterval ci =
        stats::mean_ci_student(overhead_stats, opt.ci_level);
    if (stats::relative_half_width(ci, overhead_stats.mean()) <=
        adapt.ci_rel_tol) {
      converged = true;
      break;
    }
    if (target >= adapt.max_replicas) break;
    const auto grown = static_cast<std::size_t>(
        std::ceil(adapt.growth * static_cast<double>(target)));
    target = std::min(adapt.max_replicas, std::max(target + 1, grown));
  }

  ReplicationResult result =
      reduce_outcomes(sys, pattern, opt, outcomes, /*student_ci=*/true);
  result.rounds = rounds;
  result.ci_converged = converged;
  return result;
}

}  // namespace ayd::sim
