#include "ayd/sim/runner.hpp"

#include <vector>

#include "ayd/core/expected_time.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::sim {

namespace {

/// Runs replicas [begin, end) on one reusable simulator and writes their
/// outcomes. Hoisting the simulator out of the replica loop is what makes
/// replication allocation-free steady-state: the simulator's arenas
/// (event queue, batched-variate block) and distribution instantiations
/// are paid once per chunk, not once per replica. Results are invariant
/// to the chunking because replica i's RNG stream is a pure function of
/// (seed, i).
template <typename Simulator>
void run_replica_range(const model::System& sys, const core::Pattern& pattern,
                       const ReplicationOptions& opt, std::size_t begin,
                       std::size_t end, ReplicaOutcome* out) {
  Simulator simulator(sys, pattern);
  // Fault-free time of the work contained in n patterns, in serial-time
  // units: n·T·S(P) (cf. paper, "Optimization objective").
  const auto n = static_cast<double>(opt.patterns_per_replica);
  const double work = n * pattern.period * sys.speedup(pattern.procs);

  for (std::size_t i = begin; i < end; ++i) {
    simulator.begin_replica();  // drop variates prefetched from stream i-1
    rng::RngStream rng(opt.seed, i);
    const PatternStats totals =
        simulator.simulate_replica(rng, opt.patterns_per_replica);
    ReplicaOutcome& o = out[i - begin];
    o.totals = totals;
    o.overhead = totals.wall_time / work;
    o.mean_pattern_time = totals.wall_time / n;
  }
}

void run_replicas(const model::System& sys, const core::Pattern& pattern,
                  const ReplicationOptions& opt, exec::ThreadPool* pool,
                  std::vector<ReplicaOutcome>& outcomes) {
  outcomes.resize(opt.replicas);
  const auto run_chunk = [&](std::size_t begin, std::size_t end) {
    if (opt.backend == Backend::kDes) {
      run_replica_range<DesProtocolSimulator>(sys, pattern, opt, begin, end,
                                              outcomes.data() + begin);
    } else {
      run_replica_range<FastProtocolSimulator>(sys, pattern, opt, begin, end,
                                               outcomes.data() + begin);
    }
  };
  if (pool != nullptr) {
    exec::parallel_for_chunks(*pool, opt.replicas, run_chunk);
  } else {
    run_chunk(0, opt.replicas);
  }
}

}  // namespace

ReplicationResult simulate_overhead(const model::System& sys,
                                    const core::Pattern& pattern,
                                    const ReplicationOptions& opt,
                                    exec::ThreadPool* pool,
                                    ReplicationScratch* scratch) {
  AYD_REQUIRE(opt.replicas >= 1, "need at least one replica");
  AYD_REQUIRE(opt.patterns_per_replica >= 1,
              "need at least one pattern per replica");
  core::validate(pattern);

  std::vector<ReplicaOutcome> local;
  std::vector<ReplicaOutcome>& outcomes =
      scratch != nullptr ? scratch->outcomes : local;
  run_replicas(sys, pattern, opt, pool, outcomes);

  // Deterministic reduction in replica order.
  stats::RunningStats overhead_stats;
  stats::RunningStats time_stats;
  PatternStats totals;
  for (const ReplicaOutcome& o : outcomes) {
    overhead_stats.add(o.overhead);
    time_stats.add(o.mean_pattern_time);
    totals.merge(o.totals);
  }

  ReplicationResult result;
  result.overhead = stats::summarize(overhead_stats, opt.ci_level);
  result.pattern_time = stats::summarize(time_stats, opt.ci_level);
  result.analytic_overhead = core::pattern_overhead(sys, pattern);
  result.analytic_pattern_time = core::expected_pattern_time(sys, pattern);
  result.total_patterns =
      static_cast<std::uint64_t>(opt.replicas) * opt.patterns_per_replica;
  const auto n = static_cast<double>(result.total_patterns);
  result.fail_stops_per_pattern =
      static_cast<double>(totals.fail_stop_errors) / n;
  result.silent_detections_per_pattern =
      static_cast<double>(totals.silent_detections) / n;
  result.masked_silent_per_pattern =
      static_cast<double>(totals.masked_silent) / n;
  result.attempts_per_pattern = static_cast<double>(totals.attempts) / n;
  return result;
}

}  // namespace ayd::sim
