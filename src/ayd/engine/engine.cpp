#include "ayd/engine/engine.hpp"

#include <utility>

namespace ayd::engine {

std::vector<Record> run_points(const std::vector<Point>& pts,
                               exec::ThreadPool* pool, const EvalFn& eval) {
  if (pool != nullptr) {
    return exec::parallel_map(*pool, pts.size(), [&](std::size_t i) {
      return eval(pts[i]);
    });
  }
  std::vector<Record> out;
  out.reserve(pts.size());
  for (const Point& pt : pts) out.push_back(eval(pt));
  return out;
}

std::vector<Record> run_grid(const GridSpec& grid, exec::ThreadPool* pool,
                             const EvalFn& eval) {
  return run_points(grid.points(), pool, eval);
}

void emit(const std::vector<Record>& records,
          std::initializer_list<ResultSink*> sinks) {
  for (const Record& rec : records) {
    for (ResultSink* sink : sinks) sink->write(rec);
  }
  for (ResultSink* sink : sinks) sink->close();
}

void emit(const std::vector<const Record*>& records,
          std::initializer_list<ResultSink*> sinks) {
  for (const Record* rec : records) {
    for (ResultSink* sink : sinks) sink->write(*rec);
  }
  for (ResultSink* sink : sinks) sink->close();
}

std::vector<std::pair<std::string, std::vector<const Record*>>> group_by(
    const std::vector<Record>& records, std::string_view key) {
  std::vector<std::pair<std::string, std::vector<const Record*>>> groups;
  for (const Record& rec : records) {
    const std::string& label = rec.text(key);
    bool found = false;
    for (auto& [name, members] : groups) {
      if (name == label) {
        members.push_back(&rec);
        found = true;
        break;
      }
    }
    if (!found) groups.emplace_back(label, std::vector<const Record*>{&rec});
  }
  return groups;
}

std::vector<double> collect(const std::vector<const Record*>& records,
                            std::string_view key) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const Record* rec : records) out.push_back(rec->num(key));
  return out;
}

std::vector<double> collect(const std::vector<Record>& records,
                            std::string_view key) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const Record& rec : records) out.push_back(rec.num(key));
  return out;
}

io::Table pivot(const std::vector<Record>& records, const ColumnSpec& row,
                std::string_view column_label_key, const ColumnSpec& value) {
  // Distinct row cells and column labels, in first-appearance order.
  std::vector<std::string> row_cells;
  std::vector<std::string> col_labels;
  for (const Record& rec : records) {
    const std::string cell = ResultSink::format_cell(rec, row);
    bool seen = false;
    for (const std::string& r : row_cells) {
      if (r == cell) { seen = true; break; }
    }
    if (!seen) row_cells.push_back(cell);

    const std::string& label = rec.text(column_label_key);
    seen = false;
    for (const std::string& c : col_labels) {
      if (c == label) { seen = true; break; }
    }
    if (!seen) col_labels.push_back(label);
  }

  std::vector<std::string> headers{row.header};
  headers.insert(headers.end(), col_labels.begin(), col_labels.end());
  io::Table table(std::move(headers));

  for (const std::string& row_cell : row_cells) {
    std::vector<std::string> cells{row_cell};
    for (const std::string& label : col_labels) {
      std::string cell = kNoValue;
      for (const Record& rec : records) {
        if (rec.text(column_label_key) == label &&
            ResultSink::format_cell(rec, row) == row_cell) {
          cell = ResultSink::format_cell(rec, value);
          break;
        }
      }
      cells.push_back(std::move(cell));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

}  // namespace ayd::engine
