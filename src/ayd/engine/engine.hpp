// The experiment engine: declarative grids, point-level parallelism, and
// pluggable result sinks.
//
//   GridSpec grid;                       // declare the sweep
//   grid.scenarios({...}).axis(Axis::log_spaced("lambda", 1e-12, 1e-8, 5));
//   auto records = run_grid(grid, pool, [&](const Point& pt) {
//     Record r; ... evaluate_point(...) ...; return r;  // raw values
//   });
//   TableSink table(columns); CsvSink csv(path, csv_columns);
//   emit(records, {&table, &csv});
//
// run_grid fans the points out over an exec::ThreadPool and returns the
// records in grid order, so output is bit-identical to a serial run no
// matter how many threads execute it (per-point evaluations are pure; the
// simulator's per-replica RNG substreams are derived from indices, never
// from scheduling).

#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ayd/engine/evaluator.hpp"
#include "ayd/engine/grid.hpp"
#include "ayd/engine/record.hpp"
#include "ayd/engine/sink.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/io/table.hpp"

namespace ayd::engine {

using EvalFn = std::function<Record(const Point&)>;

/// Evaluates every grid point and returns the records in grid (row-major)
/// order. With a pool, points run in parallel; the first evaluation
/// exception is rethrown. A null pool runs serially.
///
/// Never pass the same pool both here and as evaluate_point's sim_pool:
/// nested parallel_for on one pool can deadlock once every worker is
/// occupied by an outer point. Pick the level with more work — points
/// for wide grids, replicas (serial points + sim_pool) for tiny grids.
[[nodiscard]] std::vector<Record> run_grid(const GridSpec& grid,
                                           exec::ThreadPool* pool,
                                           const EvalFn& eval);

/// Runs pre-materialised points (for callers that post-process points()).
[[nodiscard]] std::vector<Record> run_points(const std::vector<Point>& pts,
                                             exec::ThreadPool* pool,
                                             const EvalFn& eval);

/// Streams records through one or more sinks and closes them.
void emit(const std::vector<Record>& records,
          std::initializer_list<ResultSink*> sinks);
void emit(const std::vector<const Record*>& records,
          std::initializer_list<ResultSink*> sinks);

/// Partitions records on the text field `key`, preserving record order
/// within groups and first-appearance order across groups.
[[nodiscard]] std::vector<
    std::pair<std::string, std::vector<const Record*>>>
group_by(const std::vector<Record>& records, std::string_view key);

/// Numeric column extraction (for fits and post-hoc statistics).
[[nodiscard]] std::vector<double> collect(
    const std::vector<const Record*>& records, std::string_view key);
[[nodiscard]] std::vector<double> collect(
    const std::vector<Record>& records, std::string_view key);

/// Cross-tab: one table row per distinct `row` cell, one column per
/// distinct `column_label` text (in first-appearance order), cells from
/// `value`. Reproduces the Figure-3 style "rows = P, columns = scenario"
/// layout from a flat record list.
[[nodiscard]] io::Table pivot(const std::vector<Record>& records,
                              const ColumnSpec& row,
                              std::string_view column_label_key,
                              const ColumnSpec& value);

}  // namespace ayd::engine
