#include "ayd/engine/grid.hpp"

#include <cmath>

#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"

namespace ayd::engine {

Axis Axis::linear(std::string name, double from, double to, int points) {
  return spaced(std::move(name), from, to, points, /*log_spacing=*/false);
}

Axis Axis::log_spaced(std::string name, double from, double to, int points) {
  return spaced(std::move(name), from, to, points, /*log_spacing=*/true);
}

Axis Axis::spaced(std::string name, double from, double to, int points,
                  bool log_spacing) {
  AYD_REQUIRE(points >= 2, "a sweep needs at least two points");
  AYD_REQUIRE(to > from, "sweep range must satisfy to > from");
  if (log_spacing) {
    AYD_REQUIRE(from > 0.0, "log-spaced sweeps need from > 0");
  }
  Axis axis{std::move(name), {}};
  axis.values.resize(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / (points - 1);
    axis.values[static_cast<std::size_t>(i)] =
        log_spacing ? from * std::pow(to / from, t)
                    : from + (to - from) * t;
  }
  return axis;
}

Axis Axis::step(std::string name, double from, double to, double step) {
  AYD_REQUIRE(step > 0.0, "step axes need step > 0");
  AYD_REQUIRE(to >= from, "step axes need to >= from");
  Axis axis{std::move(name), {}};
  for (double x = from; x <= to + 1e-9; x += step) {
    axis.values.push_back(x);
  }
  return axis;
}

Axis Axis::list(std::string name, std::vector<double> values) {
  AYD_REQUIRE(!values.empty(), "an axis needs at least one value");
  return {std::move(name), std::move(values)};
}

bool Point::has_var(std::string_view name) const {
  for (const auto& [k, v] : vars) {
    if (k == name) return true;
  }
  return false;
}

double Point::var(std::string_view name) const {
  for (const auto& [k, v] : vars) {
    if (k == name) return v;
  }
  throw util::InvalidArgument("grid point has no axis named '" +
                              std::string(name) + "'");
}

GridSpec& GridSpec::platforms(std::vector<model::Platform> ps) {
  AYD_REQUIRE(platforms_.empty(), "platforms dimension declared twice");
  AYD_REQUIRE(!ps.empty(), "platforms dimension needs at least one entry");
  platforms_ = std::move(ps);
  dims_.push_back({Kind::kPlatform, 0});
  return *this;
}

GridSpec& GridSpec::platform(const model::Platform& p) {
  return platforms({p});
}

GridSpec& GridSpec::scenarios(std::vector<model::Scenario> ss) {
  AYD_REQUIRE(scenarios_.empty(), "scenarios dimension declared twice");
  AYD_REQUIRE(!ss.empty(), "scenarios dimension needs at least one entry");
  scenarios_ = std::move(ss);
  dims_.push_back({Kind::kScenario, 0});
  return *this;
}

GridSpec& GridSpec::scenario(model::Scenario s) {
  return scenarios({s});
}

GridSpec& GridSpec::axis(Axis a) {
  for (const Axis& existing : axes_) {
    AYD_REQUIRE(existing.name != a.name, "axis declared twice: " + a.name);
  }
  axes_.push_back(std::move(a));
  dims_.push_back({Kind::kAxis, axes_.size() - 1});
  return *this;
}

std::size_t GridSpec::dim_size(const Dim& d) const {
  switch (d.kind) {
    case Kind::kPlatform: return platforms_.size();
    case Kind::kScenario: return scenarios_.size();
    case Kind::kAxis: return axes_[d.payload].values.size();
  }
  return 0;
}

std::size_t GridSpec::size() const {
  std::size_t n = 1;
  for (const Dim& d : dims_) n *= dim_size(d);
  return dims_.empty() ? 0 : n;
}

std::vector<Point> GridSpec::points() const {
  AYD_REQUIRE(!dims_.empty(), "a grid needs at least one dimension");
  const std::size_t total = size();
  std::vector<Point> out;
  out.reserve(total);

  // Mixed-radix enumeration, first-declared dimension outermost.
  std::vector<std::size_t> idx(dims_.size(), 0);
  for (std::size_t flat = 0; flat < total; ++flat) {
    Point pt;
    pt.index = flat;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      const Dim& dim = dims_[d];
      switch (dim.kind) {
        case Kind::kPlatform: pt.platform = platforms_[idx[d]]; break;
        case Kind::kScenario: pt.scenario = scenarios_[idx[d]]; break;
        case Kind::kAxis:
          pt.vars.emplace_back(axes_[dim.payload].name,
                               axes_[dim.payload].values[idx[d]]);
          break;
      }
    }
    out.push_back(std::move(pt));

    // Advance the counter (last-declared dimension fastest).
    for (std::size_t d = dims_.size(); d-- > 0;) {
      if (++idx[d] < dim_size(dims_[d])) break;
      idx[d] = 0;
    }
  }
  return out;
}

}  // namespace ayd::engine
