#include "ayd/engine/record.hpp"

#include "ayd/util/error.hpp"

namespace ayd::engine {

Value& Record::slot(std::string key) {
  for (auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  fields_.emplace_back(std::move(key), Value{});
  return fields_.back().second;
}

void Record::set(std::string key, double value) {
  Value& v = slot(std::move(key));
  v.kind = Value::Kind::kNumber;
  v.number = value;
  v.text.clear();
}

void Record::set(std::string key, std::string text) {
  Value& v = slot(std::move(key));
  v.kind = Value::Kind::kText;
  v.number = 0.0;
  v.text = std::move(text);
}

void Record::set_missing(std::string key) {
  Value& v = slot(std::move(key));
  v.kind = Value::Kind::kMissing;
  v.number = 0.0;
  v.text.clear();
}

bool Record::has(std::string_view key) const {
  return find(key) != nullptr;
}

const Value* Record::find(std::string_view key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Record::num(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr || v->kind != Value::Kind::kNumber) {
    throw util::InvalidArgument("record has no numeric field '" +
                                std::string(key) + "'");
  }
  return v->number;
}

const std::string& Record::text(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr || v->kind != Value::Kind::kText) {
    throw util::InvalidArgument("record has no text field '" +
                                std::string(key) + "'");
  }
  return v->text;
}

}  // namespace ayd::engine
