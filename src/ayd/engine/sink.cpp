#include "ayd/engine/sink.hpp"

#include <cstdio>
#include <utility>

#include "ayd/io/csv.hpp"
#include "ayd/io/json.hpp"
#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::engine {

std::string mean_ci_cell(const stats::Summary& s, int digits) {
  return util::format_sig(s.mean, digits) + " ±" +
         util::format_sig(s.ci.half_width(), 2);
}

ResultSink::ResultSink(std::vector<ColumnSpec> columns)
    : columns_(std::move(columns)) {
  AYD_REQUIRE(!columns_.empty(), "a sink needs at least one column");
}

std::string ResultSink::format_cell(const Record& rec,
                                    const ColumnSpec& col) {
  const Value* v = rec.find(col.field());
  if (v == nullptr || v->kind == Value::Kind::kMissing) return kNoValue;
  if (v->kind == Value::Kind::kText) return v->text;
  return util::format_sig(v->number, col.digits) + col.suffix;
}

void ResultSink::write(const Record& rec) {
  AYD_REQUIRE(!closed_, "write() on a closed sink");
  std::vector<std::string> cells;
  cells.reserve(columns_.size());
  for (const ColumnSpec& col : columns_) {
    cells.push_back(format_cell(rec, col));
  }
  on_row(rec, std::move(cells));
}

void ResultSink::close() {
  if (closed_) return;
  closed_ = true;
  on_close();
}

namespace {

std::vector<std::string> headers_of(const std::vector<ColumnSpec>& cols) {
  std::vector<std::string> out;
  out.reserve(cols.size());
  for (const ColumnSpec& c : cols) out.push_back(c.header);
  return out;
}

}  // namespace

TableSink::TableSink(std::vector<ColumnSpec> columns)
    : ResultSink(std::move(columns)), table_(headers_of(this->columns())) {
  for (std::size_t i = 0; i < this->columns().size(); ++i) {
    table_.set_align(i, this->columns()[i].align);
  }
}

void TableSink::on_row(const Record&, std::vector<std::string> cells) {
  table_.add_row(std::move(cells));
}

CsvSink::CsvSink(std::string path, std::vector<ColumnSpec> columns,
                 std::ostream* announce_to)
    : ResultSink(std::move(columns)),
      path_(std::move(path)),
      announce_to_(announce_to) {}

void CsvSink::on_row(const Record&, std::vector<std::string> cells) {
  if (path_.empty()) return;
  rows_.push_back(std::move(cells));
}

void CsvSink::on_close() {
  if (path_.empty()) return;
  write_series_csv(path_, headers_of(columns()), rows_, announce_to_);
}

JsonlSink::JsonlSink(std::string path, std::vector<ColumnSpec> columns)
    : ResultSink(std::move(columns)), path_(std::move(path)) {
  if (path_.empty()) return;
  out_ = std::make_unique<std::ofstream>(path_);
  if (!*out_) {
    throw util::Error("cannot open JSONL output file: " + path_);
  }
}

void JsonlSink::on_row(const Record& rec, std::vector<std::string>) {
  if (!out_) return;
  io::JsonWriter json(*out_);
  json.begin_object();
  for (const ColumnSpec& col : columns()) {
    const Value* v = rec.find(col.field());
    json.key(col.header);
    if (v == nullptr || v->kind == Value::Kind::kMissing) {
      json.null();
    } else if (v->kind == Value::Kind::kText) {
      json.value(v->text);
    } else {
      json.value(v->number);
    }
  }
  json.end_object();
  *out_ << '\n';
}

void write_series_csv(const std::string& path,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows,
                      std::ostream* announce_to) {
  if (path.empty()) return;
  std::vector<std::vector<std::string>> all;
  all.reserve(rows.size() + 1);
  all.push_back(header);
  all.insert(all.end(), rows.begin(), rows.end());
  io::write_csv_file(path, all);
  if (announce_to != nullptr) {
    *announce_to << "(series written to " << path << ")\n";
  } else {
    std::printf("(series written to %s)\n", path.c_str());
  }
}

}  // namespace ayd::engine
