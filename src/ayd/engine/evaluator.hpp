// The standard per-point evaluation: first-order closed forms, numerical
// optima, baselines, and replicated simulation, selected by flags.
//
// Grid axes are applied to a base System by name — "lambda" replaces the
// individual error rate, "alpha" the Amdahl sequential fraction,
// "downtime" the downtime, and "procs" fixes the processor allocation
// (switching the evaluator from the joint (T, P) optimum to the fixed-P
// period optimum, exactly like the paper's Figure 3). The failure
// distribution is an axis too: "weibull_k" / "lognormal_sigma" replace
// the inter-arrival shape, so grids can sweep shape parameters the same
// way they sweep rates. The closed-form/numerical-optimum stages always
// assume exponential arrivals (the paper's planner); the simulation
// stages draw from the configured distribution, which is exactly what
// makes the robustness experiments (bench/fig8_weibull_sweep) work.
//
// Evaluations are pure per point: simulation replica i always draws from
// RNG substream (seed, i), so results are bit-identical whether points run
// serially or fan out over the engine's thread pool.

#pragma once

#include <optional>

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/sim_optimizer.hpp"
#include "ayd/engine/grid.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/model/system.hpp"
#include "ayd/sim/runner.hpp"

namespace ayd::engine {

/// Applies a point's named axes to `base`: "lambda" -> with_lambda,
/// "alpha" -> with_speedup(Amdahl), "downtime" -> with_downtime,
/// "weibull_k" / "lognormal_sigma" -> with_failure_dist, plus the
/// extension axes (apply_extension_axes). The "procs" axis is
/// allocation-level, not system-level, and is ignored here (read it with
/// point.var("procs")).
[[nodiscard]] model::System apply_axes(const model::System& base,
                                       const Point& pt);

/// Applies a point's correlated-world axes (model/correlated.hpp):
/// "shock_rho" / "shock_group" -> with_shock (group defaults to the base
/// system's shock spec, or ShockSpec's default, when only one of the pair
/// is present) and "pfs_penalty" -> with_two_tier(from_penalty). Called
/// by apply_axes and system_for_point after the plain axes so the
/// two-tier spec refines the point's final cost model.
[[nodiscard]] model::System apply_extension_axes(const model::System& base,
                                                 const Point& pt);

/// Builds the paper's standard System for a grid point: the point's
/// platform/scenario (fall back to `default_platform` / `default_scenario`
/// when the grid lacks that dimension), alpha/downtime axes or their
/// defaults, then the lambda axis if present.
struct SystemSpec {
  model::Platform platform;
  model::Scenario scenario = model::Scenario::kS1;
  double alpha = 0.1;
  double downtime = 3600.0;
  /// Failure inter-arrival shape (exponential unless a "weibull_k" /
  /// "lognormal_sigma" axis overrides it at the point).
  model::FailureDistSpec failure_dist{};
};
[[nodiscard]] model::System system_for_point(const SystemSpec& spec,
                                             const Point& pt);

/// What evaluate_point computes.
struct EvalSpec {
  bool first_order = false;          ///< Theorems 2/3 closed form
  bool numerical = false;            ///< exact optimum (joint or fixed-P)
  bool simulate_numerical = false;   ///< replicated sim at the exact optimum
  bool simulate_first_order = false; ///< replicated sim at the FO pattern
  bool baseline_silent_blind = false;///< fail-stop-only planner period
  /// Simulation-driven robust optimum under the point's configured
  /// failure distribution (core::sim_optimal_period at fixed P, else
  /// core::sim_optimal_allocation) — the mode the fig9 bench and
  /// `ayd optimize --simulate` run in. Its knobs live in `sim_search`
  /// (the fixed-P mode reads `sim_search.period`); the "ci_rel_tol" and
  /// "max_reps" grid axes override them per point via apply_eval_axes.
  bool sim_optimize = false;
  core::AllocationSearchOptions search{};
  sim::ReplicationOptions replication{};
  core::SimAllocationSearchOptions sim_search{};
  /// Sweep-aware common random numbers: when non-null, every simulation
  /// at a point resolves its (failure-dist shape, seed) scenario against
  /// this registry and draws unit variates from the shared pool — one
  /// sampling pass for all grid points that share a scenario, and CRN
  /// comparisons between them (sim/variate_pool.hpp). Not owned; must
  /// outlive the grid run. Thread-safe, so one cache serves a
  /// point-parallel sweep. Points whose distribution cannot pool (trace
  /// replay) silently fall back to independent sampling.
  sim::VariateCache* crn = nullptr;
};

/// Everything the standard evaluator produced at one point. Optional
/// members are set according to the EvalSpec flags (and first_order's
/// has_optimum gate for the FO simulation).
struct PointEval {
  std::optional<core::FirstOrderSolution> first_order;
  /// Joint (T, P) optimum when no "procs" axis fixes the allocation.
  std::optional<core::AllocationOptimum> allocation;
  /// Fixed-P results when the allocation is fixed.
  std::optional<double> fixed_procs;
  std::optional<double> fo_period;  ///< Theorem 1 period at fixed_procs
  std::optional<core::PeriodOptimum> period;
  std::optional<double> silent_blind_period;
  std::optional<sim::ReplicationResult> sim_numerical;
  std::optional<sim::ReplicationResult> sim_first_order;
  /// Simulation-driven optimum (EvalSpec::sim_optimize): the fixed-P
  /// period search, or the joint (T, P) search when no "procs" axis
  /// fixes the allocation.
  std::optional<core::SimPeriodOptimum> sim_period;
  std::optional<core::SimAllocationOptimum> sim_allocation;

  /// The FO pattern that was (or would be) simulated: Theorem 1 period at
  /// fixed procs, else the Theorem 2/3 pattern with P rounded to >= 1.
  [[nodiscard]] core::Pattern first_order_pattern() const;
  /// The numerically optimal pattern.
  [[nodiscard]] core::Pattern numerical_pattern() const;
};

/// Runs the selected computations for `sys`. `fixed_procs` switches the
/// numerical stage from optimal_allocation to optimal_period. `sim_pool`
/// parallelises *within* one simulation call — leave it null inside grid
/// runs (the engine already fans points out) and pass a pool for
/// single-point evaluations like `ayd simulate`.
[[nodiscard]] PointEval evaluate_point(
    const model::System& sys, const EvalSpec& spec,
    std::optional<double> fixed_procs = std::nullopt,
    exec::ThreadPool* sim_pool = nullptr);

/// Applies a point's evaluation-level axes to a spec copy: "ci_rel_tol"
/// sets the adaptive CI target and "max_reps" the replication cap of the
/// sim-optimize mode. System-level axes are apply_axes' business; axes
/// absent from the point leave the base spec untouched.
[[nodiscard]] EvalSpec apply_eval_axes(const EvalSpec& base, const Point& pt);

}  // namespace ayd::engine
