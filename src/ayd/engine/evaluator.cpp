#include "ayd/engine/evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "ayd/core/baselines.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::engine {

model::System apply_axes(const model::System& base, const Point& pt) {
  model::System sys = base;
  for (const auto& [name, value] : pt.vars) {
    if (name == "lambda") {
      sys = sys.with_lambda(value);
    } else if (name == "alpha") {
      sys = sys.with_speedup(model::Speedup::amdahl(value));
    } else if (name == "downtime") {
      sys = sys.with_downtime(value);
    } else if (name == "weibull_k") {
      sys = sys.with_failure_dist(model::FailureDistSpec::weibull(value));
    } else if (name == "lognormal_sigma") {
      sys = sys.with_failure_dist(model::FailureDistSpec::lognormal(value));
    }
    // Other axes ("procs", bench-specific knobs) are not system fields.
  }
  sys = apply_extension_axes(sys, pt);
  return sys;
}

model::System apply_extension_axes(const model::System& base,
                                   const Point& pt) {
  model::System sys = base;
  // shock_rho and shock_group are one axis pair: the group fraction only
  // means something once a correlation is set, so it rides along with
  // whatever rho the point carries (or the base system's, when sweeping
  // the group fraction alone against a --shock'd base).
  if (pt.has_var("shock_rho") || pt.has_var("shock_group")) {
    model::ShockSpec shock;
    const auto* ext = sys.extension();
    if (ext != nullptr && ext->shock.has_value()) shock = *ext->shock;
    if (pt.has_var("shock_rho")) shock.correlation = pt.var("shock_rho");
    if (pt.has_var("shock_group")) {
      shock.group_fraction = pt.var("shock_group");
    }
    sys = sys.with_shock(shock);
  }
  if (pt.has_var("pfs_penalty")) {
    sys = sys.with_two_tier(model::TwoTierCostSpec::from_penalty(
        sys.costs(), pt.var("pfs_penalty")));
  }
  return sys;
}

model::System system_for_point(const SystemSpec& spec, const Point& pt) {
  const model::Platform& platform =
      pt.platform.has_value() ? *pt.platform : spec.platform;
  const model::Scenario scenario =
      pt.scenario.has_value() ? *pt.scenario : spec.scenario;
  const double alpha =
      pt.has_var("alpha") ? pt.var("alpha") : spec.alpha;
  const double downtime =
      pt.has_var("downtime") ? pt.var("downtime") : spec.downtime;
  model::System sys =
      model::System::from_platform(platform, scenario, alpha, downtime);
  if (pt.has_var("lambda")) sys = sys.with_lambda(pt.var("lambda"));
  if (pt.has_var("weibull_k")) {
    sys = sys.with_failure_dist(
        model::FailureDistSpec::weibull(pt.var("weibull_k")));
  } else if (pt.has_var("lognormal_sigma")) {
    sys = sys.with_failure_dist(
        model::FailureDistSpec::lognormal(pt.var("lognormal_sigma")));
  } else {
    sys = sys.with_failure_dist(spec.failure_dist);
  }
  sys = apply_extension_axes(sys, pt);
  return sys;
}

core::Pattern PointEval::first_order_pattern() const {
  if (fixed_procs.has_value()) {
    AYD_REQUIRE(fo_period.has_value(),
                "first_order_pattern: no Theorem-1 period computed");
    return {*fo_period, *fixed_procs};
  }
  AYD_REQUIRE(first_order.has_value() && first_order->has_optimum,
              "first_order_pattern: no first-order optimum at this point");
  return {first_order->period, std::max(1.0, std::round(first_order->procs))};
}

core::Pattern PointEval::numerical_pattern() const {
  if (fixed_procs.has_value()) {
    AYD_REQUIRE(period.has_value(),
                "numerical_pattern: no period optimum computed");
    return {period->period, *fixed_procs};
  }
  AYD_REQUIRE(allocation.has_value(),
              "numerical_pattern: no allocation optimum computed");
  return {allocation->period, allocation->procs};
}

PointEval evaluate_point(const model::System& sys, const EvalSpec& spec,
                         std::optional<double> fixed_procs,
                         exec::ThreadPool* sim_pool) {
  PointEval out;
  out.fixed_procs = fixed_procs;

  if (spec.first_order) {
    if (fixed_procs.has_value()) {
      out.fo_period = core::optimal_period_first_order(sys, *fixed_procs);
    } else {
      out.first_order = core::solve_first_order(sys);
    }
  }

  if (spec.numerical) {
    if (fixed_procs.has_value()) {
      out.period = core::optimal_period(sys, *fixed_procs,
                                        spec.search.period);
    } else {
      out.allocation = core::optimal_allocation(sys, spec.search);
    }
  }

  if (spec.baseline_silent_blind && fixed_procs.has_value()) {
    out.silent_blind_period = core::silent_blind_period(sys, *fixed_procs);
  }

  // One scratch arena per worker thread: grid runs fan points out over a
  // pool and each point's evaluation lands here, so the per-point
  // simulate_overhead calls reuse the calling worker's arena instead of
  // reallocating — point-parallel sweeps allocate nothing steady-state.
  static thread_local sim::ReplicationScratch sim_scratch;

  // Sweep-aware common random numbers: resolve this point's (failure-dist
  // shape, seed) scenario against the grid-level registry. Points that
  // differ only in lambda / period / procs map to the *same* pool, so the
  // whole sweep pays for unit-variate generation once, and point-to-point
  // differences are CRN comparisons. The shared_ptr keeps the pool alive
  // through this evaluation; a null cache (or an ineligible spec) leaves
  // replication.shared_units null — independent sampling, the historical
  // behaviour.
  // Extended systems (correlated / heterogeneous / two-tier worlds)
  // interleave several laws per draw sequence, so they are excluded from
  // pooling and always sample independently.
  sim::ReplicationOptions replication = spec.replication;
  std::shared_ptr<sim::UnitVariatePool> crn_pool;
  if (spec.crn != nullptr && !sys.extended()) {
    crn_pool = spec.crn->pool_for(sys.failure().dist(), replication.seed);
    replication.shared_units = crn_pool.get();
  }

  if (spec.simulate_numerical) {
    out.sim_numerical =
        sim::simulate_overhead(sys, out.numerical_pattern(), replication,
                               sim_pool, &sim_scratch);
  }

  if (spec.sim_optimize) {
    // The sim-driven search builds its own search-local CRN pool when
    // none is supplied; a grid-level pool extends the sharing across
    // points (the search's seed is the replication seed either way).
    core::SimAllocationSearchOptions sim_search = spec.sim_search;
    if (crn_pool != nullptr &&
        sim_search.period.replication.seed == replication.seed) {
      sim_search.period.replication.shared_units = crn_pool.get();
    }
    if (fixed_procs.has_value()) {
      out.sim_period = core::sim_optimal_period(
          sys, *fixed_procs, sim_search.period, sim_pool);
    } else {
      out.sim_allocation =
          core::sim_optimal_allocation(sys, sim_search, sim_pool);
    }
  }

  if (spec.simulate_first_order) {
    const bool have_fo =
        fixed_procs.has_value()
            ? (out.fo_period.has_value() && std::isfinite(*out.fo_period))
            : (out.first_order.has_value() && out.first_order->has_optimum);
    if (have_fo) {
      out.sim_first_order =
          sim::simulate_overhead(sys, out.first_order_pattern(),
                                 replication, sim_pool, &sim_scratch);
    }
  }

  return out;
}

EvalSpec apply_eval_axes(const EvalSpec& base, const Point& pt) {
  EvalSpec spec = base;
  if (pt.has_var("ci_rel_tol")) {
    spec.sim_search.period.adaptive.ci_rel_tol = pt.var("ci_rel_tol");
  }
  if (pt.has_var("max_reps")) {
    auto& adaptive = spec.sim_search.period.adaptive;
    adaptive.max_replicas =
        static_cast<std::size_t>(pt.var("max_reps"));
    // A cap below the starting count means the cap wins (mirrors the
    // CLI's --max-reps handling); leaving min above max would trip the
    // adaptive driver's precondition and kill the whole sweep.
    adaptive.min_replicas =
        std::min(adaptive.min_replicas, adaptive.max_replicas);
  }
  return spec;
}

}  // namespace ayd::engine
