// Pluggable result emitters.
//
// A ResultSink turns engine Records into one concrete output: an aligned
// io::Table, a CSV series, or a JSON-lines stream. Each sink owns its own
// column list (a ColumnSpec names the record field it reads and how to
// format it), so the same evaluated grid feeds a 4-digit table, a 6-digit
// CSV, and a full-precision JSONL file without re-evaluation.

#pragma once

#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "ayd/engine/record.hpp"
#include "ayd/io/table.hpp"
#include "ayd/stats/summary.hpp"

namespace ayd::engine {

/// Placeholder cell for a column that does not apply at a point (e.g. the
/// first-order solution in scenario 6).
inline const char* kNoValue = "-";

/// "0.1123 ±0.0004" — the simulated-mean cell used across all tables.
[[nodiscard]] std::string mean_ci_cell(const stats::Summary& s,
                                       int digits = 4);

/// How one output column is produced from a Record.
struct ColumnSpec {
  // NOLINTNEXTLINE(google-explicit-constructor): brace-lists of columns
  // are the engine's declaration idiom.
  ColumnSpec(std::string header, std::string key = "", int digits = 4,
             std::string suffix = "", io::Align align = io::Align::kRight)
      : header(std::move(header)),
        key(std::move(key)),
        digits(digits),
        suffix(std::move(suffix)),
        align(align) {}

  std::string header;   ///< table/CSV column header
  std::string key;      ///< record field; empty means same as `header`
  int digits = 4;       ///< significant digits for numeric fields
  std::string suffix;   ///< appended to numeric cells (e.g. "%", "x")
  io::Align align = io::Align::kRight;

  [[nodiscard]] const std::string& field() const {
    return key.empty() ? header : key;
  }
};

/// Base sink: formats each record into cells per its column specs and
/// hands them to the concrete emitter.
class ResultSink {
 public:
  explicit ResultSink(std::vector<ColumnSpec> columns);
  virtual ~ResultSink() = default;
  ResultSink(const ResultSink&) = delete;
  ResultSink& operator=(const ResultSink&) = delete;

  void write(const Record& rec);
  /// Flushes/finalises the output. Idempotent; also called by ~sinks that
  /// buffer nothing. emit() calls it for you.
  void close();

  [[nodiscard]] const std::vector<ColumnSpec>& columns() const {
    return columns_;
  }

  /// Formats one cell: numbers via util::format_sig(digits) + suffix,
  /// text verbatim, missing/absent fields as kNoValue.
  [[nodiscard]] static std::string format_cell(const Record& rec,
                                               const ColumnSpec& col);

 protected:
  virtual void on_row(const Record& rec,
                      std::vector<std::string> cells) = 0;
  virtual void on_close() {}

 private:
  std::vector<ColumnSpec> columns_;
  bool closed_ = false;
};

/// Collects rows into an aligned io::Table.
class TableSink : public ResultSink {
 public:
  explicit TableSink(std::vector<ColumnSpec> columns);

  [[nodiscard]] const io::Table& table() const { return table_; }
  [[nodiscard]] std::string to_string() const { return table_.to_string(); }

 protected:
  void on_row(const Record& rec, std::vector<std::string> cells) override;

 private:
  io::Table table_;
};

/// Buffers rows and writes an RFC-4180 CSV file on close(). A sink with an
/// empty path is a no-op, so callers can pass --csv through untested.
/// Announces "(series written to ...)" on the announce stream (stdout by
/// default) to match the historical bench output.
class CsvSink : public ResultSink {
 public:
  CsvSink(std::string path, std::vector<ColumnSpec> columns,
          std::ostream* announce_to = nullptr);

 protected:
  void on_row(const Record& rec, std::vector<std::string> cells) override;
  void on_close() override;

 private:
  std::string path_;
  std::ostream* announce_to_;
  std::vector<std::vector<std::string>> rows_;
};

/// Streams one compact JSON object per record, keyed by the column
/// headers (matching the CSV of the same series), numbers at full
/// precision. Empty path is a no-op sink.
class JsonlSink : public ResultSink {
 public:
  JsonlSink(std::string path, std::vector<ColumnSpec> columns);

 protected:
  void on_row(const Record& rec, std::vector<std::string> cells) override;

 private:
  std::string path_;
  std::unique_ptr<std::ofstream> out_;
};

/// Writes `header` + `rows` to `path` unless it is empty, announcing the
/// file like the benches always did. (The engine-level home of the old
/// bench_common maybe_write_csv helper.)
void write_series_csv(const std::string& path,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows,
                      std::ostream* announce_to = nullptr);

}  // namespace ayd::engine
