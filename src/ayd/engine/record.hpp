// The engine's result row: an ordered map from field name to a numeric or
// text value. Evaluation lambdas fill Records with *raw* values; sinks
// (sink.hpp) decide formatting per output, so one evaluation can feed an
// aligned table at 4 significant digits, a CSV at 6, and a JSON-lines
// stream at full precision without being recomputed.

#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ayd::engine {

struct Value {
  enum class Kind { kNumber, kText, kMissing };
  Kind kind = Kind::kMissing;
  double number = 0.0;
  std::string text;
};

class Record {
 public:
  /// Sets a numeric field (last set wins; field order is first-set order).
  void set(std::string key, double value);
  /// Sets a text field (scenario names, preformatted cells, notes).
  void set(std::string key, std::string text);
  void set(std::string key, const char* text) {
    set(std::move(key), std::string(text));
  }
  /// Marks a field as not applicable (rendered as the "-" placeholder).
  void set_missing(std::string key);

  [[nodiscard]] bool has(std::string_view key) const;
  /// Field lookup; nullptr when the key was never set.
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// Numeric value of `key`; throws util::InvalidArgument otherwise.
  [[nodiscard]] double num(std::string_view key) const;
  /// Text value of `key`; throws util::InvalidArgument otherwise.
  [[nodiscard]] const std::string& text(std::string_view key) const;

  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& fields()
      const {
    return fields_;
  }

 private:
  Value& slot(std::string key);
  std::vector<std::pair<std::string, Value>> fields_;
};

}  // namespace ayd::engine
