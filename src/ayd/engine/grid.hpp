// Declarative experiment grids.
//
// A GridSpec is the cartesian product of up to three kinds of dimension —
// platform presets, Table III scenarios, and named numeric axes (lambda,
// alpha, procs, downtime, ...) — nested in declaration order (the first
// declared dimension varies slowest). Every figure/table sweep in bench/
// and the `ayd sweep` subcommand declare their grid here instead of
// hand-rolling nested loops; the engine then evaluates the points with
// point-level parallelism (see engine.hpp).

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

namespace ayd::engine {

/// One named numeric dimension of a grid.
struct Axis {
  std::string name;
  std::vector<double> values;

  /// `points` values evenly spaced on [from, to].
  [[nodiscard]] static Axis linear(std::string name, double from, double to,
                                   int points);
  /// `points` values evenly spaced on a log scale (from > 0).
  [[nodiscard]] static Axis log_spaced(std::string name, double from,
                                       double to, int points);
  /// from, from+step, ... up to and including `to` (within 1e-9 slack),
  /// accumulating exactly like the classic `for (x = from; x <= to + 1e-9;
  /// x += step)` sweep loops did.
  [[nodiscard]] static Axis step(std::string name, double from, double to,
                                 double step);
  /// An explicit value list.
  [[nodiscard]] static Axis list(std::string name,
                                 std::vector<double> values);

  /// Log when `log_spacing`, else linear (the `ayd sweep` convention).
  [[nodiscard]] static Axis spaced(std::string name, double from, double to,
                                   int points, bool log_spacing);
};

/// One point of a grid: the dimension values this evaluation sees.
struct Point {
  /// Row-major index in the grid (stable across runs and thread counts).
  std::size_t index = 0;
  std::optional<model::Platform> platform;
  std::optional<model::Scenario> scenario;
  /// Axis values in declaration order.
  std::vector<std::pair<std::string, double>> vars;

  [[nodiscard]] bool has_var(std::string_view name) const;
  /// Value of the named axis; throws util::InvalidArgument when absent.
  [[nodiscard]] double var(std::string_view name) const;
};

/// Cartesian grid over platforms x scenarios x numeric axes. Dimensions
/// nest in declaration order: the first declared varies slowest.
class GridSpec {
 public:
  GridSpec& platforms(std::vector<model::Platform> ps);
  GridSpec& platform(const model::Platform& p);
  GridSpec& scenarios(std::vector<model::Scenario> ss);
  GridSpec& scenario(model::Scenario s);
  GridSpec& axis(Axis a);

  [[nodiscard]] std::size_t size() const;
  /// Materialises all points in row-major order.
  [[nodiscard]] std::vector<Point> points() const;

 private:
  enum class Kind { kPlatform, kScenario, kAxis };
  struct Dim {
    Kind kind;
    std::size_t payload;  ///< index into axes_ when kind == kAxis
  };

  [[nodiscard]] std::size_t dim_size(const Dim& d) const;

  std::vector<model::Platform> platforms_;
  std::vector<model::Scenario> scenarios_;
  std::vector<Axis> axes_;
  std::vector<Dim> dims_;
};

}  // namespace ayd::engine
