// Fixed-size thread pool with a shared task queue.
//
// The simulation replicator fans replicas out over this pool. Tasks are
// plain std::function<void()>; submit() returns a std::future so callers
// can propagate results and exceptions. Determinism of simulation results
// does not depend on the pool: each replica derives its RNG stream from
// its index, so scheduling order is irrelevant to the numbers produced.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ayd::exec {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a callable; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      const std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool; blocks until all complete.
/// The first exception thrown by any task is re-thrown (others are
/// swallowed after completion). Indices are processed in contiguous
/// per-thread chunks.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Chunk-level variant: runs fn(begin, end) once per contiguous chunk of
/// [0, n), so callers can hoist per-worker state (scratch arenas,
/// reusable simulators) out of the per-index loop. Same chunking,
/// blocking, and exception policy as parallel_for.
void parallel_for_chunks(ThreadPool& pool, std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>& fn);

/// Maps fn over [0, n) and returns results in index order.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  using R = std::invoke_result_t<Fn, std::size_t>;
  std::vector<R> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace ayd::exec
