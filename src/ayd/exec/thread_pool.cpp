#include "ayd/exec/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace ayd::exec {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, 4 * pool.size());
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    futures.push_back(pool.submit([&fn, begin, end] { fn(begin, end); }));
  }
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(pool, n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace ayd::exec
