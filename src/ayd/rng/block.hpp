// Batched variate generation.
//
// Drawing random variates one at a time leaves throughput on the table:
// the generator's state update, the uniform-to-variate transform, and the
// consumer's control flow all serialize on one another. Filling a small
// cache-resident block amortizes call overhead and lets independent
// transforms (log / pow / normal-quantile per element) pipeline in the
// out-of-order core instead of sitting on the critical path of the
// simulation's branchy state machine.
//
// The contract that makes batching safe for reproducibility: a block fill
// consumes engine words in exactly the order the equivalent scalar calls
// would, and each transformed element is bit-identical to what the scalar
// path computes from the same word. Batching is therefore invisible to
// results — it only changes *when* words are drawn from the engine, never
// which value the i-th draw produces. (Consumers must not interleave
// other draws from the same stream between refills; the simulators own
// their stream for the duration of a replica, which is what makes this
// hold.)

#pragma once

#include <array>
#include <cstddef>

namespace ayd::rng {

/// Default block size: big enough to amortize refill overhead and let the
/// per-element transforms pipeline, small enough to stay in L1 and to
/// bound the number of variates generated past the point of use.
inline constexpr std::size_t kVariateBlockSize = 64;

/// A fixed-capacity block of precomputed double variates with bulk
/// refill. The refill policy is supplied by the consumer at the point of
/// use (it typically captures a stream plus a distribution's bulk
/// transform), which keeps this type trivially reusable as scratch.
class VariateBlock {
 public:
  /// Returns the next buffered variate, refilling via `refill(out, n)`
  /// when drained. `refill` must fill all `n` slots.
  template <typename RefillFn>
  [[nodiscard]] double next(RefillFn&& refill) {
    if (pos_ == len_) {
      refill(data_.data(), data_.size());
      len_ = data_.size();
      pos_ = 0;
    }
    return data_[pos_++];
  }

  /// Discards buffered variates. Call at stream boundaries (e.g. when a
  /// simulator switches to a new replica's RNG substream) so variates
  /// prefetched from the old stream cannot leak into the new one.
  void reset() {
    pos_ = 0;
    len_ = 0;
  }

  /// Number of buffered variates not yet consumed.
  [[nodiscard]] std::size_t buffered() const { return len_ - pos_; }

 private:
  std::array<double, kVariateBlockSize> data_;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
};

}  // namespace ayd::rng
