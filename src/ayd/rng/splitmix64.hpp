// SplitMix64 (Steele, Lea, Flood 2014; public-domain reference by Vigna).
//
// Used for two jobs only: expanding a user seed into the 256-bit state of
// xoshiro256++, and deriving statistically independent substream seeds from
// (seed, stream_id) pairs. It is a bijective mixing function, so distinct
// inputs can never collide.

#pragma once

#include <cstdint>

namespace ayd::rng {

/// One step of the SplitMix64 output function on state `x` (pass by value;
/// callers thread the updated state themselves if they need a sequence).
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of two 64-bit values into one (seed, stream) -> substream
/// seed. Avalanches `a` through the SplitMix64 finalizer, injects `b`, then
/// avalanches again, so a collision between two pairs requires two finalizer
/// outputs to agree on all but the XOR of the stream ids — probability
/// ~2^-64 per pair. In particular the dense low-valued (seed, stream) grids
/// used for replica substreams map to distinct outputs.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a;
  std::uint64_t y = splitmix64_next(x) ^ b;
  return splitmix64_next(y);
}

}  // namespace ayd::rng
