// xoshiro256++ 1.0 (Blackman & Vigna, 2019; public-domain reference
// implementation re-expressed in C++).
//
// Chosen over std::mt19937_64 because it is ~4x faster, has 256 bits of
// state, passes BigCrush, and provides jump() / long_jump() for cheaply
// partitioning the period into 2^128 non-overlapping substreams — exactly
// what deterministic parallel replication needs.
//
// Satisfies std::uniform_random_bit_generator.

#pragma once

#include <array>
#include <cstdint>

#include "ayd/rng/splitmix64.hpp"

namespace ayd::rng {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by running SplitMix64 on `seed` (the procedure
  /// recommended by the xoshiro authors; avoids all-zero state).
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64_next(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advances the state by 2^128 steps: calling jump() n times on identical
  /// generators yields n non-overlapping sequences of length 2^128.
  constexpr void jump() { apply_jump(kJump); }

  /// Advances by 2^192 steps (for partitioning across coarser units).
  constexpr void long_jump() { apply_jump(kLongJump); }

  [[nodiscard]] constexpr const std::array<std::uint64_t, 4>& state() const {
    return state_;
  }

  friend constexpr bool operator==(const Xoshiro256& a, const Xoshiro256& b) {
    return a.state_ == b.state_;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  constexpr void apply_jump(const std::array<std::uint64_t, 4>& table) {
    std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
    for (const std::uint64_t word : table) {
      for (int b = 0; b < 64; ++b) {
        if (word & (std::uint64_t{1} << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^=
              state_[static_cast<std::size_t>(i)];
        }
        (void)(*this)();
      }
    }
    state_ = acc;
  }

  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  static constexpr std::array<std::uint64_t, 4> kLongJump = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ayd::rng
