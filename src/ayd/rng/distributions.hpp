// Random variates on top of any uniform_random_bit_generator producing
// 64-bit words.
//
// Implemented from scratch (no <random> distributions) so that streams are
// bit-reproducible across standard libraries — libstdc++ and libc++ are
// free to implement std::exponential_distribution differently, which would
// make "same seed, same results" false across platforms.

#pragma once

#include <cstdint>
#include <limits>

#include "ayd/util/contracts.hpp"

namespace ayd::rng {

/// Uniform double in [0, 1) with 53 random bits (top bits of the word).
template <typename Engine>
[[nodiscard]] double uniform01(Engine& eng) {
  return static_cast<double>(eng() >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1]; never returns 0 (safe for log()).
template <typename Engine>
[[nodiscard]] double uniform01_open_low(Engine& eng) {
  return 1.0 - uniform01(eng);
}

/// Uniform double in [lo, hi).
template <typename Engine>
[[nodiscard]] double uniform(Engine& eng, double lo, double hi) {
  AYD_REQUIRE(lo < hi, "uniform requires lo < hi");
  return lo + (hi - lo) * uniform01(eng);
}

/// Exponential variate with the given rate (inverse-CDF method).
/// rate == 0 is allowed and yields +infinity ("the error never arrives"),
/// which is exactly the semantics the simulator wants for f == 0 or s == 0.
template <typename Engine>
[[nodiscard]] double exponential(Engine& eng, double rate) {
  AYD_REQUIRE(rate >= 0, "exponential rate must be nonnegative");
  if (rate == 0.0) {
    // Consume a word anyway so that enabling/disabling an error source does
    // not shift the stream consumed by everything else.
    (void)eng();
    return std::numeric_limits<double>::infinity();
  }
  return -std::log(uniform01_open_low(eng)) / rate;
}

/// Bernoulli trial with success probability p in [0, 1].
template <typename Engine>
[[nodiscard]] bool bernoulli(Engine& eng, double p) {
  AYD_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0,1]");
  return uniform01(eng) < p;
}

/// Uniform integer in [0, n) by Lemire's multiply-shift rejection method
/// (unbiased).
template <typename Engine>
[[nodiscard]] std::uint64_t uniform_index(Engine& eng, std::uint64_t n) {
  AYD_REQUIRE(n > 0, "uniform_index requires n > 0");
  __extension__ typedef unsigned __int128 u128;  // GCC/Clang builtin
  std::uint64_t x = eng();
  u128 m = static_cast<u128>(x) * static_cast<u128>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = eng();
      m = static_cast<u128>(x) * static_cast<u128>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Poisson variate. Knuth multiplication for mean < 30, else the normal
/// approximation with continuity correction clamped at 0 (adequate for the
/// test-suite use; the simulator itself never draws Poisson counts, it
/// draws exponential gaps).
template <typename Engine>
[[nodiscard]] std::uint64_t poisson(Engine& eng, double mean);

namespace detail {
/// Acklam's rational approximation to the standard normal quantile,
/// |relative error| < 1.15e-9 — plenty for sampling and CI construction.
[[nodiscard]] double normal_quantile(double p);
}  // namespace detail

/// Standard normal variate via inverse CDF (deterministic: exactly one
/// uniform consumed, unlike Box-Muller pairs or Ziggurat rejection).
template <typename Engine>
[[nodiscard]] double normal(Engine& eng, double mean = 0.0,
                            double stddev = 1.0) {
  AYD_REQUIRE(stddev >= 0, "normal stddev must be nonnegative");
  double u = uniform01(eng);
  if (u <= 0.0) u = 0x1.0p-53;
  return mean + stddev * detail::normal_quantile(u);
}

template <typename Engine>
std::uint64_t poisson(Engine& eng, double mean) {
  AYD_REQUIRE(mean >= 0, "poisson mean must be nonnegative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double prod = uniform01_open_low(eng);
    while (prod > limit) {
      ++k;
      prod *= uniform01_open_low(eng);
    }
    return k;
  }
  const double x = normal(eng, mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

}  // namespace ayd::rng
