// Runtime-dispatched SIMD tier for the bulk variate transforms.
//
// The simulators draw failure inter-arrivals through a unit-variate
// factorization (model/failure_dist.hpp): a uniform word becomes a
// rate-independent deviate (-log(1-u), the unit-scale Weibull deviate,
// or the standard normal quantile) and a cheap per-distribution scaling.
// The transforms are where the time goes — one log/pow/rational per
// element — and they are embarrassingly data-parallel. This module holds
// the bulk transforms in two tiers:
//
//  * kScalar — loops that are *bit-identical* to the historical scalar
//    sampling paths (same libm calls, same expressions). This is the
//    reference tier: every hex-float pin and golden CSV in the test
//    suite is defined against it.
//  * kAvx2 — AVX2+FMA kernels (4 doubles per instruction) compiled with
//    function-level target attributes, so the rest of the binary keeps
//    its baseline ISA and the same build runs on machines without AVX2.
//    Values agree with the scalar tier to a few ULP (vectorized log/exp/
//    pow are correctly computed but not bit-identical to libm), which is
//    why the fast tier declares its own golden tier instead of touching
//    the scalar pins (docs/reproducing-the-paper.md, "Golden tiers").
//
// Dispatch: the active tier is chosen once per process from CPUID and
// the AYD_SIMD environment variable (off/0/scalar force the reference
// tier; anything else or unset means "best supported"). Tests can pin
// the tier programmatically with force_tier(), which overrides both.
//
// Every function transforms uniform01 inputs in place (or into an output
// span) and is pure elementwise — no RNG coupling, so callers keep full
// control of word order and reproducibility.

#pragma once

#include <cstddef>

namespace ayd::rng::simd {

enum class Tier : int {
  kScalar = 0,  ///< bit-compat reference (the golden tier)
  kAvx2 = 1,    ///< AVX2+FMA bulk kernels (its own golden tier)
};

/// Tier selected for this process: force_tier() override if set, else
/// AYD_SIMD environment override, else the best CPU-supported tier.
[[nodiscard]] Tier active_tier();

/// True when the binary was built with AVX2 kernel support *and* the
/// CPU reports AVX2+FMA (i.e. kAvx2 is selectable at all).
[[nodiscard]] bool avx2_available();

/// Test hook: pin the tier for subsequently constructed samplers,
/// overriding CPU detection and AYD_SIMD. Forcing kAvx2 on a machine
/// without AVX2 support is ignored (the scalar tier stays active).
void force_tier(Tier t);
/// Clears a force_tier() override (back to env + CPU detection).
void clear_forced_tier();

[[nodiscard]] const char* tier_name(Tier t);

// ---- bulk unit transforms ----------------------------------------------
//
// Scalar-tier semantics (exact expressions; the AVX2 tier matches these
// to a few ULP):
//   exponential_units: z[i] = -log(1 - z[i])
//   weibull_units:     z[i] = pow(-log1p(-z[i]), inv_k)
//   lognormal_units:   z[i] = normal_quantile(z[i] <= 0 ? 2^-53 : z[i])
//   affine_exp:        out[i] = exp(mu + sigma * z[i])

void exponential_units(double* z, std::size_t n);
void weibull_units(double* z, std::size_t n, double inv_k);
void lognormal_units(double* z, std::size_t n);
void affine_exp(const double* z, double* out, std::size_t n, double mu,
                double sigma);

}  // namespace ayd::rng::simd
