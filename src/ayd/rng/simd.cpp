#include "ayd/rng/simd.hpp"

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>

#include "ayd/rng/distributions.hpp"

#if defined(AYD_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
#define AYD_SIMD_X86 1
#include <immintrin.h>
#endif

namespace ayd::rng::simd {

// ---- tier selection ----------------------------------------------------

namespace {

bool cpu_has_avx2() {
#ifdef AYD_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Tier detect_tier() {
  const char* env = std::getenv("AYD_SIMD");
  if (env != nullptr) {
    std::string v(env);
    for (char& c : v) c = static_cast<char>(std::tolower(c));
    if (v == "off" || v == "0" || v == "scalar" || v == "none") {
      return Tier::kScalar;
    }
  }
  return cpu_has_avx2() ? Tier::kAvx2 : Tier::kScalar;
}

// -1 = no override; otherwise the forced Tier value.
std::atomic<int> g_forced{-1};

}  // namespace

Tier active_tier() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Tier>(forced);
  static const Tier detected = detect_tier();
  return detected;
}

bool avx2_available() { return cpu_has_avx2(); }

void force_tier(Tier t) {
  if (t == Tier::kAvx2 && !cpu_has_avx2()) return;  // not selectable here
  g_forced.store(static_cast<int>(t), std::memory_order_relaxed);
}

void clear_forced_tier() {
  g_forced.store(-1, std::memory_order_relaxed);
}

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
  }
  return "unknown";
}

// ---- scalar reference tier ---------------------------------------------
//
// These loops ARE the historical sampling expressions (the sample_units
// bodies in model/failure_dist.cpp before this module existed); the
// bit-compat pins in tests/sim_bitcompat_test.cpp and
// tests/failure_dist_batch_test.cpp are defined against them.

namespace {

void exponential_units_scalar(double* z, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] = -std::log(1.0 - z[i]);
}

void weibull_units_scalar(double* z, std::size_t n, double inv_k) {
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = std::pow(-std::log1p(-z[i]), inv_k);
  }
}

void lognormal_units_scalar(double* z, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = rng::detail::normal_quantile(z[i] <= 0.0 ? 0x1.0p-53 : z[i]);
  }
}

void affine_exp_scalar(const double* z, double* out, std::size_t n, double mu,
                       double sigma) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(mu + sigma * z[i]);
}

}  // namespace

// ---- AVX2 tier ---------------------------------------------------------

#ifdef AYD_SIMD_X86

namespace {

#define AYD_AVX2 __attribute__((target("avx2,fma")))

/// log(x) for normal positive finite x (4 lanes). The exponent field
/// reduces x to m ∈ [0.75, 1.5); log(m) = 2·atanh(s) with
/// s = (m-1)/(m+1), |s| <= 0.2, by the odd atanh series (degree 23 in s,
/// truncation < 1e-17 relative); e·ln2 is added back through a hi/lo
/// split. A couple of ULP — the AVX2 tier's accuracy contract, not
/// bit-compat with libm.
AYD_AVX2 inline __m256d vlog(__m256d x) {
  const __m256i xi = _mm256_castpd_si256(x);
  // Biased exponent per lane (fits in the low 32 bits after the shift);
  // compact the four low halves into one __m128i for the int->double
  // conversion.
  const __m256i exp_bits = _mm256_srli_epi64(
      _mm256_and_si256(xi, _mm256_set1_epi64x(0x7ff0000000000000LL)), 52);
  const __m128i exp32 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
      exp_bits, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)));
  __m256d e = _mm256_sub_pd(_mm256_cvtepi32_pd(exp32),
                            _mm256_set1_pd(1023.0));
  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(xi, _mm256_set1_epi64x(0x000fffffffffffffLL)),
      _mm256_set1_epi64x(0x3ff0000000000000LL)));
  // Fold m ∈ [1.5, 2) down to [0.75, 1), bumping the exponent.
  const __m256d fold = _mm256_cmp_pd(m, _mm256_set1_pd(1.5), _CMP_GE_OQ);
  m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), fold);
  e = _mm256_add_pd(e, _mm256_and_pd(fold, _mm256_set1_pd(1.0)));

  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d s =
      _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
  const __m256d z2 = _mm256_mul_pd(s, s);
  // Q(z) = atanh(s)/s rewritten as 1 + z·Q(z), z = s² <= 0.04.
  __m256d q = _mm256_set1_pd(1.0 / 23.0);
  q = _mm256_fmadd_pd(q, z2, _mm256_set1_pd(1.0 / 21.0));
  q = _mm256_fmadd_pd(q, z2, _mm256_set1_pd(1.0 / 19.0));
  q = _mm256_fmadd_pd(q, z2, _mm256_set1_pd(1.0 / 17.0));
  q = _mm256_fmadd_pd(q, z2, _mm256_set1_pd(1.0 / 15.0));
  q = _mm256_fmadd_pd(q, z2, _mm256_set1_pd(1.0 / 13.0));
  q = _mm256_fmadd_pd(q, z2, _mm256_set1_pd(1.0 / 11.0));
  q = _mm256_fmadd_pd(q, z2, _mm256_set1_pd(1.0 / 9.0));
  q = _mm256_fmadd_pd(q, z2, _mm256_set1_pd(1.0 / 7.0));
  q = _mm256_fmadd_pd(q, z2, _mm256_set1_pd(1.0 / 5.0));
  q = _mm256_fmadd_pd(q, z2, _mm256_set1_pd(1.0 / 3.0));
  const __m256d s2 = _mm256_add_pd(s, s);
  // log(m) = 2s + 2s·z·Q(z)
  const __m256d log_m = _mm256_fmadd_pd(_mm256_mul_pd(s2, z2), q, s2);

  const __m256d ln2_hi = _mm256_set1_pd(0x1.62e42fee00000p-1);
  const __m256d ln2_lo = _mm256_set1_pd(0x1.a39ef35793c76p-33);
  return _mm256_fmadd_pd(e, ln2_hi, _mm256_fmadd_pd(e, ln2_lo, log_m));
}

/// exp(x) (4 lanes); underflows to 0 below ~-745, overflows to +inf
/// above ~709. Cody-Waite reduction against ln2, Taylor polynomial of
/// degree 13 on [-ln2/2, ln2/2], and a split power-of-two rescale
/// (2^n = 2^n1 · 2^n2) so deep-subnormal results come out right without
/// a 64-bit shift overflowing the exponent field.
AYD_AVX2 inline __m256d vexp(__m256d x) {
  x = _mm256_max_pd(_mm256_set1_pd(-746.0),
                    _mm256_min_pd(x, _mm256_set1_pd(710.0)));
  const __m256d log2e = _mm256_set1_pd(0x1.71547652b82fep+0);
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d ln2_hi = _mm256_set1_pd(0x1.62e42fee00000p-1);
  const __m256d ln2_lo = _mm256_set1_pd(0x1.a39ef35793c76p-33);
  __m256d r = _mm256_fnmadd_pd(n, ln2_hi, x);
  r = _mm256_fnmadd_pd(n, ln2_lo, r);

  __m256d p = _mm256_set1_pd(1.0 / 6227020800.0);  // 1/13!
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 479001600.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 39916800.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 3628800.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 362880.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 40320.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 5040.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 720.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 120.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 24.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 6.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.5));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));

  // Split the integral n (|n| <= 1077) in floating point, then build the
  // two power-of-two factors through the exponent field.
  const __m256d n1 = _mm256_round_pd(_mm256_mul_pd(n, _mm256_set1_pd(0.5)),
                                     _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
  const __m256d n2 = _mm256_sub_pd(n, n1);
  const __m256i n1i = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(n1));
  const __m256i n2i = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(n2));
  const __m256d s1 = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(n1i, _mm256_set1_epi64x(1023)), 52));
  const __m256d s2 = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(n2i, _mm256_set1_epi64x(1023)), 52));
  return _mm256_mul_pd(_mm256_mul_pd(p, s1), s2);
}

/// -log1p(-u) for u ∈ [0, 1): w = 1 - u rounded, plus the standard
/// correction (x - (w-1))/w with x = -u, which restores the bits the
/// rounding of w lost. Exact zero at u == 0.
AYD_AVX2 inline __m256d vneg_log1p_neg(__m256d u) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d x = _mm256_sub_pd(_mm256_setzero_pd(), u);  // -u
  const __m256d w = _mm256_add_pd(one, x);                  // 1 - u, rounded
  const __m256d corr = _mm256_div_pd(
      _mm256_sub_pd(x, _mm256_sub_pd(w, one)), w);
  const __m256d l = _mm256_add_pd(vlog(w), corr);  // log1p(-u) <= 0
  return _mm256_sub_pd(_mm256_setzero_pd(), l);
}

AYD_AVX2 void exponential_units_avx2(double* z, std::size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg0 = _mm256_set1_pd(-0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d u = _mm256_loadu_pd(z + i);
    // Same operand as the scalar path: log of the *rounded* 1 - u.
    const __m256d res = _mm256_xor_pd(vlog(_mm256_sub_pd(one, u)), neg0);
    _mm256_storeu_pd(z + i, res);
  }
  if (i < n) exponential_units_scalar(z + i, n - i);
}

AYD_AVX2 void weibull_units_avx2(double* z, std::size_t n, double inv_k) {
  const __m256d vik = _mm256_set1_pd(inv_k);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d u = _mm256_loadu_pd(z + i);
    const __m256d t = vneg_log1p_neg(u);
    // pow(t, 1/k) = exp(log(t)/k); t == 0 (u == 0) must yield 0 like
    // std::pow(0, positive), so mask those lanes out of the log.
    const __m256d pos = _mm256_cmp_pd(t, _mm256_setzero_pd(), _CMP_GT_OQ);
    const __m256d safe_t = _mm256_blendv_pd(_mm256_set1_pd(1.0), t, pos);
    const __m256d res = _mm256_and_pd(
        vexp(_mm256_mul_pd(vik, vlog(safe_t))), pos);
    _mm256_storeu_pd(z + i, res);
  }
  if (i < n) weibull_units_scalar(z + i, n - i, inv_k);
}

AYD_AVX2 void lognormal_units_avx2(double* z, std::size_t n) {
  // Acklam's central-region rational (p ∈ [0.02425, 0.97575], ~95% of
  // draws) vectorizes to pure FMA/divide arithmetic; tail lanes fall
  // back to the scalar routine (which also covers the sqrt(-2 log p)
  // branches).
  const __m256d p_low = _mm256_set1_pd(0.02425);
  const __m256d p_high = _mm256_set1_pd(1.0 - 0.02425);
  const __m256d tiny = _mm256_set1_pd(0x1.0p-53);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d u = _mm256_max_pd(_mm256_loadu_pd(z + i), tiny);
    const __m256d q = _mm256_sub_pd(u, _mm256_set1_pd(0.5));
    const __m256d r = _mm256_mul_pd(q, q);
    __m256d num = _mm256_set1_pd(-3.969683028665376e+01);
    num = _mm256_fmadd_pd(num, r, _mm256_set1_pd(2.209460984245205e+02));
    num = _mm256_fmadd_pd(num, r, _mm256_set1_pd(-2.759285104469687e+02));
    num = _mm256_fmadd_pd(num, r, _mm256_set1_pd(1.383577518672690e+02));
    num = _mm256_fmadd_pd(num, r, _mm256_set1_pd(-3.066479806614716e+01));
    num = _mm256_fmadd_pd(num, r, _mm256_set1_pd(2.506628277459239e+00));
    __m256d den = _mm256_set1_pd(-5.447609879822406e+01);
    den = _mm256_fmadd_pd(den, r, _mm256_set1_pd(1.615858368580409e+02));
    den = _mm256_fmadd_pd(den, r, _mm256_set1_pd(-1.556989798598866e+02));
    den = _mm256_fmadd_pd(den, r, _mm256_set1_pd(6.680131188771972e+01));
    den = _mm256_fmadd_pd(den, r, _mm256_set1_pd(-1.328068155288572e+01));
    den = _mm256_fmadd_pd(den, r, _mm256_set1_pd(1.0));
    const __m256d central = _mm256_div_pd(_mm256_mul_pd(num, q), den);
    _mm256_storeu_pd(z + i, central);

    const __m256d is_tail = _mm256_or_pd(
        _mm256_cmp_pd(u, p_low, _CMP_LT_OQ),
        _mm256_cmp_pd(u, p_high, _CMP_GT_OQ));
    int mask = _mm256_movemask_pd(is_tail);
    if (mask != 0) {
      alignas(32) double uu[4];
      _mm256_storeu_pd(uu, u);
      for (int lane = 0; lane < 4; ++lane) {
        if ((mask >> lane) & 1) {
          z[i + static_cast<std::size_t>(lane)] =
              rng::detail::normal_quantile(uu[lane]);
        }
      }
    }
  }
  if (i < n) lognormal_units_scalar(z + i, n - i);
}

AYD_AVX2 void affine_exp_avx2(const double* z, double* out, std::size_t n,
                              double mu, double sigma) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vsigma = _mm256_set1_pd(sigma);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(z + i);
    _mm256_storeu_pd(out + i, vexp(_mm256_fmadd_pd(vsigma, v, vmu)));
  }
  if (i < n) affine_exp_scalar(z + i, out + i, n - i, mu, sigma);
}

#undef AYD_AVX2

}  // namespace

#endif  // AYD_SIMD_X86

// ---- dispatch ----------------------------------------------------------

void exponential_units(double* z, std::size_t n) {
#ifdef AYD_SIMD_X86
  if (active_tier() == Tier::kAvx2) {
    exponential_units_avx2(z, n);
    return;
  }
#endif
  exponential_units_scalar(z, n);
}

void weibull_units(double* z, std::size_t n, double inv_k) {
#ifdef AYD_SIMD_X86
  if (active_tier() == Tier::kAvx2) {
    weibull_units_avx2(z, n, inv_k);
    return;
  }
#endif
  weibull_units_scalar(z, n, inv_k);
}

void lognormal_units(double* z, std::size_t n) {
#ifdef AYD_SIMD_X86
  if (active_tier() == Tier::kAvx2) {
    lognormal_units_avx2(z, n);
    return;
  }
#endif
  lognormal_units_scalar(z, n);
}

void affine_exp(const double* z, double* out, std::size_t n, double mu,
                double sigma) {
#ifdef AYD_SIMD_X86
  if (active_tier() == Tier::kAvx2) {
    affine_exp_avx2(z, out, n, mu, sigma);
    return;
  }
#endif
  affine_exp_scalar(z, out, n, mu, sigma);
}

}  // namespace ayd::rng::simd
