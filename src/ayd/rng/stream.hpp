// Deterministic RNG streams for parallel replication.
//
// Replica i of an experiment seeded with s draws from the stream derived
// from (s, i) via a SplitMix64 mix. Because the derivation is a pure
// function of (seed, stream id), the sequence each replica sees is
// independent of which thread runs it and of how many threads exist —
// experiment results are bit-identical from 1 to N threads.

#pragma once

#include <cstdint>

#include "ayd/rng/distributions.hpp"
#include "ayd/rng/splitmix64.hpp"
#include "ayd/rng/xoshiro256.hpp"

namespace ayd::rng {

class RngStream {
 public:
  /// Root stream for an experiment seed.
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}

  /// Substream `stream_id` of experiment `seed` (deterministic, collision-
  /// free derivation through a bijective mixer).
  RngStream(std::uint64_t seed, std::uint64_t stream_id)
      : engine_(mix64(seed, stream_id)) {}

  /// Derives a child stream (e.g. one per simulated replica within a
  /// worker). Children of distinct ids never share a seed derivation.
  [[nodiscard]] RngStream child(std::uint64_t stream_id) const {
    return RngStream(engine_.state()[0] ^ engine_.state()[2], stream_id);
  }

  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }
  [[nodiscard]] double next_uniform01() { return uniform01(engine_); }
  [[nodiscard]] double next_uniform(double lo, double hi) {
    return uniform(engine_, lo, hi);
  }
  /// Exponential inter-arrival with the given rate; +inf when rate == 0.
  [[nodiscard]] double next_exponential(double rate) {
    return exponential(engine_, rate);
  }
  [[nodiscard]] bool next_bernoulli(double p) {
    return bernoulli(engine_, p);
  }
  [[nodiscard]] double next_normal(double mean = 0.0, double stddev = 1.0) {
    return normal(engine_, mean, stddev);
  }
  [[nodiscard]] std::uint64_t next_index(std::uint64_t n) {
    return uniform_index(engine_, n);
  }

  /// Bulk fill: `out[i]` is bit-identical to the value the i-th of `n`
  /// successive next_u64() calls would return. The tight loop lets the
  /// engine's state updates pipeline instead of alternating with consumer
  /// work.
  void fill_u64(std::uint64_t* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = engine_();
  }

  /// Bulk fill: `out[i]` is bit-identical to the value the i-th of `n`
  /// successive next_uniform01() calls would return (same words consumed,
  /// in the same order).
  void fill_uniform01(double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = uniform01(engine_);
  }

  /// Access to the raw engine for generic <random>-style use.
  [[nodiscard]] Xoshiro256& engine() { return engine_; }

 private:
  Xoshiro256 engine_;
};

}  // namespace ayd::rng
