// Baseline strategies the paper compares against (Section I and the
// related-work discussion):
//
//  * fail_stop_only_system — Zheng et al. (IEEE TC 2015)-style modelling
//    that accounts only for fail-stop errors. Used by the silent-blindness
//    ablation: plan T with this model, execute under both error sources.
//  * jin_relaxation — the iterative-relaxation numerical procedure of
//    Jin et al. (ICPP'10), alternating the optimal T for fixed P with the
//    optimal P for fixed T until fixpoint. The paper cites this as the
//    generic numerical method its closed forms replace; the ablation bench
//    compares it against our nested optimiser.

#pragma once

#include "ayd/core/optimizer.hpp"
#include "ayd/model/system.hpp"

namespace ayd::core {

/// A copy of `sys` whose silent errors are removed while the fail-stop
/// rate is preserved: λ'_ind = f·λ_ind with f' = 1. Verification costs are
/// kept (the VC protocol still runs them), so the planner is "blind" only
/// in its error model, not in its protocol costs.
[[nodiscard]] model::System fail_stop_only_system(const model::System& sys);

/// The checkpointing period a silent-error-blind planner would choose for
/// the given allocation: Theorem 1 applied with λs forced to 0, i.e.
/// T = sqrt((V+C)/(λf/2)) — Young/Daly with the verified-checkpoint cost.
[[nodiscard]] double silent_blind_period(const model::System& sys,
                                         double procs);

struct JinRelaxationOptions {
  double initial_procs = 64.0;
  double min_procs = 1.0;
  double max_procs = 1e7;
  double tolerance = 1e-8;  ///< relative change in (T, P) to declare fixpoint
  int max_rounds = 100;
  PeriodSearchOptions period{};
};

struct JinRelaxationResult {
  double procs = 0.0;
  double period = 0.0;
  double overhead = 0.0;
  int rounds = 0;       ///< relaxation rounds executed
  bool converged = false;
};

/// Alternating relaxation: T ← argmin_T H(T, P); P ← argmin_P H(T, P);
/// repeat until neither moves by more than `tolerance` (relative).
[[nodiscard]] JinRelaxationResult jin_relaxation(
    const model::System& sys, const JinRelaxationOptions& opt = {});

}  // namespace ayd::core
