// A periodic checkpointing pattern PATTERN(T, P): T seconds of useful
// computation executed on P processors, followed by a verification V_P and
// a checkpoint C_P (the paper's Section II).

#pragma once

#include <cmath>

#include "ayd/util/contracts.hpp"

namespace ayd::core {

struct Pattern {
  /// Useful-computation length T of the pattern, in seconds (> 0).
  double period = 0.0;
  /// Processor allocation P (real-valued >= 1; the analysis treats P as
  /// continuous and integer refinement happens in the optimiser).
  double procs = 1.0;
};

/// Validates a pattern; throws util::InvalidArgument on violation.
inline void validate(const Pattern& pattern) {
  AYD_REQUIRE(std::isfinite(pattern.period) && pattern.period > 0.0,
              "pattern period must be finite and positive");
  AYD_REQUIRE(std::isfinite(pattern.procs) && pattern.procs >= 1.0,
              "pattern processor count must be finite and >= 1");
}

}  // namespace ayd::core
