// Classical checkpointing-period formulas: Young (1974) and Daly (2006).
//
// These are the fail-stop-only baselines the paper's title generalises.
// With silent errors absent (s = 0), no verification, and negligible D,
// the paper's Theorem 1 reduces exactly to Young's formula
//   T_Y = sqrt(2·μ·C)
// where μ is the *platform* MTBF — a reduction the test suite pins.

#pragma once

#include "ayd/model/system.hpp"

namespace ayd::core {

/// Young's first-order optimum T = sqrt(2·μ·C).
/// `platform_mtbf` is the MTBF of the whole platform (μ_ind / P), seconds.
[[nodiscard]] double young_period(double platform_mtbf,
                                  double checkpoint_cost);

/// Daly's higher-order estimate (Future Gener. Comput. Syst. 22(3), 2006):
///   T = sqrt(2·μ·C)·[1 + (1/3)·sqrt(C/(2μ)) + (1/9)·(C/(2μ))] − C
/// for C < 2μ, and T = μ otherwise.
[[nodiscard]] double daly_period(double platform_mtbf,
                                 double checkpoint_cost);

/// Young's first-order overhead estimate at the optimal period:
///   H ≈ sqrt(2·C/μ)  (relative time lost to checkpoints + rollbacks).
[[nodiscard]] double young_overhead(double platform_mtbf,
                                    double checkpoint_cost);

/// Extension: Daly's higher-order correction transplanted to the VC
/// protocol. Theorem 1's T*_P = sqrt(K/Λ) with K = V_P + C_P and
/// Λ = λf_P/2 + λs_P is the Young-style first term; applying Daly's
/// series in the dimensionless exposure x = sqrt(K·Λ) gives
///   T = sqrt(K/Λ)·(1 + x/3 + x²/9) − K        for x < 1,
///   T = 1/Λ                                   otherwise,
/// which reduces exactly to Daly (2006) when silent errors are absent
/// (Λ = λf/2 = 1/(2μ), K = C). Empirically (see the probe test) it cuts
/// the period error vs the exact numerical optimum by ~3x and the
/// achieved-overhead gap by ~9x on every platform/scenario pair.
/// Returns +inf on error-free systems (never checkpoint).
[[nodiscard]] double daly_period_vc(const model::System& sys, double procs);

}  // namespace ayd::core
