#include "ayd/core/sim_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "ayd/stats/ci.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::core {

namespace {

/// One simulated candidate: position on log T, its adaptive-replication
/// summary, and the per-replica overheads (kept for the paired tests —
/// common random numbers make replica i comparable across candidates).
struct Candidate {
  double log_t = 0.0;
  stats::Summary overhead;
  std::vector<double> replica_overheads;
  bool ci_converged = false;
};

/// Shared evaluation context: counts candidates and replicas, reuses one
/// scratch arena for every adaptive call.
struct SearchContext {
  SearchContext(const model::System& s, double p, const SimSearchOptions& o,
                exec::ThreadPool* pl)
      : sys(s), procs(p), opt(o), pool(pl), replication(o.replication) {
    // Search-local CRN pool: candidate periods differ only in T, which
    // the pool is keyed independently of, so one pool serves every
    // candidate — variate generation is paid once per search, and the
    // common random numbers the paired tests already relied on become
    // literal shared memory instead of recomputed transforms. Results
    // are bit-identical to per-candidate sampling under the scalar tier
    // (sim/variate_pool.hpp). A caller-supplied sweep-level pool wins.
    if (replication.shared_units == nullptr && !sys.extended() &&
        sim::UnitVariatePool::eligible(sys.failure().dist())) {
      owned_pool = std::make_unique<sim::UnitVariatePool>(
          sys.failure().dist(), replication.seed);
      replication.shared_units = owned_pool.get();
    }
  }

  const model::System& sys;
  double procs;
  const SimSearchOptions& opt;
  exec::ThreadPool* pool;
  sim::ReplicationScratch scratch;
  std::unique_ptr<sim::UnitVariatePool> owned_pool;
  sim::ReplicationOptions replication;
  int evaluations = 0;
  std::uint64_t total_replicas = 0;

  Candidate evaluate(double log_t) {
    const core::Pattern pattern{std::exp(log_t), procs};
    const sim::ReplicationResult res = sim::simulate_overhead_adaptive(
        sys, pattern, replication, opt.adaptive, pool, &scratch);
    Candidate c;
    c.log_t = log_t;
    c.overhead = res.overhead;
    c.ci_converged = res.ci_converged;
    c.replica_overheads.reserve(scratch.outcomes.size());
    for (const sim::ReplicaOutcome& o : scratch.outcomes) {
      c.replica_overheads.push_back(o.overhead);
    }
    ++evaluations;
    total_replicas += res.overhead.count;
    return c;
  }
};

/// Paired comparison under common random numbers: Student-t CI of the
/// per-replica differences over the common replica prefix. Returns true
/// when the CI contains 0 — the candidates are statistically
/// indistinguishable at the configured level, so preferring one mean over
/// the other would be noise-fitting.
bool indistinguishable(const Candidate& a, const Candidate& b,
                       double ci_level) {
  const std::size_t n =
      std::min(a.replica_overheads.size(), b.replica_overheads.size());
  if (n < 2) return false;
  stats::RunningStats diff;
  for (std::size_t i = 0; i < n; ++i) {
    diff.add(a.replica_overheads[i] - b.replica_overheads[i]);
  }
  return stats::mean_ci_student(diff, ci_level).contains(0.0);
}

/// The exponential-assumption period optimum used to seed the search
/// (core's closed forms ignore the distribution shape by construction).
PeriodOptimum exponential_seed(const model::System& sys, double procs,
                               const SimSearchOptions& opt) {
  PeriodSearchOptions popt;
  popt.min_period = opt.min_period;
  popt.max_period = opt.max_period;
  return optimal_period(sys, procs, popt);
}

}  // namespace

SimPeriodOptimum sim_optimal_period(const model::System& sys, double procs,
                                    const SimSearchOptions& opt,
                                    exec::ThreadPool* pool) {
  AYD_REQUIRE(std::isfinite(procs) && procs >= 1.0,
              "processor count must be finite and >= 1");
  AYD_REQUIRE(opt.min_period > 0.0 && opt.min_period < opt.max_period,
              "invalid period search domain");
  AYD_REQUIRE(opt.bracket_span > 1.0, "bracket_span must be > 1");
  AYD_REQUIRE(opt.warm_start <= 0.0 || opt.warm_bracket_span > 1.0,
              "warm_bracket_span must be > 1");
  AYD_REQUIRE(opt.coarse_points >= 3, "need at least 3 coarse candidates");
  AYD_REQUIRE(opt.x_tol > 0.0, "x_tol must be > 0");

  const PeriodOptimum seed = exponential_seed(sys, procs, opt);
  SimPeriodOptimum out;
  out.seed_period = seed.period;

  SearchContext ctx(sys, procs, opt, pool);

  // Exponential distributions are exactly the regime of Proposition 1:
  // answer with the closed-form optimiser and only spend simulation
  // budget on attaching an honest CI at that optimum. Extended systems
  // never qualify — a correlated world's interruption process is not
  // the i.i.d. per-node Poisson the closed form prices, even when every
  // source is exponential.
  if (sys.failure().dist().memoryless() && !sys.extended() &&
      !opt.force_search) {
    out.period = seed.period;
    out.used_closed_form = true;
    out.converged = seed.converged;
    out.at_boundary = seed.at_boundary;
    const Candidate at_opt = ctx.evaluate(std::log(seed.period));
    out.overhead = at_opt.overhead;
    out.ci_converged = at_opt.ci_converged;
    out.evaluations = ctx.evaluations;
    out.total_replicas = ctx.total_replicas;
    return out;
  }

  const double dom_lo = std::log(opt.min_period);
  const double dom_hi = std::log(opt.max_period);
  // Warm starts (the online re-planner passing the previously deployed
  // optimum) center a tighter bracket on the hint; the edge expansion
  // below walks out of it when the hint has gone stale.
  const bool warm = opt.warm_start > 0.0;
  const double span =
      std::log(warm ? opt.warm_bracket_span : opt.bracket_span);
  const double center = warm ? opt.warm_start : seed.period;
  const double center_x = std::clamp(std::log(center), dom_lo, dom_hi);
  double lo = std::max(dom_lo, center_x - span);
  double hi = std::min(dom_hi, center_x + span);

  // Coarse scan: log-spaced candidates across the bracket, extended
  // outward (same spacing) while the best sits on a bracket edge that is
  // not a domain edge — the non-exponential optimum occasionally drifts
  // past bracket_span for extreme shapes.
  const double step = (hi - lo) / static_cast<double>(opt.coarse_points - 1);
  std::vector<Candidate> scan;
  for (int i = 0; i < opt.coarse_points; ++i) {
    scan.push_back(ctx.evaluate(lo + step * static_cast<double>(i)));
  }
  const auto best_index = [&scan]() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < scan.size(); ++i) {
      if (scan[i].overhead.mean < scan[best].overhead.mean) best = i;
    }
    return best;
  };
  for (int expansion = 0; expansion < 8; ++expansion) {
    const std::size_t best = best_index();
    if (best == 0 && scan.front().log_t - step >= dom_lo) {
      scan.insert(scan.begin(), ctx.evaluate(scan.front().log_t - step));
    } else if (best + 1 == scan.size() &&
               scan.back().log_t + step <= dom_hi) {
      scan.push_back(ctx.evaluate(scan.back().log_t + step));
    } else {
      break;
    }
  }

  // Golden-section refinement inside the best candidate's neighbourhood.
  const std::size_t best = best_index();
  double a = best > 0 ? scan[best - 1].log_t
                      : std::max(dom_lo, scan[best].log_t - step);
  double b = best + 1 < scan.size() ? scan[best + 1].log_t
                                    : std::min(dom_hi, scan[best].log_t + step);
  Candidate incumbent = std::move(scan[best]);

  constexpr double kGolden = 0.6180339887498949;  // (sqrt(5) - 1) / 2
  const double level = opt.replication.ci_level;
  Candidate c = ctx.evaluate(b - kGolden * (b - a));
  Candidate d = ctx.evaluate(a + kGolden * (b - a));
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    if (b - a <= opt.x_tol) {
      out.converged = true;
      break;
    }
    if (indistinguishable(c, d, level)) {
      // The two interior candidates cannot be told apart at this noise
      // level: localising further would fit the Monte-Carlo noise, not
      // the objective. Report the noise floor instead.
      out.ci_limited = true;
      out.converged = true;
      break;
    }
    if (c.overhead.mean < d.overhead.mean) {
      b = d.log_t;
      d = std::move(c);
      c = ctx.evaluate(b - kGolden * (b - a));
    } else {
      a = c.log_t;
      c = std::move(d);
      d = ctx.evaluate(a + kGolden * (b - a));
    }
  }
  if (b - a <= opt.x_tol) out.converged = true;

  if (c.overhead.mean < incumbent.overhead.mean) incumbent = std::move(c);
  if (d.overhead.mean < incumbent.overhead.mean) incumbent = std::move(d);

  out.period = std::exp(incumbent.log_t);
  out.overhead = incumbent.overhead;
  out.ci_converged = incumbent.ci_converged;
  out.at_boundary = incumbent.log_t <= dom_lo + 1e-12 ||
                    incumbent.log_t >= dom_hi - 1e-12;
  out.evaluations = ctx.evaluations;
  out.total_replicas = ctx.total_replicas;
  return out;
}

SimAllocationOptimum sim_optimal_allocation(
    const model::System& sys, const SimAllocationSearchOptions& opt,
    exec::ThreadPool* pool) {
  AYD_REQUIRE(opt.min_procs >= 1.0 && opt.min_procs < opt.max_procs,
              "invalid processor search domain");
  AYD_REQUIRE(opt.rungs_per_side >= 1, "need at least one ladder rung");
  AYD_REQUIRE(opt.ladder_ratio > 1.0, "ladder_ratio must be > 1");

  // Seed P from the exponential-assumption joint optimum.
  AllocationSearchOptions aopt;
  aopt.min_procs = opt.min_procs;
  aopt.max_procs = opt.max_procs;
  aopt.period.min_period = opt.period.min_period;
  aopt.period.max_period = opt.period.max_period;
  const AllocationOptimum seed = optimal_allocation(sys, aopt);

  SimAllocationOptimum out;
  out.seed_procs = seed.procs;

  if (sys.failure().dist().memoryless() && !sys.extended() &&
      !opt.period.force_search) {
    // Exponential: the exact optimiser answers; attach a CI at (T*, P*).
    out.procs = seed.procs;
    out.period = seed.period;
    out.used_closed_form = true;
    out.converged = seed.converged;
    out.at_boundary = seed.at_boundary;
    sim::ReplicationScratch scratch;
    const sim::ReplicationResult res = sim::simulate_overhead_adaptive(
        sys, {seed.period, seed.procs}, opt.period.replication,
        opt.period.adaptive, pool, &scratch);
    out.overhead = res.overhead;
    out.ci_converged = res.ci_converged;
    out.outer_evaluations = 1;
    out.total_replicas = res.overhead.count;
    return out;
  }

  // Geometric candidate ladder around the seed, rounded to integers.
  std::vector<double> rungs;
  for (int j = -opt.rungs_per_side; j <= opt.rungs_per_side; ++j) {
    const double p = std::clamp(
        std::round(seed.procs * std::pow(opt.ladder_ratio, j)),
        std::max(1.0, opt.min_procs), opt.max_procs);
    if (rungs.empty() || rungs.back() != p) rungs.push_back(p);
  }

  // One CRN pool across the whole ladder: the allocation is not part of
  // the pool key either, so the inner searches at every rung share it
  // (each rung's SearchContext sees shared_units set and keeps it).
  SimSearchOptions period_opt = opt.period;
  std::unique_ptr<sim::UnitVariatePool> ladder_pool;
  if (period_opt.replication.shared_units == nullptr && !sys.extended() &&
      sim::UnitVariatePool::eligible(sys.failure().dist())) {
    ladder_pool = std::make_unique<sim::UnitVariatePool>(
        sys.failure().dist(), period_opt.replication.seed);
    period_opt.replication.shared_units = ladder_pool.get();
  }

  out.converged = true;
  std::size_t best = 0;
  std::vector<SimPeriodOptimum> inner(rungs.size());
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    inner[i] = sim_optimal_period(sys, rungs[i], period_opt, pool);
    out.total_replicas += inner[i].total_replicas;
    out.outer_evaluations += 1;
    if (!inner[i].converged) out.converged = false;
    if (inner[i].overhead.mean < inner[best].overhead.mean) best = i;
  }

  out.procs = rungs[best];
  out.period = inner[best].period;
  out.overhead = inner[best].overhead;
  out.ci_converged = inner[best].ci_converged;
  out.at_boundary =
      rungs.size() > 1 && (best == 0 || best + 1 == rungs.size());
  out.period_at_boundary = inner[best].at_boundary;
  return out;
}

}  // namespace ayd::core
