#include "ayd/core/multi_verification.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ayd/core/optimizer.hpp"
#include "ayd/math/minimize.hpp"
#include "ayd/math/special.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// M·expm1(λf·w) with M = 1/λf + D, stable down to λf == 0 (-> w).
double m_expm1(double lf, double d, double w) {
  const double x = lf * w;
  return w * math::expm1_over_x(x) + d * std::expm1(x);
}

}  // namespace

void validate(const MultiPattern& pattern) {
  AYD_REQUIRE(std::isfinite(pattern.period) && pattern.period > 0.0,
              "multi-pattern period must be finite and positive");
  AYD_REQUIRE(std::isfinite(pattern.procs) && pattern.procs >= 1.0,
              "multi-pattern processor count must be finite and >= 1");
  AYD_REQUIRE(pattern.segments >= 1,
              "multi-pattern needs at least one segment");
}

double expected_multi_pattern_time(const model::System& sys,
                                   const MultiPattern& pattern) {
  validate(pattern);
  const double p = pattern.procs;
  const double lf = sys.fail_stop_rate(p);
  const double ls = sys.silent_rate(p);
  const double v = sys.verification_cost(p);
  const double c = sys.checkpoint_cost(p);
  const double r = sys.recovery_cost(p);
  const double d = sys.downtime();
  const int n = pattern.segments;
  const double w = pattern.period / n;

  // Expected recovery time E(R) = M(e^{λf·R} − 1), with retries.
  const double er = m_expm1(lf, d, r);

  // Segment-level transition quantities (identical for every segment).
  const double p_fs = -std::expm1(-lf * (w + v));       // fail-stop first
  const double survive_fs = std::exp(-lf * (w + v));
  const double q_silent = -std::expm1(-ls * w);
  const double p_silent = survive_fs * q_silent;         // caught at verify
  const double p_clean = survive_fs * (1.0 - q_silent);  // advance
  const double e_lost_seg = math::expected_time_lost(lf, w + v);

  // Per-segment expected direct cost (time spent before the transition).
  const double a_seg = p_fs * (e_lost_seg + d + er) +
                       p_silent * (w + v + er) + p_clean * (w + v);
  const double b_seg = p_fs + p_silent;  // weight on F_1 (restart)
  // c_seg = p_clean (weight on F_{i+1}).

  // Checkpoint state.
  const double q_c = -std::expm1(-lf * c);
  const double e_lost_c = math::expected_time_lost(lf, c);
  double acc_p = q_c * (e_lost_c + d + er) + (1.0 - q_c) * c;
  double acc_q = q_c;  // weight on F_1

  // Backward substitution: F_i = a + b·F_1 + p_clean·F_{i+1}.
  for (int i = 0; i < n; ++i) {
    acc_p = a_seg + p_clean * acc_p;
    acc_q = b_seg + p_clean * acc_q;
  }
  // F_1 = acc_p + acc_q·F_1  =>  F_1 = acc_p / (1 − acc_q).
  const double denom = 1.0 - acc_q;
  if (!(denom > 0.0) || !std::isfinite(acc_p)) return kInf;
  return acc_p / denom;
}

double multi_pattern_overhead(const model::System& sys,
                              const MultiPattern& pattern) {
  validate(pattern);
  return expected_multi_pattern_time(sys, pattern) /
         (pattern.period * sys.speedup(pattern.procs));
}

double first_order_multi_overhead(const model::System& sys,
                                  const MultiPattern& pattern) {
  validate(pattern);
  const double p = pattern.procs;
  const double t = pattern.period;
  const double n = pattern.segments;
  const double lf = sys.fail_stop_rate(p);
  const double ls = sys.silent_rate(p);
  const double cost = n * sys.verification_cost(p) + sys.checkpoint_cost(p);
  const double rate = lf / 2.0 + ls * (n + 1.0) / (2.0 * n);
  return sys.error_free_overhead(p) * (cost / t + rate * t + 1.0);
}

double optimal_period_multi(const model::System& sys, double procs,
                            int segments) {
  AYD_REQUIRE(std::isfinite(procs) && procs >= 1.0,
              "processor count must be finite and >= 1");
  AYD_REQUIRE(segments >= 1, "need at least one segment");
  const double lf = sys.fail_stop_rate(procs);
  const double ls = sys.silent_rate(procs);
  const double n = segments;
  const double rate = lf / 2.0 + ls * (n + 1.0) / (2.0 * n);
  if (rate == 0.0) return kInf;
  const double cost =
      n * sys.verification_cost(procs) + sys.checkpoint_cost(procs);
  AYD_REQUIRE(cost > 0.0, "resilience cost must be positive");
  return std::sqrt(cost / rate);
}

VerificationPlan optimal_verification_plan(const model::System& sys,
                                           double procs) {
  AYD_REQUIRE(std::isfinite(procs) && procs >= 1.0,
              "processor count must be finite and >= 1");
  const double lf = sys.fail_stop_rate(procs);
  const double ls = sys.silent_rate(procs);
  const double v = sys.verification_cost(procs);
  const double c = sys.checkpoint_cost(procs);
  AYD_REQUIRE(v > 0.0,
              "the closed-form verification plan requires V_P > 0 "
              "(free verifications admit unbounded n)");
  AYD_REQUIRE(lf + ls > 0.0,
              "error-free systems have no optimal verification count");

  VerificationPlan plan;
  plan.segments_continuous = std::sqrt(ls * c / ((lf + ls) * v));
  // Round to the better integer neighbour of the continuous optimum
  // under the first-order overhead (n = 1 minimum).
  const auto fo_overhead = [&](int n) {
    const double t = optimal_period_multi(sys, procs, n);
    return first_order_multi_overhead(sys, {t, procs, n});
  };
  const int lo = std::max(1, static_cast<int>(
                                 std::floor(plan.segments_continuous)));
  const int hi = lo + 1;
  plan.segments = fo_overhead(lo) <= fo_overhead(hi) ? lo : hi;
  plan.period = optimal_period_multi(sys, procs, plan.segments);
  plan.overhead =
      first_order_multi_overhead(sys, {plan.period, procs, plan.segments});
  return plan;
}

MultiOptimum optimal_multi_pattern(const model::System& sys, double procs,
                                   int max_segments) {
  AYD_REQUIRE(max_segments >= 1, "max_segments must be >= 1");
  MultiOptimum best;
  best.overhead = kInf;

  int rising_streak = 0;
  for (int n = 1; n <= max_segments; ++n) {
    // Inner exact-overhead period optimisation on log T, seeded by the
    // first-order period for this n.
    double hint = optimal_period_multi(sys, procs, n);
    if (!std::isfinite(hint)) hint = 1e6;
    const auto objective = [&](double log_t) {
      const double h = multi_pattern_overhead(
          sys, {std::exp(log_t), procs, n});
      return std::isfinite(h) ? std::log(h) : 1e300;
    };
    const math::MinimizeResult res = math::minimize_with_hint(
        objective, std::log(1e-3), std::log(1e13),
        std::log(std::clamp(hint, 1e-3, 1e13)));
    const double overhead = std::exp(res.fx);
    if (overhead < best.overhead) {
      best.segments = n;
      best.period = std::exp(res.x);
      best.overhead = overhead;
      best.converged = res.converged;
      rising_streak = 0;
    } else if (++rising_streak >= 4) {
      break;  // unimodal in n in practice; stop after a consistent rise
    }
  }
  return best;
}

}  // namespace ayd::core
