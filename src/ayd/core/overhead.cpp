#include "ayd/core/overhead.hpp"

#include <cmath>
#include <limits>

#include "ayd/core/expected_time.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::core {

double pattern_speedup(const model::System& sys, const Pattern& pattern) {
  validate(pattern);
  const double e = expected_pattern_time(sys, pattern);
  if (std::isinf(e)) return 0.0;
  return pattern.period * sys.speedup(pattern.procs) / e;
}

double pattern_overhead(const model::System& sys, const Pattern& pattern) {
  validate(pattern);
  const double e = expected_pattern_time(sys, pattern);
  return e / (pattern.period * sys.speedup(pattern.procs));
}

double log_pattern_overhead(const model::System& sys,
                            const Pattern& pattern) {
  validate(pattern);
  const double log_e = log_expected_pattern_time(sys, pattern);
  return log_e - std::log(pattern.period) -
         std::log(sys.speedup(pattern.procs));
}

double expected_makespan(const model::System& sys, const Pattern& pattern,
                         const model::Application& app) {
  AYD_REQUIRE(app.total_work >= 0.0, "total work must be >= 0");
  return pattern_overhead(sys, pattern) * app.total_work;
}

}  // namespace ayd::core
