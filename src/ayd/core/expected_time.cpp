#include "ayd/core/expected_time.hpp"

#include <cmath>
#include <limits>

#include "ayd/math/special.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::core {

namespace {

/// Per-pattern rate/cost bundle at a fixed P.
struct Params {
  double lf;  ///< fail-stop rate λf_P
  double ls;  ///< silent rate λs_P
  double c;   ///< checkpoint cost C_P
  double r;   ///< recovery cost R_P
  double v;   ///< verification cost V_P
  double d;   ///< downtime D
};

Params params_at(const model::System& sys, double procs) {
  return {sys.fail_stop_rate(procs), sys.silent_rate(procs),
          sys.checkpoint_cost(procs), sys.recovery_cost(procs),
          sys.verification_cost(procs), sys.downtime()};
}

/// M·expm1(x) where M = 1/λf + D and x = λf·w, computed as
/// w·exprel(x) + D·expm1(x): stable for all λf >= 0 (equals w at λf == 0).
double m_expm1(double lf, double d, double w) {
  const double x = lf * w;
  return w * math::expm1_over_x(x) + d * std::expm1(x);
}

double recovery_expectation(const Params& p) {
  return m_expm1(p.lf, p.d, p.r);
}

double work_expectation(const Params& p, double t) {
  const double tv = t + p.v;
  const double b = p.ls * t;        // silent exposure of the pattern
  const double w = p.lf * tv;       // fail-stop exposure of work+verify
  const double er = recovery_expectation(p);
  // E(T+V) = e^b·expm1(w)·M + expm1(w + b)·E(R); every term nonnegative.
  // The recovery term is dropped when E(R) == 0 so that an overflowed
  // expm1(w+b) == inf cannot turn 0 into NaN.
  const double rec_term = er == 0.0 ? 0.0 : std::expm1(w + b) * er;
  return std::exp(b) * m_expm1(p.lf, p.d, tv) + rec_term;
}

double checkpoint_expectation(const Params& p, double etv) {
  const double a = p.lf * p.c;
  if (a == 0.0) {
    // No fail-stop exposure while checkpointing (λf == 0 or C == 0): the
    // checkpoint deterministically costs C. Returning early also avoids
    // 0·inf = NaN when etv has overflowed to infinity.
    return p.c;
  }
  // E(C) = expm1(a)·(M·e^{λf·R} + E(T+V))
  //      = C·exprel(a)·e^{λf·R} + D·expm1(a)·e^{λf·R} + expm1(a)·E(T+V).
  const double er_exp = std::exp(p.lf * p.r);
  return p.c * math::expm1_over_x(a) * er_exp +
         p.d * std::expm1(a) * er_exp + std::expm1(a) * etv;
}

}  // namespace

double expected_recovery_time(const model::System& sys, double procs) {
  AYD_REQUIRE(std::isfinite(procs) && procs >= 1.0,
              "processor count must be finite and >= 1");
  return recovery_expectation(params_at(sys, procs));
}

double expected_work_time(const model::System& sys, const Pattern& pattern) {
  validate(pattern);
  const Params p = params_at(sys, pattern.procs);
  return work_expectation(p, pattern.period);
}

double expected_checkpoint_time(const model::System& sys,
                                const Pattern& pattern) {
  validate(pattern);
  const Params p = params_at(sys, pattern.procs);
  return checkpoint_expectation(p, work_expectation(p, pattern.period));
}

double expected_pattern_time(const model::System& sys,
                             const Pattern& pattern) {
  validate(pattern);
  const Params p = params_at(sys, pattern.procs);
  const double etv = work_expectation(p, pattern.period);
  return etv + checkpoint_expectation(p, etv);
}

double expected_pattern_time_direct(const model::System& sys,
                                    const Pattern& pattern) {
  validate(pattern);
  const Params p = params_at(sys, pattern.procs);
  const double t = pattern.period;
  if (p.lf == 0.0) {
    // λf → 0 limit of Prop. 1: E = e^{λs·T}(T+V) + (e^{λs·T} − 1)R + C.
    const double b = p.ls * t;
    return std::exp(b) * (t + p.v) + std::expm1(b) * p.r + p.c;
  }
  const double m = 1.0 / p.lf + p.d;
  const double a = p.lf * p.c;
  const double b = p.ls * t;
  const double x = p.lf * (p.c + t + p.v) + b;
  // E = M·[ e^{λf·R}·expm1(x) − e^{λf·C}·expm1(λs·T) ].
  return m * (std::exp(p.lf * p.r) * std::expm1(x) -
              std::exp(a) * std::expm1(b));
}

double log_expected_pattern_time(const model::System& sys,
                                 const Pattern& pattern) {
  validate(pattern);
  const Params p = params_at(sys, pattern.procs);
  const double t = pattern.period;

  // Prefer the exact linear-space value whenever it fits in a double.
  const double linear = expected_pattern_time(sys, pattern);
  if (std::isfinite(linear)) {
    AYD_ENSURE(linear > 0.0, "expected time must be positive");
    return std::log(linear);
  }

  if (p.lf == 0.0) {
    // E = e^b(T+V+R) − R + C with b huge; the −R + C correction is far
    // below double epsilon relative to the leading term.
    const double b = p.ls * t;
    return b + std::log(t + p.v + p.r);
  }

  // From Prop. 1 with rC = λf·C, rR = λf·R, w = λf(T+V), b = λs·T and
  // x = rC + w + b:
  //   E = M·e^{rR + x}·(1 − e^{−x} + e^{−rR − w − b} − e^{−rR − w})
  // so log E = log M + rR + x + log1p(u) with u in (−1, 1].
  const double rc = p.lf * p.c;
  const double rr = p.lf * p.r;
  const double w = p.lf * (t + p.v);
  const double b = p.ls * t;
  const double x = rc + w + b;
  const double u =
      -std::exp(-x) + std::exp(-rr - w - b) - std::exp(-rr - w);
  AYD_ENSURE(u > -1.0, "log-space expected time: positivity violated");
  const double log_m = std::log(1.0 / p.lf + p.d);
  return log_m + rr + x + std::log1p(u);
}

}  // namespace ayd::core
