// Expected speedup / overhead / makespan of a pattern (paper, Section II,
// "Optimization objective").
//
//   S(pattern) = T·S(P) / E(pattern)       expected speedup
//   H(pattern) = E(pattern) / (T·S(P))     expected execution overhead
//   E(W_final) ≈ H(pattern)·W_total        expected makespan
//
// H(pattern) is the quantity every figure of the paper plots ("execution
// overhead"): the ratio of faulty wall-clock time to the time a failure-
// free serial execution of the same work would take, i.e. it tends to
// H(P) = α + (1-α)/P as errors vanish and to α as P also grows.

#pragma once

#include "ayd/core/pattern.hpp"
#include "ayd/model/application.hpp"
#include "ayd/model/system.hpp"

namespace ayd::core {

/// Expected speedup T·S(P)/E of the pattern. Returns 0 when E overflows.
[[nodiscard]] double pattern_speedup(const model::System& sys,
                                     const Pattern& pattern);

/// Expected execution overhead H(pattern) = E/(T·S(P)). +inf on overflow
/// (use log_pattern_overhead for optimisation).
[[nodiscard]] double pattern_overhead(const model::System& sys,
                                      const Pattern& pattern);

/// log H(pattern), finite for any valid input.
[[nodiscard]] double log_pattern_overhead(const model::System& sys,
                                          const Pattern& pattern);

/// Expected makespan H(pattern)·W_total of an application executed as a
/// sequence of these patterns.
[[nodiscard]] double expected_makespan(const model::System& sys,
                                       const Pattern& pattern,
                                       const model::Application& app);

}  // namespace ayd::core
