// Exact expected execution time of a pattern (Proposition 1 of the paper)
// and its component expectations.
//
// Notation (all rates/costs evaluated at the pattern's P):
//   λf = fail-stop rate, λs = silent rate, C = checkpoint cost,
//   R = recovery cost, V = verification cost, D = downtime,
//   M = 1/λf + D.
//
// Proposition 1:
//   E(pattern) = M · [ e^{λf·C}(1 − e^{λs·T}) + e^{λf·R}(e^{λf·(C+T+V)+λs·T} − 1) ]
//
// This file exposes three equivalent implementations:
//
//  * expected_pattern_time()        — cancellation-free composition of the
//    component expectations through expm1/exprel primitives. Exact in the
//    λf → 0 and λs → 0 limits; the default everywhere.
//  * expected_pattern_time_direct() — the Prop.-1 closed form verbatim,
//    kept as an independent cross-check (tests pin the two together).
//  * log_expected_pattern_time()    — log E, finite even when the
//    exponents overflow double range (the joint optimiser probes P up to
//    10^13 where λf·C_P alone exceeds exp overflow).
//
// Component expectations (proof of Prop. 1), also exposed for tests and
// for the simulator validation:
//   E(R)   = M(e^{λf·R} − 1)
//   E(T+V) = e^{λs·T}(e^{λf(T+V)} − 1)·M + (e^{λf(T+V)+λs·T} − 1)·E(R)
//   E(C)   = (e^{λf·C} − 1)(M·e^{λf·R} + E(T+V))
//   E(pattern) = E(T+V) + E(C)

#pragma once

#include "ayd/core/pattern.hpp"
#include "ayd/model/system.hpp"

namespace ayd::core {

/// Expected time to complete one recovery, including failed recovery
/// attempts (each fail-stop during recovery costs the time lost plus the
/// downtime D). Equals R when λf == 0.
[[nodiscard]] double expected_recovery_time(const model::System& sys,
                                            double procs);

/// Expected time to complete the work+verification segment of a pattern,
/// including all re-executions caused by fail-stop and detected silent
/// errors. Equals e^{λs·T}(T+V) + (e^{λs·T} − 1)·R when λf == 0 and
/// T + V when error-free.
[[nodiscard]] double expected_work_time(const model::System& sys,
                                        const Pattern& pattern);

/// Expected time to store the final checkpoint, including the full pattern
/// re-executions triggered when a fail-stop error strikes mid-checkpoint.
/// Equals C when λf == 0.
[[nodiscard]] double expected_checkpoint_time(const model::System& sys,
                                              const Pattern& pattern);

/// Exact expected execution time of the pattern (stable composition form).
/// Returns +inf if the value exceeds double range; use the log form then.
[[nodiscard]] double expected_pattern_time(const model::System& sys,
                                           const Pattern& pattern);

/// The Proposition-1 closed form evaluated verbatim. Numerically fine for
/// moderate exponents (λ·x ≲ 1), used as an independent cross-check.
[[nodiscard]] double expected_pattern_time_direct(const model::System& sys,
                                                  const Pattern& pattern);

/// log E(pattern); finite for any valid input, however extreme.
[[nodiscard]] double log_expected_pattern_time(const model::System& sys,
                                               const Pattern& pattern);

}  // namespace ayd::core
