#include "ayd/core/two_level.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ayd/math/minimize.hpp"
#include "ayd/math/special.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// M·expm1(λf·w) with M = 1/λf + D, stable down to λf == 0 (-> w).
double m_expm1(double lf, double d, double w) {
  const double x = lf * w;
  return w * math::expm1_over_x(x) + d * std::expm1(x);
}

}  // namespace

void validate(const TwoLevelPattern& pattern) {
  AYD_REQUIRE(std::isfinite(pattern.period) && pattern.period > 0.0,
              "two-level pattern period must be finite and positive");
  AYD_REQUIRE(std::isfinite(pattern.procs) && pattern.procs >= 1.0,
              "two-level pattern processor count must be finite and >= 1");
  AYD_REQUIRE(pattern.segments >= 1,
              "two-level pattern needs at least one segment");
}

double expected_two_level_time(const TwoLevelSystem& sys,
                               const TwoLevelPattern& pattern) {
  validate(pattern);
  const double p = pattern.procs;
  const double lf = sys.base.fail_stop_rate(p);
  const double ls = sys.base.silent_rate(p);
  const double v = sys.base.verification_cost(p);
  const double c2 = sys.base.checkpoint_cost(p);
  const double r2 = sys.base.recovery_cost(p);
  const double l1 = sys.level1_cost(p);
  const double d = sys.base.downtime();
  const int n = pattern.segments;
  const double w = pattern.period / n;
  const double a_span = w + v;  // work + verification of one segment

  // Expected level-2 recovery completion time (with its internal
  // fail-stop retries and downtimes); the triggering downtime is added by
  // the caller of each branch below.
  const double er2 = m_expm1(lf, d, r2);

  // Segment-independent transition quantities.
  const double q_fa = -std::expm1(-lf * a_span);  // fail-stop in work+verify
  const double p_fa = std::exp(-lf * a_span);
  const double q_s = -std::expm1(-ls * w);        // silent strike in work
  const double q_fl = -std::expm1(-lf * l1);      // fail-stop in L1 recovery
  const double p_fl = std::exp(-lf * l1);
  const double e_lost_a = math::expected_time_lost(lf, a_span);
  const double e_lost_l = math::expected_time_lost(lf, l1);

  // Backward recursion: the expectation from the start of segment i to
  // pattern completion is e_i = a_i + g_i·F where F = e_1 is the full-
  // pattern expectation (fail-stop restarts close the loop on F).
  double a_next = 0.0;  // a_{n+1}
  double g_next = 0.0;  // g_{n+1}
  for (int i = n; i >= 1; --i) {
    const double ckpt = i == n ? c2 : l1;  // level-2 only on the last
    const double q_fc = -std::expm1(-lf * ckpt);
    const double p_fc = std::exp(-lf * ckpt);
    const double e_lost_c = math::expected_time_lost(lf, ckpt);

    // e_i = q_fa·(E_lost(A) + D + E(R2) + F)
    //     + p_fa·q_s·[A + q_fl·(E_lost(L) + D + E(R2) + F) + p_fl·(L + e_i)]
    //     + p_fa·(1-q_s)·[q_fc·(A + E_lost(C) + D + E(R2) + F)
    //                     + p_fc·(A + C + e_{i+1})].
    const double coef_self = p_fa * q_s * p_fl;
    const double coef_next = p_fa * (1.0 - q_s) * p_fc;
    const double coef_f =
        q_fa + p_fa * q_s * q_fl + p_fa * (1.0 - q_s) * q_fc;
    const double konst =
        q_fa * (e_lost_a + d + er2) +
        p_fa * q_s *
            (a_span + q_fl * (e_lost_l + d + er2) + p_fl * l1) +
        p_fa * (1.0 - q_s) *
            (q_fc * (a_span + e_lost_c + d + er2) +
             p_fc * (a_span + ckpt));

    const double denom = 1.0 - coef_self;
    if (!(denom > 0.0)) return kInf;
    const double a_i = (konst + coef_next * a_next) / denom;
    const double g_i = (coef_f + coef_next * g_next) / denom;
    a_next = a_i;
    g_next = g_i;
  }

  // F = a_1 + g_1·F  =>  F = a_1 / (1 − g_1).
  const double denom = 1.0 - g_next;
  if (!(denom > 0.0) || !std::isfinite(a_next)) return kInf;
  return a_next / denom;
}

double two_level_overhead(const TwoLevelSystem& sys,
                          const TwoLevelPattern& pattern) {
  validate(pattern);
  return expected_two_level_time(sys, pattern) /
         (pattern.period * sys.base.speedup(pattern.procs));
}

double first_order_two_level_overhead(const TwoLevelSystem& sys,
                                      const TwoLevelPattern& pattern) {
  validate(pattern);
  const double p = pattern.procs;
  const double t = pattern.period;
  const double n = pattern.segments;
  const double lf = sys.base.fail_stop_rate(p);
  const double ls = sys.base.silent_rate(p);
  // The n-th segment stores the level-2 checkpoint INSTEAD of a level-1,
  // so only n-1 level-1 checkpoints appear in the fault-free cost.
  const double cost = n * sys.base.verification_cost(p) +
                      (n - 1.0) * sys.level1_cost(p) +
                      sys.base.checkpoint_cost(p);
  // A silent error re-executes its whole segment (detection happens only
  // at the segment's verification), hence λs/n rather than λs/(2n).
  const double rate = lf / 2.0 + ls / n;
  return sys.base.error_free_overhead(p) * (cost / t + rate * t + 1.0);
}

double optimal_period_two_level(const TwoLevelSystem& sys, double procs,
                                int segments) {
  AYD_REQUIRE(std::isfinite(procs) && procs >= 1.0,
              "processor count must be finite and >= 1");
  AYD_REQUIRE(segments >= 1, "need at least one segment");
  const double lf = sys.base.fail_stop_rate(procs);
  const double ls = sys.base.silent_rate(procs);
  const double n = segments;
  const double rate = lf / 2.0 + ls / n;
  if (rate == 0.0) return kInf;
  const double cost = n * sys.base.verification_cost(procs) +
                      (n - 1.0) * sys.level1_cost(procs) +
                      sys.base.checkpoint_cost(procs);
  AYD_REQUIRE(cost > 0.0, "resilience cost must be positive");
  return std::sqrt(cost / rate);
}

TwoLevelPlan optimal_two_level_plan(const TwoLevelSystem& sys, double procs) {
  AYD_REQUIRE(std::isfinite(procs) && procs >= 1.0,
              "processor count must be finite and >= 1");
  const double lf = sys.base.fail_stop_rate(procs);
  const double ls = sys.base.silent_rate(procs);
  const double vl = sys.base.verification_cost(procs) +
                    sys.level1_cost(procs);
  const double c2 = sys.base.checkpoint_cost(procs);
  AYD_REQUIRE(vl > 0.0,
              "the closed-form two-level plan requires V_P + L_P > 0 "
              "(free segment boundaries admit unbounded n)");
  AYD_REQUIRE(lf > 0.0,
              "the closed-form two-level plan requires fail-stop errors "
              "(with λf == 0 the first-order n* is unbounded; use "
              "optimal_two_level_pattern with an explicit cap)");

  TwoLevelPlan plan;
  // Minimising (n(V+L) + (C-L))·(λf/2 + λs/n): the n-th boundary swaps
  // its level-1 checkpoint for the level-2 one, so the n-proportional
  // boundary cost is V+L while the fixed part is C-L (clamped at 0 for
  // the degenerate L >= C configuration, where n* = 1).
  const double l1 = sys.level1_cost(procs);
  const double fixed = std::max(0.0, c2 - l1);
  plan.segments_continuous = std::sqrt(2.0 * ls * fixed / (lf * vl));
  const auto fo_overhead = [&](int n) {
    const double t = optimal_period_two_level(sys, procs, n);
    return first_order_two_level_overhead(sys, {t, procs, n});
  };
  const int lo =
      std::max(1, static_cast<int>(std::floor(plan.segments_continuous)));
  const int hi = lo + 1;
  plan.segments = fo_overhead(lo) <= fo_overhead(hi) ? lo : hi;
  plan.period = optimal_period_two_level(sys, procs, plan.segments);
  plan.overhead =
      first_order_two_level_overhead(sys, {plan.period, procs,
                                           plan.segments});
  return plan;
}

TwoLevelOptimum optimal_two_level_pattern(const TwoLevelSystem& sys,
                                          double procs, int max_segments) {
  AYD_REQUIRE(max_segments >= 1, "max_segments must be >= 1");
  TwoLevelOptimum best;
  best.overhead = kInf;

  int rising_streak = 0;
  for (int n = 1; n <= max_segments; ++n) {
    double hint = optimal_period_two_level(sys, procs, n);
    if (!std::isfinite(hint)) hint = 1e6;
    const auto objective = [&](double log_t) {
      const double h =
          two_level_overhead(sys, {std::exp(log_t), procs, n});
      return std::isfinite(h) ? std::log(h) : 1e300;
    };
    const math::MinimizeResult res = math::minimize_with_hint(
        objective, std::log(1e-3), std::log(1e13),
        std::log(std::clamp(hint, 1e-3, 1e13)));
    const double overhead = std::exp(res.fx);
    if (overhead < best.overhead) {
      best.segments = n;
      best.period = std::exp(res.x);
      best.overhead = overhead;
      best.converged = res.converged;
      rising_streak = 0;
    } else if (++rising_streak >= 4) {
      break;  // unimodal in n in practice; stop after a consistent rise
    }
  }
  return best;
}

}  // namespace ayd::core
