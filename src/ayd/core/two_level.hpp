// Extension: two-level checkpointing patterns (paper §V, "multi-level
// resilience protocols").
//
// The base VC protocol keeps a single (stable-storage) checkpoint level, so
// a silent error detected by the verification rolls the whole pattern back.
// Real fault-tolerant stacks (SCR [16], FTI) are hierarchical: cheap
// level-1 checkpoints (in-memory / buddy) absorb the frequent, benign
// rollbacks while the expensive level-2 checkpoint (parallel file system)
// is only needed when a fail-stop error wipes node memory.
//
// TWOLEVELPATTERN(T, P, n) splits the pattern's T seconds of work into n
// equal segments. Each segment ends with a verification V_P followed by a
// level-1 checkpoint L_P; the n-th segment stores the level-2 checkpoint
// C_P instead. Error handling:
//   * silent error (strikes computation, rate λs_P): detected by the
//     verification at the end of its segment; a level-1 recovery (cost
//     L_P) restores the previous segment boundary and ONLY that segment
//     re-executes;
//   * fail-stop error (any time, rate λf_P): node memory is lost, so the
//     level-1 chain is useless — downtime D, level-2 recovery R_P, and the
//     whole pattern restarts from its beginning.
// With n = 1 and L_P = R_P the protocol degenerates to the base VC
// pattern, which the tests pin against Proposition 1.
//
// First-order analysis (validated by tests):
//   H(T,P,n) ≈ H(P)·[ (nV + (n-1)L + C)/T + (λf/2 + λs/n)·T + 1 ]
//   T*(n)    = sqrt( (nV + (n-1)L + C) / (λf/2 + λs/n) )
//   n*       = sqrt( 2·λs·(C−L) / (λf·(V+L)) )
// — a silent error is detected at the END of its segment, so it wastes
// the full segment length T/n (not T/2 as a fail-stop does); with n = 1
// the rate term is exactly Theorem 1's λf/2 + λs. The 1/n factor makes
// deep segmentation pay when silent errors dominate (λs ≫ λf) and the
// level-2 checkpoint dwarfs the level-1 cost (C ≫ V+L).

#pragma once

#include "ayd/model/cost.hpp"
#include "ayd/model/system.hpp"

namespace ayd::core {

/// A two-level checkpointing pattern.
struct TwoLevelPattern {
  /// Total useful-computation length T (> 0), split into `segments` equal
  /// chunks.
  double period = 0.0;
  /// Processor allocation P (>= 1).
  double procs = 1.0;
  /// Number of work segments per level-2 checkpoint (>= 1).
  int segments = 1;
};

/// Validates a pattern; throws util::InvalidArgument on violation.
void validate(const TwoLevelPattern& pattern);

/// A System extended with the level-1 checkpoint cost model. The base
/// system's checkpoint/recovery costs play the level-2 role. Level-1
/// recovery is assumed to cost the same as a level-1 checkpoint (both are
/// memory copies), mirroring the paper's R_P = C_P convention.
struct TwoLevelSystem {
  model::System base;
  /// Level-1 (in-memory) checkpoint cost L_P. The natural default is the
  /// system's verification cost model: the paper already equates V_P with
  /// an in-memory snapshot of the full footprint (Section IV-A).
  model::CostModel level1;

  /// Builds the default configuration: L_P := V_P.
  [[nodiscard]] static TwoLevelSystem with_memory_level1(
      const model::System& sys) {
    return {sys, sys.costs().verification};
  }

  [[nodiscard]] double level1_cost(double p) const {
    return level1.cost(p);
  }
};

/// Exact expected execution time of TWOLEVELPATTERN(T, P, n), from the
/// backward segment recursion (each segment's expectation is linear in
/// the full-pattern expectation; the fail-stop restart closes the loop).
/// Returns +inf when the value exceeds double range.
[[nodiscard]] double expected_two_level_time(const TwoLevelSystem& sys,
                                             const TwoLevelPattern& pattern);

/// Expected execution overhead E / (T·S(P)).
[[nodiscard]] double two_level_overhead(const TwoLevelSystem& sys,
                                        const TwoLevelPattern& pattern);

/// First-order overhead H(P)·[(nV+(n-1)L+C)/T + (λf/2 + λs/n)·T + 1].
[[nodiscard]] double first_order_two_level_overhead(
    const TwoLevelSystem& sys, const TwoLevelPattern& pattern);

/// First-order optimal period for fixed (P, n):
/// T*(n) = sqrt((nV+(n-1)L+C)/(λf/2 + λs/n)). +inf on error-free systems.
[[nodiscard]] double optimal_period_two_level(const TwoLevelSystem& sys,
                                              double procs, int segments);

/// First-order two-level plan for a fixed allocation.
struct TwoLevelPlan {
  int segments = 1;                  ///< n*, rounded to the better neighbour
  double segments_continuous = 1.0;  ///< unrounded n*
  double period = 0.0;               ///< T*(n*, P)
  double overhead = 0.0;             ///< predicted H(T*, P, n*)
};

/// Applies n* = sqrt(2·λs·(C−L)/(λf·(V+L))) and rounds to the better integer
/// neighbour of the first-order overhead. Requires an error-prone system
/// with λf > 0 (a fail-stop-free system pushes n → ∞; callers should cap
/// n explicitly) and V+L > 0.
[[nodiscard]] TwoLevelPlan optimal_two_level_plan(const TwoLevelSystem& sys,
                                                  double procs);

/// Numerically exact optimum over (T, n) for a fixed allocation: scans n
/// with an inner exact-overhead period optimisation, stopping once the
/// overhead has risen for a few consecutive n.
struct TwoLevelOptimum {
  int segments = 1;
  double period = 0.0;
  double overhead = 0.0;
  bool converged = false;
};

[[nodiscard]] TwoLevelOptimum optimal_two_level_pattern(
    const TwoLevelSystem& sys, double procs, int max_segments = 256);

}  // namespace ayd::core
