#include "ayd/core/first_order.hpp"

#include <cmath>
#include <limits>

#include "ayd/util/contracts.hpp"

namespace ayd::core {

double first_order_pattern_time(const model::System& sys,
                                const Pattern& pattern) {
  validate(pattern);
  const double p = pattern.procs;
  const double t = pattern.period;
  const double lf = sys.fail_stop_rate(p);
  const double ls = sys.silent_rate(p);
  const double c = sys.checkpoint_cost(p);
  const double r = sys.recovery_cost(p);
  const double v = sys.verification_cost(p);
  const double d = sys.downtime();
  return t + v + c + (lf / 2.0 + ls) * t * t +
         lf * t * (v + c + r + d) + ls * t * (v + r) +
         lf * c * (c / 2.0 + r + v + d) + lf * v * (v + r + d);
}

double first_order_overhead(const model::System& sys,
                            const Pattern& pattern) {
  validate(pattern);
  const double p = pattern.procs;
  const double t = pattern.period;
  const double lf = sys.fail_stop_rate(p);
  const double ls = sys.silent_rate(p);
  const double vc = sys.resilience_cost(p);
  return sys.error_free_overhead(p) *
         (vc / t + (lf / 2.0 + ls) * t + 1.0);
}

double optimal_period_first_order(const model::System& sys, double procs) {
  AYD_REQUIRE(std::isfinite(procs) && procs >= 1.0,
              "processor count must be finite and >= 1");
  const double lf = sys.fail_stop_rate(procs);
  const double ls = sys.silent_rate(procs);
  const double weighted = lf / 2.0 + ls;
  if (weighted == 0.0) return std::numeric_limits<double>::infinity();
  const double vc = sys.resilience_cost(procs);
  AYD_REQUIRE(vc > 0.0,
              "Theorem 1 requires a positive checkpoint+verification cost");
  return std::sqrt(vc / weighted);
}

double optimal_overhead_fixed_procs(const model::System& sys, double procs) {
  AYD_REQUIRE(std::isfinite(procs) && procs >= 1.0,
              "processor count must be finite and >= 1");
  const double lf = sys.fail_stop_rate(procs);
  const double ls = sys.silent_rate(procs);
  const double weighted = lf / 2.0 + ls;
  const double vc = sys.resilience_cost(procs);
  return sys.error_free_overhead(procs) *
         (1.0 + 2.0 * std::sqrt(weighted * vc));
}

FirstOrderSolution solve_first_order(const model::System& sys) {
  FirstOrderSolution sol;
  const model::CaseInfo info = model::classify(sys.costs());
  sol.analysis_case = info.first_order_case;
  sol.coefficient = info.coefficient;

  if (!sys.speedup_model().is_amdahl_family()) {
    sol.note =
        "first-order closed forms require an Amdahl speedup profile; use "
        "the numerical optimiser";
    return sol;
  }
  const double alpha = *sys.speedup_model().sequential_fraction();
  // (f/2 + s)·λ_ind, the weighting every theorem shares.
  const double wl = sys.failure().weighted_lambda();
  if (wl == 0.0) {
    sol.note = "error-free platform: overhead decreases monotonically in P "
               "(enroll all processors, never checkpoint)";
    return sol;
  }
  if (alpha == 0.0) {
    sol.note =
        "perfectly parallel job (alpha = 0): no bounded first-order "
        "optimum (Section III-D case 4); use the numerical optimiser";
    return sol;
  }

  switch (info.first_order_case) {
    case model::FirstOrderCase::kLinearCheckpoint: {
      // Theorem 2: C_P = cP + o(P).
      const double c = info.coefficient;
      sol.has_optimum = true;
      sol.procs = std::pow(1.0 / (c * wl), 0.25) *
                  std::sqrt((1.0 - alpha) / (2.0 * alpha));
      sol.period = std::sqrt(c / wl);
      sol.overhead =
          alpha + 2.0 * std::pow(4.0 * alpha * alpha * (1.0 - alpha) *
                                     (1.0 - alpha) * c * wl,
                                 0.25);
      sol.note = "Theorem 2 (linear checkpoint cost): P* = Θ(λ^{-1/4}), "
                 "T* = Θ(λ^{-1/2})";
      return sol;
    }
    case model::FirstOrderCase::kConstantCost: {
      // Theorem 3: C_P + V_P = d + o(1).
      const double d = info.coefficient;
      sol.has_optimum = true;
      sol.procs = std::pow(1.0 / (d * wl), 1.0 / 3.0) *
                  std::pow((1.0 - alpha) / alpha, 2.0 / 3.0);
      sol.period = std::pow(d * d / wl, 1.0 / 3.0) *
                   std::pow(alpha / (1.0 - alpha), 1.0 / 3.0);
      sol.overhead =
          alpha + 3.0 * std::pow(alpha * alpha * (1.0 - alpha) * d * wl,
                                 1.0 / 3.0);
      sol.note = "Theorem 3 (constant checkpoint+verification cost): "
                 "P* = T* = Θ(λ^{-1/3})";
      return sol;
    }
    case model::FirstOrderCase::kDecreasingCost: {
      sol.note =
          "case 3 (C_P + V_P = h/P): overhead decreases monotonically in P "
          "within the first-order validity bound; use the numerical "
          "optimiser";
      return sol;
    }
  }
  AYD_ENSURE(false, "unreachable first-order case");
}

AsymptoticOrders asymptotic_orders(model::FirstOrderCase c) {
  switch (c) {
    case model::FirstOrderCase::kLinearCheckpoint:
      return {-0.25, -0.5, 0.25};
    case model::FirstOrderCase::kConstantCost:
      return {-1.0 / 3.0, -1.0 / 3.0, 1.0 / 3.0};
    case model::FirstOrderCase::kDecreasingCost:
      // No first-order optimum; the validity bound itself is λ^{-1/2}.
      return {-0.5, -0.5, 0.5};
  }
  AYD_ENSURE(false, "unreachable first-order case");
}

AsymptoticOrders asymptotic_orders_alpha0(model::FirstOrderCase c) {
  switch (c) {
    case model::FirstOrderCase::kLinearCheckpoint:
      return {-0.5, -0.5, 0.5};
    case model::FirstOrderCase::kConstantCost:
    case model::FirstOrderCase::kDecreasingCost:
      return {-1.0, 0.0, 1.0};
  }
  AYD_ENSURE(false, "unreachable first-order case");
}

}  // namespace ayd::core
