// First-order (Young/Daly-style) approximations: the paper's Section III.
//
// * first_order_pattern_time / first_order_overhead — the Taylor expansion
//   of E(pattern) and H(T,P) used in the proof of Theorem 1.
// * optimal_period_first_order — Theorem 1:
//     T*_P = sqrt( (V_P + C_P) / (λf_P/2 + λs_P) ).
// * solve_first_order — Theorems 2 & 3 and the case analysis of
//   Section III-D, returning the closed-form optimal (P*, T*, H*) when it
//   exists and a structured explanation when it does not (case 3 and the
//   perfectly-parallel case 4 have no bounded first-order optimum).
//
// Validity (Section III-B): the approximations hold while P = Θ(λ^{-x})
// with x < 1/2 (linear checkpoint cost) or x < 1 (otherwise), and
// T = Θ(λ^{-y}) with y < 1 − x. The solver reports the asymptotic orders
// so callers (and the λ-sweep benches) can check the regime.

#pragma once

#include <string>

#include "ayd/core/pattern.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/model/system.hpp"

namespace ayd::core {

/// Second-order Taylor expansion of the exact E(pattern) (proof of
/// Theorem 1):
///   E ≈ T + V + C + (λf/2 + λs)·T² + λf·T·(V + C + R + D)
///       + λs·T·(V + R) + λf·C·(C/2 + R + V + D) + λf·V·(V + R + D).
[[nodiscard]] double first_order_pattern_time(const model::System& sys,
                                              const Pattern& pattern);

/// First-order expected overhead (dropping o(λ) terms):
///   H(T, P) ≈ H(P)·( (V+C)/T + (λf/2 + λs)·T + 1 ).
[[nodiscard]] double first_order_overhead(const model::System& sys,
                                          const Pattern& pattern);

/// Theorem 1: the first-order optimal period for a fixed processor count.
/// Returns +inf when the platform is error-free (never checkpoint).
[[nodiscard]] double optimal_period_first_order(const model::System& sys,
                                                double procs);

/// Equation (8): expected overhead at the Theorem-1 period,
///   H(T*_P, P) = H(P)·(1 + 2·sqrt((λf/2 + λs)(V + C))).
[[nodiscard]] double optimal_overhead_fixed_procs(const model::System& sys,
                                                  double procs);

/// Closed-form joint optimum (Theorems 2 and 3).
struct FirstOrderSolution {
  /// True when a bounded first-order optimum exists (cases 1 and 2 with
  /// α > 0); false for case 3, perfectly parallel jobs, and non-Amdahl
  /// profiles.
  bool has_optimum = false;
  double procs = 0.0;     ///< P* (continuous; clamp to >= 1 before use)
  double period = 0.0;    ///< T*
  double overhead = 0.0;  ///< H(T*, P*) predicted by the theorem
  model::FirstOrderCase analysis_case =
      model::FirstOrderCase::kConstantCost;
  double coefficient = 0.0;  ///< c (Thm 2), d (Thm 3) or h (case 3)
  std::string note;          ///< human-readable explanation
};

/// Applies Theorem 2 (linear checkpoint cost), Theorem 3 (constant
/// checkpoint+verification cost), or reports the unbounded cases.
/// Requires an Amdahl-family speedup profile.
[[nodiscard]] FirstOrderSolution solve_first_order(const model::System& sys);

/// Asymptotic orders (P* ~ λ^p, T* ~ λ^t, H* − α ~ λ^h) predicted by the
/// analysis, used to draw the reference slopes of Figures 5 and 6.
struct AsymptoticOrders {
  double p_exponent = 0.0;
  double t_exponent = 0.0;
  double h_exponent = 0.0;
};

/// Orders for an Amdahl application with α > 0 (Theorems 2/3):
/// case 1 → (−1/4, −1/2, 1/4); case 2 → (−1/3, −1/3, 1/3).
[[nodiscard]] AsymptoticOrders asymptotic_orders(model::FirstOrderCase c);

/// Numerically observed orders for a perfectly parallel job (paper,
/// Section IV-B4): case 1 → (−1/2, −1/2, 1/2); cases 2/3 → (−1, 0, 1).
[[nodiscard]] AsymptoticOrders asymptotic_orders_alpha0(
    model::FirstOrderCase c);

}  // namespace ayd::core
