// Numerical optimisation of the exact expected overhead.
//
// The paper's "Optimal" curves come from numerically minimising the exact
// H(T, P) = E(T, P) / (T·S(P)) (its Section IV compares them against the
// first-order formulas). This module implements that reference solution:
//
//  * optimal_period     — 1-D minimisation over T for fixed P, performed
//    on log T with a bracketed Brent search seeded by the Theorem-1
//    period. Works on log H so no intermediate can overflow.
//  * optimal_allocation — nested minimisation over P (outer, on log P)
//    and T (inner). Monotone cases (scenario 6, perfectly parallel jobs,
//    error-free platforms) converge to the domain boundary and are
//    reported as such rather than inventing a fake optimum.
//
// P is treated as continuous, matching the analysis; integer refinement
// (evaluating floor/ceil and keeping the better) is applied on request.

#pragma once

#include "ayd/core/pattern.hpp"
#include "ayd/model/system.hpp"

namespace ayd::core {

struct PeriodSearchOptions {
  double min_period = 1e-3;  ///< seconds; lower edge of the search domain
  double max_period = 1e13;  ///< seconds; upper edge of the search domain
  double tolerance = 1e-10;  ///< relative tolerance on log T
  int max_iterations = 200;  ///< Brent iteration cap
};

struct PeriodOptimum {
  double period = 0.0;        ///< T*, the optimal checkpointing period
  double overhead = 0.0;      ///< H(T*, P); may be +inf if log form needed
  double log_overhead = 0.0;  ///< log H(T*, P), always finite
  bool converged = false;     ///< tolerance met before the iteration cap
  /// True when the minimiser stopped at a search-domain edge (the overhead
  /// is monotone in T over the domain — e.g. error-free platforms).
  bool at_boundary = false;
  int evaluations = 0;        ///< objective evaluations consumed
};

/// Minimises H(T, P) over T for the given processor count.
[[nodiscard]] PeriodOptimum optimal_period(const model::System& sys,
                                           double procs,
                                           const PeriodSearchOptions& opt = {});

struct AllocationSearchOptions {
  double min_procs = 1.0;  ///< lower edge of the allocation search
  double max_procs = 1e7;  ///< raise for α = 0 sweeps (paper probes 10^13)
  double tolerance = 1e-9; ///< relative tolerance on log P
  int max_iterations = 200;      ///< outer Brent iteration cap
  PeriodSearchOptions period{};  ///< inner period-search options
  /// Evaluate floor(P*) and ceil(P*) and keep the better one.
  bool refine_integer = true;
};

struct AllocationOptimum {
  double procs = 0.0;    ///< optimal allocation (integer if refined)
  double period = 0.0;   ///< optimal period at that allocation
  double overhead = 0.0;      ///< H(T*, P*); may be +inf if log form needed
  double log_overhead = 0.0;  ///< log H(T*, P*), always finite
  /// Continuous optimiser output before integer refinement.
  double procs_continuous = 0.0;
  bool converged = false;  ///< tolerance met before the iteration cap
  /// True when the optimum sits on a search-domain edge: either P ran
  /// into min_procs/max_procs (monotone overhead in P over the domain:
  /// scenario 6, α = 0 with constant costs, error-free...) or the inner
  /// period search at the reported P stopped at min_period/max_period.
  bool at_boundary = false;
  int outer_evaluations = 0;  ///< inner period searches performed
};

/// Jointly minimises H(T, P) over both parameters.
[[nodiscard]] AllocationOptimum optimal_allocation(
    const model::System& sys, const AllocationSearchOptions& opt = {});

}  // namespace ayd::core
