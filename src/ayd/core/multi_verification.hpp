// Extension: multi-verification patterns.
//
// The base VC protocol verifies once, immediately before each checkpoint.
// Benoit, Cavelan, Robert & Sun (IPDPS'16) — the paper's reference [2]
// and the basis of its resilience patterns — show that when silent
// errors dominate it pays to insert *intermediate* verifications:
// MULTIPATTERN(T, P, n) splits the T seconds of work into n equal
// segments, each followed by a verification V_P, with a single checkpoint
// C_P after the last verification. A silent error is then caught at the
// end of its own segment instead of at the end of the whole pattern,
// shrinking the expected wasted work from ~T/2·... to ~T(n+1)/(2n)·λs·T.
// The paper's Section V lists this family ("multi-level resilience
// protocols") as future work; this module implements it.
//
// First-order results (re-derived here, consistent with [2]):
//   H(T, P, n) ≈ H(P)·[ (nV + C)/T + (λf/2 + λs(n+1)/(2n))·T + 1 ]
//   T*(n, P)   = sqrt( (nV + C) / (λf/2 + λs(n+1)/(2n)) )
//   n*         = sqrt( λs·C / ((λf + λs)·V) )      (continuous)
//   H*         = H(P)·(1 + 2(sqrt(u·C) + sqrt(v·V))),
//                u = (λf + λs)/2,  v = λs/2.
// With n = 1 every formula reduces exactly to the base VC results
// (Theorem 1), which the tests pin.
//
// The exact expectation is computed by a backward recursion over the
// segment states (absorbing Markov chain), built from the same stable
// expm1 primitives as Proposition 1; n = 1 reproduces
// expected_pattern_time() to rounding.

#pragma once

#include "ayd/core/pattern.hpp"
#include "ayd/model/system.hpp"

namespace ayd::core {

struct MultiPattern {
  /// Total useful-computation length T of the pattern (> 0), split into
  /// `segments` equal chunks.
  double period = 0.0;
  /// Processor allocation P (>= 1).
  double procs = 1.0;
  /// Number of work segments / verifications per checkpoint (>= 1).
  int segments = 1;
};

/// Validates a multi-pattern; throws util::InvalidArgument on violation.
void validate(const MultiPattern& pattern);

/// Exact expected execution time of MULTIPATTERN(T, P, n) under the
/// paper's error model. Returns +inf when the value (or an intermediate
/// success probability) exceeds double range.
[[nodiscard]] double expected_multi_pattern_time(const model::System& sys,
                                                 const MultiPattern& pattern);

/// Expected execution overhead E / (T·S(P)).
[[nodiscard]] double multi_pattern_overhead(const model::System& sys,
                                            const MultiPattern& pattern);

/// First-order overhead H(P)·[(nV+C)/T + (λf/2 + λs(n+1)/(2n))·T + 1].
[[nodiscard]] double first_order_multi_overhead(const model::System& sys,
                                                const MultiPattern& pattern);

/// First-order optimal period for fixed (P, n):
/// T* = sqrt((nV+C)/(λf/2 + λs(n+1)/(2n))). +inf on error-free systems.
[[nodiscard]] double optimal_period_multi(const model::System& sys,
                                          double procs, int segments);

/// First-order optimal verification plan for a fixed allocation.
struct VerificationPlan {
  int segments = 1;          ///< n*, rounded to the better neighbour
  double segments_continuous = 1.0;  ///< unrounded n*
  double period = 0.0;       ///< T*(n*, P)
  double overhead = 0.0;     ///< predicted H(T*, P, n*)
};

/// Applies the closed form n* = sqrt(λs·C/((λf+λs)·V)); requires a
/// positive verification cost (otherwise n is unbounded) and an
/// error-prone system.
[[nodiscard]] VerificationPlan optimal_verification_plan(
    const model::System& sys, double procs);

/// Numerically exact optimum over (T, n) for a fixed allocation: scans
/// n = 1..max_segments with an inner exact-overhead period optimisation
/// and early exit once the overhead has been rising for a few steps.
struct MultiOptimum {
  int segments = 1;
  double period = 0.0;
  double overhead = 0.0;
  bool converged = false;
};

[[nodiscard]] MultiOptimum optimal_multi_pattern(const model::System& sys,
                                                 double procs,
                                                 int max_segments = 256);

}  // namespace ayd::core
