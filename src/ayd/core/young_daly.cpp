#include "ayd/core/young_daly.hpp"

#include <cmath>
#include <limits>

#include "ayd/util/contracts.hpp"

namespace ayd::core {

namespace {

void check_args(double mtbf, double cost) {
  AYD_REQUIRE(mtbf > 0.0, "platform MTBF must be positive");
  AYD_REQUIRE(cost >= 0.0, "checkpoint cost must be nonnegative");
}

}  // namespace

double young_period(double platform_mtbf, double checkpoint_cost) {
  check_args(platform_mtbf, checkpoint_cost);
  return std::sqrt(2.0 * platform_mtbf * checkpoint_cost);
}

double daly_period(double platform_mtbf, double checkpoint_cost) {
  check_args(platform_mtbf, checkpoint_cost);
  const double half_ratio = checkpoint_cost / (2.0 * platform_mtbf);
  if (half_ratio >= 1.0) return platform_mtbf;
  const double base = std::sqrt(2.0 * platform_mtbf * checkpoint_cost);
  return base * (1.0 + std::sqrt(half_ratio) / 3.0 + half_ratio / 9.0) -
         checkpoint_cost;
}

double young_overhead(double platform_mtbf, double checkpoint_cost) {
  check_args(platform_mtbf, checkpoint_cost);
  return std::sqrt(2.0 * checkpoint_cost / platform_mtbf);
}

double daly_period_vc(const model::System& sys, double procs) {
  AYD_REQUIRE(std::isfinite(procs) && procs >= 1.0,
              "processor count must be finite and >= 1");
  const double rate =
      sys.fail_stop_rate(procs) / 2.0 + sys.silent_rate(procs);
  if (rate == 0.0) return std::numeric_limits<double>::infinity();
  const double cost = sys.resilience_cost(procs);
  AYD_REQUIRE(cost > 0.0, "resilience cost must be positive");
  const double x2 = cost * rate;  // dimensionless exposure squared
  if (x2 >= 1.0) return 1.0 / rate;  // Daly's large-cost fallback (T = μ)
  const double x = std::sqrt(x2);
  return std::sqrt(cost / rate) * (1.0 + x / 3.0 + x2 / 9.0) - cost;
}

}  // namespace ayd::core
