#include "ayd/core/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "ayd/core/first_order.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/math/minimize.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::core {

namespace {

/// Initial period guess: the Theorem-1 period when errors exist, else the
/// geometric middle of the domain.
double period_hint(const model::System& sys, double procs,
                   const PeriodSearchOptions& opt) {
  const double lf = sys.fail_stop_rate(procs);
  const double ls = sys.silent_rate(procs);
  if (lf / 2.0 + ls > 0.0 && sys.resilience_cost(procs) > 0.0) {
    const double t = optimal_period_first_order(sys, procs);
    if (std::isfinite(t)) {
      return std::clamp(t, opt.min_period, opt.max_period);
    }
  }
  return std::sqrt(opt.min_period * opt.max_period);
}

}  // namespace

PeriodOptimum optimal_period(const model::System& sys, double procs,
                             const PeriodSearchOptions& opt) {
  AYD_REQUIRE(std::isfinite(procs) && procs >= 1.0,
              "processor count must be finite and >= 1");
  AYD_REQUIRE(opt.min_period > 0.0 && opt.min_period < opt.max_period,
              "invalid period search domain");

  const double lo = std::log(opt.min_period);
  const double hi = std::log(opt.max_period);
  const auto objective = [&](double log_t) {
    return log_pattern_overhead(sys, Pattern{std::exp(log_t), procs});
  };

  math::MinimizeOptions mopt;
  mopt.x_tol = opt.tolerance;
  mopt.max_iterations = opt.max_iterations;
  const double hint = std::log(period_hint(sys, procs, opt));
  const math::MinimizeResult res =
      math::minimize_with_hint(objective, lo, hi, hint, mopt);

  PeriodOptimum out;
  out.period = std::exp(res.x);
  out.log_overhead = res.fx;
  out.overhead = std::exp(res.fx);
  out.converged = res.converged;
  out.at_boundary = res.at_boundary;
  out.evaluations = res.evaluations;
  return out;
}

AllocationOptimum optimal_allocation(const model::System& sys,
                                     const AllocationSearchOptions& opt) {
  AYD_REQUIRE(opt.min_procs >= 1.0 && opt.min_procs < opt.max_procs,
              "invalid processor search domain");

  const double lo = std::log(opt.min_procs);
  const double hi = std::log(opt.max_procs);
  int outer_evals = 0;
  const auto objective = [&](double log_p) {
    ++outer_evals;
    return optimal_period(sys, std::exp(log_p), opt.period).log_overhead;
  };

  // Seed from the closed form when a theorem applies; otherwise start in
  // the geometric middle (the bracketing walk finds its own way).
  double hint = std::sqrt(opt.min_procs * opt.max_procs);
  const FirstOrderSolution fo = solve_first_order(sys);
  if (fo.has_optimum && fo.procs >= opt.min_procs &&
      fo.procs <= opt.max_procs) {
    hint = fo.procs;
  }

  math::MinimizeOptions mopt;
  mopt.x_tol = opt.tolerance;
  mopt.max_iterations = opt.max_iterations;
  const math::MinimizeResult res =
      math::minimize_with_hint(objective, lo, hi, std::log(hint), mopt);

  AllocationOptimum out;
  out.procs_continuous = std::exp(res.x);
  out.converged = res.converged;
  out.at_boundary = res.at_boundary;

  double best_p = out.procs_continuous;
  PeriodOptimum best = optimal_period(sys, best_p, opt.period);
  if (opt.refine_integer && best_p < 9e15 && !out.at_boundary) {
    const double p_floor = std::max(opt.min_procs, std::floor(best_p));
    const double p_ceil = std::min(opt.max_procs, std::ceil(best_p));
    PeriodOptimum cand_floor = optimal_period(sys, p_floor, opt.period);
    if (cand_floor.log_overhead < best.log_overhead ||
        p_floor == std::floor(best_p)) {
      // Prefer integral counts: keep floor unless ceil is strictly better.
      best = cand_floor;
      best_p = p_floor;
    }
    if (p_ceil != p_floor) {
      const PeriodOptimum cand_ceil = optimal_period(sys, p_ceil, opt.period);
      if (cand_ceil.log_overhead < best.log_overhead) {
        best = cand_ceil;
        best_p = p_ceil;
      }
    }
  }

  out.procs = best_p;
  out.period = best.period;
  out.overhead = best.overhead;
  out.log_overhead = best.log_overhead;
  // A boundary hit by the *inner* period search is just as load-bearing
  // as one on P: the reported (T, P) then sits on a search-domain edge
  // and must not masquerade as a converged interior optimum.
  out.at_boundary = out.at_boundary || best.at_boundary;
  out.outer_evaluations = outer_evals;
  return out;
}

}  // namespace ayd::core
