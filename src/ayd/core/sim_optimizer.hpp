// Simulation-driven robust optimisation of the expected overhead.
//
// The closed form behind optimizer.hpp (Proposition 1) holds only for
// exponential inter-arrivals; under Weibull / lognormal / trace-replay
// failures the analytic "optimum" drifts off the true one (the fig8/fig9
// robustness results). This module finds the true optimum for *any*
// configured FailureDistribution by minimising the *simulated* overhead:
//
//  * sim_optimal_period     — noise-aware 1-D search over log T at fixed
//    P: a coarse log-spaced scan seeded by the exponential-assumption
//    optimum, refined by golden-section. Every candidate is evaluated by
//    adaptive replication (sim::simulate_overhead_adaptive) under common
//    random numbers — all candidates share the replica substreams
//    (seed, i) — and neighbouring candidates are compared with a *paired*
//    Student-t test on the per-replica differences, so the search stops
//    exactly when the remaining bracket cannot be resolved at the
//    requested noise level (ci_limited) instead of chasing noise.
//  * sim_optimal_allocation — nested search over P (a geometric candidate
//    ladder around the exponential Theorem-2/3 seed) with the period
//    search inside.
//
// Both fall back to the exact analytic optimisers — bit-for-bit — when
// the configured distribution *is* exponential (used_closed_form), so the
// simulation machinery costs nothing when the paper's model applies.
// Everything downstream of the seed is deterministic: same system, same
// options ⇒ the same candidate sequence, the same replica counts, the
// same optimum, on any machine and thread count.

#pragma once

#include <cstdint>

#include "ayd/core/optimizer.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/model/system.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/stats/summary.hpp"

namespace ayd::core {

/// Knobs of the noise-aware period search.
struct SimSearchOptions {
  double min_period = 1e-3;  ///< seconds; lower edge of the search domain
  double max_period = 1e13;  ///< seconds; upper edge of the search domain
  /// Initial bracket half-span around the exponential seed T0:
  /// [T0/bracket_span, T0·bracket_span], clamped to the domain.
  double bracket_span = 16.0;
  /// When > 0, warm-start the search: center the initial bracket on this
  /// period (typically the previously deployed optimum — the online
  /// re-planner's case, where successive optima are close) with the
  /// tighter warm_bracket_span instead of the exponential seed with
  /// bracket_span. `seed_period` still reports the exponential seed, and
  /// the coarse scan's edge expansion recovers when the warm start is
  /// stale, so a bad hint costs evaluations but never the optimum.
  /// Ignored on the closed-form (memoryless) path.
  double warm_start = 0.0;
  /// Bracket half-span around warm_start (> 1; only read when
  /// warm_start > 0).
  double warm_bracket_span = 4.0;
  /// Coarse log-spaced candidates scanned across the bracket before the
  /// golden-section refinement (>= 3; odd counts include the seed).
  int coarse_points = 7;
  /// Stop refining once the bracket width on log T falls below this.
  double x_tol = 5e-3;
  int max_iterations = 32;  ///< golden-section shrink cap
  /// Run the search even for exponential distributions instead of
  /// returning the closed-form optimum (validation / testing hook).
  bool force_search = false;
  /// Monte-Carlo backend, seed, patterns per replica and CI level.
  /// `replication.replicas` is ignored — the adaptive driver owns the
  /// count. The same seed is reused for every candidate period (common
  /// random numbers), which is what makes paired comparisons sharp.
  sim::ReplicationOptions replication{};
  /// Adaptive stopping rule applied to every candidate evaluation.
  sim::AdaptiveOptions adaptive{};
};

/// Result of the simulation-driven period search.
struct SimPeriodOptimum {
  double period = 0.0;      ///< argmin of the simulated overhead
  /// Simulated overhead at `period`: mean, Student-t CI, replica count.
  stats::Summary overhead;
  /// The exponential-assumption optimum used to seed the search (the
  /// period the paper's planner would deploy).
  double seed_period = 0.0;
  /// True when the distribution is exponential and the closed-form
  /// optimiser answered exactly (no search ran).
  bool used_closed_form = false;
  /// True when the search terminated on a principled criterion — the
  /// bracket shrank to x_tol, the noise floor was reached (ci_limited),
  /// or the closed form answered — rather than the iteration cap.
  bool converged = false;
  /// True when the search stopped because neighbouring candidates became
  /// statistically indistinguishable (paired CI over the common replicas
  /// contains 0). Tighten adaptive.ci_rel_tol to localise further.
  bool ci_limited = false;
  /// True when the reported optimum's CI met adaptive.ci_rel_tol; false
  /// when its evaluation hit adaptive.max_replicas first (the interval
  /// in `overhead` is then wider than requested).
  bool ci_converged = false;
  /// True when the optimum sits at the search-domain edge.
  bool at_boundary = false;
  int evaluations = 0;      ///< simulated candidate periods
  std::uint64_t total_replicas = 0;  ///< replicas across all candidates
};

/// Minimises the simulated overhead over T at fixed `procs` under the
/// system's configured failure distribution. `pool` parallelises the
/// replicas of each candidate evaluation (results are identical with or
/// without it).
[[nodiscard]] SimPeriodOptimum sim_optimal_period(
    const model::System& sys, double procs, const SimSearchOptions& opt = {},
    exec::ThreadPool* pool = nullptr);

/// Knobs of the nested (P, T) search.
struct SimAllocationSearchOptions {
  double min_procs = 1.0;
  double max_procs = 1e7;
  /// Geometric candidate ladder half-width around the exponential seed
  /// P0: rungs_per_side rungs on each side, ratio `ladder_ratio` apart.
  int rungs_per_side = 3;
  double ladder_ratio = 1.5;
  /// Inner period search (shares the seed across all P candidates).
  SimSearchOptions period{};
};

/// Result of the simulation-driven joint search.
struct SimAllocationOptimum {
  double procs = 0.0;       ///< best allocation found (integer)
  double period = 0.0;      ///< simulated period optimum at that P
  stats::Summary overhead;  ///< simulated overhead there (Student-t CI)
  double seed_procs = 0.0;  ///< exponential-assumption P* that seeded P
  bool used_closed_form = false;  ///< exponential: exact optimiser answered
  bool converged = false;   ///< every inner search converged
  /// True when the reported optimum's CI met the adaptive target (see
  /// SimPeriodOptimum::ci_converged).
  bool ci_converged = false;
  /// True when the best P sits at the end of the candidate ladder (the
  /// true optimum may lie further out; widen the ladder).
  bool at_boundary = false;
  /// True when the inner period search at the reported P stopped on the
  /// period-domain edge (widen min_period/max_period, not the ladder).
  bool period_at_boundary = false;
  int outer_evaluations = 0;
  std::uint64_t total_replicas = 0;
};

/// Minimises the simulated overhead jointly over (T, P): an outer scan of
/// a geometric P ladder seeded by the exponential closed form, with
/// sim_optimal_period inside.
[[nodiscard]] SimAllocationOptimum sim_optimal_allocation(
    const model::System& sys, const SimAllocationSearchOptions& opt = {},
    exec::ThreadPool* pool = nullptr);

}  // namespace ayd::core
