#include "ayd/core/baselines.hpp"

#include <cmath>

#include "ayd/core/first_order.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/math/minimize.hpp"
#include "ayd/math/special.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::core {

model::System fail_stop_only_system(const model::System& sys) {
  const model::FailureModel& fm = sys.failure();
  const model::FailureModel fail_stop_only(
      fm.lambda_ind() * fm.fail_stop_fraction(), 1.0);
  return model::System(fail_stop_only, sys.costs(), sys.downtime(),
                       sys.speedup_model());
}

double silent_blind_period(const model::System& sys, double procs) {
  return optimal_period_first_order(fail_stop_only_system(sys), procs);
}

JinRelaxationResult jin_relaxation(const model::System& sys,
                                   const JinRelaxationOptions& opt) {
  AYD_REQUIRE(opt.initial_procs >= opt.min_procs &&
                  opt.initial_procs <= opt.max_procs,
              "initial processor count outside search domain");
  AYD_REQUIRE(opt.max_rounds >= 1, "need at least one relaxation round");

  JinRelaxationResult out;
  double p = opt.initial_procs;
  double t = optimal_period(sys, p, opt.period).period;

  const double lo = std::log(opt.min_procs);
  const double hi = std::log(opt.max_procs);
  math::MinimizeOptions mopt;
  mopt.x_tol = opt.tolerance;

  for (int round = 1; round <= opt.max_rounds; ++round) {
    out.rounds = round;
    // T-step: optimal period for the current allocation.
    const PeriodOptimum t_step = optimal_period(sys, p, opt.period);
    const double t_new = t_step.period;

    // P-step: optimal allocation for the *fixed* period t_new.
    const auto objective = [&](double log_p) {
      return log_pattern_overhead(sys, Pattern{t_new, std::exp(log_p)});
    };
    const math::MinimizeResult p_step = math::minimize_with_hint(
        objective, lo, hi, std::log(std::clamp(p, opt.min_procs,
                                               opt.max_procs)),
        mopt);
    const double p_new = std::exp(p_step.x);

    const bool settled =
        math::rel_diff(t_new, t) <= opt.tolerance &&
        math::rel_diff(p_new, p) <= opt.tolerance;
    t = t_new;
    p = p_new;
    if (settled) {
      out.converged = true;
      break;
    }
  }

  out.procs = p;
  out.period = t;
  out.overhead = pattern_overhead(sys, Pattern{t, p});
  return out;
}

}  // namespace ayd::core
