#include "ayd/io/table.hpp"

#include <algorithm>
#include <sstream>

#include "ayd/util/contracts.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::io {

Table::Table(std::vector<std::string> headers, Style style)
    : headers_(std::move(headers)),
      aligns_(headers_.size(), Align::kRight),
      style_(style) {
  AYD_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::set_align(std::size_t column, Align align) {
  AYD_REQUIRE(column < headers_.size(), "column index out of range");
  aligns_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  AYD_REQUIRE(cells.size() == headers_.size(),
              "row width does not match header count");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& values, int digits) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(util::format_sig(v, digits));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_cell = [&](const std::string& s, std::size_t c) {
    return aligns_[c] == Align::kRight ? util::pad_left(s, widths[c])
                                       : util::pad_right(s, widths[c]);
  };

  std::ostringstream os;
  const char* sep = style_ == Style::kMarkdown ? " | " : "  ";
  const char* edge = style_ == Style::kMarkdown ? "| " : "";
  const char* edge_end = style_ == Style::kMarkdown ? " |" : "";

  os << edge;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << sep;
    os << render_cell(headers_[c], c);
  }
  os << edge_end << "\n";

  if (style_ == Style::kMarkdown) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(widths[c] + 1, '-')
         << (aligns_[c] == Align::kRight ? ":" : "-") << "|";
    }
    os << "\n";
  } else {
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      total += widths[c] + (c ? 2 : 0);
    }
    os << std::string(total, '-') << "\n";
  }

  for (const auto& row : rows_) {
    os << edge;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << sep;
      os << render_cell(row[c], c);
    }
    os << edge_end << "\n";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

}  // namespace ayd::io
