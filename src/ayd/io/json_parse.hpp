// Minimal recursive-descent JSON parser — the read side of io/json.
//
// The planning service (ayd serve) speaks NDJSON: one JSON request per
// line. This parser turns such a line into a JsonValue tree; the write
// side stays JsonWriter. It accepts exactly RFC 8259 JSON (no comments,
// no trailing commas, no NaN/Infinity literals) and preserves whether a
// number was written as an integer, so request ids round-trip through a
// reply byte-for-byte ("id": 7 never comes back as 7.0).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ayd::io {

class JsonWriter;

/// One parsed JSON value. Object member order is preserved (members()),
/// because the service canonicaliser and the tests care about stable
/// re-serialisation; lookups go through find()/at().
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// The boolean payload; throws util::InvalidArgument on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  /// The numeric payload as a double (also valid for integer literals).
  [[nodiscard]] double as_double() const;
  /// True when the literal was an integer that fits std::int64_t exactly.
  [[nodiscard]] bool is_integer() const;
  /// The integer payload; throws unless is_integer().
  [[nodiscard]] std::int64_t as_int() const;
  /// The string payload (unescaped UTF-8).
  [[nodiscard]] const std::string& as_string() const;
  /// Array elements; throws on kind mismatch.
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  /// Object members in source order; throws on kind mismatch.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;

  /// Object member by key (first occurrence); nullptr when absent or when
  /// this value is not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Like find(), but throws util::InvalidArgument when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Re-emits this value through a JsonWriter (integers as integers,
  /// other numbers as doubles) — the building block of the service's
  /// canonical compact re-serialisation.
  void write(JsonWriter& w) const;

  // -- construction (used by the parser and by tests) -------------------
  [[nodiscard]] static JsonValue null();
  [[nodiscard]] static JsonValue boolean(bool b);
  [[nodiscard]] static JsonValue number(double d);
  [[nodiscard]] static JsonValue integer(std::int64_t i);
  [[nodiscard]] static JsonValue string(std::string s);
  [[nodiscard]] static JsonValue array(std::vector<JsonValue> elems);
  [[nodiscard]] static JsonValue object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  bool is_int_ = false;
  std::int64_t int_ = 0;
  std::string str_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses `text` as one JSON document (leading/trailing whitespace
/// allowed, nothing else). Throws util::InvalidArgument with a position-
/// annotated message on any syntax error; nesting deeper than `max_depth`
/// is rejected (stack safety for adversarial service input).
[[nodiscard]] JsonValue parse_json(std::string_view text,
                                   int max_depth = 64);

}  // namespace ayd::io
