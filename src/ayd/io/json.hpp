// Minimal streaming JSON writer (objects, arrays, strings, numbers, bools,
// null) with correct string escaping and finite-number handling. Used to
// dump machine-readable experiment records alongside human tables.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ayd::io {

class JsonWriter {
 public:
  /// Writes to the given stream (not owned; must outlive the writer).
  explicit JsonWriter(std::ostream& os, bool pretty = false)
      : os_(&os), pretty_(pretty) {}

  ~JsonWriter() = default;
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Writes a key inside an object; must be followed by a value call.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::int64_t i);
  void value(std::uint64_t u);
  void value(bool b);
  void null();

  /// Shorthand: key + value.
  template <typename T>
  void kv(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void before_value();
  void newline_indent();
  void write_escaped(std::string_view s);

  std::ostream* os_;
  bool pretty_;
  bool need_comma_ = false;
  bool after_key_ = false;
  std::vector<Frame> stack_;
};

/// Escapes a string for embedding in JSON (without surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace ayd::io
