// Aligned text tables.
//
// Every bench binary prints its figure/table reproduction through this
// printer so outputs are uniform, greppable, and directly comparable with
// the rows the paper reports.

#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ayd::io {

enum class Align { kLeft, kRight };

class Table {
 public:
  enum class Style { kAscii, kMarkdown };

  /// Creates a table with the given column headers (all right-aligned by
  /// default; numbers dominate our outputs).
  explicit Table(std::vector<std::string> headers,
                 Style style = Style::kAscii);

  /// Sets the alignment of one column.
  void set_align(std::size_t column, Align align);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a row of doubles with `digits` significant
  /// figures (strings pass through unchanged via the string overload).
  void add_numeric_row(const std::vector<double>& values, int digits = 4);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Renders to a string / stream.
  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
  Style style_;
};

}  // namespace ayd::io
