#include "ayd/io/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "ayd/util/contracts.hpp"

namespace ayd::io {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  *os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) *os_ << "  ";
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  AYD_REQUIRE(stack_.empty() || stack_.back() == Frame::kArray,
              "value inside an object requires a key first");
  if (need_comma_) *os_ << ',';
  if (!stack_.empty()) newline_indent();
}

void JsonWriter::begin_object() {
  before_value();
  *os_ << '{';
  stack_.push_back(Frame::kObject);
  need_comma_ = false;
}

void JsonWriter::end_object() {
  AYD_REQUIRE(!stack_.empty() && stack_.back() == Frame::kObject,
              "end_object without matching begin_object");
  stack_.pop_back();
  if (need_comma_) newline_indent();
  *os_ << '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  before_value();
  *os_ << '[';
  stack_.push_back(Frame::kArray);
  need_comma_ = false;
}

void JsonWriter::end_array() {
  AYD_REQUIRE(!stack_.empty() && stack_.back() == Frame::kArray,
              "end_array without matching begin_array");
  stack_.pop_back();
  if (need_comma_) newline_indent();
  *os_ << ']';
  need_comma_ = true;
}

void JsonWriter::key(std::string_view k) {
  AYD_REQUIRE(!stack_.empty() && stack_.back() == Frame::kObject,
              "key outside of object");
  AYD_REQUIRE(!after_key_, "two keys in a row");
  if (need_comma_) *os_ << ',';
  newline_indent();
  *os_ << '"' << json_escape(k) << "\":";
  if (pretty_) *os_ << ' ';
  after_key_ = true;
  need_comma_ = false;
}

void JsonWriter::value(std::string_view s) {
  before_value();
  *os_ << '"' << json_escape(s) << '"';
  need_comma_ = true;
}

void JsonWriter::value(double d) {
  before_value();
  if (std::isfinite(d)) {
    // std::to_chars, not snprintf("%.17g"): printf honours LC_NUMERIC, so
    // a comma-decimal host locale would emit "0,5" — invalid JSON that
    // also breaks the byte-identity guarantee of the persistent answer
    // store. to_chars with chars_format::general and precision 17 is
    // specified to produce exactly what %.17g produces in the "C" locale,
    // so existing goldens stay byte-identical.
    char buf[64];
    const std::to_chars_result r = std::to_chars(
        buf, buf + sizeof buf, d, std::chars_format::general, 17);
    *os_ << std::string_view(buf, static_cast<std::size_t>(r.ptr - buf));
  } else {
    // JSON has no inf/nan; encode as null (documented behaviour).
    *os_ << "null";
  }
  need_comma_ = true;
}

void JsonWriter::value(std::int64_t i) {
  before_value();
  *os_ << i;
  need_comma_ = true;
}

void JsonWriter::value(std::uint64_t u) {
  before_value();
  *os_ << u;
  need_comma_ = true;
}

void JsonWriter::value(bool b) {
  before_value();
  *os_ << (b ? "true" : "false");
  need_comma_ = true;
}

void JsonWriter::null() {
  before_value();
  *os_ << "null";
  need_comma_ = true;
}

}  // namespace ayd::io
