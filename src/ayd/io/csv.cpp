#include "ayd/io/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "ayd/util/contracts.hpp"
#include "ayd/util/error.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::io {

namespace {

bool needs_quoting(const std::string& f) {
  return f.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& f) {
  std::string out = "\"";
  for (const char c : f) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) *os_ << ',';
    *os_ << (needs_quoting(fields[i]) ? quote(fields[i]) : fields[i]);
  }
  *os_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values, int digits) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) fields.push_back(util::format_sig(v, digits));
  write_row(fields);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  const auto end_field = [&] {
    row.push_back(field);
    field.clear();
    field_started = false;
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(row);
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  AYD_REQUIRE(!in_quotes, "unterminated quoted CSV field");
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

void write_csv_file(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream os(path);
  if (!os) throw util::IoError("cannot open for writing: " + path);
  CsvWriter w(os);
  for (const auto& row : rows) w.write_row(row);
  if (!os) throw util::IoError("write failed: " + path);
}

}  // namespace ayd::io
