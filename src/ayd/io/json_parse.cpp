#include "ayd/io/json_parse.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <system_error>
#include <utility>

#include "ayd/io/json.hpp"
#include "ayd/util/error.hpp"

namespace ayd::io {

namespace {

[[noreturn]] void fail_kind(const char* want, JsonValue::Kind got) {
  static const char* const kNames[] = {"null",   "bool",  "number",
                                       "string", "array", "object"};
  throw util::InvalidArgument(std::string("JsonValue: expected ") + want +
                              ", found " + kNames[static_cast<int>(got)]);
}

/// Approximate base-10 exponent of the first significant digit of an
/// already-grammar-checked number token (0 for a zero mantissa), clamped
/// to +-100000. Only consulted when from_chars reported
/// result_out_of_range, to tell overflow (huge positive exponent) from
/// underflow (huge negative) — C++17 from_chars does not say which.
long decimal_magnitude(std::string_view token) {
  std::size_t i = token.front() == '-' ? 1 : 0;
  const std::size_t e_pos = token.find_first_of("eE", i);
  const std::string_view mantissa =
      token.substr(i, (e_pos == std::string_view::npos ? token.size()
                                                       : e_pos) -
                          i);
  long exp10 = 0;
  if (e_pos != std::string_view::npos) {
    const std::string_view etext = token.substr(e_pos + 1);
    const bool neg = etext.front() == '-';
    for (const char c : etext) {
      if (c < '0' || c > '9') continue;  // sign
      if (exp10 < 100000) exp10 = exp10 * 10 + (c - '0');
    }
    if (neg) exp10 = -exp10;
  }
  const std::size_t dot = mantissa.find('.');
  const std::string_view int_part =
      dot == std::string_view::npos ? mantissa : mantissa.substr(0, dot);
  const std::string_view frac_part =
      dot == std::string_view::npos ? std::string_view{}
                                    : mantissa.substr(dot + 1);
  for (std::size_t k = 0; k < int_part.size(); ++k) {
    if (int_part[k] != '0') {
      return exp10 + static_cast<long>(int_part.size() - k) - 1;
    }
  }
  for (std::size_t k = 0; k < frac_part.size(); ++k) {
    if (frac_part[k] != '0') return exp10 - static_cast<long>(k) - 1;
  }
  return 0;  // zero mantissa: neither overflow nor underflow
}

class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw util::InvalidArgument("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
    }
    pos_ += word.size();
  }

  JsonValue parse_value() {
    if (eof()) fail("unexpected end of input");
    if (depth_ > max_depth_) fail("nesting too deep");
    switch (peek()) {
      case 'n':
        expect_literal("null");
        return JsonValue::null();
      case 't':
        expect_literal("true");
        return JsonValue::boolean(true);
      case 'f':
        expect_literal("false");
        return JsonValue::boolean(false);
      case '"':
        return JsonValue::string(parse_string());
      case '[':
        return parse_array();
      case '{':
        return parse_object();
      default:
        return parse_number();
    }
  }

  JsonValue parse_array() {
    ++pos_;  // consume '['
    ++depth_;
    std::vector<JsonValue> elems;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      --depth_;
      return JsonValue::array(std::move(elems));
    }
    while (true) {
      skip_ws();
      elems.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    --depth_;
    return JsonValue::array(std::move(elems));
  }

  JsonValue parse_object() {
    ++pos_;  // consume '{'
    ++depth_;
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      --depth_;
      return JsonValue::object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected string object key");
      std::string key = parse_string();
      skip_ws();
      if (next() != ':') fail("expected ':' after object key");
      skip_ws();
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    --depth_;
    return JsonValue::object(std::move(members));
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    ++pos_;  // consume '"'
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (next() != '\\' || next() != 'u') {
              fail("unpaired UTF-16 surrogate");
            }
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail("invalid UTF-16 surrogate pair");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    bool integral = true;
    if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
    if (peek() == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("invalid fraction");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("invalid exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return JsonValue::integer(static_cast<std::int64_t>(v));
      }
      // Out of int64 range: fall through to the double representation.
    }
    // std::from_chars, not strtod: strtod honours LC_NUMERIC, so under a
    // comma-decimal locale (de_DE et al.) it would stop at the '.' and
    // silently truncate "0.5" to 0 — a wire-protocol parser must not
    // change meaning with the host locale. from_chars is specified to be
    // locale-independent. The grammar above already validated the token,
    // so the only failures left are range errors.
    double d = 0.0;
    const std::from_chars_result r =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (r.ec == std::errc::result_out_of_range) {
      // C++17 leaves `d` unmodified here, so which way it went must be
      // read off the token. Overflow is an error (JSON has no inf);
      // underflow keeps strtod's old behaviour and rounds to zero.
      if (decimal_magnitude(token) > 0) fail("number out of range");
      return JsonValue::number(token[0] == '-' ? -0.0 : 0.0);
    }
    if (r.ec != std::errc() || r.ptr != token.data() + token.size()) {
      fail("invalid number");
    }
    if (!std::isfinite(d)) fail("number out of range");
    return JsonValue::number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  int max_depth_;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) fail_kind("bool", kind_);
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) fail_kind("number", kind_);
  return is_int_ ? static_cast<double>(int_) : num_;
}

bool JsonValue::is_integer() const {
  return kind_ == Kind::kNumber && is_int_;
}

std::int64_t JsonValue::as_int() const {
  if (!is_integer()) fail_kind("integer", kind_);
  return int_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) fail_kind("string", kind_);
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) fail_kind("array", kind_);
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) fail_kind("object", kind_);
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw util::InvalidArgument("JsonValue: missing object key '" +
                                std::string(key) + "'");
  }
  return *v;
}

void JsonValue::write(JsonWriter& w) const {
  switch (kind_) {
    case Kind::kNull:
      w.null();
      break;
    case Kind::kBool:
      w.value(bool_);
      break;
    case Kind::kNumber:
      if (is_int_) {
        w.value(int_);
      } else {
        w.value(num_);
      }
      break;
    case Kind::kString:
      w.value(str_);
      break;
    case Kind::kArray:
      w.begin_array();
      for (const JsonValue& v : array_) v.write(w);
      w.end_array();
      break;
    case Kind::kObject:
      w.begin_object();
      for (const auto& [k, v] : object_) {
        w.key(k);
        v.write(w);
      }
      w.end_object();
      break;
  }
}

JsonValue JsonValue::null() { return {}; }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::integer(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.is_int_ = true;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> elems) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(elems);
  return v;
}

JsonValue JsonValue::object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

JsonValue parse_json(std::string_view text, int max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace ayd::io
