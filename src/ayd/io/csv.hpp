// Minimal CSV writing/reading (RFC-4180 quoting for the writer, quoted and
// unquoted fields for the reader). Bench binaries can dump their series as
// CSV next to the printed tables for plotting.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ayd::io {

class CsvWriter {
 public:
  /// Writes to the given stream (not owned; must outlive the writer).
  explicit CsvWriter(std::ostream& os) : os_(&os) {}

  /// Writes one row; fields containing comma, quote, or newline are quoted.
  void write_row(const std::vector<std::string>& fields);
  void write_row(const std::vector<double>& values, int digits = 12);

 private:
  std::ostream* os_;
};

/// Parses CSV text into rows of fields. Handles quoted fields with embedded
/// commas/newlines and doubled quotes. Used in tests and by any tooling
/// that wants to re-read bench output.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    const std::string& text);

/// Writes rows to a file; throws util::IoError on failure.
void write_csv_file(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace ayd::io
