// Windowed maximum-likelihood fitting of failure inter-arrival times with
// change detection — the estimator half of the online re-planning loop
// (ROADMAP item 4).
//
// OnlineFit keeps a fixed-size rolling ring of the most recent positive
// gaps, refits exponential / Weibull / lognormal MLEs on a cadence, picks
// the family by AIC, and tests for drift with a generalized-likelihood-
// ratio statistic: the per-event log-likelihood ratio of the fresh fit
// against the deployed baseline density, averaged over the window. The
// re-plan guard is the same CI discipline the golden-section search uses
// (stats/ci): drift fires only when the Student-t lower confidence bound
// of the mean LLR clears zero AND the mean itself clears a configured
// noise floor — a stable improvement, not a lucky window.
//
// Everything here is deterministic: same gap sequence in, same fits and
// decisions out, independent of thread count (callers own the threading).
// The model-layer bridge (MleFit -> FailureDistSpec) lives in
// model/failure_dist.hpp so this module stays free of model dependencies.

#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace ayd::stats {

/// Families the online estimator can fit. Mirrors the analytic subset of
/// model::FailureDistKind without depending on the model layer.
enum class FitFamily : int {
  kExponential,
  kWeibull,
  kLogNormal,
};

[[nodiscard]] const char* fit_family_name(FitFamily family);

/// Value returned by log_pdf() for points outside the support (and the
/// clamp applied to vanishing densities) so likelihood ratios stay finite:
/// roughly log(DBL_MIN·1e-20).
inline constexpr double kLogDensityFloor = -745.0;

/// One fitted family: parameters, implied arrival rate, and the maximized
/// log-likelihood of the sample it was fitted on.
struct MleFit {
  FitFamily family = FitFamily::kExponential;
  /// Weibull shape k or lognormal sigma; 1 for the exponential.
  double shape = 1.0;
  /// Weibull scale lambda, lognormal exp(mu) (the median), or the
  /// exponential mean.
  double scale = 0.0;
  /// Arrival rate = 1 / model mean, the quantity FailureModel speaks.
  /// Round-trip contract: FailureDistSpec::instantiate(rate) with the
  /// matching spec reproduces exactly this density.
  double rate = 0.0;
  /// Maximized log-likelihood over the fitted sample.
  double log_likelihood = 0.0;
  /// Sample size the fit used.
  std::size_t count = 0;
  /// False when the sample was too small/degenerate to fit.
  bool valid = false;

  /// Log-density of the fitted model at x, floored at kLogDensityFloor
  /// (x <= 0 is outside every family's support).
  [[nodiscard]] double log_pdf(double x) const;
  /// Model mean inter-arrival (1/rate; +inf when rate == 0).
  [[nodiscard]] double mean() const;
  /// Akaike information criterion: 2·params - 2·log_likelihood
  /// (exponential counts 1 parameter, Weibull/lognormal 2).
  [[nodiscard]] double aic() const;
};

/// Exponential MLE (mean = sample mean). Requires >= 1 positive gap.
[[nodiscard]] MleFit fit_exponential_mle(std::span<const double> gaps);
/// Weibull MLE: shape from the profile likelihood equation solved with
/// Brent (gaps are normalized by their mean first, so large-magnitude
/// samples cannot overflow x^k), shape clamped to [0.05, 20]. Requires
/// >= 2 positive gaps.
[[nodiscard]] MleFit fit_weibull_mle(std::span<const double> gaps);
/// Lognormal MLE (closed form: mean/sd of log gaps), sigma clamped to
/// [1e-6, 10]. Requires >= 2 positive gaps.
[[nodiscard]] MleFit fit_lognormal_mle(std::span<const double> gaps);
/// Fits all three families and keeps the lowest AIC. Ties (and the
/// degenerate small-sample case) resolve deterministically in declaration
/// order: exponential, then Weibull, then lognormal. Non-positive or
/// non-finite gaps are ignored by all fitters.
[[nodiscard]] MleFit fit_best_mle(std::span<const double> gaps);

/// Tuning of the rolling estimator + drift detector.
struct OnlineFitOptions {
  /// Ring capacity: the fit window (most recent events).
  std::size_t window = 256;
  /// No refits (hence no drift decisions) before this many events.
  std::size_t min_events = 64;
  /// Refit every this many accepted events once warmed up.
  std::size_t refit_interval = 16;
  /// Confidence level of the Student-t bound on the mean LLR.
  double drift_ci_level = 0.99;
  /// Noise floor: mean per-event LLR must exceed this in addition to the
  /// CI bound clearing zero. Units are nats/event; ~0.02 rejects window
  /// noise on stationary streams while catching a Weibull k 0.7 -> 1.4
  /// regime switch within a window (tests/online_fit_test.cpp pins the
  /// false-positive rate).
  double min_mean_llr = 0.02;
};

/// Outcome of feeding one gap to OnlineFit.
struct DriftDecision {
  /// True when this event triggered a scheduled refit.
  bool refit_ran = false;
  /// True when the refit cleared the drift guard (CI lower bound > 0 and
  /// mean LLR >= min_mean_llr). Never true without refit_ran.
  bool drift = false;
  /// Mean per-event LLR of the fresh fit vs the baseline (refits only).
  double mean_llr = 0.0;
  /// Student-t lower confidence bound of the mean LLR (refits only).
  double llr_ci_lo = 0.0;
  /// The fresh fit (refits only; check fit.valid).
  MleFit fit{};
};

/// Rolling-window MLE with GLR drift detection against a deployed
/// baseline density. Single-threaded by design; determinism comes from
/// being a pure function of the gap sequence.
class OnlineFit {
 public:
  /// Log-density of the currently deployed model, used as the GLR null.
  using LogDensity = std::function<double(double)>;

  explicit OnlineFit(OnlineFitOptions options = {});

  /// Installs the deployed model's log-density. Until set, drift can
  /// never fire (there is nothing to improve on).
  void set_baseline(LogDensity baseline);

  /// Feeds one inter-arrival gap. Non-finite or non-positive gaps are
  /// ignored (the telemetry layer reports them; the estimator must not
  /// corrupt its window). Returns the refit/drift outcome.
  DriftDecision add(double gap);

  /// Re-bases the GLR null to the latest fit — call after acting on a
  /// drift decision (re-plan published) so subsequent windows are judged
  /// against the newly deployed model.
  void rebase();

  /// Fits the current window on demand (same result a scheduled refit
  /// would produce right now).
  [[nodiscard]] MleFit fit() const;
  /// Latest scheduled-refit result (invalid before the first refit).
  [[nodiscard]] const MleFit& last_fit() const { return last_fit_; }

  /// Accepted (positive, finite) events so far.
  [[nodiscard]] std::size_t count() const { return accepted_; }
  /// Events currently in the window (<= options().window).
  [[nodiscard]] std::size_t window_fill() const { return filled_; }
  [[nodiscard]] const OnlineFitOptions& options() const { return options_; }

 private:
  /// Copies the ring (oldest first) into scratch_ and returns a span.
  [[nodiscard]] std::span<const double> window_samples() const;

  OnlineFitOptions options_;
  std::vector<double> ring_;
  std::size_t head_ = 0;    ///< next write slot
  std::size_t filled_ = 0;  ///< occupied slots
  std::size_t accepted_ = 0;
  LogDensity baseline_;
  MleFit last_fit_{};
  mutable std::vector<double> scratch_;
};

}  // namespace ayd::stats
