#include "ayd/stats/online_fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "ayd/math/roots.hpp"
#include "ayd/stats/ci.hpp"
#include "ayd/stats/running.hpp"

namespace ayd::stats {
namespace {

constexpr double kWeibullShapeMin = 0.05;
constexpr double kWeibullShapeMax = 20.0;
constexpr double kLogNormalSigmaMin = 1e-6;
constexpr double kLogNormalSigmaMax = 10.0;

/// Collects the positive, finite subset every fitter works on.
std::vector<double> positive_gaps(std::span<const double> gaps) {
  std::vector<double> xs;
  xs.reserve(gaps.size());
  for (double g : gaps) {
    if (std::isfinite(g) && g > 0.0) xs.push_back(g);
  }
  return xs;
}

double clamped_log(double x) {
  return x > 0.0 ? std::max(std::log(x), kLogDensityFloor) : kLogDensityFloor;
}

MleFit fit_exponential_on(std::span<const double> xs) {
  MleFit fit;
  fit.family = FitFamily::kExponential;
  fit.count = xs.size();
  if (xs.empty()) return fit;
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  if (!(mean > 0.0) || !std::isfinite(mean)) return fit;
  fit.shape = 1.0;
  fit.scale = mean;
  fit.rate = 1.0 / mean;
  // ll = -n ln(mean) - sum(x)/mean = -n (ln(mean) + 1)
  fit.log_likelihood =
      -static_cast<double>(xs.size()) * (std::log(mean) + 1.0);
  fit.valid = true;
  return fit;
}

/// Profile-likelihood score for the Weibull shape on mean-normalized data:
///   g(k) = sum(y^k ln y)/sum(y^k) - 1/k - mean(ln y),
/// monotone increasing in k, zero at the MLE. Normalizing y = x/mean(x)
/// leaves g invariant and keeps y^k in range for any realistic telemetry.
double weibull_score(std::span<const double> ys, double mean_log_y,
                     double k) {
  double sum_pow = 0.0;
  double sum_pow_log = 0.0;
  for (double y : ys) {
    const double ly = std::log(y);
    const double p = std::pow(y, k);
    sum_pow += p;
    sum_pow_log += p * ly;
  }
  return sum_pow_log / sum_pow - 1.0 / k - mean_log_y;
}

MleFit fit_weibull_on(std::span<const double> xs) {
  MleFit fit;
  fit.family = FitFamily::kWeibull;
  fit.count = xs.size();
  if (xs.size() < 2) return fit;
  const auto n = static_cast<double>(xs.size());
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double sample_mean = sum / n;
  if (!(sample_mean > 0.0) || !std::isfinite(sample_mean)) return fit;

  std::vector<double> ys(xs.begin(), xs.end());
  double sum_log_y = 0.0;
  for (double& y : ys) {
    y /= sample_mean;
    sum_log_y += std::log(y);
  }
  const double mean_log_y = sum_log_y / n;

  const auto score = [&](double k) {
    return weibull_score(ys, mean_log_y, k);
  };
  double k_hat;
  const double g_lo = score(kWeibullShapeMin);
  const double g_hi = score(kWeibullShapeMax);
  if (g_lo >= 0.0) {
    k_hat = kWeibullShapeMin;  // heavier-tailed than the clamp allows
  } else if (g_hi <= 0.0) {
    k_hat = kWeibullShapeMax;  // near-degenerate spike
  } else {
    math::RootOptions opt;
    opt.x_tol = 1e-10;
    const auto root =
        math::brent_root(score, kWeibullShapeMin, kWeibullShapeMax, opt);
    k_hat = root.x;
  }

  // Scale on the normalized data, then undo the normalization.
  double sum_pow = 0.0;
  for (double y : ys) sum_pow += std::pow(y, k_hat);
  const double lambda_y = std::pow(sum_pow / n, 1.0 / k_hat);
  const double lambda = lambda_y * sample_mean;
  if (!(lambda > 0.0) || !std::isfinite(lambda)) return fit;

  fit.shape = k_hat;
  fit.scale = lambda;
  // Model mean = lambda * Gamma(1 + 1/k); rate is its reciprocal, so a
  // FailureDistSpec::weibull(k) instantiated at this rate has scale
  // exactly `lambda` again (the round-trip contract).
  fit.rate = 1.0 / (lambda * std::tgamma(1.0 + 1.0 / k_hat));
  // ll = n ln k - n k ln(lambda) + (k-1) sum(ln x) - sum((x/lambda)^k),
  // and at the MLE sum((x/lambda)^k) = n.
  double sum_log_x = 0.0;
  for (double x : xs) sum_log_x += std::log(x);
  fit.log_likelihood = n * std::log(k_hat) - n * k_hat * std::log(lambda) +
                       (k_hat - 1.0) * sum_log_x - n;
  fit.valid = std::isfinite(fit.log_likelihood) && fit.rate > 0.0;
  return fit;
}

MleFit fit_lognormal_on(std::span<const double> xs) {
  MleFit fit;
  fit.family = FitFamily::kLogNormal;
  fit.count = xs.size();
  if (xs.size() < 2) return fit;
  const auto n = static_cast<double>(xs.size());
  RunningStats logs;
  for (double x : xs) logs.add(std::log(x));
  const double mu = logs.mean();
  // MLE uses the population (1/n) variance of the logs.
  double sigma = std::sqrt(logs.population_variance());
  sigma = std::clamp(sigma, kLogNormalSigmaMin, kLogNormalSigmaMax);

  fit.shape = sigma;
  fit.scale = std::exp(mu);
  // Model mean = exp(mu + sigma^2/2); the spec's instantiate(rate)
  // reconstructs mu' = -ln(rate) - sigma^2/2 = mu exactly.
  fit.rate = std::exp(-(mu + 0.5 * sigma * sigma));
  // ll = -n/2 ln(2 pi) - n ln(sigma) - sum(ln x) - sum((ln x - mu)^2) /
  // (2 sigma^2); the last sum is n * population_variance at the MLE (the
  // clamp makes it inexact only in pathological sigma ranges).
  double sum_log_x = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    const double lx = std::log(x);
    sum_log_x += lx;
    sum_sq += (lx - mu) * (lx - mu);
  }
  fit.log_likelihood = -0.5 * n * std::log(2.0 * M_PI) -
                       n * std::log(sigma) - sum_log_x -
                       sum_sq / (2.0 * sigma * sigma);
  fit.valid = std::isfinite(fit.log_likelihood) &&
              std::isfinite(fit.rate) && fit.rate > 0.0;
  return fit;
}

}  // namespace

const char* fit_family_name(FitFamily family) {
  switch (family) {
    case FitFamily::kExponential: return "exponential";
    case FitFamily::kWeibull: return "weibull";
    case FitFamily::kLogNormal: return "lognormal";
  }
  return "unknown";
}

double MleFit::log_pdf(double x) const {
  if (!valid || !(x > 0.0) || !std::isfinite(x)) return kLogDensityFloor;
  double lp = kLogDensityFloor;
  switch (family) {
    case FitFamily::kExponential:
      lp = -std::log(scale) - x / scale;
      break;
    case FitFamily::kWeibull: {
      const double z = x / scale;
      lp = std::log(shape / scale) + (shape - 1.0) * clamped_log(z) -
           std::pow(z, shape);
      break;
    }
    case FitFamily::kLogNormal: {
      const double lx = std::log(x);
      const double mu = std::log(scale);
      const double d = (lx - mu) / shape;
      lp = -lx - std::log(shape) - 0.5 * std::log(2.0 * M_PI) - 0.5 * d * d;
      break;
    }
  }
  if (!std::isfinite(lp)) return kLogDensityFloor;
  return std::max(lp, kLogDensityFloor);
}

double MleFit::mean() const {
  return rate > 0.0 ? 1.0 / rate
                    : std::numeric_limits<double>::infinity();
}

double MleFit::aic() const {
  const double params = family == FitFamily::kExponential ? 1.0 : 2.0;
  return 2.0 * params - 2.0 * log_likelihood;
}

MleFit fit_exponential_mle(std::span<const double> gaps) {
  return fit_exponential_on(positive_gaps(gaps));
}

MleFit fit_weibull_mle(std::span<const double> gaps) {
  return fit_weibull_on(positive_gaps(gaps));
}

MleFit fit_lognormal_mle(std::span<const double> gaps) {
  return fit_lognormal_on(positive_gaps(gaps));
}

MleFit fit_best_mle(std::span<const double> gaps) {
  const auto xs = positive_gaps(gaps);
  // Declaration order is the deterministic tie-break: a candidate must
  // strictly beat the incumbent's AIC to replace it, so equal-likelihood
  // samples always report the simplest family.
  MleFit best = fit_exponential_on(xs);
  for (const MleFit& cand : {fit_weibull_on(xs), fit_lognormal_on(xs)}) {
    if (!cand.valid) continue;
    if (!best.valid || cand.aic() < best.aic()) best = cand;
  }
  return best;
}

OnlineFit::OnlineFit(OnlineFitOptions options) : options_(options) {
  if (options_.window == 0) options_.window = 1;
  if (options_.refit_interval == 0) options_.refit_interval = 1;
  ring_.assign(options_.window, 0.0);
}

void OnlineFit::set_baseline(LogDensity baseline) {
  baseline_ = std::move(baseline);
}

std::span<const double> OnlineFit::window_samples() const {
  scratch_.clear();
  scratch_.reserve(filled_);
  // Oldest first: with a full ring the oldest sample sits at head_.
  const std::size_t start =
      filled_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < filled_; ++i) {
    scratch_.push_back(ring_[(start + i) % ring_.size()]);
  }
  return scratch_;
}

MleFit OnlineFit::fit() const { return fit_best_mle(window_samples()); }

DriftDecision OnlineFit::add(double gap) {
  DriftDecision decision;
  if (!std::isfinite(gap) || !(gap > 0.0)) return decision;

  ring_[head_] = gap;
  head_ = (head_ + 1) % ring_.size();
  filled_ = std::min(filled_ + 1, ring_.size());
  ++accepted_;

  if (accepted_ < options_.min_events) return decision;
  if ((accepted_ - options_.min_events) % options_.refit_interval != 0) {
    return decision;
  }

  decision.refit_ran = true;
  decision.fit = fit();
  last_fit_ = decision.fit;
  if (!decision.fit.valid || !baseline_) return decision;

  // GLR over the window: per-event log-likelihood ratio of the fresh fit
  // against the deployed baseline. The fit maximizes the window
  // likelihood, so the mean LLR is >= 0 by construction whenever the
  // baseline is in the fitted family — the Student-t lower bound plus the
  // noise floor is what separates real drift from that in-sample bias.
  RunningStats llr;
  for (double x : window_samples()) {
    const double base = std::max(baseline_(x), kLogDensityFloor);
    llr.add(decision.fit.log_pdf(x) - base);
  }
  const auto ci = mean_ci_student(llr, options_.drift_ci_level);
  decision.mean_llr = llr.mean();
  decision.llr_ci_lo = ci.lo;
  decision.drift =
      ci.lo > 0.0 && decision.mean_llr >= options_.min_mean_llr;
  return decision;
}

void OnlineFit::rebase() {
  if (!last_fit_.valid) return;
  const MleFit fit = last_fit_;
  baseline_ = [fit](double x) { return fit.log_pdf(x); };
}

}  // namespace ayd::stats
