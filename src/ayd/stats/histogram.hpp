// Fixed-bin histogram with ASCII rendering, used by examples and by tests
// that eyeball simulated distributions (e.g. pattern wall-time spread).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ayd::stats {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside are counted in underflow /
  /// overflow. Requires lo < hi, bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Fraction of in-range samples in `bin` (0 if histogram is empty).
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Multi-line ASCII bar rendering, widest bar = `width` chars.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace ayd::stats
