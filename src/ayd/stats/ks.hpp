// One-sample Kolmogorov–Smirnov goodness-of-fit test.
//
// The RNG test suite uses this to check that our from-scratch exponential
// and uniform samplers actually follow their nominal distributions (a much
// stronger check than matching a couple of moments).

#pragma once

#include <functional>
#include <span>

namespace ayd::stats {

struct KsResult {
  double statistic = 0.0;  ///< sup-norm distance D_n
  double p_value = 1.0;    ///< asymptotic Kolmogorov p-value
  std::size_t n = 0;       ///< sample size the test was run on
};

/// Tests the sample against the continuous CDF `cdf`. The sample is copied
/// and sorted internally. Asymptotic p-value uses the Kolmogorov series with
/// the Stephens small-sample correction sqrt(n) + 0.12 + 0.11/sqrt(n).
[[nodiscard]] KsResult ks_test(std::span<const double> sample,
                               const std::function<double(double)>& cdf);

/// CDF helpers for common cases.
[[nodiscard]] double exponential_cdf(double x, double rate);
[[nodiscard]] double uniform_cdf(double x, double lo, double hi);

}  // namespace ayd::stats
