// Single-pass running moments (Welford) with exact parallel merge
// (Chan/Golub/LeVeque pairwise update). This is the accumulator every
// simulation replica feeds; replicas merge deterministically at the end.

#pragma once

#include <cstddef>
#include <limits>

namespace ayd::stats {

class RunningStats {
 public:
  constexpr RunningStats() = default;

  constexpr void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another accumulator into this one; result is identical (up to
  /// rounding) to having added all samples into a single accumulator.
  constexpr void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double n_total = na + nb;
    mean_ += delta * (nb / n_total);
    m2_ += o.m2_ + delta * delta * (na * nb / n_total);
    n_ += o.n_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  [[nodiscard]] constexpr std::size_t count() const { return n_; }
  [[nodiscard]] constexpr double mean() const { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] constexpr double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  /// Population variance (n denominator); 0 for n < 1.
  [[nodiscard]] constexpr double population_variance() const {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }

  [[nodiscard]] double stddev() const;
  /// Standard error of the mean: stddev / sqrt(n); 0 for n < 2.
  [[nodiscard]] double stderr_mean() const;

  [[nodiscard]] constexpr double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] constexpr double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ayd::stats
