#include "ayd/stats/ks.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "ayd/util/contracts.hpp"

namespace ayd::stats {

namespace {

/// Kolmogorov survival function Q(λ) = 2 Σ_{j>=1} (-1)^{j-1} exp(-2 j² λ²).
double kolmogorov_q(double lambda) {
  if (lambda < 1e-3) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace

KsResult ks_test(std::span<const double> sample,
                 const std::function<double(double)>& cdf) {
  AYD_REQUIRE(!sample.empty(), "ks_test on empty sample");
  std::vector<double> xs(sample.begin(), sample.end());
  std::sort(xs.begin(), xs.end());
  const auto n = static_cast<double>(xs.size());
  double d = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double F = cdf(xs[i]);
    AYD_REQUIRE(F >= 0.0 && F <= 1.0, "cdf must map into [0,1]");
    const double d_plus = (static_cast<double>(i) + 1.0) / n - F;
    const double d_minus = F - static_cast<double>(i) / n;
    d = std::max({d, d_plus, d_minus});
  }
  KsResult r;
  r.statistic = d;
  r.n = xs.size();
  const double sqrt_n = std::sqrt(n);
  const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
  r.p_value = kolmogorov_q(lambda);
  return r;
}

double exponential_cdf(double x, double rate) {
  AYD_REQUIRE(rate > 0.0, "exponential_cdf requires positive rate");
  if (x <= 0.0) return 0.0;
  return -std::expm1(-rate * x);
}

double uniform_cdf(double x, double lo, double hi) {
  AYD_REQUIRE(lo < hi, "uniform_cdf requires lo < hi");
  if (x <= lo) return 0.0;
  if (x >= hi) return 1.0;
  return (x - lo) / (hi - lo);
}

}  // namespace ayd::stats
