// Summary statistics and normal-theory confidence intervals for simulation
// outputs.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ayd/stats/running.hpp"

namespace ayd::stats {

/// A two-sided confidence interval for a mean.
struct ConfidenceInterval {
  double lo = 0.0;     ///< lower bound
  double hi = 0.0;     ///< upper bound
  double level = 0.95; ///< confidence level in (0, 1)
  [[nodiscard]] double half_width() const { return 0.5 * (hi - lo); }
  [[nodiscard]] bool contains(double x) const { return lo <= x && x <= hi; }
};

/// Full summary of a sample.
struct Summary {
  std::size_t count = 0;      ///< sample size
  double mean = 0.0;          ///< sample mean
  double stddev = 0.0;        ///< unbiased sample standard deviation
  double stderr_mean = 0.0;   ///< standard error of the mean
  double min = 0.0;           ///< smallest sample
  double max = 0.0;           ///< largest sample
  /// CI for the mean at `ci.level`: normal-theory from summarize(),
  /// Student-t from summarize_student() (stats/ci.hpp).
  ConfidenceInterval ci;
};

/// Standard normal quantile z_p (wraps the RNG-module approximation; it is
/// exposed here because CIs are a statistics concern).
[[nodiscard]] double normal_quantile(double p);

/// Normal-theory CI for a mean from its point estimate and standard error.
[[nodiscard]] ConfidenceInterval mean_ci(double mean, double stderr_mean,
                                         double level = 0.95);

/// Builds a Summary from a running accumulator.
[[nodiscard]] Summary summarize(const RunningStats& stats,
                                double ci_level = 0.95);

/// Builds a Summary from raw samples.
[[nodiscard]] Summary summarize(std::span<const double> xs,
                                double ci_level = 0.95);

/// Empirical quantile (linear interpolation between order statistics,
/// type-7 / NumPy default). `q` in [0, 1]. Sorts a copy.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Least-squares slope of y against x. Used to fit the log-log asymptotic
/// orders reported next to Figures 5 and 6 (e.g. P* ~ λ^{-1/4}).
/// Returns {slope, intercept}. Requires xs.size() == ys.size() >= 2.
struct LinearFit {
  double slope = 0.0;      ///< least-squares slope of y against x
  double intercept = 0.0;  ///< least-squares intercept
  double r_squared = 0.0;  ///< coefficient of determination (1 = exact fit)
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs,
                                   std::span<const double> ys);

}  // namespace ayd::stats
