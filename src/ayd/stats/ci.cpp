#include "ayd/stats/ci.hpp"

#include <cmath>
#include <limits>

#include "ayd/math/roots.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::stats {

namespace {

/// Continued fraction for the regularised incomplete beta (Lentz's
/// algorithm). Converges fast for x < (a + 1)/(a + b + 2); the caller
/// applies the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
double beta_continued_fraction(double a, double b, double x) {
  constexpr double kTiny = 1e-300;
  constexpr double kEps = 1e-15;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 300; ++m) {
    const auto md = static_cast<double>(m);
    const double m2 = 2.0 * md;
    double aa = md * (b - md) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + md) * (qab + md) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

/// Regularised incomplete beta I_x(a, b) for a, b > 0, x in [0, 1].
double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

/// Exact Student-t CDF: P(T_df <= t) through the incomplete beta.
double student_t_cdf(double t, double df) {
  const double x = df / (df + t * t);
  const double tail = 0.5 * incomplete_beta(0.5 * df, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

}  // namespace

double student_t_quantile(double p, double df) {
  AYD_REQUIRE(p > 0.0 && p < 1.0, "t quantile level must be in (0,1)");
  AYD_REQUIRE(df > 0.0 && std::isfinite(df),
              "t degrees of freedom must be finite and > 0");
  if (p == 0.5) return 0.0;
  // Symmetry: solve in the upper tail only.
  if (p < 0.5) return -student_t_quantile(1.0 - p, df);

  // Bracket [0, hi] with hi grown geometrically from the normal seed
  // (the t quantile always exceeds the normal one in the upper tail).
  double hi = std::max(1.0, 2.0 * normal_quantile(p));
  for (int i = 0; i < 2048 && student_t_cdf(hi, df) < p; ++i) hi *= 2.0;

  math::RootOptions opt;
  opt.x_tol = 1e-12;
  opt.f_tol = 1e-14;
  const math::RootResult root = math::brent_root(
      [&](double t) { return student_t_cdf(t, df) - p; }, 0.0, hi, opt);
  return root.x;
}

ConfidenceInterval mean_ci_student(const RunningStats& stats, double level) {
  AYD_REQUIRE(level > 0.0 && level < 1.0, "CI level must be in (0,1)");
  const double mean = stats.mean();
  if (stats.count() < 2) return {mean, mean, level};
  const double t =
      student_t_quantile(0.5 + 0.5 * level,
                         static_cast<double>(stats.count() - 1));
  const double hw = t * stats.stderr_mean();
  return {mean - hw, mean + hw, level};
}

Summary summarize_student(const RunningStats& stats, double ci_level) {
  Summary s = summarize(stats, ci_level);
  s.ci = mean_ci_student(stats, ci_level);
  return s;
}

double relative_half_width(const ConfidenceInterval& ci, double mean) {
  if (mean == 0.0) return std::numeric_limits<double>::infinity();
  return ci.half_width() / std::abs(mean);
}

BatchMeans::BatchMeans(std::size_t batch_size) : batch_size_(batch_size) {
  AYD_REQUIRE(batch_size >= 1, "batch size must be >= 1");
}

void BatchMeans::add(double x) {
  total_.add(x);
  batch_sum_ += x;
  if (++in_batch_ == batch_size_) {
    batch_means_.add(batch_sum_ / static_cast<double>(batch_size_));
    batch_sum_ = 0.0;
    in_batch_ = 0;
  }
}

double BatchMeans::variance_of_mean() const {
  const std::size_t b = batch_means_.count();
  if (b < 2) return 0.0;
  return batch_means_.variance() / static_cast<double>(b);
}

double BatchMeans::stderr_mean() const {
  return std::sqrt(variance_of_mean());
}

ConfidenceInterval BatchMeans::ci(double level) const {
  AYD_REQUIRE(level > 0.0 && level < 1.0, "CI level must be in (0,1)");
  const double m = mean();
  const std::size_t b = batch_means_.count();
  if (b < 2) return {m, m, level};
  const double t = student_t_quantile(0.5 + 0.5 * level,
                                      static_cast<double>(b - 1));
  const double hw = t * stderr_mean();
  return {m - hw, m + hw, level};
}

}  // namespace ayd::stats
