#include "ayd/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "ayd/rng/distributions.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::stats {

double normal_quantile(double p) { return rng::detail::normal_quantile(p); }

ConfidenceInterval mean_ci(double mean, double stderr_mean, double level) {
  AYD_REQUIRE(level > 0.0 && level < 1.0, "CI level must be in (0,1)");
  AYD_REQUIRE(stderr_mean >= 0.0, "standard error must be nonnegative");
  const double z = normal_quantile(0.5 + 0.5 * level);
  return {mean - z * stderr_mean, mean + z * stderr_mean, level};
}

Summary summarize(const RunningStats& stats, double ci_level) {
  Summary s;
  s.count = stats.count();
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.stderr_mean = stats.stderr_mean();
  s.min = stats.min();
  s.max = stats.max();
  s.ci = mean_ci(s.mean, s.stderr_mean, ci_level);
  return s;
}

Summary summarize(std::span<const double> xs, double ci_level) {
  RunningStats r;
  for (const double x : xs) r.add(x);
  return summarize(r, ci_level);
}

double quantile(std::span<const double> xs, double q) {
  AYD_REQUIRE(!xs.empty(), "quantile of empty sample");
  AYD_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  AYD_REQUIRE(xs.size() == ys.size(), "linear_fit size mismatch");
  AYD_REQUIRE(xs.size() >= 2, "linear_fit needs at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  AYD_REQUIRE(sxx > 0.0, "linear_fit requires non-constant x");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace ayd::stats
