#include "ayd/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ayd/util/contracts.hpp"
#include "ayd/util/strings.hpp"

namespace ayd::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  AYD_REQUIRE(lo < hi, "histogram range requires lo < hi");
  AYD_REQUIRE(bins >= 1, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (std::isnan(x) || x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

void Histogram::merge(const Histogram& other) {
  AYD_REQUIRE(other.lo_ == lo_ && other.hi_ == hi_ &&
                  other.counts_.size() == counts_.size(),
              "cannot merge histograms with different binning");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  AYD_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  AYD_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin + 1 == counts_.size() ? hi_ : bin_lo(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(in_range);
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::string label = "[" + util::format_sig(bin_lo(i), 3) + ", " +
                              util::format_sig(bin_hi(i), 3) + ")";
    std::size_t bar = 0;
    if (peak > 0) {
      bar = (counts_[i] * width + peak / 2) / peak;
    }
    os << util::pad_left(label, 24) << " | " << std::string(bar, '#') << " "
       << counts_[i] << "\n";
  }
  if (underflow_ > 0) os << "  underflow: " << underflow_ << "\n";
  if (overflow_ > 0) os << "  overflow:  " << overflow_ << "\n";
  return os.str();
}

}  // namespace ayd::stats
