#include "ayd/stats/running.hpp"

#include <cmath>

namespace ayd::stats {

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace ayd::stats
