// Small-sample confidence intervals and streaming batch-means variance.
//
// The adaptive replication driver (sim/runner) and the simulation-driven
// optimizer (core/sim_optimizer) stop when the confidence interval of a
// Monte-Carlo mean is tight enough, so the interval itself must be honest
// at small replica counts: this module provides Student-t intervals
// (normal-theory z intervals undercover badly below ~30 samples) and a
// streaming batch-means estimator for correlated series. Everything is
// deterministic and allocation-free in steady state, matching the
// simulator hot-path discipline.

#pragma once

#include <cstddef>

#include "ayd/stats/running.hpp"
#include "ayd/stats/summary.hpp"

namespace ayd::stats {

/// Quantile of the Student-t distribution with `df` degrees of freedom:
/// the value t with P(T_df <= t) = p. Computed by inverting the exact CDF
/// (regularised incomplete beta) with a Brent root search seeded by the
/// normal quantile; accurate to ~1e-10 over df >= 1, p in (0, 1).
/// Converges to normal_quantile(p) as df grows.
[[nodiscard]] double student_t_quantile(double p, double df);

/// Student-t CI for the mean of the accumulated sample (df = n - 1).
/// Degenerate (lo == hi == mean) for n < 2.
[[nodiscard]] ConfidenceInterval mean_ci_student(const RunningStats& stats,
                                                 double level = 0.95);

/// Builds a Summary whose interval is the Student-t CI (the plain
/// summarize() uses the normal-theory interval).
[[nodiscard]] Summary summarize_student(const RunningStats& stats,
                                        double ci_level = 0.95);

/// Relative half-width |hi - lo| / (2 |mean|) of a CI — the quantity the
/// adaptive replication loop drives below `ci_rel_tol`. Returns +inf when
/// the mean is 0 (no relative scale) so callers keep sampling up to their
/// replication cap instead of dividing by zero.
[[nodiscard]] double relative_half_width(const ConfidenceInterval& ci,
                                         double mean);

/// Streaming batch-means variance estimator for (possibly autocorrelated)
/// series: consecutive samples are grouped into fixed-size batches and the
/// variance of the *batch means* estimates Var(mean) without storing the
/// series. With iid input it agrees with the plain sample variance in
/// expectation; with positively correlated input (e.g. per-pattern wall
/// times inside one replica) it does not underestimate the error the way
/// the naive estimator does, provided batches span several correlation
/// lengths.
class BatchMeans {
 public:
  /// `batch_size` consecutive samples form one batch (>= 1).
  explicit BatchMeans(std::size_t batch_size);

  /// Adds one sample; completes a batch every `batch_size` calls.
  void add(double x);

  /// Total samples seen (including the unfinished tail batch).
  [[nodiscard]] std::size_t count() const { return total_.count(); }
  /// Completed batches (the tail batch is excluded until full).
  [[nodiscard]] std::size_t batches() const { return batch_means_.count(); }
  [[nodiscard]] std::size_t batch_size() const { return batch_size_; }

  /// Grand mean over *all* samples seen.
  [[nodiscard]] double mean() const { return total_.mean(); }

  /// Estimated Var(grand mean) = Var(batch means) / #batches; 0 until two
  /// batches complete.
  [[nodiscard]] double variance_of_mean() const;
  /// sqrt(variance_of_mean()).
  [[nodiscard]] double stderr_mean() const;

  /// Student-t CI for the mean with (#batches - 1) degrees of freedom,
  /// centred on the grand mean. Degenerate until two batches complete.
  [[nodiscard]] ConfidenceInterval ci(double level = 0.95) const;

 private:
  std::size_t batch_size_;
  std::size_t in_batch_ = 0;   ///< samples accumulated in the open batch
  double batch_sum_ = 0.0;     ///< running sum of the open batch
  RunningStats total_;         ///< all samples (grand mean, min/max)
  RunningStats batch_means_;   ///< one entry per completed batch
};

}  // namespace ayd::stats
