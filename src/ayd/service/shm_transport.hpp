// Shared-memory multi-client transport for the planning service.
//
// `ayd serve --shm NAME` publishes a named POSIX shared-memory segment
// that any number of local clients (`ayd call --shm NAME`, ShmClient,
// the bench and stress harnesses) attach to, so N dashboards / sweep
// reruns / CI shards share ONE warm memo cache and ONE worker pool —
// the fleet-level answer reuse ROADMAP item 1 asks for. The framing
// payload stays the NDJSON request/reply lines of docs/service.md, so
// the wire semantics, the error envelope, and the protocol tests carry
// over unchanged; only the byte channel differs.
//
// Segment layout (all offsets computed from the header, everything
// cache-line aligned):
//
//   SegmentHeader   magic "AYDSHM01" | format version | geometry
//                   | server pid | shutdown flag
//   request ring    ShmRing, many producers (clients) -> one consumer
//                   (the server's transport thread); each frame is
//                   RequestFrame{client, generation} + NDJSON line
//   client table    max_clients entries of ClientSlot{pid, generation},
//                   each followed by that client's private reply ring
//                   (producers: the server's workers; consumer: the
//                   client) carrying bare NDJSON reply lines
//
// Client lifecycle:
//  * attach  — CAS a free ClientSlot's pid from 0 to the caller's pid
//              and bump its generation;
//  * call    — push {client, generation, request line} into the request
//              ring, then poll the private reply ring (spin -> yield ->
//              microsleep; zero syscalls while the answer is hot);
//  * detach  — store pid = 0 (only with no outstanding call, which the
//              blocking API guarantees);
//  * death   — the server's housekeeping notices the pid is gone,
//              bumps the generation (in-flight replies for the old
//              generation are dropped, never delivered to a reused
//              slot), drains its own in-flight deliveries, resets the
//              reply ring, and frees the slot. A request torn mid-push
//              by the death is retired through the ring's
//              stalled-claim tombstone.
//
// Server lifecycle:
//  * create  — refuses (with path and reason) a segment of a different
//              format version or one still served by a live pid;
//              recovers a *stale* segment (compatible header, dead
//              server) by unlinking and recreating it;
//  * serve   — one transport thread pops requests and fans them out
//              over the PlanningService's worker pool (handle_async);
//              replies are pushed straight from the workers;
//  * stop    — drains in-flight requests, raises the header's shutdown
//              flag (clients blocked in call() observe it through
//              their mapping and fail fast), unmaps, and unlinks.
//
// Pinned by tests/service_shm_transport_test.cpp (unit + lifecycle),
// tests/service_shm_stress_test.cpp (multi-process byte-identity) and
// tests/service_shm_crash_test.cpp (SIGKILL robustness).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "ayd/service/shm_ring.hpp"
#include "ayd/util/error.hpp"

namespace ayd::service {

class PlanningService;

/// A shared-memory segment could not be created, validated, attached,
/// or used. Like StoreError, the message always carries the offending
/// path and the reason.
class ShmError : public util::IoError {
 public:
  ShmError(std::string path, std::string reason)
      : util::IoError("shm segment " + path + ": " + reason),
        path_(std::move(path)),
        reason_(std::move(reason)) {}
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& reason() const { return reason_; }

 private:
  std::string path_;
  std::string reason_;
};

/// Geometry of a segment (the `ayd serve --shm` knobs; every field is
/// stamped into the header and validated by attaching clients).
struct ShmOptions {
  /// Request-ring slots (rounded up to a power of two, min 8).
  std::size_t request_slots = 64;
  /// Payload capacity of every frame; one NDJSON request or reply line
  /// must fit (oversize replies degrade to an error envelope).
  std::size_t frame_bytes = 8192;
  /// Client-table entries (attached clients at one time).
  std::size_t max_clients = 64;
  /// Per-client reply-ring slots (rounded up to a power of two, min 4).
  std::size_t reply_slots = 8;
};

/// Escalating wait used by every transport polling loop: spin (hot,
/// ~ns), then yield, then a capped exponential microsleep — so warm
/// round trips cost zero syscalls while an *idle* wait (a client parked
/// on its reply ring between requests) backs off to the sleep cap
/// instead of burning a core. Exposed here so the schedule is
/// unit-testable (tests/service_shm_transport_test.cpp pins it).
class ShmBackoff {
 public:
  static constexpr unsigned kSpinPauses = 64;    ///< hot busy-spin phase
  static constexpr unsigned kYieldPauses = 512;  ///< sched_yield phase
  /// First sleep after the yield phase (doubles each pause).
  static constexpr std::chrono::microseconds kSleepFloor{50};
  /// Exponential cap: the idle steady-state poll interval.
  static constexpr std::chrono::microseconds kSleepCap{2000};

  /// The sleep the schedule prescribes for the pause with index
  /// `pauses` (0-based count of pauses since the last reset): zero
  /// through the spin/yield phases, then kSleepFloor doubling per pause
  /// up to kSleepCap. Pure — the unit tests enumerate it.
  [[nodiscard]] static constexpr std::chrono::microseconds sleep_for_pause(
      unsigned pauses) {
    if (pauses < kYieldPauses) return std::chrono::microseconds{0};
    std::chrono::microseconds sleep = kSleepFloor;
    for (unsigned p = kYieldPauses; p < pauses && sleep < kSleepCap; ++p) {
      sleep *= 2;
    }
    return sleep < kSleepCap ? sleep : kSleepCap;
  }

  void pause();
  void reset() { pauses_ = 0; }

 private:
  unsigned pauses_ = 0;
};

/// Transport counters (served by ShmServer::stats for tests/benches).
struct ShmServerStats {
  bool recovered_stale = false;  ///< a dead server's segment was replaced
  std::uint64_t requests = 0;    ///< frames popped from the request ring
  std::uint64_t reclaimed_clients = 0;   ///< dead clients reaped
  std::uint64_t reclaimed_requests = 0;  ///< torn pushes tombstoned
  std::uint64_t dropped_replies = 0;     ///< replies to dead/stale clients
};

/// The server side: owns the segment (creation through unlink) and the
/// transport thread bridging the request ring to a PlanningService.
class ShmServer {
 public:
  /// Creates segment `name` and starts serving `service` over it.
  /// `service` must outlive this object. Throws ShmError on a
  /// version-mismatched or live-served segment (see file header).
  ShmServer(const std::string& name, PlanningService& service,
            const ShmOptions& options = {});

  /// stop()s, unmaps and unlinks.
  ~ShmServer();

  ShmServer(const ShmServer&) = delete;
  ShmServer& operator=(const ShmServer&) = delete;

  /// Stops the transport thread, drains in-flight requests, raises the
  /// shutdown flag and unlinks the segment. Idempotent.
  void stop();

  [[nodiscard]] ShmServerStats stats() const;

  /// The filesystem path of segment `name` (diagnostics; Linux mounts
  /// POSIX shm at /dev/shm).
  [[nodiscard]] static std::string segment_path(const std::string& name);

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Impl;

  void transport_loop();
  void dispatch(std::string frame);
  void deliver(std::uint32_t client, std::uint32_t generation,
               const std::string& reply);
  void reap_dead_clients();
  void reclaim_torn_request();

  std::string name_;
  PlanningService& service_;
  std::unique_ptr<Impl> impl_;
  std::thread thread_;
};

/// The client side: attaches to an existing segment and issues blocking
/// NDJSON round trips. One instance owns one client-table slot; use one
/// instance per thread (call() is strictly serial per instance).
class ShmClient {
 public:
  /// Attaches to segment `name`. Throws ShmError when the segment does
  /// not exist, has a different format version (path + reason), is not
  /// served by a live process, or has no free client slot.
  explicit ShmClient(const std::string& name);

  /// Detaches (frees the client-table slot).
  ~ShmClient();

  ShmClient(const ShmClient&) = delete;
  ShmClient& operator=(const ShmClient&) = delete;

  /// One blocking round trip: pushes `line` (one NDJSON request, no
  /// trailing newline) and waits for its reply. Throws ShmError when
  /// the server shuts down or disappears mid-call, or after
  /// `timeout_ms`; throws util::InvalidArgument when the request
  /// exceeds the segment's frame capacity.
  [[nodiscard]] std::string call(const std::string& line,
                                 std::uint64_t timeout_ms = 60000);

  /// Geometry echo (handy for sizing requests to the segment).
  [[nodiscard]] std::size_t frame_bytes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ayd::service
