// Lock-free fixed-slot circular element array over raw shared memory —
// the primitive under the planning service's multi-client transport
// (shm_transport.hpp).
//
// The ring is a bounded multi-producer/multi-consumer queue of
// fixed-capacity frames (the `circ_elem_array` idiom from cpp-ipc):
//
//  * a fixed power-of-two array of cache-line-aligned slots, each
//    carrying a payload area of `frame_bytes` plus a per-slot *commit
//    sequence* — the flag that tells consumers "these bytes are fully
//    written";
//  * two cache-line-separated atomic cursors, `head` (enqueue) and
//    `tail` (dequeue), each claimed by compare-exchange so any number
//    of producers and consumers can race without locks;
//  * acquire/release ordering on the slot sequence is the only
//    synchronisation a frame's payload needs: a producer publishes with
//    one release store, a consumer observes it with one acquire load —
//    no syscalls anywhere on the fast path.
//
// The ring itself is position-independent: every field lives inside the
// caller-provided memory block (typically a POSIX shared-memory
// mapping), so any process that maps the block can produce or consume.
// All atomics are required lock-free (static_asserted) — a lock-based
// fallback would put a process-private mutex in shared memory.
//
// Crash robustness. A producer that dies *mid-push* — after claiming a
// position but before committing the slot — would wedge consumers at
// that position forever (later commits are unreachable behind it). To
// make that recoverable, a producer stamps its pid into the slot's
// `claimant` field immediately after the claim; a supervisor (the shm
// server's housekeeping loop) can then detect the stall with
// `stalled_claim()` and, once the claimant is known dead, retire the
// position with `tombstone_stalled()` — committing a tombstone frame
// that consumers skip. The unattributable window (death between the
// claim CAS and the pid stamp, a couple of instructions) is handled by
// the caller with a grace timeout. Pinned by
// tests/service_shm_transport_test.cpp and raced cross-process by
// tests/service_shm_stress_test.cpp.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ayd::service {

/// Alignment that keeps hot atomics on distinct cache lines.
inline constexpr std::size_t kShmCacheLine = 64;

/// A view over a ring living in a caller-provided memory block. Copying
/// the view is cheap (two pointers); the ring state lives in the block.
class ShmRing {
 public:
  /// `len` marker of a retired (crash-reclaimed) slot; consumers skip it.
  static constexpr std::uint32_t kTombstoneLen = 0xffffffffu;

  /// Outcome of one try_pop.
  enum class Pop {
    kEmpty,      ///< no committed frame available
    kFrame,      ///< a frame was read into `out`
    kTombstone,  ///< a crash-reclaimed slot was skipped (nothing read)
  };

  /// A claimed-but-uncommitted position observed at the tail: the
  /// signature of a producer that died (or stalled) mid-push.
  struct StalledClaim {
    std::uint64_t position = 0;
    /// Pid the producer stamped after its claim; 0 when it died inside
    /// the claim/stamp window (unattributable — callers apply a grace
    /// timeout before forcing).
    std::uint32_t claimant = 0;
  };

  ShmRing() = default;

  /// Bytes a ring with `slots` slots of `frame_bytes` payload needs.
  /// `slots` must be a power of two >= 2.
  [[nodiscard]] static std::size_t bytes_required(std::size_t slots,
                                                  std::size_t frame_bytes);

  /// Placement-initialises a fresh ring in `block` (which must hold
  /// bytes_required() bytes, kShmCacheLine-aligned) and returns a view.
  [[nodiscard]] static ShmRing init(void* block, std::size_t slots,
                                    std::size_t frame_bytes);

  /// Views a ring previously init()ed in `block` (same or any other
  /// process mapping the same memory).
  [[nodiscard]] static ShmRing view(void* block);

  /// Enqueues one frame, `prefix` followed by `body` (the scatter-gather
  /// form saves callers a concatenation). Returns false when the ring is
  /// full. Throws util::InvalidArgument when the frame exceeds
  /// frame_bytes(). `claimant_pid` is stamped for crash attribution.
  [[nodiscard]] bool try_push(std::string_view prefix, std::string_view body,
                              std::uint32_t claimant_pid);

  /// Dequeues one frame into `out` (overwritten). Never blocks.
  [[nodiscard]] Pop try_pop(std::string& out);

  /// Inspects the tail position for a claimed-but-uncommitted slot.
  /// Meaningful when the caller is the only consumer (the shm server).
  [[nodiscard]] std::optional<StalledClaim> stalled_claim() const;

  /// Retires the stalled position `pos` by committing a tombstone.
  /// Only safe when the claimant is known dead (its pid no longer
  /// exists) or the caller's grace timeout expired on an unattributable
  /// claim. Returns false if the position was committed meanwhile.
  bool tombstone_stalled(std::uint64_t pos);

  /// Re-initialises cursors and slot sequences. Only safe when no
  /// producer or consumer can touch the ring (the shm server resets a
  /// dead client's reply ring after draining its in-flight replies).
  void reset();

  /// Committed-but-unconsumed frames (approximate under concurrency).
  [[nodiscard]] std::size_t approx_size() const;

  [[nodiscard]] std::size_t slots() const;
  [[nodiscard]] std::size_t frame_bytes() const;

  /// Test-only crash injection: claims a position and stamps `claimant`
  /// but never commits — exactly the footprint of a producer SIGKILLed
  /// mid-push. Pass claimant 0 to model death inside the claim/stamp
  /// window. Returns the claimed position.
  std::uint64_t simulate_torn_push(std::uint32_t claimant);

 private:
  struct Header;
  struct Slot;

  ShmRing(Header* header, char* slot_base) noexcept
      : header_(header), slot_base_(slot_base) {}

  [[nodiscard]] Slot* slot_at(std::uint64_t index) const;
  [[nodiscard]] std::size_t slot_stride() const;

  Header* header_ = nullptr;
  char* slot_base_ = nullptr;
};

}  // namespace ayd::service
