// The long-lived planning service behind `ayd serve`.
//
// PlanningService answers NDJSON planning requests (protocol.hpp) over
// any istream/ostream pair, memoising every expensive answer in a
// sharded single-flight LRU cache (memo_cache.hpp) keyed by canonical
// scenario identity (canonical.hpp), optionally backed by a persistent
// answer store (store.hpp, --cache-dir) that survives restarts. Because
// every evaluation in this repository is a pure, deterministic function
// of the resolved request, a warm hit — from RAM or from disk — returns
// the *byte-identical* reply a recomputation would produce, confidence
// intervals included, which is what makes serving repeated planning
// queries (dashboards, sweep reruns, CI) from memory sound.
//
// Concurrency model: serve() fans request lines out over an owned
// exec::ThreadPool and writes each reply as it completes, so replies can
// arrive out of request order (the id correlates them). Each request's
// evaluation runs serially on its worker — request-level parallelism,
// not replica-level — because nesting a parallel_for on the same pool
// that runs the request could deadlock once every worker is busy.
// Identical concurrent requests collapse to one computation
// (single-flight); distinct requests scale across workers and cache
// shards. The wire protocol is specified in docs/service.md.

#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "ayd/exec/thread_pool.hpp"
#include "ayd/service/memo_cache.hpp"
#include "ayd/service/protocol.hpp"
#include "ayd/service/store.hpp"

namespace ayd::service {

/// Construction knobs of the service (the `ayd serve` flags).
struct ServiceOptions {
  /// Worker threads of the request pool (0 = hardware concurrency).
  unsigned threads = 0;
  /// Total memo-cache capacity in cached replies (--cache-entries).
  std::size_t cache_entries = 4096;
  /// Lock shards of the memo cache, rounded up to a power of two
  /// (--cache-shards).
  std::size_t cache_shards = 16;
  /// Directory of the persistent answer store (--cache-dir; empty
  /// disables the disk tier). Created on demand; see store.hpp.
  std::string cache_dir;
};

class PlanningService {
 public:
  /// Throws StoreError when `options.cache_dir` is set but the
  /// persistent store cannot be opened (incompatible header, unwritable
  /// directory) — a service must not start quietly without the disk
  /// tier its caller asked for.
  explicit PlanningService(const ServiceOptions& options = {});

  PlanningService(const PlanningService&) = delete;
  PlanningService& operator=(const PlanningService&) = delete;

  /// Handles one request line synchronously on the calling thread and
  /// returns the reply (no trailing newline). Never throws: every
  /// failure becomes an error-envelope reply.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Handles one request line on the worker pool and invokes `done`
  /// with the reply from the worker thread. Used by transports that do
  /// their own reply routing (shm_transport.hpp); callers are
  /// responsible for their own backpressure (the pool queue is
  /// unbounded). Like handle_line, the reply is always produced — every
  /// failure becomes an error envelope.
  void handle_async(std::string line, std::function<void(std::string)> done);

  /// Worker threads of the owned pool (transports size their in-flight
  /// windows from this).
  [[nodiscard]] std::size_t workers() const { return pool_.size(); }

  /// The NDJSON loop: reads one request per line from `in` until EOF,
  /// fans the requests out over the worker pool, and writes each reply
  /// to `out` (newline-terminated, flushed) as it completes — possibly
  /// out of request order. Blank lines are skipped; a final line
  /// without a trailing newline is processed like any other. Returns
  /// true when every accepted request was answered and `out` stayed
  /// healthy; false when a reply write failed (client gone / pipe
  /// closed) — the loop then stops reading further input instead of
  /// spinning against a dead stream, and the caller should exit
  /// non-zero.
  [[nodiscard]] bool serve(std::istream& in, std::ostream& out);

  /// Snapshot of the memo-cache counters (also served by op "stats").
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }

  /// The persistent tier, or null when --cache-dir was not given.
  [[nodiscard]] const AnswerStore* store() const { return store_.get(); }

  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  /// Routes a parsed request to its op handler; throws ProtocolError /
  /// util::Error on failures (handle_line wraps them into envelopes).
  [[nodiscard]] std::string dispatch(const Request& req);

  [[nodiscard]] std::string handle_optimize(const Request& req);
  [[nodiscard]] std::string handle_simulate(const Request& req);
  [[nodiscard]] std::string handle_plan(const Request& req);
  [[nodiscard]] std::string handle_stats(const Request& req);
  [[nodiscard]] std::string handle_subscribe(const Request& req);

  ServiceOptions options_;
  /// Constructed before cache_, which holds a non-owning pointer to it.
  std::unique_ptr<AnswerStore> store_;
  MemoCache cache_;
  exec::ThreadPool pool_;
};

}  // namespace ayd::service
