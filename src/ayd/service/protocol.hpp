// The planning service's NDJSON wire protocol: request parsing and reply
// envelopes.
//
// One JSON object per line in, one JSON object per line out. A request is
//   {"op": "optimize" | "simulate" | "plan" | "stats" | "subscribe",
//    "id": <any scalar>, <parameter>: <value>, ...}
// where every member other than "op" and "id" is an operation parameter
// named exactly like the corresponding `ayd <op>` CLI option (hyphens or
// underscores — "ci_rel_tol" and "ci-rel-tol" both work). The one
// exception is "subscribe", whose telemetry payload ("events": an array
// of gap seconds, or "telemetry": failure-log CSV text) is intentionally
// non-scalar and is split off before the argv bridge runs. Replies echo
// the request id:
//   {"id": <id>, "ok": true,  "op": <op>, "result": {...}}
//   {"id": <id>, "ok": false, "error": {"code": "...", "message": "..."}}
// Replies may complete out of request order; the id is the correlation
// handle. The full specification lives in docs/service.md.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ayd/io/json_parse.hpp"
#include "ayd/util/error.hpp"

namespace ayd::service {

/// A protocol-level failure with a machine-readable error code (the
/// "code" field of the error envelope): "parse_error", "bad_request",
/// "unknown_op", or "internal".
class ProtocolError : public util::Error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : util::Error(message), code_(std::move(code)) {}
  /// Variant carrying the request id extracted before the failure, so
  /// the error reply can still echo the client's correlation handle.
  ProtocolError(io::JsonValue id, std::string code,
                const std::string& message)
      : util::Error(message), code_(std::move(code)), id_(std::move(id)) {}
  [[nodiscard]] const std::string& code() const { return code_; }
  /// The id to echo in the error envelope (null when the request never
  /// parsed far enough to yield one).
  [[nodiscard]] const io::JsonValue& id() const { return id_; }

 private:
  std::string code_;
  io::JsonValue id_;
};

/// One parsed request line.
struct Request {
  std::string op;
  /// The request's "id" member, echoed verbatim into the reply (null
  /// when the request carried none).
  io::JsonValue id;
  /// Every member except "op" and "id", in source order.
  std::vector<std::pair<std::string, io::JsonValue>> params;
};

/// Parses one NDJSON line. Throws ProtocolError("parse_error") on
/// malformed JSON or a non-object line, ProtocolError("bad_request")
/// when "op" is missing or not a string.
[[nodiscard]] Request parse_request(const std::string& line);

/// Converts request parameters into the CLI argv vocabulary the spec
/// parsers consume: {"procs": 512} -> "--procs=512", {"simulate": true}
/// -> "--simulate", {"platform": "hera"} -> "--platform=hera". Integers
/// print without exponents, other numbers round-trip exactly via %.17g,
/// false omits the flag, and non-scalar values throw
/// ProtocolError("bad_request").
[[nodiscard]] std::vector<std::string> params_to_argv(
    const std::vector<std::pair<std::string, io::JsonValue>>& params);

/// Assembles {"id":...,"ok":true,"op":...,"result":...} around
/// `result_json`.
/// `result_json` is spliced verbatim and must be a complete JSON value.
[[nodiscard]] std::string make_ok_reply(const io::JsonValue& id,
                                        std::string_view op,
                                        std::string_view result_json);

/// Assembles {"id":...,"ok":false,"error":{"code":...,"message":...}}.
[[nodiscard]] std::string make_error_reply(const io::JsonValue& id,
                                           std::string_view code,
                                           std::string_view message);

}  // namespace ayd::service
