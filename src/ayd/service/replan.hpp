// The online re-planning control loop (ROADMAP item 4): failure telemetry
// in, re-published checkpoint schedules out.
//
// A Replanner owns the three pieces the loop composes:
//   * a stats::OnlineFit rolling estimator with GLR drift detection,
//   * the model bridge (model::failure_dist_from_fit) that turns a fit
//     into a deployable System, and
//   * core::sim_optimal_period, warm-started from the currently deployed
//     period, re-run whenever drift clears the CI noise floor.
//
// Every decision is serialized as one NDJSON record (written with
// io::JsonWriter, whose number formatting is shortest-round-trip): a
// "plan" record when the loop starts, a "replan" record per accepted
// drift, and a "summary" record on demand. The whole loop is a pure
// function of (base system, options, gap sequence): the estimator is
// deterministic, the optimizer is bit-reproducible at any thread count,
// and the serialization is byte-stable — which is what the replay test
// tier (tests/replan_replay_test.cpp) pins.
//
// Both front-ends sit on this class: `ayd watch` streams a failure-log
// CSV through it, and the service's "subscribe" op replays inline
// telemetry through it (docs/service.md).

#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "ayd/core/sim_optimizer.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/model/system.hpp"
#include "ayd/stats/online_fit.hpp"

namespace ayd::service {

/// Knobs of the re-planning loop.
struct ReplanOptions {
  /// Rolling-window estimator + drift guard.
  stats::OnlineFitOptions fit{};
  /// Period search; `warm_start` is overwritten by the loop (the
  /// deployed period), everything else is honored.
  core::SimSearchOptions search{};
  /// Deployed processor allocation (required; the telemetry is read as
  /// the total platform error process at this allocation, so the fitted
  /// total rate divides by `procs` to become FailureModel's lambda_ind).
  double procs = 0.0;
};

/// Streaming telemetry -> schedule loop. Single-threaded by design: feed
/// gaps from one thread; `pool` only parallelises the simulation replicas
/// inside each re-optimization (bit-identical results at any size).
class Replanner {
 public:
  /// `base` is the deployed scenario: its failure shape/rate are the
  /// initial model (the GLR null) and its cost model stays fixed.
  /// Throws util::InvalidArgument when options are inconsistent.
  Replanner(model::System base, ReplanOptions options,
            exec::ThreadPool* pool = nullptr);

  /// Runs the cold plan: optimizes the base system, deploys the optimum,
  /// installs the baseline density. Returns the "plan" record. Must be
  /// called once, before on_gap().
  [[nodiscard]] std::string initial_record();

  /// Feeds one inter-arrival gap (seconds). Returns a "replan" record
  /// when this event's refit cleared the drift guard and the schedule was
  /// re-published; std::nullopt otherwise.
  [[nodiscard]] std::optional<std::string> on_gap(double gap);

  /// A "summary" record of the session so far (events seen/accepted,
  /// re-plans, deployed period).
  [[nodiscard]] std::string summary_record() const;

  /// Currently deployed checkpoint period (seconds).
  [[nodiscard]] double deployed_period() const { return deployed_period_; }
  /// Gaps fed (including ignored non-positive/non-finite ones).
  [[nodiscard]] std::size_t events() const { return events_; }
  /// Re-plans published so far.
  [[nodiscard]] std::size_t replans() const { return replans_; }
  /// The system currently deployed (base costs, latest fitted failure
  /// law after any re-plan).
  [[nodiscard]] const model::System& deployed_system() const {
    return deployed_;
  }

 private:
  [[nodiscard]] core::SimPeriodOptimum optimize(const model::System& sys,
                                                double warm_start);

  model::System base_;
  model::System deployed_;
  ReplanOptions options_;
  exec::ThreadPool* pool_;
  stats::OnlineFit fit_;
  double deployed_period_ = 0.0;
  std::size_t events_ = 0;
  std::size_t replans_ = 0;
  bool planned_ = false;
};

}  // namespace ayd::service
