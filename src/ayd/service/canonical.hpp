// Canonical scenario keying for the planning service's memo cache.
//
// Two NDJSON requests that *mean* the same planning question must map to
// the same cache entry no matter how they were spelled: member order in
// the request object, "platform":"HERA" vs "hera", "scenario":3 vs "3",
// a rate given as mtbf vs lambda, an explicitly-passed default — none of
// these change the answer, so none may change the key. The service
// therefore never keys on request text. It first *resolves* the request
// through the same spec parsers the CLI uses (tool::system_from_args and
// friends), then serialises the resolved semantics — the model::System's
// exact field values, the evaluation knobs, seed, CI target, replica cap
// — into a canonical compact JSON string with a fixed field order, and
// keys on that string plus its 64-bit FNV-1a content hash.
//
// Doubles are serialised through io::JsonWriter's %.17g formatting, which
// round-trips every finite double exactly: distinct systems cannot
// collide textually, and equal systems cannot split. The full canonical
// text is stored next to the hash, so even a 64-bit hash collision cannot
// serve a wrong reply (shards compare the text on lookup).

#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

#include "ayd/io/json.hpp"
#include "ayd/model/system.hpp"

namespace ayd::tool {
struct OptimizeRequest;
}

namespace ayd::service {

/// A resolved request's canonical identity: the canonical serialisation
/// and its 64-bit content hash. The hash routes to a cache shard; the
/// text is the collision-proof key within the shard.
struct CanonicalKey {
  std::string text;
  std::uint64_t hash = 0;
};

/// 64-bit FNV-1a over `bytes` (the service's content hash).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// Streams the canonical fields of one request into a compact JSON
/// object, then hashes it. Field order is fixed by call order — every
/// handler writes its fields in one documented sequence, which *is* the
/// canonicalisation.
class CanonicalKeyBuilder {
 public:
  /// Opens the canonical object and records the operation name.
  explicit CanonicalKeyBuilder(std::string_view op);

  /// Writes the resolved system: exact failure-model rates, the failure
  /// distribution (kind/shape/trace contents), downtime, the three cost
  /// models' coefficients, and the speedup profile kind + exact
  /// parameter.
  CanonicalKeyBuilder& system(const model::System& sys);

  CanonicalKeyBuilder& field(std::string_view key, double v);
  CanonicalKeyBuilder& field(std::string_view key, std::uint64_t v);
  CanonicalKeyBuilder& field(std::string_view key, bool v);
  CanonicalKeyBuilder& field(std::string_view key, std::string_view v);

  /// Closes the object and returns {text, fnv1a64(text)}.
  [[nodiscard]] CanonicalKey finish();

 private:
  std::ostringstream os_;
  io::JsonWriter writer_;
};

/// The canonical key of one resolved `optimize` request — the exact
/// field sequence the service's "optimize" op keys on, shared with
/// `ayd optimize --cache-dir` so the one-shot CLI and the service
/// address the same persistent-store records.
[[nodiscard]] CanonicalKey optimize_canonical_key(
    const model::System& sys, const tool::OptimizeRequest& req);

}  // namespace ayd::service
