#include "ayd/service/shm_transport.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "ayd/service/server.hpp"

namespace ayd::service {

namespace {

using Clock = std::chrono::steady_clock;

constexpr char kMagic[8] = {'A', 'Y', 'D', 'S', 'H', 'M', '0', '1'};
constexpr std::uint32_t kShmFormatVersion = 1;

/// How long an *unattributable* torn push (claimant pid never stamped)
/// may stall the request ring before it is forcibly retired.
constexpr auto kTornPushGrace = std::chrono::milliseconds(1000);
/// How long a reply push may retry against a full reply ring (a client
/// that stopped draining) before the reply is dropped.
constexpr auto kReplyPushDeadline = std::chrono::seconds(5);

/// The fixed shared front of the segment. Everything after it is
/// located by the offsets stored here, so a client validates one struct
/// and then trusts only arithmetic.
struct alignas(kShmCacheLine) SegmentHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t total_bytes;
  std::uint32_t request_slots;
  std::uint32_t frame_bytes;
  std::uint32_t max_clients;
  std::uint32_t reply_slots;
  std::atomic<std::uint32_t> server_pid;  ///< 0 until init completes
  std::atomic<std::uint32_t> shutdown;    ///< raised before unlink
  std::uint64_t request_ring_offset;
  std::uint64_t client_table_offset;
  std::uint64_t client_stride;
};
static_assert(sizeof(SegmentHeader) == 2 * kShmCacheLine);

/// One client-table entry; the client's private reply ring follows at
/// kShmCacheLine into the same block.
struct alignas(kShmCacheLine) ClientSlot {
  std::atomic<std::uint32_t> pid;         ///< 0 = free
  std::atomic<std::uint32_t> generation;  ///< bumped on attach and reclaim
};
static_assert(sizeof(ClientSlot) == kShmCacheLine);

/// Prefix of every request frame (ahead of the NDJSON line): which
/// reply ring the answer belongs to, and for which attach generation.
struct RequestPrefix {
  std::uint32_t client;
  std::uint32_t generation;
};

std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

std::size_t round_up_pow2(std::size_t n, std::size_t min) {
  std::size_t p = min;
  while (p < n) p *= 2;
  return p;
}

/// Normalised geometry (power-of-two rings, floors applied).
ShmOptions normalize(ShmOptions o) {
  o.request_slots = round_up_pow2(o.request_slots, 8);
  o.reply_slots = round_up_pow2(o.reply_slots, 4);
  if (o.max_clients == 0) o.max_clients = 1;
  if (o.frame_bytes < 512) o.frame_bytes = 512;
  o.frame_bytes = align_up(o.frame_bytes, kShmCacheLine);
  return o;
}

struct Geometry {
  std::size_t request_ring_offset = 0;
  std::size_t client_table_offset = 0;
  std::size_t client_stride = 0;
  std::size_t total_bytes = 0;
};

Geometry layout(const ShmOptions& o) {
  Geometry g;
  std::size_t off = align_up(sizeof(SegmentHeader), kShmCacheLine);
  g.request_ring_offset = off;
  off += ShmRing::bytes_required(o.request_slots, o.frame_bytes);
  g.client_table_offset = off;
  g.client_stride = sizeof(ClientSlot) +
                    ShmRing::bytes_required(o.reply_slots, o.frame_bytes);
  off += o.max_clients * g.client_stride;
  g.total_bytes = off;
  return g;
}

/// POSIX shm object name ("/ayd_<name>"); the visible path on Linux is
/// /dev/shm/ayd_<name>. Names are restricted so they cannot escape the
/// shm namespace or collide with other conventions.
std::string object_name(const std::string& name) {
  if (name.empty()) {
    throw util::InvalidArgument("shm segment name must not be empty");
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) {
      throw util::InvalidArgument(
          "shm segment name '" + name +
          "' may only contain letters, digits, '.', '_' and '-'");
    }
  }
  return "/ayd_" + name;
}

bool pid_alive(std::uint32_t pid) {
  if (pid == 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

/// Rewrites an oversize reply into an error envelope that fits a frame,
/// preserving the id prefix (replies always start {"id":<id>,"ok":...)
/// so the client can still correlate the failure.
std::string oversize_reply_envelope(const std::string& reply,
                                    std::size_t frame_bytes) {
  std::string id = "null";
  const std::size_t ok_pos = reply.find(",\"ok\":");
  if (reply.rfind("{\"id\":", 0) == 0 && ok_pos != std::string::npos) {
    id = reply.substr(6, ok_pos - 6);
  }
  return "{\"id\":" + id +
         ",\"ok\":false,\"error\":{\"code\":\"internal\",\"message\":"
         "\"reply of " +
         std::to_string(reply.size()) +
         " bytes exceeds the shm frame capacity of " +
         std::to_string(frame_bytes) +
         " bytes; use the pipe transport or a larger segment\"}}";
}

/// A mapped segment with its derived views (shared by server and
/// client Impls).
struct Mapping {
  int fd = -1;
  void* base = nullptr;
  std::size_t size = 0;
  SegmentHeader* header = nullptr;

  char* at(std::size_t offset) const {
    return static_cast<char*>(base) + offset;
  }
  void unmap() {
    if (base != nullptr) ::munmap(base, size);
    if (fd >= 0) ::close(fd);
    base = nullptr;
    fd = -1;
  }
};

/// Maps an existing segment and validates its header; throws ShmError
/// with path + reason on any incompatibility.
Mapping map_existing(const std::string& oname, const std::string& path) {
  Mapping m;
  m.fd = ::shm_open(oname.c_str(), O_RDWR, 0);
  if (m.fd < 0) {
    throw ShmError(path, errno == ENOENT
                             ? "no such segment (is the server running?)"
                             : std::string("shm_open failed: ") +
                                   std::strerror(errno));
  }
  struct ::stat st {};
  if (::fstat(m.fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < sizeof(SegmentHeader)) {
    ::close(m.fd);
    throw ShmError(path, "segment smaller than an ayd header (not an ayd "
                         "shm segment, or its creator died before "
                         "initialising it)");
  }
  m.size = static_cast<std::size_t>(st.st_size);
  m.base = ::mmap(nullptr, m.size, PROT_READ | PROT_WRITE, MAP_SHARED,
                  m.fd, 0);
  if (m.base == MAP_FAILED) {
    ::close(m.fd);
    throw ShmError(path, std::string("mmap failed: ") +
                             std::strerror(errno));
  }
  m.header = static_cast<SegmentHeader*>(m.base);
  if (std::memcmp(m.header->magic, kMagic, sizeof(kMagic)) != 0) {
    m.unmap();
    throw ShmError(path, "bad magic — not an ayd shm segment");
  }
  if (m.header->version != kShmFormatVersion) {
    const std::string reason =
        "segment format version " + std::to_string(m.header->version) +
        ", but this build speaks version " +
        std::to_string(kShmFormatVersion) +
        " (restart the fleet on one build)";
    m.unmap();
    throw ShmError(path, reason);
  }
  if (m.header->total_bytes != m.size) {
    const std::string reason =
        "header claims " + std::to_string(m.header->total_bytes) +
        " bytes but the segment is " + std::to_string(m.size) +
        " (truncated or corrupt)";
    m.unmap();
    throw ShmError(path, reason);
  }
  return m;
}

}  // namespace

void ShmBackoff::pause() {
  const unsigned index = pauses_;
  if (pauses_ != std::numeric_limits<unsigned>::max()) ++pauses_;
  if (index < kSpinPauses) return;  // busy-spin: keep the warm path hot
  if (index < kYieldPauses) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(sleep_for_pause(index));
}

std::string ShmServer::segment_path(const std::string& name) {
  return "/dev/shm/ayd_" + name;
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

struct ShmServer::Impl {
  /// Per-client server-side state: the shared slot + reply ring views
  /// and the process-local mutex that serialises reply delivery against
  /// slot reclamation (reply rings are reset only under this mutex).
  struct ClientView {
    ClientSlot* slot = nullptr;
    ShmRing reply_ring;
    std::mutex deliver_mutex;
  };

  std::string oname;  ///< POSIX object name ("/ayd_<name>")
  std::string path;   ///< diagnostic path (/dev/shm/ayd_<name>)
  ShmOptions options;
  Mapping map;
  ShmRing request_ring;
  std::vector<std::unique_ptr<ClientView>> clients;
  std::size_t max_inflight = 64;

  std::atomic<bool> stop_flag{false};
  std::atomic<std::uint64_t> inflight{0};
  bool stopped = false;

  // stats
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> reclaimed_clients{0};
  std::atomic<std::uint64_t> reclaimed_requests{0};
  std::atomic<std::uint64_t> dropped_replies{0};
  bool recovered_stale = false;

  // grace tracking of an unattributable torn push
  bool stalled_seen = false;
  std::uint64_t stalled_pos = 0;
  Clock::time_point stalled_since{};
};

ShmServer::ShmServer(const std::string& name, PlanningService& service,
                     const ShmOptions& options)
    : name_(name), service_(service), impl_(std::make_unique<Impl>()) {
  impl_->oname = object_name(name);
  impl_->path = segment_path(name);
  impl_->options = normalize(options);
  const Geometry geo = layout(impl_->options);

  int fd = ::shm_open(impl_->oname.c_str(), O_RDWR | O_CREAT | O_EXCL,
                      0600);
  if (fd < 0 && errno == EEXIST) {
    // A segment of this name exists. Refuse anything we cannot prove
    // stale; recover (unlink + recreate) a compatible segment whose
    // serving pid is gone — the killed-server signature.
    Mapping existing = map_existing(impl_->oname, impl_->path);
    const std::uint32_t pid =
        existing.header->server_pid.load(std::memory_order_acquire);
    if (pid_alive(pid)) {
      existing.unmap();
      throw ShmError(impl_->path,
                     "already served by live pid " + std::to_string(pid) +
                         " (refusing to double-serve)");
    }
    existing.unmap();
    ::shm_unlink(impl_->oname.c_str());
    impl_->recovered_stale = true;
    fd = ::shm_open(impl_->oname.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  }
  if (fd < 0) {
    throw ShmError(impl_->path, std::string("shm_open failed: ") +
                                    std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(geo.total_bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    ::shm_unlink(impl_->oname.c_str());
    throw ShmError(impl_->path, std::string("ftruncate failed: ") +
                                    std::strerror(err));
  }
  void* base = ::mmap(nullptr, geo.total_bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    const int err = errno;
    ::close(fd);
    ::shm_unlink(impl_->oname.c_str());
    throw ShmError(impl_->path, std::string("mmap failed: ") +
                                    std::strerror(err));
  }
  impl_->map.fd = fd;
  impl_->map.base = base;
  impl_->map.size = geo.total_bytes;
  impl_->map.header = new (base) SegmentHeader;

  SegmentHeader* h = impl_->map.header;
  std::memcpy(h->magic, kMagic, sizeof(kMagic));
  h->version = kShmFormatVersion;
  h->reserved = 0;
  h->total_bytes = geo.total_bytes;
  h->request_slots = static_cast<std::uint32_t>(impl_->options.request_slots);
  h->frame_bytes = static_cast<std::uint32_t>(impl_->options.frame_bytes);
  h->max_clients = static_cast<std::uint32_t>(impl_->options.max_clients);
  h->reply_slots = static_cast<std::uint32_t>(impl_->options.reply_slots);
  h->server_pid.store(0, std::memory_order_relaxed);
  h->shutdown.store(0, std::memory_order_relaxed);
  h->request_ring_offset = geo.request_ring_offset;
  h->client_table_offset = geo.client_table_offset;
  h->client_stride = geo.client_stride;

  impl_->request_ring =
      ShmRing::init(impl_->map.at(geo.request_ring_offset),
                    impl_->options.request_slots, impl_->options.frame_bytes);
  impl_->clients.reserve(impl_->options.max_clients);
  for (std::size_t i = 0; i < impl_->options.max_clients; ++i) {
    auto view = std::make_unique<Impl::ClientView>();
    char* block = impl_->map.at(geo.client_table_offset +
                                i * geo.client_stride);
    auto* slot = new (block) ClientSlot;
    slot->pid.store(0, std::memory_order_relaxed);
    slot->generation.store(0, std::memory_order_relaxed);
    view->slot = slot;
    view->reply_ring =
        ShmRing::init(block + sizeof(ClientSlot),
                      impl_->options.reply_slots, impl_->options.frame_bytes);
    impl_->clients.push_back(std::move(view));
  }
  impl_->max_inflight = std::max<std::size_t>(64, 4 * service_.workers());

  // Publishing the pid is the "segment is ready" signal clients wait
  // for; everything above must be visible first.
  h->server_pid.store(static_cast<std::uint32_t>(::getpid()),
                      std::memory_order_release);

  thread_ = std::thread([this] { transport_loop(); });
}

ShmServer::~ShmServer() { stop(); }

void ShmServer::stop() {
  if (impl_->stopped) return;
  impl_->stop_flag.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  // The transport loop drained in-flight requests before exiting, so no
  // worker can touch the mapping past this point.
  impl_->map.header->shutdown.store(1, std::memory_order_release);
  impl_->map.header->server_pid.store(0, std::memory_order_release);
  impl_->map.unmap();
  ::shm_unlink(impl_->oname.c_str());
  impl_->stopped = true;
}

ShmServerStats ShmServer::stats() const {
  ShmServerStats s;
  s.recovered_stale = impl_->recovered_stale;
  s.requests = impl_->requests.load(std::memory_order_relaxed);
  s.reclaimed_clients =
      impl_->reclaimed_clients.load(std::memory_order_relaxed);
  s.reclaimed_requests =
      impl_->reclaimed_requests.load(std::memory_order_relaxed);
  s.dropped_replies = impl_->dropped_replies.load(std::memory_order_relaxed);
  return s;
}

void ShmServer::transport_loop() {
  std::string frame;
  ShmBackoff backoff;
  auto last_housekeeping = Clock::now();
  while (!impl_->stop_flag.load(std::memory_order_acquire)) {
    bool progressed = false;
    while (impl_->inflight.load(std::memory_order_relaxed) <
           impl_->max_inflight) {
      const ShmRing::Pop r = impl_->request_ring.try_pop(frame);
      if (r == ShmRing::Pop::kEmpty) break;
      progressed = true;
      if (r == ShmRing::Pop::kFrame) dispatch(std::move(frame));
      frame.clear();
    }
    const auto now = Clock::now();
    if (now - last_housekeeping > std::chrono::milliseconds(5)) {
      reap_dead_clients();
      reclaim_torn_request();
      last_housekeeping = now;
    }
    if (progressed) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
  // Drain: every dispatched request must deliver (or drop) its reply
  // before the destructor unmaps the segment.
  while (impl_->inflight.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void ShmServer::dispatch(std::string frame) {
  if (frame.size() < sizeof(RequestPrefix)) return;  // torn frame: drop
  RequestPrefix prefix{};
  std::memcpy(&prefix, frame.data(), sizeof(prefix));
  if (prefix.client >= impl_->clients.size()) return;
  std::string line = frame.substr(sizeof(prefix));
  impl_->requests.fetch_add(1, std::memory_order_relaxed);
  impl_->inflight.fetch_add(1, std::memory_order_acq_rel);
  service_.handle_async(
      std::move(line),
      [this, client = prefix.client,
       generation = prefix.generation](std::string reply) {
        deliver(client, generation, reply);
        impl_->inflight.fetch_sub(1, std::memory_order_acq_rel);
      });
}

void ShmServer::deliver(std::uint32_t client, std::uint32_t generation,
                        const std::string& reply) {
  Impl::ClientView& view = *impl_->clients[client];
  const std::lock_guard lock(view.deliver_mutex);
  const auto stale = [&] {
    return view.slot->pid.load(std::memory_order_acquire) == 0 ||
           view.slot->generation.load(std::memory_order_acquire) !=
               generation;
  };
  if (stale()) {
    impl_->dropped_replies.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::string* payload = &reply;
  std::string fallback;
  if (reply.size() > impl_->options.frame_bytes) {
    fallback = oversize_reply_envelope(reply, impl_->options.frame_bytes);
    payload = &fallback;
  }
  const auto deadline = Clock::now() + kReplyPushDeadline;
  const auto pid = static_cast<std::uint32_t>(::getpid());
  ShmBackoff backoff;
  while (!view.reply_ring.try_push({}, *payload, pid)) {
    // A full reply ring means the client stopped draining; give it the
    // deadline, but bail immediately if it died or detached (its slot
    // cannot be reclaimed while we hold the deliver mutex).
    if (stale() ||
        !pid_alive(view.slot->pid.load(std::memory_order_acquire)) ||
        Clock::now() > deadline) {
      impl_->dropped_replies.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    backoff.pause();
  }
}

void ShmServer::reap_dead_clients() {
  for (auto& view_ptr : impl_->clients) {
    Impl::ClientView& view = *view_ptr;
    const std::uint32_t pid =
        view.slot->pid.load(std::memory_order_acquire);
    if (pid == 0 || pid_alive(pid)) continue;
    const std::lock_guard lock(view.deliver_mutex);
    if (view.slot->pid.load(std::memory_order_acquire) != pid) continue;
    // Invalidate the generation first: any in-flight delivery for the
    // dead client now fails its generation check (under this mutex)
    // instead of landing in a ring we are about to reset — or worse, in
    // a future client's ring.
    view.slot->generation.fetch_add(1, std::memory_order_acq_rel);
    view.reply_ring.reset();
    view.slot->pid.store(0, std::memory_order_release);
    impl_->reclaimed_clients.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShmServer::reclaim_torn_request() {
  const auto stalled = impl_->request_ring.stalled_claim();
  if (!stalled.has_value()) {
    impl_->stalled_seen = false;
    return;
  }
  if (!impl_->stalled_seen || impl_->stalled_pos != stalled->position) {
    impl_->stalled_seen = true;
    impl_->stalled_pos = stalled->position;
    impl_->stalled_since = Clock::now();
  }
  if (stalled->claimant != 0) {
    // Attributed: retire as soon as the claimant is dead; a live
    // claimant is a slow producer mid-copy — never force it.
    if (pid_alive(stalled->claimant)) return;
  } else if (Clock::now() - impl_->stalled_since < kTornPushGrace) {
    // Unattributable (death inside the claim/stamp window, a couple of
    // instructions wide): give a live-but-unlucky producer the grace
    // period before forcing.
    return;
  }
  if (impl_->request_ring.tombstone_stalled(stalled->position)) {
    impl_->reclaimed_requests.fetch_add(1, std::memory_order_relaxed);
  }
  impl_->stalled_seen = false;
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

struct ShmClient::Impl {
  std::string path;
  Mapping map;
  ShmRing request_ring;
  ShmRing reply_ring;
  ClientSlot* slot = nullptr;
  std::uint32_t index = 0;
  std::uint32_t generation = 0;
};

ShmClient::ShmClient(const std::string& name)
    : impl_(std::make_unique<Impl>()) {
  const std::string oname = object_name(name);
  impl_->path = ShmServer::segment_path(name);
  impl_->map = map_existing(oname, impl_->path);
  SegmentHeader* h = impl_->map.header;
  const std::uint32_t server =
      h->server_pid.load(std::memory_order_acquire);
  if (h->shutdown.load(std::memory_order_acquire) != 0) {
    impl_->map.unmap();
    throw ShmError(impl_->path, "server has shut down");
  }
  if (server == 0) {
    impl_->map.unmap();
    throw ShmError(impl_->path,
                   "segment exists but no server pid is published "
                   "(server still initialising, or died mid-create)");
  }
  if (!pid_alive(server)) {
    impl_->map.unmap();
    throw ShmError(impl_->path,
                   "stale segment: serving pid " + std::to_string(server) +
                       " is gone (a restarted server will recover it)");
  }
  // Claim a client-table slot.
  const auto my_pid = static_cast<std::uint32_t>(::getpid());
  ClientSlot* claimed = nullptr;
  for (std::uint32_t i = 0; i < h->max_clients; ++i) {
    auto* slot = reinterpret_cast<ClientSlot*>(
        impl_->map.at(h->client_table_offset + i * h->client_stride));
    std::uint32_t expected = 0;
    if (slot->pid.compare_exchange_strong(expected, my_pid,
                                          std::memory_order_acq_rel)) {
      claimed = slot;
      impl_->index = i;
      break;
    }
  }
  if (claimed == nullptr) {
    const std::uint32_t n = h->max_clients;
    impl_->map.unmap();
    throw ShmError(impl_->path, "all " + std::to_string(n) +
                                    " client slots are in use");
  }
  impl_->slot = claimed;
  impl_->generation =
      claimed->generation.fetch_add(1, std::memory_order_acq_rel) + 1;
  impl_->request_ring = ShmRing::view(impl_->map.at(h->request_ring_offset));
  impl_->reply_ring = ShmRing::view(
      impl_->map.at(h->client_table_offset +
                    impl_->index * h->client_stride + sizeof(ClientSlot)));
}

ShmClient::~ShmClient() {
  if (impl_->slot != nullptr) {
    impl_->slot->pid.store(0, std::memory_order_release);
  }
  impl_->map.unmap();
}

std::size_t ShmClient::frame_bytes() const {
  return impl_->map.header->frame_bytes -
         sizeof(RequestPrefix);  // usable request payload
}

std::string ShmClient::call(const std::string& line,
                            std::uint64_t timeout_ms) {
  SegmentHeader* h = impl_->map.header;
  if (sizeof(RequestPrefix) + line.size() > h->frame_bytes) {
    throw util::InvalidArgument(
        "request of " + std::to_string(line.size()) +
        " bytes exceeds the segment's frame capacity of " +
        std::to_string(h->frame_bytes - sizeof(RequestPrefix)) +
        " bytes (resize with --shm-frame-bytes or use the pipe "
        "transport)");
  }
  const RequestPrefix prefix{impl_->index, impl_->generation};
  char prefix_bytes[sizeof(RequestPrefix)];
  std::memcpy(prefix_bytes, &prefix, sizeof(prefix));
  const auto my_pid = static_cast<std::uint32_t>(::getpid());
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);

  const auto server_gone = [&] {
    if (h->shutdown.load(std::memory_order_acquire) != 0) {
      return std::string("server shut down");
    }
    const std::uint32_t pid = h->server_pid.load(std::memory_order_acquire);
    if (!pid_alive(pid)) {
      return "serving pid " + std::to_string(pid) + " is gone";
    }
    return std::string();
  };

  ShmBackoff backoff;
  auto last_liveness = Clock::now();
  while (!impl_->request_ring.try_push(
      std::string_view(prefix_bytes, sizeof(prefix_bytes)), line, my_pid)) {
    const std::string gone = server_gone();
    if (!gone.empty()) throw ShmError(impl_->path, gone);
    if (Clock::now() > deadline) {
      throw ShmError(impl_->path,
                     "request ring full for " + std::to_string(timeout_ms) +
                         " ms (server overloaded or wedged)");
    }
    backoff.pause();
  }

  std::string reply;
  backoff.reset();
  for (;;) {
    const ShmRing::Pop r = impl_->reply_ring.try_pop(reply);
    if (r == ShmRing::Pop::kFrame) return reply;
    if (r == ShmRing::Pop::kTombstone) continue;
    // The liveness syscall is rate-limited so a hot warm-hit round trip
    // stays syscall-free.
    const auto now = Clock::now();
    if (now - last_liveness > std::chrono::milliseconds(50)) {
      last_liveness = now;
      const std::string gone = server_gone();
      if (!gone.empty()) {
        throw ShmError(impl_->path, gone + " before replying");
      }
    }
    if (now > deadline) {
      throw ShmError(impl_->path, "no reply within " +
                                      std::to_string(timeout_ms) + " ms");
    }
    backoff.pause();
  }
}

}  // namespace ayd::service
