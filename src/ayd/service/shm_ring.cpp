#include "ayd/service/shm_ring.hpp"

#include <cstring>
#include <new>

#include "ayd/util/error.hpp"

namespace ayd::service {

// The bounded-MPMC discipline: slot i starts with seq == i ("free for
// the producer of position i"). A producer claims position p by CAS on
// head, writes the payload, then publishes with seq = p + 1. The
// consumer of position p waits for seq == p + 1, reads, and recycles
// with seq = p + slots ("free for the producer of position p + slots").
// The cursors only order *claims*; the slot sequence is the commit flag
// that orders the payload bytes.

struct alignas(kShmCacheLine) ShmRing::Header {
  std::atomic<std::uint64_t> head;  ///< next position to enqueue
  char pad0[kShmCacheLine - sizeof(std::atomic<std::uint64_t>)];
  std::atomic<std::uint64_t> tail;  ///< next position to dequeue
  char pad1[kShmCacheLine - sizeof(std::atomic<std::uint64_t>)];
  std::uint64_t slots;        ///< power of two
  std::uint64_t frame_bytes;  ///< payload capacity per slot
};

struct alignas(kShmCacheLine) ShmRing::Slot {
  std::atomic<std::uint64_t> seq;       ///< the commit flag (see above)
  std::atomic<std::uint32_t> claimant;  ///< producer pid mid-push; else 0
  std::uint32_t len;                    ///< payload length or kTombstoneLen
  // payload bytes follow at offset sizeof(Slot) (cache-line aligned).

  static void check_layout() {
    static_assert(sizeof(Header) == 3 * kShmCacheLine);
    static_assert(sizeof(Slot) == kShmCacheLine);
  }
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "shared-memory ring atomics must be lock-free: a lock-based "
              "fallback would place process-private mutexes in the segment");

namespace {

std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

bool is_pow2(std::size_t n) { return n >= 2 && (n & (n - 1)) == 0; }

}  // namespace

std::size_t ShmRing::slot_stride() const {
  return align_up(sizeof(Slot) + header_->frame_bytes, kShmCacheLine);
}

ShmRing::Slot* ShmRing::slot_at(std::uint64_t index) const {
  return reinterpret_cast<Slot*>(
      slot_base_ + static_cast<std::size_t>(index) * slot_stride());
}

std::size_t ShmRing::bytes_required(std::size_t slots,
                                    std::size_t frame_bytes) {
  if (!is_pow2(slots)) {
    throw util::InvalidArgument(
        "ShmRing: slot count must be a power of two >= 2");
  }
  return sizeof(Header) +
         slots * align_up(sizeof(Slot) + frame_bytes, kShmCacheLine);
}

ShmRing ShmRing::init(void* block, std::size_t slots,
                      std::size_t frame_bytes) {
  (void)bytes_required(slots, frame_bytes);  // validates `slots`
  auto* header = new (block) Header;
  header->head.store(0, std::memory_order_relaxed);
  header->tail.store(0, std::memory_order_relaxed);
  header->slots = slots;
  header->frame_bytes = frame_bytes;
  ShmRing ring(header, static_cast<char*>(block) + sizeof(Header));
  for (std::uint64_t i = 0; i < slots; ++i) {
    auto* slot = new (ring.slot_at(i)) Slot;
    slot->seq.store(i, std::memory_order_relaxed);
    slot->claimant.store(0, std::memory_order_relaxed);
    slot->len = 0;
  }
  std::atomic_thread_fence(std::memory_order_release);
  return ring;
}

ShmRing ShmRing::view(void* block) {
  auto* header = static_cast<Header*>(block);
  return ShmRing(header, static_cast<char*>(block) + sizeof(Header));
}

bool ShmRing::try_push(std::string_view prefix, std::string_view body,
                       std::uint32_t claimant_pid) {
  const std::size_t total = prefix.size() + body.size();
  if (total > header_->frame_bytes) {
    throw util::InvalidArgument(
        "ShmRing: frame of " + std::to_string(total) +
        " bytes exceeds the slot capacity of " +
        std::to_string(header_->frame_bytes) + " bytes");
  }
  const std::uint64_t mask = header_->slots - 1;
  std::uint64_t pos = header_->head.load(std::memory_order_relaxed);
  for (;;) {
    Slot* slot = slot_at(pos & mask);
    const std::uint64_t seq = slot->seq.load(std::memory_order_acquire);
    const auto dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (dif == 0) {
      if (header_->head.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
        // Claimed. Stamp the claimant first so a death anywhere in the
        // payload copy below is attributable to this pid.
        slot->claimant.store(claimant_pid, std::memory_order_relaxed);
        char* payload = reinterpret_cast<char*>(slot) + sizeof(Slot);
        std::memcpy(payload, prefix.data(), prefix.size());
        std::memcpy(payload + prefix.size(), body.data(), body.size());
        slot->len = static_cast<std::uint32_t>(total);
        slot->seq.store(pos + 1, std::memory_order_release);  // commit
        return true;
      }
      // CAS updated `pos` to the current head; retry there.
    } else if (dif < 0) {
      return false;  // the slot still holds an unconsumed older frame
    } else {
      pos = header_->head.load(std::memory_order_relaxed);
    }
  }
}

ShmRing::Pop ShmRing::try_pop(std::string& out) {
  const std::uint64_t mask = header_->slots - 1;
  std::uint64_t pos = header_->tail.load(std::memory_order_relaxed);
  for (;;) {
    Slot* slot = slot_at(pos & mask);
    const std::uint64_t seq = slot->seq.load(std::memory_order_acquire);
    const auto dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
    if (dif == 0) {
      if (header_->tail.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
        const bool tombstone = slot->len == kTombstoneLen;
        if (!tombstone) {
          const char* payload =
              reinterpret_cast<const char*>(slot) + sizeof(Slot);
          out.assign(payload, slot->len);
        }
        slot->claimant.store(0, std::memory_order_relaxed);
        // Recycle: free for the producer one lap ahead.
        slot->seq.store(pos + header_->slots, std::memory_order_release);
        return tombstone ? Pop::kTombstone : Pop::kFrame;
      }
    } else if (dif < 0) {
      return Pop::kEmpty;
    } else {
      pos = header_->tail.load(std::memory_order_relaxed);
    }
  }
}

std::optional<ShmRing::StalledClaim> ShmRing::stalled_claim() const {
  const std::uint64_t mask = header_->slots - 1;
  const std::uint64_t pos = header_->tail.load(std::memory_order_acquire);
  const Slot* slot = slot_at(pos & mask);
  // seq == pos means "free for the producer of pos" — unless head has
  // already moved past pos, in which case pos *was* claimed and its
  // producer never committed.
  if (slot->seq.load(std::memory_order_acquire) != pos) return std::nullopt;
  if (header_->head.load(std::memory_order_acquire) <= pos) {
    return std::nullopt;
  }
  return StalledClaim{pos, slot->claimant.load(std::memory_order_acquire)};
}

bool ShmRing::tombstone_stalled(std::uint64_t pos) {
  const std::uint64_t mask = header_->slots - 1;
  Slot* slot = slot_at(pos & mask);
  if (slot->seq.load(std::memory_order_acquire) != pos) {
    return false;  // the producer committed (or the slot recycled) meanwhile
  }
  slot->len = kTombstoneLen;
  slot->seq.store(pos + 1, std::memory_order_release);
  return true;
}

void ShmRing::reset() {
  header_->head.store(0, std::memory_order_relaxed);
  header_->tail.store(0, std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < header_->slots; ++i) {
    Slot* slot = slot_at(i);
    slot->claimant.store(0, std::memory_order_relaxed);
    slot->len = 0;
    slot->seq.store(i, std::memory_order_release);
  }
}

std::size_t ShmRing::approx_size() const {
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  const std::uint64_t tail = header_->tail.load(std::memory_order_acquire);
  return head >= tail ? static_cast<std::size_t>(head - tail) : 0;
}

std::size_t ShmRing::slots() const {
  return static_cast<std::size_t>(header_->slots);
}

std::size_t ShmRing::frame_bytes() const {
  return static_cast<std::size_t>(header_->frame_bytes);
}

std::uint64_t ShmRing::simulate_torn_push(std::uint32_t claimant) {
  const std::uint64_t pos =
      header_->head.fetch_add(1, std::memory_order_relaxed);
  if (claimant != 0) {
    slot_at(pos & (header_->slots - 1))
        ->claimant.store(claimant, std::memory_order_relaxed);
  }
  return pos;
}

}  // namespace ayd::service
