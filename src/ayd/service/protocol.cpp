#include "ayd/service/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "ayd/io/json.hpp"

namespace ayd::service {

namespace {

std::string serialize_value(const io::JsonValue& v) {
  std::ostringstream os;
  io::JsonWriter w(os, /*pretty=*/false);
  v.write(w);
  return os.str();
}

/// The CLI option spelling of one scalar parameter value.
std::string value_to_cli(const std::string& name, const io::JsonValue& v) {
  switch (v.kind()) {
    case io::JsonValue::Kind::kString:
      return v.as_string();
    case io::JsonValue::Kind::kNumber: {
      if (v.is_integer()) return std::to_string(v.as_int());
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", v.as_double());
      return buf;
    }
    default:
      throw ProtocolError(
          "bad_request",
          "parameter \"" + name + "\" must be a scalar (string, number, "
          "or boolean)");
  }
}

}  // namespace

Request parse_request(const std::string& line) {
  io::JsonValue doc;
  try {
    doc = io::parse_json(line);
  } catch (const util::Error& e) {
    throw ProtocolError("parse_error", e.what());
  }
  if (!doc.is_object()) {
    throw ProtocolError("parse_error", "request line must be a JSON object");
  }
  Request req;
  // The id is extracted before anything can fail validation, so even a
  // rejected request's error reply still carries the client's
  // correlation handle (a non-scalar id is the one exception — there is
  // nothing sensible to echo).
  if (const io::JsonValue* id = doc.find("id")) {
    if (id->is_array() || id->is_object()) {
      throw ProtocolError("bad_request", "\"id\" must be a scalar");
    }
    req.id = *id;
  }
  const io::JsonValue* op = doc.find("op");
  if (op == nullptr) {
    throw ProtocolError(req.id, "bad_request", "request is missing \"op\"");
  }
  if (!op->is_string()) {
    throw ProtocolError(req.id, "bad_request", "\"op\" must be a string");
  }
  req.op = op->as_string();
  for (const auto& [key, value] : doc.members()) {
    if (key == "op" || key == "id") continue;
    req.params.emplace_back(key, value);
  }
  return req;
}

std::vector<std::string> params_to_argv(
    const std::vector<std::pair<std::string, io::JsonValue>>& params) {
  std::vector<std::string> argv;
  argv.reserve(params.size());
  for (const auto& [raw_name, value] : params) {
    // A '=' inside a member name would silently splice into the
    // --name=value argv syntax ({"procs=512": true} must not become
    // --procs=512).
    if (raw_name.find('=') != std::string::npos) {
      throw ProtocolError("bad_request", "parameter name \"" + raw_name +
                                             "\" must not contain '='");
    }
    // Accept underscores as hyphens so JSON-friendly spellings
    // ("ci_rel_tol") reach the option table ("ci-rel-tol").
    std::string name = raw_name;
    for (char& c : name) {
      if (c == '_') c = '-';
    }
    if (value.is_bool()) {
      // Flags: true sets, false means "leave at default" (there is no
      // --no-X vocabulary in the CLI either).
      if (value.as_bool()) argv.push_back("--" + name);
      continue;
    }
    if (value.is_null()) {
      throw ProtocolError("bad_request",
                          "parameter \"" + raw_name + "\" must not be null");
    }
    argv.push_back("--" + name + "=" + value_to_cli(raw_name, value));
  }
  return argv;
}

std::string make_ok_reply(const io::JsonValue& id, std::string_view op,
                          std::string_view result_json) {
  std::string out = "{\"id\":";
  out += serialize_value(id);
  out += ",\"ok\":true,\"op\":\"";
  out += io::json_escape(op);
  out += "\",\"result\":";
  out += result_json;
  out += "}";
  return out;
}

std::string make_error_reply(const io::JsonValue& id, std::string_view code,
                             std::string_view message) {
  std::string out = "{\"id\":";
  out += serialize_value(id);
  out += ",\"ok\":false,\"error\":{\"code\":\"";
  out += io::json_escape(code);
  out += "\",\"message\":\"";
  out += io::json_escape(message);
  out += "\"}}";
  return out;
}

}  // namespace ayd::service
