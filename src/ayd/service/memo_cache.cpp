#include "ayd/service/memo_cache.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "ayd/service/store.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::service {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

MemoCache::MemoCache(std::size_t max_entries, std::size_t shards,
                     AnswerStore* store)
    : store_(store) {
  AYD_REQUIRE(max_entries >= 1, "MemoCache: max_entries must be >= 1");
  max_entries_ = max_entries;
  // Round up to a power of two, then halve back under the entry budget
  // (rounding before clamping could otherwise leave n > max_entries and
  // a total resident capacity above what the caller configured).
  std::size_t n = round_up_pow2(std::max<std::size_t>(shards, 1));
  while (n > max_entries) n >>= 1;
  per_shard_capacity_ = std::max<std::size_t>(1, max_entries / n);
  // Top bits select the shard, so keys with different hash prefixes land
  // on different mutexes (n is a power of two: n = 1 << k, shift 64 - k).
  unsigned bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  shard_shift_ = 64 - bits;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

MemoCache::Shard& MemoCache::shard_for(std::uint64_t hash) {
  // shift == 64 (single shard) is UB on a raw >>, so special-case it.
  const std::size_t index =
      shard_shift_ >= 64 ? 0 : static_cast<std::size_t>(hash >> shard_shift_);
  return *shards_[index];
}

MemoCache::Lookup MemoCache::get_or_compute(const CanonicalKey& key,
                                            const Compute& compute) {
  Shard& shard = shard_for(key.hash);
  std::shared_future<Value> wait_on;
  // Engaged when this thread owns the (single-flight) computation.
  std::optional<std::promise<Value>> owned;

  {
    const std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(key.text);
    if (it != shard.entries.end()) {
      Entry& entry = it->second;
      if (entry.ready) {
        ++shard.hits;
        // Touch: move to the front of the LRU list.
        shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_pos);
        return {entry.result.get(), /*hit=*/true};
      }
      ++shard.coalesced;
      wait_on = entry.result;  // wait outside the lock
    } else {
      // The miss-vs-disk-hit counter is decided below, once the owner
      // has consulted the persistent tier.
      owned.emplace();
      Entry entry;
      entry.result = owned->get_future().share();
      shard.entries.emplace(key.text, std::move(entry));
    }
  }

  if (owned.has_value()) {
    // Publishes `value` as the completed entry: resolves the future,
    // marks ready, touches the LRU, evicts over capacity.
    const auto publish = [&](Value value) {
      owned->set_value(value);
      const std::lock_guard lock(shard.mutex);
      const auto it = shard.entries.find(key.text);
      if (it != shard.entries.end()) {
        it->second.ready = true;
        shard.lru.push_front(key.text);
        it->second.lru_pos = shard.lru.begin();
        while (shard.lru.size() > per_shard_capacity_) {
          shard.entries.erase(shard.lru.back());
          shard.lru.pop_back();
          ++shard.evictions;
        }
      }
    };

    // Tier 2, read-through: the single-flight owner checks the
    // persistent store before computing. Waiters on the in-flight
    // entry are served either way; a store read failure (quarantined
    // or concurrently damaged file) degrades to recomputation.
    if (store_ != nullptr) {
      std::optional<std::string> persisted;
      try {
        persisted = store_->get(key.text);
      } catch (const util::Error&) {
        persisted.reset();
      }
      if (persisted.has_value()) {
        Value value =
            std::make_shared<const std::string>(*std::move(persisted));
        publish(value);
        {
          const std::lock_guard lock(shard.mutex);
          ++shard.disk_hits;
        }
        return {std::move(value), /*hit=*/true};
      }
    }

    {
      const std::lock_guard lock(shard.mutex);
      ++shard.misses;
    }
    // Compute outside the lock (it may take seconds of simulation); the
    // in-flight entry parked concurrent identical requests on the future.
    try {
      Value value = std::make_shared<const std::string>(compute());
      publish(value);
      // Write-behind: persist after publishing so waiters are never
      // delayed by disk I/O; an append failure only costs persistence.
      if (store_ != nullptr) {
        try {
          store_->put(key.text, key.hash, *value);
        } catch (const util::Error&) {
          // Degraded store: keep serving from memory.
        }
      }
      return {std::move(value), /*hit=*/false};
    } catch (...) {
      owned->set_exception(std::current_exception());
      {
        const std::lock_guard lock(shard.mutex);
        const auto it = shard.entries.find(key.text);
        if (it != shard.entries.end() && !it->second.ready) {
          shard.entries.erase(it);
        }
      }
      throw;
    }
  }

  // Coalesced path: wait for the computing thread. get() rethrows the
  // computation's exception to every waiter.
  return {wait_on.get(), /*hit=*/true};
}

CacheStats MemoCache::stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.disk_hits += shard->disk_hits;
    out.coalesced += shard->coalesced;
    out.evictions += shard->evictions;
    out.entries += shard->entries.size();
  }
  return out;
}

}  // namespace ayd::service
