// Persistent content-addressed answer store — the planning service's
// tier-2 cache (ROADMAP item 3).
//
// Every answer the service produces is a pure function of its canonical
// scenario key (canonical.hpp), so a stored reply never goes stale: the
// only correctness question a disk tier has to answer is "are these the
// exact bytes that were written?". The store is therefore built as an
// append-only record log whose every record is independently
// checksummed, with the index rebuilt by a full scan on open and kept in
// memory — no mutable on-disk index structure exists that a crash could
// corrupt.
//
// File layout (little-endian, `answers.aydstore` inside --cache-dir):
//
//   header   "AYDSTORE" | u32 version | u32 flags | u64 hash_seed
//   record*  u32 key_len | u32 value_len | u64 key_hash(FNV-1a of key)
//            | key bytes | value bytes | u32 crc32
//
// The CRC-32 (IEEE 802.3) covers the 16-byte record prefix plus the key
// and value bytes. `hash_seed` is the FNV-1a offset basis the writer
// keyed with; readers reject a store hashed under any other seed (or
// any other format version) instead of mixing records keyed by
// different functions.
//
// Recovery is robust by construction (pinned by
// tests/service_store_test.cpp):
//  * A *torn tail* — the crash-mid-append signature: the final record's
//    declared extent runs past EOF, or its CRC fails with nothing after
//    it — is silently truncated on open; everything before it is intact
//    by checksum and the store keeps appending where the good prefix
//    ends.
//  * A *corrupt middle record* (bad CRC with valid records after it)
//    cannot be explained by a crash; it means the file was damaged.
//    The store refuses to serve any of its bytes: the file is moved
//    aside to `<name>.quarantine` and a fresh, empty log is started.
//  * `get` re-reads and re-checksums the record on every hit, so bytes
//    corrupted after open are detected rather than served.
//  * Duplicate keys (e.g. from an import) resolve last-record-wins;
//    `export_to` writes a compacted copy with exactly one record per
//    live key.
//
// Concurrency: every public member takes one internal mutex — the store
// sits behind the sharded MemoCache (memo_cache.hpp), which only
// consults it on a shard miss, so the single lock is not a hot path.

#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "ayd/util/error.hpp"

namespace ayd::service {

/// A store file could not be opened, validated, or written. The message
/// always carries both the offending path and the reason, so CLI errors
/// and service error envelopes alike are actionable.
class StoreError : public util::IoError {
 public:
  StoreError(std::string path, std::string reason)
      : util::IoError("answer store " + path + ": " + reason),
        path_(std::move(path)),
        reason_(std::move(reason)) {}
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& reason() const { return reason_; }

 private:
  std::string path_;
  std::string reason_;
};

/// What the opening scan found (served by `ayd cache stats` and the
/// service's "stats" op).
struct StoreOpenStats {
  std::uint64_t records_scanned = 0;  ///< valid records read (incl. superseded)
  std::uint64_t truncated_bytes = 0;  ///< torn tail dropped on open
  bool quarantined = false;           ///< a corrupt middle record was found
  std::string quarantine_path;        ///< where the damaged file was moved
};

/// The append-only, content-hash-keyed record log (see the file header
/// comment for the format and recovery semantics). One instance owns
/// one store file; the in-memory index maps canonical key text to the
/// record's file extent.
class AnswerStore {
 public:
  /// v2: canonical keys gained the system "ext" member (correlated /
  /// multi-level failure worlds, model/correlated.hpp). The key schema
  /// is part of a record's identity, so older stores are refused rather
  /// than reinterpreted — see tests/service_store_test.cpp.
  static constexpr std::uint32_t kFormatVersion = 2;
  /// FNV-1a offset basis: the hash seed every record's key_hash is
  /// derived from. Stored in the header; a mismatch rejects the file.
  static constexpr std::uint64_t kHashSeed = 0xcbf29ce484222325ull;
  static constexpr const char* kFileName = "answers.aydstore";

  /// Opens (or creates) the store file at `path`, scanning and
  /// validating every record to rebuild the in-memory index. Throws
  /// StoreError when the file exists but is not a compatible store
  /// (bad magic, header version or hash-seed mismatch, unreadable).
  explicit AnswerStore(std::string path);

  AnswerStore(const AnswerStore&) = delete;
  AnswerStore& operator=(const AnswerStore&) = delete;

  /// `dir` + "/answers.aydstore", creating `dir` (and parents) first.
  /// Throws StoreError when the directory cannot be created.
  [[nodiscard]] static std::string path_in_dir(const std::string& dir);

  /// The stored answer for `key_text`, re-read and re-checksummed from
  /// disk. Returns nullopt on a miss; throws StoreError if the record's
  /// bytes no longer validate (never serves bad bytes).
  [[nodiscard]] std::optional<std::string> get(std::string_view key_text);

  /// Appends one record (write-behind tier: called after a computation
  /// completes) and flushes it. A key that is already live is skipped —
  /// answers are deterministic, so rewriting could only grow the log.
  /// `key_hash` must be fnv1a64(key_text); throws StoreError otherwise.
  void put(std::string_view key_text, std::uint64_t key_hash,
           std::string_view value);

  [[nodiscard]] bool contains(std::string_view key_text) const;
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::uint64_t file_bytes() const;
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const StoreOpenStats& open_stats() const {
    return open_stats_;
  }

  /// Visits every live (key, value) pair in deterministic (sorted-key)
  /// order, loading each value from disk.
  void for_each(
      const std::function<void(const std::string& key, const std::string&
                                                           value)>& fn);

  /// Writes a compacted copy — one record per live key, sorted — to
  /// `out_path` (the `ayd cache export` artifact).
  void export_to(const std::string& out_path);

  struct ImportStats {
    std::uint64_t imported = 0;  ///< new records appended
    std::uint64_t skipped = 0;   ///< keys already live here
  };

  /// Merges every live record of the store file at `other_path` into
  /// this store. The source must be a compatible store (same format
  /// version and hash seed) — otherwise StoreError, carrying the path
  /// and the reason, and *nothing* is imported. A torn tail in the
  /// source is tolerated (the good prefix imports); a corrupt middle
  /// record rejects the source file.
  ImportStats import_from(const std::string& other_path);

 private:
  struct IndexEntry {
    std::uint64_t offset = 0;  ///< record start (the key_len field)
    std::uint32_t key_len = 0;
    std::uint32_t value_len = 0;
  };

  /// Reads + validates the record at `e` from the open file; the mutex
  /// must be held.
  [[nodiscard]] std::string read_value_locked(const IndexEntry& e);
  void append_locked(std::string_view key_text, std::uint64_t key_hash,
                     std::string_view value);
  void open_and_scan();

  mutable std::mutex mutex_;
  std::string path_;
  std::fstream file_;
  std::uint64_t file_bytes_ = 0;
  std::unordered_map<std::string, IndexEntry> index_;
  StoreOpenStats open_stats_;
};

}  // namespace ayd::service
