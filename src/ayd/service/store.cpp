#include "ayd/service/store.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "ayd/service/canonical.hpp"

namespace ayd::service {

namespace {

constexpr char kMagic[8] = {'A', 'Y', 'D', 'S', 'T', 'O', 'R', 'E'};
constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kRecordPrefixBytes = 16;
constexpr std::size_t kCrcBytes = 4;
/// Per-field sanity bound: a length beyond this is garbage, not data.
constexpr std::uint32_t kMaxFieldBytes = 1u << 30;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t crc32(std::uint32_t crc, std::string_view bytes) {
  const auto& table = crc32_table();
  crc ^= 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// Explicit little-endian packing so the on-disk format does not depend
// on host byte order.
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t get_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) |
        static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t get_u64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) |
        static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::string header_bytes() {
  std::string out(kMagic, sizeof kMagic);
  put_u32(out, AnswerStore::kFormatVersion);
  put_u32(out, 0);  // flags, reserved
  put_u64(out, AnswerStore::kHashSeed);
  return out;
}

/// One serialised record: prefix | key | value | crc.
std::string record_bytes(std::string_view key, std::uint64_t key_hash,
                         std::string_view value) {
  std::string out;
  out.reserve(kRecordPrefixBytes + key.size() + value.size() + kCrcBytes);
  put_u32(out, static_cast<std::uint32_t>(key.size()));
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  put_u64(out, key_hash);
  out.append(key);
  out.append(value);
  put_u32(out, crc32(0, out));
  return out;
}

/// Validates the 24-byte header; throws StoreError naming `path` and the
/// precise mismatch (truncated / bad magic / version / hash seed).
void validate_header(const std::string& path, std::string_view bytes) {
  if (bytes.size() < kHeaderBytes) {
    throw StoreError(path, "truncated header (" +
                               std::to_string(bytes.size()) +
                               " bytes; a store header is " +
                               std::to_string(kHeaderBytes) + ")");
  }
  if (bytes.substr(0, sizeof kMagic) !=
      std::string_view(kMagic, sizeof kMagic)) {
    throw StoreError(path, "bad magic (not an answer-store file)");
  }
  const std::uint32_t version = get_u32(bytes, 8);
  if (version != AnswerStore::kFormatVersion) {
    throw StoreError(
        path, "format version mismatch (file has v" +
                  std::to_string(version) + ", this build reads v" +
                  std::to_string(AnswerStore::kFormatVersion) + ")");
  }
  const std::uint64_t seed = get_u64(bytes, 16);
  if (seed != AnswerStore::kHashSeed) {
    throw StoreError(path,
                     "hash-seed mismatch (records were keyed under a "
                     "different hash function; refusing to mix)");
  }
}

struct ScannedRecord {
  std::uint64_t offset = 0;  ///< record start within the file
  std::uint32_t key_len = 0;
  std::uint32_t value_len = 0;
  std::string key;
};

struct ScanOutcome {
  std::vector<ScannedRecord> records;
  std::uint64_t good_end = 0;      ///< end of the last valid record
  bool corrupt_middle = false;     ///< bad record with valid data after it
  std::string corrupt_reason;
};

/// Walks the record log after the header. A record that runs past EOF or
/// fails its checksum *at the tail* is the crash-mid-append signature
/// (good_end stops before it); the same failure with bytes after it is
/// unexplainable by a crash and flags corrupt_middle.
ScanOutcome scan_records(std::string_view bytes) {
  ScanOutcome out;
  out.good_end = kHeaderBytes;
  std::size_t pos = kHeaderBytes;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordPrefixBytes) break;  // torn prefix
    const std::uint32_t key_len = get_u32(bytes, pos);
    const std::uint32_t value_len = get_u32(bytes, pos + 4);
    const std::uint64_t key_hash = get_u64(bytes, pos + 8);
    if (key_len > kMaxFieldBytes || value_len > kMaxFieldBytes) {
      // Garbage lengths: treat like a failed checksum at this offset.
      out.corrupt_middle = true;
      out.corrupt_reason = "record at offset " + std::to_string(pos) +
                           " has implausible lengths";
      return out;
    }
    const std::uint64_t extent = kRecordPrefixBytes +
                                 std::uint64_t{key_len} + value_len +
                                 kCrcBytes;
    if (bytes.size() - pos < extent) break;  // torn tail
    const std::string_view body =
        bytes.substr(pos, static_cast<std::size_t>(extent) - kCrcBytes);
    const std::uint32_t stored_crc =
        get_u32(bytes, pos + static_cast<std::size_t>(extent) - kCrcBytes);
    const std::string_view key =
        bytes.substr(pos + kRecordPrefixBytes, key_len);
    if (crc32(0, body) != stored_crc || fnv1a64(key) != key_hash) {
      if (pos + extent >= bytes.size()) break;  // bad final record: torn
      out.corrupt_middle = true;
      out.corrupt_reason = "record at offset " + std::to_string(pos) +
                           " failed its checksum but valid data follows";
      return out;
    }
    ScannedRecord rec;
    rec.offset = pos;
    rec.key_len = key_len;
    rec.value_len = value_len;
    rec.key.assign(key);
    out.records.push_back(std::move(rec));
    pos += static_cast<std::size_t>(extent);
    out.good_end = pos;
  }
  return out;
}

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw StoreError(path, "cannot open for reading");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) throw StoreError(path, "read failed");
  return bytes;
}

}  // namespace

AnswerStore::AnswerStore(std::string path) : path_(std::move(path)) {
  open_and_scan();
}

std::string AnswerStore::path_in_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw StoreError(dir, "cannot create cache directory: " + ec.message());
  }
  return (std::filesystem::path(dir) / kFileName).string();
}

void AnswerStore::open_and_scan() {
  namespace fs = std::filesystem;
  if (!fs::exists(path_)) {
    std::ofstream create(path_, std::ios::binary);
    if (!create) throw StoreError(path_, "cannot create");
    create << header_bytes();
    create.flush();
    if (!create) throw StoreError(path_, "cannot write header");
  } else {
    std::string bytes = read_whole_file(path_);
    if (bytes.empty()) {
      // A zero-byte file (e.g. a crash immediately after create):
      // rewrite the header and start fresh.
      std::ofstream create(path_, std::ios::binary);
      create << header_bytes();
      create.flush();
      if (!create) throw StoreError(path_, "cannot write header");
    } else {
      validate_header(path_, bytes);
      ScanOutcome scan = scan_records(bytes);
      if (scan.corrupt_middle) {
        // Damage, not a crash: never serve any byte of this file. Move
        // it aside and start an empty log.
        const std::string quarantine = path_ + ".quarantine";
        std::error_code ec;
        fs::rename(path_, quarantine, ec);
        if (ec) {
          throw StoreError(path_, "corrupt record (" + scan.corrupt_reason +
                                      ") and quarantine rename failed: " +
                                      ec.message());
        }
        open_stats_.quarantined = true;
        open_stats_.quarantine_path = quarantine;
        std::ofstream create(path_, std::ios::binary);
        create << header_bytes();
        create.flush();
        if (!create) throw StoreError(path_, "cannot write header");
      } else {
        if (scan.good_end < bytes.size()) {
          // Torn tail: drop the partial record so the next append
          // starts a clean one.
          open_stats_.truncated_bytes = bytes.size() - scan.good_end;
          std::error_code ec;
          fs::resize_file(path_, scan.good_end, ec);
          if (ec) {
            throw StoreError(path_, "cannot truncate torn tail: " +
                                        ec.message());
          }
        }
        open_stats_.records_scanned = scan.records.size();
        for (ScannedRecord& rec : scan.records) {
          // Later records win (import/merge semantics).
          index_[std::move(rec.key)] =
              IndexEntry{rec.offset, rec.key_len, rec.value_len};
        }
      }
    }
  }
  file_.open(path_, std::ios::in | std::ios::out | std::ios::binary);
  if (!file_) throw StoreError(path_, "cannot open for read/write");
  file_.seekg(0, std::ios::end);
  file_bytes_ = static_cast<std::uint64_t>(file_.tellg());
}

std::string AnswerStore::read_value_locked(const IndexEntry& e) {
  const std::size_t extent = kRecordPrefixBytes + e.key_len + e.value_len +
                             kCrcBytes;
  std::string bytes(extent, '\0');
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(e.offset));
  file_.read(bytes.data(), static_cast<std::streamsize>(extent));
  if (file_.gcount() != static_cast<std::streamsize>(extent)) {
    throw StoreError(path_, "record at offset " + std::to_string(e.offset) +
                                " no longer readable");
  }
  const std::string_view view(bytes);
  const std::uint32_t stored_crc = get_u32(view, extent - kCrcBytes);
  if (crc32(0, view.substr(0, extent - kCrcBytes)) != stored_crc) {
    throw StoreError(path_, "record at offset " + std::to_string(e.offset) +
                                " failed its checksum on read");
  }
  return bytes.substr(kRecordPrefixBytes + e.key_len, e.value_len);
}

std::optional<std::string> AnswerStore::get(std::string_view key_text) {
  const std::lock_guard lock(mutex_);
  const auto it = index_.find(std::string(key_text));
  if (it == index_.end()) return std::nullopt;
  return read_value_locked(it->second);
}

void AnswerStore::append_locked(std::string_view key_text,
                                std::uint64_t key_hash,
                                std::string_view value) {
  const std::string rec = record_bytes(key_text, key_hash, value);
  file_.clear();
  file_.seekp(static_cast<std::streamoff>(file_bytes_));
  file_.write(rec.data(), static_cast<std::streamsize>(rec.size()));
  file_.flush();
  if (!file_) throw StoreError(path_, "append failed");
  index_[std::string(key_text)] =
      IndexEntry{file_bytes_, static_cast<std::uint32_t>(key_text.size()),
                 static_cast<std::uint32_t>(value.size())};
  file_bytes_ += rec.size();
}

void AnswerStore::put(std::string_view key_text, std::uint64_t key_hash,
                      std::string_view value) {
  if (fnv1a64(key_text) != key_hash) {
    throw StoreError(path_, "put: key_hash is not fnv1a64(key)");
  }
  const std::lock_guard lock(mutex_);
  if (index_.count(std::string(key_text)) != 0) return;
  append_locked(key_text, key_hash, value);
}

bool AnswerStore::contains(std::string_view key_text) const {
  const std::lock_guard lock(mutex_);
  return index_.count(std::string(key_text)) != 0;
}

std::size_t AnswerStore::entries() const {
  const std::lock_guard lock(mutex_);
  return index_.size();
}

std::uint64_t AnswerStore::file_bytes() const {
  const std::lock_guard lock(mutex_);
  return file_bytes_;
}

void AnswerStore::for_each(
    const std::function<void(const std::string&, const std::string&)>& fn) {
  const std::lock_guard lock(mutex_);
  std::vector<const std::string*> keys;
  keys.reserve(index_.size());
  for (const auto& [key, entry] : index_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* key : keys) {
    fn(*key, read_value_locked(index_.at(*key)));
  }
}

void AnswerStore::export_to(const std::string& out_path) {
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) throw StoreError(out_path, "cannot create export file");
  out << header_bytes();
  for_each([&](const std::string& key, const std::string& value) {
    out << record_bytes(key, fnv1a64(key), value);
  });
  out.flush();
  if (!out) throw StoreError(out_path, "export write failed");
}

AnswerStore::ImportStats AnswerStore::import_from(
    const std::string& other_path) {
  const std::string bytes = read_whole_file(other_path);
  validate_header(other_path, bytes);
  const ScanOutcome scan = scan_records(bytes);
  if (scan.corrupt_middle) {
    throw StoreError(other_path, scan.corrupt_reason);
  }
  // Last record wins within the source, mirroring open_and_scan.
  std::vector<const ScannedRecord*> live;
  {
    std::unordered_map<std::string_view, std::size_t> latest;
    for (std::size_t i = 0; i < scan.records.size(); ++i) {
      latest[scan.records[i].key] = i;
    }
    for (const auto& [key, i] : latest) live.push_back(&scan.records[i]);
    std::sort(live.begin(), live.end(),
              [](const ScannedRecord* a, const ScannedRecord* b) {
                return a->key < b->key;
              });
  }
  ImportStats stats;
  const std::lock_guard lock(mutex_);
  for (const ScannedRecord* rec : live) {
    if (index_.count(rec->key) != 0) {
      ++stats.skipped;
      continue;
    }
    const std::string_view value(
        bytes.data() + rec->offset + kRecordPrefixBytes + rec->key_len,
        rec->value_len);
    append_locked(rec->key, fnv1a64(rec->key), value);
    ++stats.imported;
  }
  return stats;
}

}  // namespace ayd::service
