#include "ayd/service/canonical.hpp"

#include "ayd/model/failure_dist.hpp"
#include "ayd/tool/optimize_json.hpp"

namespace ayd::service {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

CanonicalKeyBuilder::CanonicalKeyBuilder(std::string_view op)
    : writer_(os_, /*pretty=*/false) {
  writer_.begin_object();
  writer_.kv("op", op);
}

namespace {

void write_cost(io::JsonWriter& w, std::string_view key,
                const model::CostModel& cost) {
  w.key(key);
  w.begin_array();
  w.value(cost.constant_coeff());
  w.value(cost.inverse_coeff());
  w.value(cost.linear_coeff());
  w.end_array();
}

}  // namespace

CanonicalKeyBuilder& CanonicalKeyBuilder::system(const model::System& sys) {
  writer_.key("system");
  writer_.begin_object();
  writer_.kv("lambda_ind", sys.failure().lambda_ind());
  writer_.kv("fail_stop_fraction", sys.failure().fail_stop_fraction());
  writer_.key("failure_dist");
  sys.failure().dist().write_json(writer_);
  writer_.kv("downtime", sys.downtime());
  write_cost(writer_, "checkpoint", sys.costs().checkpoint);
  write_cost(writer_, "recovery", sys.costs().recovery);
  write_cost(writer_, "verification", sys.costs().verification);
  writer_.key("speedup");
  writer_.begin_array();
  writer_.value(static_cast<std::int64_t>(sys.speedup_model().kind()));
  writer_.value(sys.speedup_model().parameter());
  writer_.end_array();
  // Correlated-world extensions are part of the answer's identity.
  // Degenerate specs never reach here: System normalizes them away at
  // construction, so an extended system is one whose simulated answers
  // genuinely differ from the plain system's.
  if (sys.extension() != nullptr) {
    writer_.key("ext");
    sys.extension()->write_json(writer_);
  }
  writer_.end_object();
  return *this;
}

CanonicalKeyBuilder& CanonicalKeyBuilder::field(std::string_view key,
                                                double v) {
  writer_.kv(key, v);
  return *this;
}

CanonicalKeyBuilder& CanonicalKeyBuilder::field(std::string_view key,
                                                std::uint64_t v) {
  writer_.kv(key, v);
  return *this;
}

CanonicalKeyBuilder& CanonicalKeyBuilder::field(std::string_view key,
                                                bool v) {
  writer_.kv(key, v);
  return *this;
}

CanonicalKeyBuilder& CanonicalKeyBuilder::field(std::string_view key,
                                                std::string_view v) {
  writer_.kv(key, v);
  return *this;
}

CanonicalKey CanonicalKeyBuilder::finish() {
  writer_.end_object();
  CanonicalKey key;
  key.text = os_.str();
  key.hash = fnv1a64(key.text);
  return key;
}

CanonicalKey optimize_canonical_key(const model::System& sys,
                                    const tool::OptimizeRequest& req) {
  CanonicalKeyBuilder builder("optimize");
  builder.system(sys)
      .field("fixed_procs", req.procs.has_value())
      .field("procs", req.procs.value_or(0.0))
      .field("max_procs", req.max_procs)
      .field("simulate", req.simulate);
  if (req.simulate) {
    const sim::ReplicationOptions& rep = req.sim_search.period.replication;
    const sim::AdaptiveOptions& adapt = req.sim_search.period.adaptive;
    builder.field("runs", static_cast<std::uint64_t>(adapt.min_replicas))
        .field("patterns",
               static_cast<std::uint64_t>(rep.patterns_per_replica))
        .field("seed", static_cast<std::uint64_t>(rep.seed))
        .field("backend",
               rep.backend == sim::Backend::kDes ? "des" : "fast")
        .field("ci_rel_tol", adapt.ci_rel_tol)
        .field("max_reps", static_cast<std::uint64_t>(adapt.max_replicas));
  }
  return builder.finish();
}

}  // namespace ayd::service
