#include "ayd/service/replan.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "ayd/io/json.hpp"
#include "ayd/model/failure_dist.hpp"
#include "ayd/util/contracts.hpp"

namespace ayd::service {
namespace {

void write_fit(io::JsonWriter& w, const stats::MleFit& fit) {
  w.begin_object();
  w.kv("family", stats::fit_family_name(fit.family));
  w.kv("shape", fit.shape);
  w.kv("scale", fit.scale);
  w.kv("rate", fit.rate);
  w.kv("log_likelihood", fit.log_likelihood);
  w.kv("window", static_cast<std::uint64_t>(fit.count));
  w.end_object();
}

void write_optimum(io::JsonWriter& w, const core::SimPeriodOptimum& opt) {
  w.kv("period", opt.period);
  w.kv("seed_period", opt.seed_period);
  w.kv("overhead_mean", opt.overhead.mean);
  w.key("overhead_ci");
  w.begin_array();
  w.value(opt.overhead.ci.lo);
  w.value(opt.overhead.ci.hi);
  w.end_array();
  w.kv("used_closed_form", opt.used_closed_form);
  w.kv("converged", opt.converged);
  w.kv("evaluations", static_cast<std::int64_t>(opt.evaluations));
  w.kv("replicas", static_cast<std::uint64_t>(opt.total_replicas));
}

}  // namespace

Replanner::Replanner(model::System base, ReplanOptions options,
                     exec::ThreadPool* pool)
    : base_(base),
      deployed_(base),
      options_(std::move(options)),
      pool_(pool),
      fit_(options_.fit) {
  AYD_REQUIRE(std::isfinite(options_.procs) && options_.procs >= 1.0,
              "replan: procs must be finite and >= 1");
}

core::SimPeriodOptimum Replanner::optimize(const model::System& sys,
                                           double warm_start) {
  core::SimSearchOptions search = options_.search;
  search.warm_start = warm_start;
  return core::sim_optimal_period(sys, options_.procs, search, pool_);
}

std::string Replanner::initial_record() {
  AYD_REQUIRE(!planned_, "replan: initial_record() must run exactly once");
  planned_ = true;

  const auto optimum = optimize(base_, /*warm_start=*/0.0);
  deployed_period_ = optimum.period;

  // The GLR null: the deployed inter-arrival density at the total
  // platform rate. Instantiations are immutable and shareable, so the
  // lambda holds the distribution alive by value. Trace-replay and
  // error-free deployments have no density (pdf == 0 everywhere -> the
  // log floor), so the first stable fit reads as an improvement and
  // re-plans immediately — the desired cold-telemetry behaviour.
  std::shared_ptr<const model::FailureDistribution> dist =
      base_.failure().dist().instantiate(
          base_.failure().total_rate(options_.procs));
  fit_.set_baseline([dist](double x) {
    const double p = dist->pdf(x);
    return p > 0.0 ? std::log(p) : stats::kLogDensityFloor;
  });

  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.kv("type", "plan");
  w.kv("event", std::uint64_t{0});
  w.kv("procs", options_.procs);
  w.kv("dist", base_.failure().dist().to_string());
  w.kv("lambda_ind", base_.failure().lambda_ind());
  write_optimum(w, optimum);
  w.end_object();
  return os.str();
}

std::optional<std::string> Replanner::on_gap(double gap) {
  AYD_REQUIRE(planned_, "replan: initial_record() must run before on_gap()");
  ++events_;
  const auto decision = fit_.add(gap);
  if (!decision.drift) return std::nullopt;

  const auto fitted = model::failure_dist_from_fit(decision.fit);
  if (!fitted.valid) return std::nullopt;

  // Telemetry is the total error process at the deployed allocation;
  // FailureModel wants the per-processor rate. The fail-stop fraction is
  // configuration, not something gaps can identify, so it carries over.
  const model::System next =
      base_.with_failure_dist(fitted.spec)
          .with_lambda(fitted.rate / options_.procs);

  const double old_period = deployed_period_;
  const auto optimum = optimize(next, /*warm_start=*/old_period);
  deployed_ = next;
  deployed_period_ = optimum.period;
  ++replans_;
  fit_.rebase();

  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.kv("type", "replan");
  w.kv("event", static_cast<std::uint64_t>(events_));
  w.kv("replan", static_cast<std::uint64_t>(replans_));
  w.kv("old_period", old_period);
  w.kv("new_period", optimum.period);
  w.kv("warm_start", old_period);
  w.kv("dist", fitted.spec.to_string());
  w.kv("lambda_ind", fitted.rate / options_.procs);
  w.key("fit");
  write_fit(w, decision.fit);
  w.key("trigger");
  w.begin_object();
  w.kv("mean_llr", decision.mean_llr);
  w.kv("llr_ci_lo", decision.llr_ci_lo);
  w.kv("ci_level", options_.fit.drift_ci_level);
  w.kv("threshold", options_.fit.min_mean_llr);
  w.end_object();
  write_optimum(w, optimum);
  w.end_object();
  return os.str();
}

std::string Replanner::summary_record() const {
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.kv("type", "summary");
  w.kv("events", static_cast<std::uint64_t>(events_));
  w.kv("accepted", static_cast<std::uint64_t>(fit_.count()));
  w.kv("replans", static_cast<std::uint64_t>(replans_));
  w.kv("period", deployed_period_);
  w.kv("dist", deployed_.failure().dist().to_string());
  w.end_object();
  return os.str();
}

}  // namespace ayd::service
