// Sharded, thread-safe, single-flight LRU memo cache for the planning
// service.
//
// The cache maps a canonical request key (see canonical.hpp) to the
// serialised result JSON of its evaluation. Cached answers stay valid
// forever: every evaluation in this repository is a pure, deterministic
// function of the resolved request (simulation replica i always draws
// RNG substream (seed, i)), so a stored reply — confidence intervals
// included — is bit-identical to what a recomputation would produce.
// That determinism invariant is what makes memoisation sound here, and
// tests/service_cache_test.cpp pins it.
//
// Concurrency design:
//  * N shards (a power of two), selected by the top bits of the 64-bit
//    content hash; each shard owns a mutex, an open-addressed map from
//    canonical text to entry, and an LRU list. Requests with different
//    hash prefixes never contend.
//  * Single-flight: the first thread to miss a key inserts an in-flight
//    entry and computes outside the shard lock; concurrent requests for
//    the same key find the entry and block on its shared_future instead
//    of recomputing ("coalesced" in the stats). A failed computation
//    removes the entry so later requests retry.
//  * Eviction is per shard, LRU over *completed* entries only, with a
//    per-shard capacity of max(1, max_entries / shards). In-flight
//    entries are never evicted (their waiters hold the future).
//  * Tier 2 (optional): a persistent AnswerStore (store.hpp). The
//    single-flight owner of a miss consults the store *before*
//    computing (read-through; a disk hit is promoted into the LRU and
//    counted as `disk_hits`, not a miss) and appends every freshly
//    computed answer after publishing it (write-behind). Concurrency
//    semantics are unchanged: coalesced waiters never touch the store,
//    and a store I/O failure silently degrades to recomputation —
//    the disk tier can accelerate, never break, an answer.

#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ayd/service/canonical.hpp"

namespace ayd::service {

class AnswerStore;

/// Cumulative cache telemetry (monotone counters + the resident size).
struct CacheStats {
  std::uint64_t hits = 0;       ///< served from a completed entry
  std::uint64_t misses = 0;     ///< triggered a computation
  std::uint64_t disk_hits = 0;  ///< served from the persistent tier (promoted)
  std::uint64_t coalesced = 0;  ///< waited on another thread's in-flight computation
  std::uint64_t evictions = 0;  ///< completed entries dropped by LRU pressure
  std::size_t entries = 0;      ///< resident entries (completed + in-flight)
};

class MemoCache {
 public:
  /// `max_entries` is the total completed-entry capacity (>= 1, split
  /// evenly across shards); `shards` is rounded up to a power of two,
  /// then halved while above `max_entries`, so the total resident
  /// capacity (shards x per-shard LRU) never exceeds `max_entries`.
  /// `store`, when non-null, is the persistent tier-2 (not owned; must
  /// outlive the cache).
  MemoCache(std::size_t max_entries, std::size_t shards,
            AnswerStore* store = nullptr);

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  /// The computation a miss runs; its return value is what gets cached.
  using Compute = std::function<std::string()>;

  /// One lookup's outcome: the (possibly shared) cached value and
  /// whether it was served without running `compute` on this call.
  struct Lookup {
    std::shared_ptr<const std::string> value;
    bool hit = false;
  };

  /// Returns the value for `key`, running `compute` on a cold miss.
  /// Concurrent callers with the same key compute once and share the
  /// result. Exceptions from `compute` propagate to every waiter and
  /// leave the key uncached.
  [[nodiscard]] Lookup get_or_compute(const CanonicalKey& key,
                                      const Compute& compute);

  /// Snapshot of the counters across all shards.
  [[nodiscard]] CacheStats stats() const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }

 private:
  using Value = std::shared_ptr<const std::string>;

  struct Entry {
    std::shared_future<Value> result;
    bool ready = false;
    /// Position in the shard's LRU list; valid only when `ready`.
    std::list<std::string>::iterator lru_pos;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> entries;
    /// Completed keys, most recently used first.
    std::list<std::string> lru;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t hash);

  std::size_t max_entries_;
  std::size_t per_shard_capacity_;
  unsigned shard_shift_;  ///< shard index = hash >> shard_shift_
  std::vector<std::unique_ptr<Shard>> shards_;
  AnswerStore* store_;  ///< optional persistent tier-2 (not owned)
};

}  // namespace ayd::service
