#include "ayd/service/server.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "ayd/io/json.hpp"
#include "ayd/model/application.hpp"
#include "ayd/service/replan.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/sim/trace.hpp"
#include "ayd/tool/commands.hpp"
#include "ayd/tool/optimize_json.hpp"
#include "ayd/util/strings.hpp"
#include "ayd/util/version.hpp"

namespace ayd::service {

namespace {

/// Parses the request parameters with the op's ArgParser (the same spec
/// parsers the CLI uses, so spellings and validation cannot drift).
void parse_params(cli::ArgParser& parser, const Request& req) {
  parser.parse_args(params_to_argv(req.params));
  if (parser.help_requested()) {
    throw ProtocolError("bad_request",
                        "\"help\" is not a request parameter (see "
                        "docs/service.md for the protocol)");
  }
}

const char* backend_name(sim::Backend backend) {
  return backend == sim::Backend::kDes ? "des" : "fast";
}

void write_summary(io::JsonWriter& w, std::string_view key,
                   const stats::Summary& s) {
  w.key(key);
  w.begin_object();
  w.kv("mean", s.mean);
  w.kv("ci_lo", s.ci.lo);
  w.kv("ci_hi", s.ci.hi);
  w.kv("stddev", s.stddev);
  w.kv("count", static_cast<std::uint64_t>(s.count));
  w.end_object();
}

}  // namespace

PlanningService::PlanningService(const ServiceOptions& options)
    : options_(options),
      store_(options.cache_dir.empty()
                 ? nullptr
                 : std::make_unique<AnswerStore>(
                       AnswerStore::path_in_dir(options.cache_dir))),
      cache_(options.cache_entries, options.cache_shards, store_.get()),
      pool_(options.threads) {}

std::string PlanningService::handle_line(const std::string& line) {
  io::JsonValue id;  // null until the request parses far enough to know
  try {
    Request req = parse_request(line);
    id = req.id;
    return dispatch(req);
  } catch (const ProtocolError& e) {
    // Prefer the id the error carries (parse_request extracts it before
    // any validation can fail); fall back to what this frame saw.
    return make_error_reply(e.id().is_null() ? id : e.id(), e.code(),
                            e.what());
  } catch (const util::Error& e) {
    // Spec-parser rejections (unknown option, malformed value, infeasible
    // combination) are the caller's fault, not the service's.
    return make_error_reply(id, "bad_request", e.what());
  } catch (const std::exception& e) {
    return make_error_reply(id, "internal", e.what());
  }
}

void PlanningService::handle_async(std::string line,
                                   std::function<void(std::string)> done) {
  pool_.submit([this, line = std::move(line), done = std::move(done)] {
    done(handle_line(line));
  });
}

bool PlanningService::serve(std::istream& in, std::ostream& out) {
  // One outstanding-request counter instead of a future per request: a
  // long-lived session may stream millions of lines, and accumulating
  // futures (or an unbounded pool queue) until EOF would grow memory
  // without bound. The reader blocks once `kMaxOutstanding` requests are
  // in flight — natural pipe backpressure — and handle_line never throws
  // (every failure becomes an error envelope), so completion is the only
  // signal the loop needs.
  //
  // std::getline handles the final unterminated line for free: it
  // extracts up to EOF and only sets failbit when *nothing* was read,
  // so a client that omits the last '\n' still gets its reply (pinned
  // by service_protocol_test).
  const std::size_t kMaxOutstanding = std::max<std::size_t>(
      64, 4 * pool_.size());
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t outstanding = 0;
  // Set (under `mutex`) when a reply write fails: the reader must stop
  // accepting input — with the client's read side gone, draining stdin
  // and discarding replies forever is indistinguishable from a hang.
  bool output_failed = false;

  std::string line;
  while (std::getline(in, line)) {
    if (util::trim(line).empty()) continue;
    {
      std::unique_lock lock(mutex);
      cv.wait(lock, [&] {
        return outstanding < kMaxOutstanding || output_failed;
      });
      if (output_failed) break;
      ++outstanding;
    }
    pool_.submit([this, line, &out, &mutex, &cv, &outstanding,
                  &output_failed] {
      const std::string reply = handle_line(line);
      const std::lock_guard lock(mutex);
      if (!output_failed) {
        out << reply << '\n' << std::flush;
        // A closed pipe surfaces as a stream failure here (cmd_serve
        // ignores SIGPIPE so the write errors instead of killing the
        // process).
        if (out.fail()) output_failed = true;
      }
      --outstanding;
      cv.notify_all();
    });
  }
  std::unique_lock lock(mutex);
  cv.wait(lock, [&] { return outstanding == 0; });
  return !output_failed;
}

std::string PlanningService::dispatch(const Request& req) {
  if (req.op == "optimize") return handle_optimize(req);
  if (req.op == "simulate") return handle_simulate(req);
  if (req.op == "plan") return handle_plan(req);
  if (req.op == "stats") return handle_stats(req);
  if (req.op == "subscribe") return handle_subscribe(req);
  throw ProtocolError(
      "unknown_op",
      "unknown op \"" + req.op +
          "\" (expected optimize, simulate, plan, stats, subscribe)");
}

std::string PlanningService::handle_optimize(const Request& req) {
  cli::ArgParser parser("ayd serve: optimize", "service op");
  tool::add_optimize_options(parser);
  parse_params(parser, req);
  const model::System sys = tool::system_from_args(parser);
  const tool::OptimizeRequest opt = tool::optimize_request_from_args(parser);

  // The field sequence lives in canonical.cpp, shared with
  // `ayd optimize --cache-dir` so both front-ends address the same
  // persistent-store records.
  const CanonicalKey key = optimize_canonical_key(sys, opt);

  const MemoCache::Lookup lookup = cache_.get_or_compute(key, [&] {
    std::ostringstream os;
    io::JsonWriter w(os, /*pretty=*/false);
    tool::write_optimize_record(w, sys, opt, /*pool=*/nullptr);
    return os.str();
  });
  return make_ok_reply(req.id, req.op, *lookup.value);
}

std::string PlanningService::handle_simulate(const Request& req) {
  cli::ArgParser parser("ayd serve: simulate", "service op");
  tool::add_system_options(parser);
  tool::add_simulation_options(parser);
  tool::add_pattern_options(parser);
  parse_params(parser, req);
  const model::System sys = tool::system_from_args(parser);

  // Resolve pattern defaults exactly like `ayd simulate` (the shared
  // helper), so the canonical key captures the pattern actually run.
  const tool::ResolvedPattern resolved =
      tool::resolve_pattern_from_args(parser, sys);
  const double procs = resolved.procs;
  const double period = resolved.period;
  const sim::ReplicationOptions opt = tool::replication_from_args(parser);

  const CanonicalKey key =
      CanonicalKeyBuilder("simulate")
          .system(sys)
          .field("period", period)
          .field("procs", procs)
          .field("runs", static_cast<std::uint64_t>(opt.replicas))
          .field("patterns",
                 static_cast<std::uint64_t>(opt.patterns_per_replica))
          .field("seed", static_cast<std::uint64_t>(opt.seed))
          .field("backend", backend_name(opt.backend))
          .finish();

  const MemoCache::Lookup lookup = cache_.get_or_compute(key, [&] {
    const sim::ReplicationResult r =
        sim::simulate_overhead(sys, {period, procs}, opt);
    std::ostringstream os;
    io::JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.kv("period", period);
    w.kv("procs", procs);
    w.kv("replicas", static_cast<std::uint64_t>(opt.replicas));
    w.kv("patterns_per_replica",
         static_cast<std::uint64_t>(opt.patterns_per_replica));
    w.kv("seed", static_cast<std::uint64_t>(opt.seed));
    w.kv("backend", backend_name(opt.backend));
    write_summary(w, "overhead", r.overhead);
    write_summary(w, "pattern_time", r.pattern_time);
    w.kv("analytic_overhead", r.analytic_overhead);
    w.kv("analytic_pattern_time", r.analytic_pattern_time);
    w.kv("fail_stops_per_pattern", r.fail_stops_per_pattern);
    w.kv("silent_detections_per_pattern", r.silent_detections_per_pattern);
    w.kv("masked_silent_per_pattern", r.masked_silent_per_pattern);
    w.kv("attempts_per_pattern", r.attempts_per_pattern);
    w.kv("total_patterns", static_cast<std::uint64_t>(r.total_patterns));
    w.end_object();
    return os.str();
  });
  return make_ok_reply(req.id, req.op, *lookup.value);
}

std::string PlanningService::handle_plan(const Request& req) {
  cli::ArgParser parser("ayd serve: plan", "service op");
  tool::add_system_options(parser);
  tool::add_plan_options(parser);
  parse_params(parser, req);
  const model::System sys = tool::system_from_args(parser);
  const model::Application app{parser.option("name"),
                               parser.option_double("work"), 0.0};
  const double max_procs = parser.option_double("max-procs");

  const CanonicalKey key = CanonicalKeyBuilder("plan")
                               .system(sys)
                               .field("work", app.total_work)
                               .field("max_procs", max_procs)
                               .field("name", app.name)
                               .finish();

  const MemoCache::Lookup lookup = cache_.get_or_compute(key, [&] {
    // The report math is tool::compute_plan — the same body `ayd plan`
    // prints as tables.
    const tool::PlanReport report = tool::compute_plan(sys, app, max_procs);
    std::ostringstream os;
    io::JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.kv("job", app.name);
    w.kv("work", app.total_work);
    w.kv("procs", report.optimum.procs);
    w.kv("period", report.optimum.period);
    w.kv("overhead", report.optimum.overhead);
    w.kv("at_boundary", report.optimum.at_boundary);
    w.kv("expected_makespan", report.expected_makespan);
    w.kv("error_free_makespan", report.error_free_makespan);
    w.kv("checkpoints", std::ceil(report.patterns));
    w.end_object();
    return os.str();
  });
  return make_ok_reply(req.id, req.op, *lookup.value);
}

std::string PlanningService::handle_stats(const Request& req) {
  if (!req.params.empty()) {
    throw ProtocolError("bad_request", "op \"stats\" takes no parameters");
  }
  const CacheStats stats = cache_.stats();
  std::ostringstream os;
  io::JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.kv("hits", stats.hits);
  w.kv("misses", stats.misses);
  w.kv("disk_hits", stats.disk_hits);
  w.kv("coalesced", stats.coalesced);
  w.kv("evictions", stats.evictions);
  w.kv("entries", static_cast<std::uint64_t>(stats.entries));
  w.kv("cache_entries", static_cast<std::uint64_t>(cache_.max_entries()));
  w.kv("cache_shards", static_cast<std::uint64_t>(cache_.shard_count()));
  w.kv("threads", static_cast<std::uint64_t>(pool_.size()));
  if (store_ != nullptr) {
    w.kv("cache_dir", options_.cache_dir);
    w.kv("store_entries", static_cast<std::uint64_t>(store_->entries()));
    w.kv("store_bytes", store_->file_bytes());
  }
  w.kv("version", util::version_string());
  w.end_object();
  return make_ok_reply(req.id, req.op, os.str());
}

std::string PlanningService::handle_subscribe(const Request& req) {
  // The telemetry payload must come off the parameter list before the
  // argv bridge runs: "events" is a JSON array and "telemetry" a CSV
  // blob, and params_to_argv deliberately rejects non-scalars.
  const io::JsonValue* events = nullptr;
  const io::JsonValue* telemetry = nullptr;
  std::vector<std::pair<std::string, io::JsonValue>> scalar_params;
  for (const auto& [name, value] : req.params) {
    if (name == "events") {
      events = &value;
    } else if (name == "telemetry") {
      telemetry = &value;
    } else {
      scalar_params.emplace_back(name, value);
    }
  }
  if ((events == nullptr) == (telemetry == nullptr)) {
    throw ProtocolError("bad_request",
                        "op \"subscribe\" needs exactly one telemetry "
                        "source: \"events\" (array of gap seconds) or "
                        "\"telemetry\" (failure-log CSV text)");
  }

  cli::ArgParser parser("ayd serve: subscribe", "service op");
  tool::add_system_options(parser);
  tool::add_replan_options(parser);
  parser.parse_args(params_to_argv(scalar_params));
  if (parser.help_requested()) {
    throw ProtocolError("bad_request",
                        "\"help\" is not a request parameter (see "
                        "docs/service.md for the protocol)");
  }
  const model::System sys = tool::system_from_args(parser);
  const service::ReplanOptions opts =
      tool::replan_options_from_args(parser, sys);

  // Decode the gap sequence. Malformed telemetry is the caller's fault
  // and must surface as a bad_request envelope before any simulation
  // budget is spent — the error texts come verbatim from the sim/trace
  // parser so the CLI and the service report identical diagnostics.
  std::vector<double> gaps;
  if (events != nullptr) {
    if (!events->is_array()) {
      throw ProtocolError("bad_request",
                          "\"events\" must be an array of numbers");
    }
    gaps.reserve(events->as_array().size());
    for (const io::JsonValue& v : events->as_array()) {
      if (!v.is_number()) {
        throw ProtocolError("bad_request",
                            "\"events\" must be an array of numbers");
      }
      gaps.push_back(v.as_double());
    }
  } else {
    if (!telemetry->is_string()) {
      throw ProtocolError("bad_request",
                          "\"telemetry\" must be a string of failure-log "
                          "CSV lines");
    }
    sim::FailureLogReader reader;
    std::istringstream lines(telemetry->as_string());
    std::string line;
    try {
      while (std::getline(lines, line)) {
        if (const auto gap = reader.feed(line)) gaps.push_back(*gap);
      }
    } catch (const util::Error& e) {
      throw ProtocolError("bad_request", e.what());
    }
  }

  // Replay through the same loop `ayd watch` streams. Deliberately not
  // memoised: the canonical key would have to embed the entire telemetry
  // payload, making every cache entry as large as the request and hits
  // (identical full streams) vanishingly rare — recomputation is the
  // honest cost model here.
  Replanner replanner(sys, opts, /*pool=*/nullptr);
  std::vector<std::string> records;
  records.push_back(replanner.initial_record());
  for (const double gap : gaps) {
    if (auto record = replanner.on_gap(gap)) {
      records.push_back(std::move(*record));
    }
  }

  std::ostringstream os;
  os << "{\"procs\":";
  {
    io::JsonWriter w(os);
    w.value(opts.procs);
  }
  os << ",\"events\":" << gaps.size()
     << ",\"replans\":" << replanner.replans()
     << ",\"period\":";
  {
    io::JsonWriter w(os);
    w.value(replanner.deployed_period());
  }
  os << ",\"records\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i != 0) os << ',';
    os << records[i];
  }
  os << "]}";
  return make_ok_reply(req.id, req.op, os.str());
}

}  // namespace ayd::service
