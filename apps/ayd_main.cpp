// The `ayd` binary: thin wrapper over ayd::tool::run_tool (which is a
// library function so the test suite can drive every command end-to-end).

#include <iostream>
#include <string>
#include <vector>

#include "ayd/tool/tool.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return ayd::tool::run_tool(args, std::cout, std::cerr);
}
