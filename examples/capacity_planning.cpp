// Capacity planning: "how many nodes should I ask for, and what will my
// job actually cost?"
//
// A 30-day (sequential-equivalent) scientific application with a 5%
// sequential fraction is to run on Coastal. The operator can provision
// either stable-storage checkpointing (scenario 3) or in-memory
// checkpointing (scenario 5). For a range of allocation sizes this
// example prints the expected makespan, the node-hours consumed, and the
// optimal operating point for each protocol — the table a capacity
// planner would actually look at. Each protocol's allocation sweep is an
// engine grid over a "procs" axis.
//
// Build & run:  ./examples/capacity_planning

#include <cmath>
#include <cstdio>

#include "ayd/core/overhead.hpp"
#include "ayd/engine/engine.hpp"
#include "ayd/model/application.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/util/strings.hpp"
#include "ayd/util/units.hpp"

namespace {

void plan(const ayd::model::System& sys, const char* label,
          const ayd::model::Application& app) {
  using namespace ayd;
  std::printf("--- protocol: %s ---\n", label);

  engine::EvalSpec joint;
  joint.numerical = true;
  const engine::PointEval best = engine::evaluate_point(sys, joint);
  const double best_procs = std::round(best.allocation->procs);

  engine::GridSpec grid;
  grid.axis(engine::Axis::list(
      "procs", {256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0, best_procs}));

  engine::EvalSpec spec;
  spec.numerical = true;
  const auto records =
      engine::run_grid(grid, nullptr, [&](const engine::Point& pt) {
        const double p = std::round(pt.var("procs"));
        const engine::PointEval ev = engine::evaluate_point(sys, spec, p);
        const double makespan =
            core::expected_makespan(sys, {ev.period->period, p}, app);
        const double error_free =
            model::error_free_makespan(app, sys.error_free_overhead(p));
        const bool is_best = p == best_procs;
        engine::Record r;
        r.set("P", util::format_sig(p, 5) + (is_best ? "*" : ""));
        r.set("T* (per ckpt)", util::format_duration(ev.period->period));
        r.set("overhead", ev.period->overhead);
        r.set("makespan", util::format_duration(makespan));
        r.set("node-hours",
              util::format_si(util::to_hours(makespan) * p, 4));
        r.set("vs error-free",
              util::format_sig(makespan / error_free, 4) + "x");
        return r;
      });

  engine::TableSink table({{"P"},
                           {"T* (per ckpt)"},
                           {"overhead", "", 4},
                           {"makespan"},
                           {"node-hours"},
                           {"vs error-free"}});
  engine::emit(records, {&table});
  std::printf("%s", table.to_string().c_str());
  std::printf("(* = overhead-optimal allocation; node-hours keep growing "
              "with P, so a cost-aware planner may stop earlier)\n\n");
}

}  // namespace

int main() {
  using namespace ayd;
  const model::Platform platform = model::coastal();
  const model::Application app{"climate-ensemble",
                               /*total_work=*/30.0 * util::kSecondsPerDay,
                               /*memory_gib=*/4096.0};
  std::printf("capacity planning on %s for '%s' (W_total = 30 days "
              "sequential, alpha = 0.05, D = 1h)\n\n",
              platform.name.c_str(), app.name.c_str());

  const double alpha = 0.05;
  plan(model::System::from_platform(platform, model::Scenario::kS3, alpha),
       "stable storage (scenario 3: C = a, V = v)", app);
  plan(model::System::from_platform(platform, model::Scenario::kS5, alpha),
       "in-memory (scenario 5: C = b/P, V = v)", app);

  std::printf("Reading the tables: in-memory checkpointing shifts the "
              "optimal allocation higher (its cost shrinks with P) and "
              "lowers the makespan floor — Theorem 3's P* = Θ(λ^{-1/3}) "
              "with a smaller d.\n");
  return 0;
}
