// Failure timeline: watch the VC protocol live.
//
// Runs the event-queue simulator on an error-prone configuration with a
// trace recorder attached and renders the resulting execution as an
// ASCII timeline — computation, verifications, checkpoints, wasted work,
// downtime and recoveries — followed by a time-accounting breakdown.
// This is the discrete-event engine the validation experiments rely on,
// made visible. With --two-level the same workload runs under the
// two-level protocol so the shorter silent rollbacks are visible
// side-by-side.
//
// Build & run:  ./examples/failure_timeline [--seed=7] [--two-level]

#include <cstdio>

#include "ayd/cli/args.hpp"
#include "ayd/core/expected_time.hpp"
#include "ayd/core/first_order.hpp"
#include "ayd/core/two_level.hpp"
#include "ayd/io/table.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/protocol.hpp"
#include "ayd/sim/trace.hpp"
#include "ayd/sim/two_level_protocol.hpp"
#include "ayd/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  try {
    cli::ArgParser parser("failure_timeline",
                          "trace a VC-protocol execution event by event");
    parser.add_option("seed", "7", "RNG seed for the error processes");
    parser.add_option("patterns", "12", "number of patterns to trace");
    parser.add_flag("two-level",
                    "trace the two-level protocol (in-memory level-1 "
                    "checkpoints) instead of the base VC protocol");
    parser.parse(argc, argv);
    if (parser.help_requested()) {
      std::fputs(parser.help().c_str(), stdout);
      return 0;
    }
    const auto seed = parser.option_uint("seed");
    const auto n_patterns = parser.option_uint("patterns");

    // Hera, scenario 3, with the error rate cranked up ~50x so that a
    // dozen patterns show a few of each event type (a realistic rate
    // would show a featureless wall of '=').
    const model::System sys =
        model::System::from_platform(model::hera(), model::Scenario::kS3)
            .with_lambda(1e-6);
    const double procs = 512.0;
    const bool two_level = parser.flag("two-level");
    const core::Pattern pattern{
        core::optimal_period_first_order(sys, procs), procs};

    rng::RngStream rng(seed);
    sim::Trace trace;
    sim::PatternStats totals;
    double clock = 0.0;
    double expected_one = 0.0;
    if (two_level) {
      const core::TwoLevelSystem two_sys =
          core::TwoLevelSystem::with_memory_level1(sys);
      const core::TwoLevelOptimum plan =
          core::optimal_two_level_pattern(two_sys, procs);
      const core::TwoLevelPattern two_pattern{plan.period, procs,
                                              plan.segments};
      std::printf("tracing %llu two-level patterns "
                  "TWOLEVELPATTERN(T=%s, P=%.0f, n=%d) on a degraded Hera "
                  "(lambda_ind = 1e-6)\n\n",
                  static_cast<unsigned long long>(n_patterns),
                  util::format_duration(two_pattern.period).c_str(), procs,
                  two_pattern.segments);
      sim::TwoLevelDesSimulator simulator(two_sys, two_pattern);
      for (std::uint64_t i = 0; i < n_patterns; ++i) {
        const sim::PatternStats s =
            simulator.simulate_pattern(rng, &trace, clock);
        clock += s.wall_time;
        totals.merge(s);
      }
      expected_one = core::expected_two_level_time(two_sys, two_pattern);
    } else {
      std::printf("tracing %llu patterns of PATTERN(T=%s, P=%.0f) on a "
                  "degraded Hera (lambda_ind = 1e-6)\n\n",
                  static_cast<unsigned long long>(n_patterns),
                  util::format_duration(pattern.period).c_str(), procs);
      sim::DesProtocolSimulator simulator(sys, pattern);
      for (std::uint64_t i = 0; i < n_patterns; ++i) {
        const sim::PatternStats s =
            simulator.simulate_pattern(rng, &trace, clock);
        clock += s.wall_time;
        totals.merge(s);
      }
      expected_one = core::expected_pattern_time(sys, pattern);
    }

    std::printf("%s\n", trace.render_timeline(100).c_str());

    io::Table table({"where the time went", "seconds", "share"});
    table.set_align(0, io::Align::kLeft);
    const double total = trace.total_time();
    for (int k = 0; k <= static_cast<int>(sim::SegmentKind::kDowntime);
         ++k) {
      const auto kind = static_cast<sim::SegmentKind>(k);
      const double t = trace.time_in(kind);
      table.add_row({sim::segment_kind_name(kind),
                     util::format_sig(t, 4),
                     util::format_sig(100.0 * t / total, 3) + "%"});
    }
    std::printf("%s\n", table.to_string().c_str());

    std::printf("events: %llu fail-stop (%llu during recovery), %llu "
                "silent detected, %llu silent masked by fail-stop, %llu "
                "attempts for %llu patterns\n",
                static_cast<unsigned long long>(totals.fail_stop_errors),
                static_cast<unsigned long long>(totals.recovery_fail_stops),
                static_cast<unsigned long long>(totals.silent_detections),
                static_cast<unsigned long long>(totals.masked_silent),
                static_cast<unsigned long long>(totals.attempts),
                static_cast<unsigned long long>(n_patterns));
    const double expected = expected_one * static_cast<double>(n_patterns);
    std::printf("wall time %s vs exact expectation %s (single run — "
                "replicate to converge)\n",
                util::format_duration(clock).c_str(),
                util::format_duration(expected).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
