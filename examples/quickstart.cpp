// Quickstart: the 60-second tour of the library.
//
// Builds the paper's standard setup (platform Hera, scenario 1, Amdahl
// α = 0.1, one-hour downtime), asks three questions, and validates the
// answers by simulation:
//   1. How long should the checkpointing period be for a given P? (Thm 1)
//   2. How many processors should the job enroll overall?       (Thm 2)
//   3. Do the closed forms agree with the exact numerical optimum and
//      with a discrete-event simulation of the protocol?
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j --target example_quickstart
//   ./build/quickstart
// (The docs_examples CTest runs this binary and greps the lines the
// README quotes, so this walk-through cannot drift from the code.)

#include <cstdio>

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/util/strings.hpp"
#include "ayd/util/version.hpp"

int main() {
  using namespace ayd;
  std::printf("amdahl-young-daly v%s — quickstart\n", util::version_string());
  std::printf("reproduces: %s\n\n", util::paper_citation());

  // The paper's standard configuration: Hera platform measurements,
  // scenario 1 (checkpoint cost grows linearly with P, constant
  // verification), sequential fraction alpha = 0.1, one-hour downtime.
  const model::Platform platform = model::hera();
  const model::System sys =
      model::System::from_platform(platform, model::Scenario::kS1);

  std::printf("platform %s: lambda_ind = %s/s (node MTBF %.1f years), "
              "f = %s fail-stop\n",
              platform.name.c_str(),
              util::format_sig(platform.lambda_ind).c_str(),
              platform.failure().mtbf_ind() / 3.15576e7,
              util::format_sig(platform.fail_stop_fraction).c_str());

  // Question 1 — the Young/Daly-style period for the measured P = 512.
  const double p_fixed = platform.measured_procs;
  const double t_p = core::optimal_period_first_order(sys, p_fixed);
  std::printf("\n[1] Theorem 1 @ P = %.0f: checkpoint every %s (%s)\n",
              p_fixed, util::format_sig(t_p, 4).c_str(),
              util::format_duration(t_p).c_str());

  // Question 2 — the jointly optimal allocation (Theorem 2: this is the
  // C_P = cP case, so P* = Θ(λ^{-1/4})).
  const core::FirstOrderSolution fo = core::solve_first_order(sys);
  std::printf("[2] Theorem 2: enroll P* = %.0f processors, period T* = %s, "
              "predicted overhead H* = %s\n",
              fo.procs, util::format_duration(fo.period).c_str(),
              util::format_sig(fo.overhead, 4).c_str());

  // Question 3a — exact numerical optimum for comparison.
  const core::AllocationOptimum num = core::optimal_allocation(sys);
  std::printf("[3] numerical optimum:   P* = %.0f, T* = %s, H* = %s\n",
              num.procs, util::format_duration(num.period).c_str(),
              util::format_sig(num.overhead, 4).c_str());

  // Question 3b — discrete-event simulation at the first-order pattern.
  sim::ReplicationOptions opt;
  opt.replicas = 200;
  opt.patterns_per_replica = 200;
  const core::Pattern pattern{fo.period, std::round(fo.procs)};
  const sim::ReplicationResult r = sim::simulate_overhead(sys, pattern, opt);
  std::printf("    simulated overhead:  %s (95%% CI), analytic %s\n",
              util::format_sig(r.overhead.mean, 4).c_str(),
              util::format_sig(r.analytic_overhead, 4).c_str());
  std::printf("    error telemetry: %.3f fail-stops and %.3f detected "
              "silent errors per pattern\n",
              r.fail_stops_per_pattern, r.silent_detections_per_pattern);

  std::printf("\nTakeaway: with failures in the picture, enrolling more "
              "than ~%.0f processors makes this job *slower* — Amdahl "
              "meets Young/Daly.\n",
              num.procs);
  return 0;
}
