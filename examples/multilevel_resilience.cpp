// Multi-level resilience: how much do hierarchical protocols buy?
//
// The paper's Section V names "multi-level resilience protocols" as the
// main future-work direction. This example walks one platform through the
// progression the library implements:
//
//   1. base VC pattern (Theorem 1) — one verification + one stable
//      checkpoint per pattern;
//   2. multi-verification (core/multi_verification.hpp) — n verifications
//      catch silent errors early, but the rollback still replays the
//      whole pattern;
//   3. two-level checkpointing (core/two_level.hpp) — verified in-memory
//      level-1 checkpoints make the silent rollback local to one segment.
//
// For each protocol it prints the closed-form plan, the numerically exact
// optimum, and a simulated confirmation, then shows how the two-level
// advantage scales with the platform's silent-error fraction.
//
// Build & run:  ./examples/multilevel_resilience [--platform=atlas]

#include <cstdio>

#include "ayd/cli/args.hpp"
#include "ayd/core/multi_verification.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/two_level.hpp"
#include "ayd/io/table.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/multi_protocol.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/sim/two_level_protocol.hpp"
#include "ayd/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  try {
    cli::ArgParser parser("multilevel_resilience",
                          "hierarchical resilience protocols on one platform");
    parser.add_option("platform", "atlas",
                      "Hera, Atlas, Coastal, Coastal SSD");
    parser.parse(argc, argv);
    if (parser.help_requested()) {
      std::fputs(parser.help().c_str(), stdout);
      return 0;
    }
    const model::Platform platform =
        model::platform_by_name(parser.option("platform"));
    const model::System sys =
        model::System::from_platform(platform, model::Scenario::kS3);
    const double p = platform.measured_procs;

    std::printf("platform %s: f = %.4f (fail-stop), s = %.4f (silent), "
                "P = %g, C = %gs, V = %gs\n\n",
                platform.name.c_str(), platform.fail_stop_fraction,
                1.0 - platform.fail_stop_fraction, p,
                platform.measured_checkpoint,
                platform.measured_verification);

    sim::ReplicationOptions opt;
    opt.replicas = 60;
    opt.patterns_per_replica = 100;

    io::Table table({"Protocol", "n", "T* (s)", "H exact", "H simulated"});
    table.set_align(0, io::Align::kLeft);

    const core::PeriodOptimum base = core::optimal_period(sys, p);
    const auto base_sim =
        sim::simulate_overhead(sys, {base.period, p}, opt);
    table.add_row({"1. VC (Theorem 1)", "1", util::format_sig(base.period, 4),
                   util::format_sig(base.overhead, 4),
                   util::format_sig(base_sim.overhead.mean, 4) + " ±" +
                       util::format_sig(base_sim.overhead.ci.half_width(),
                                        2)});

    const core::MultiOptimum mv = core::optimal_multi_pattern(sys, p);
    const auto mv_sim =
        sim::simulate_multi_overhead(sys, {mv.period, p, mv.segments}, opt);
    table.add_row({"2. multi-verification", std::to_string(mv.segments),
                   util::format_sig(mv.period, 4),
                   util::format_sig(mv.overhead, 4),
                   util::format_sig(mv_sim.overhead.mean, 4) + " ±" +
                       util::format_sig(mv_sim.overhead.ci.half_width(), 2)});

    const core::TwoLevelSystem two_sys =
        core::TwoLevelSystem::with_memory_level1(sys);
    const core::TwoLevelOptimum two = core::optimal_two_level_pattern(
        two_sys, p);
    const auto two_sim = sim::simulate_two_level_overhead(
        two_sys, {two.period, p, two.segments}, opt);
    table.add_row({"3. two-level", std::to_string(two.segments),
                   util::format_sig(two.period, 4),
                   util::format_sig(two.overhead, 4),
                   util::format_sig(two_sim.overhead.mean, 4) + " ±" +
                       util::format_sig(two_sim.overhead.ci.half_width(),
                                        2)});
    std::printf("%s\n", table.to_string().c_str());

    // The two-level advantage as a function of the silent fraction: same
    // total error rate, varying the fail-stop/silent split.
    std::printf("two-level gain vs VC as the silent fraction varies "
                "(same total error rate):\n");
    io::Table gains({"silent fraction s", "n*", "H VC", "H two-level",
                     "gain"});
    for (const double s : {0.25, 0.5, 0.75, 0.9375, 0.99}) {
      const model::System varied(
          model::FailureModel(platform.lambda_ind, 1.0 - s),
          sys.costs(), sys.downtime(), sys.speedup_model());
      const core::TwoLevelSystem varied_two =
          core::TwoLevelSystem::with_memory_level1(varied);
      const core::PeriodOptimum vc = core::optimal_period(varied, p);
      const core::TwoLevelOptimum tl =
          core::optimal_two_level_pattern(varied_two, p);
      gains.add_row({util::format_sig(s, 4), std::to_string(tl.segments),
                     util::format_sig(vc.overhead, 4),
                     util::format_sig(tl.overhead, 4),
                     util::format_sig(
                         100.0 * (vc.overhead - tl.overhead) / vc.overhead,
                         3) + "%"});
    }
    std::printf("%s", gains.to_string().c_str());
    std::printf(
        "\nThe gain grows with s: level-1 checkpoints only help rollbacks "
        "that preserve node memory, i.e. silent-error rollbacks.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
