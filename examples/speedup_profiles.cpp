// Beyond Amdahl: the paper's future-work direction (§V) — other speedup
// profiles — through the generic numerical optimiser.
//
// The closed-form theorems are Amdahl-specific, but the exact overhead
// model H(T,P) = E(T,P)/(T·S(P)) is profile-agnostic. This example
// optimises the same platform/protocol under four profiles (Amdahl,
// Gustafson weak scaling, a power law, and a custom logarithmic-penalty
// profile) and shows how the failure-imposed parallelism limit moves.
//
// Build & run:  ./examples/speedup_profiles

#include <cmath>
#include <cstdio>
#include <vector>

#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/io/table.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/util/strings.hpp"

int main() {
  using namespace ayd;
  const model::Platform platform = model::hera();
  const model::System base =
      model::System::from_platform(platform, model::Scenario::kS1);

  const std::vector<model::Speedup> profiles{
      model::Speedup::amdahl(0.1),
      model::Speedup::gustafson(0.1),
      model::Speedup::power_law(0.8),
      model::Speedup::custom(
          [](double p) { return p / (1.0 + 0.05 * std::log2(p)); },
          "log-penalty"),
  };

  std::printf("one platform (Hera, scenario 1), four speedup profiles\n\n");
  io::Table table({"profile", "S(1024)", "P*", "T*", "H(T*,P*)",
                   "H sim", "note"});
  table.set_align(0, io::Align::kLeft);
  table.set_align(6, io::Align::kLeft);
  sim::ReplicationOptions sim_opt;
  sim_opt.replicas = 100;
  sim_opt.patterns_per_replica = 100;

  for (const model::Speedup& profile : profiles) {
    const model::System sys = base.with_speedup(profile);
    core::AllocationSearchOptions opt;
    opt.max_procs = 1e7;
    const core::AllocationOptimum best = core::optimal_allocation(sys, opt);
    const double sim = sim::simulate_overhead(
                           sys, {best.period, best.procs}, sim_opt)
                           .overhead.mean;
    const char* note = "";
    if (profile.kind() == model::Speedup::Kind::kAmdahl) {
      note = "Theorem 2 regime (closed form exists)";
    } else if (profile.kind() == model::Speedup::Kind::kGustafson) {
      note = "weak scaling: failures, not Amdahl, set the limit";
    } else if (best.at_boundary) {
      note = "monotone in P over the search domain";
    } else {
      note = "numerical only";
    }
    table.add_row({profile.name(),
                   util::format_sig(profile.speedup(1024.0), 4),
                   util::format_sig(best.procs, 4),
                   util::format_duration(best.period),
                   util::format_sig(best.overhead, 4),
                   util::format_sig(sim, 4), note});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nNote the overhead definition H = E/(T·S(P)) is serial-time-"
      "normalised, so profiles with unbounded speedup can push H below "
      "Amdahl's floor of alpha = 0.1 — until failure handling catches "
      "up with them.\n");
  return 0;
}
