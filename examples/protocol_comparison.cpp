// Protocol comparison: which resilience configuration wins on a given
// machine?
//
// For one platform this example ranks all six Table-III scenarios by the
// execution overhead achievable at their respective optimal patterns —
// predicted by the analysis and confirmed by simulation — and prints the
// efficiency loss of running each protocol at the *measured* processor
// count instead of its optimum. The scenario sweep is an engine grid
// (point-parallel); the ranking is a post-hoc sort of the records.
//
// Build & run:  ./examples/protocol_comparison [--platform=atlas]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "ayd/cli/args.hpp"
#include "ayd/engine/engine.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  try {
    cli::ArgParser parser("protocol_comparison",
                          "rank resilience scenarios on one platform");
    parser.add_option("platform", "hera", "Hera, Atlas, Coastal, Coastal SSD");
    parser.parse(argc, argv);
    if (parser.help_requested()) {
      std::fputs(parser.help().c_str(), stdout);
      return 0;
    }
    const model::Platform platform =
        model::platform_by_name(parser.option("platform"));

    engine::GridSpec grid;
    grid.scenarios(model::all_scenarios());

    engine::EvalSpec spec;
    spec.numerical = true;
    spec.simulate_numerical = true;
    spec.search.max_procs = 1e8;
    spec.replication.replicas = 100;
    spec.replication.patterns_per_replica = 100;

    exec::ThreadPool pool;
    auto records =
        engine::run_grid(grid, &pool, [&](const engine::Point& pt) {
          const model::System sys =
              model::System::from_platform(platform, *pt.scenario);
          const engine::PointEval ev = engine::evaluate_point(sys, spec);
          // Overhead at the platform's as-measured allocation.
          engine::EvalSpec fixed;
          fixed.numerical = true;
          const engine::PointEval at_measured = engine::evaluate_point(
              sys, fixed, platform.measured_procs);
          engine::Record r;
          r.set("scenario", model::scenario_name(*pt.scenario));
          r.set("form", model::scenario_description(*pt.scenario));
          r.set("opt_procs", ev.allocation->procs);
          r.set("period_cell", util::format_duration(ev.allocation->period));
          r.set("opt_overhead", ev.allocation->overhead);
          r.set("sim_overhead", ev.sim_numerical->overhead.mean);
          r.set("at_measured", at_measured.period->overhead);
          return r;
        });

    std::sort(records.begin(), records.end(),
              [](const engine::Record& a, const engine::Record& b) {
                return a.num("opt_overhead") < b.num("opt_overhead");
              });
    for (std::size_t i = 0; i < records.size(); ++i) {
      records[i].set("rank", std::to_string(i + 1));
    }

    std::printf("resilience protocol ranking on %s (alpha = 0.1, D = 1h)\n\n",
                platform.name.c_str());
    engine::TableSink table({{"rank"},
                             {"scenario"},
                             {"form", "", 4, "", io::Align::kLeft},
                             {"P*", "opt_procs", 4},
                             {"T*", "period_cell"},
                             {"H pred", "opt_overhead", 4},
                             {"H sim", "sim_overhead", 4},
                             {"H @ measured P", "at_measured", 4}});
    engine::emit(records, {&table});
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "\nScenarios whose resilience cost shrinks with P (5, 6) tolerate "
        "far more parallelism; stable-storage protocols (1-4) pay for "
        "coordination. The last column shows what each protocol costs at "
        "the platform's as-measured allocation of %.0f processors.\n",
        platform.measured_procs);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
