// Protocol comparison: which resilience configuration wins on a given
// machine?
//
// For one platform this example ranks all six Table-III scenarios by the
// execution overhead achievable at their respective optimal patterns —
// predicted by the analysis and confirmed by simulation — and prints the
// efficiency loss of running each protocol at the *measured* processor
// count instead of its optimum.
//
// Build & run:  ./examples/protocol_comparison [--platform=atlas]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ayd/cli/args.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/io/table.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  try {
    cli::ArgParser parser("protocol_comparison",
                          "rank resilience scenarios on one platform");
    parser.add_option("platform", "hera", "Hera, Atlas, Coastal, Coastal SSD");
    parser.parse(argc, argv);
    if (parser.help_requested()) {
      std::fputs(parser.help().c_str(), stdout);
      return 0;
    }
    const model::Platform platform =
        model::platform_by_name(parser.option("platform"));

    struct Row {
      model::Scenario scenario;
      core::AllocationOptimum opt;
      double sim_overhead;
      double overhead_at_measured;
    };
    std::vector<Row> rows;
    sim::ReplicationOptions sim_opt;
    sim_opt.replicas = 100;
    sim_opt.patterns_per_replica = 100;

    for (const auto scenario : model::all_scenarios()) {
      const model::System sys =
          model::System::from_platform(platform, scenario);
      core::AllocationSearchOptions aopt;
      aopt.max_procs = 1e8;
      Row row{scenario, core::optimal_allocation(sys, aopt), 0.0, 0.0};
      row.sim_overhead =
          sim::simulate_overhead(sys, {row.opt.period, row.opt.procs},
                                 sim_opt)
              .overhead.mean;
      row.overhead_at_measured =
          core::optimal_period(sys, platform.measured_procs).overhead;
      rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      return a.opt.overhead < b.opt.overhead;
    });

    std::printf("resilience protocol ranking on %s (alpha = 0.1, D = 1h)\n\n",
                platform.name.c_str());
    io::Table table({"rank", "scenario", "form", "P*", "T*", "H pred",
                     "H sim", "H @ measured P"});
    table.set_align(2, io::Align::kLeft);
    int rank = 1;
    for (const Row& row : rows) {
      table.add_row({std::to_string(rank++),
                     model::scenario_name(row.scenario),
                     model::scenario_description(row.scenario),
                     util::format_sig(row.opt.procs, 4),
                     util::format_duration(row.opt.period),
                     util::format_sig(row.opt.overhead, 4),
                     util::format_sig(row.sim_overhead, 4),
                     util::format_sig(row.overhead_at_measured, 4)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "\nScenarios whose resilience cost shrinks with P (5, 6) tolerate "
        "far more parallelism; stable-storage protocols (1-4) pay for "
        "coordination. The last column shows what each protocol costs at "
        "the platform's as-measured allocation of %.0f processors.\n",
        platform.measured_procs);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
