#include "ayd/cli/args.hpp"

#include <cstdlib>
#include <gtest/gtest.h>

#include "ayd/cli/experiment.hpp"
#include "ayd/util/error.hpp"

namespace ayd::cli {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test program");
  p.add_flag("verbose", "chatty output");
  p.add_option("count", "10", "how many");
  p.add_option("name", "", "a label");
  return p;
}

void parse(ArgParser& p, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, DefaultsApply) {
  ArgParser p = make_parser();
  parse(p, {});
  EXPECT_FALSE(p.flag("verbose"));
  EXPECT_EQ(p.option("count"), "10");
  EXPECT_EQ(p.option_int("count"), 10);
}

TEST(ArgParser, EqualsSyntax) {
  ArgParser p = make_parser();
  parse(p, {"--count=42", "--name=hera"});
  EXPECT_EQ(p.option_int("count"), 42);
  EXPECT_EQ(p.option("name"), "hera");
}

TEST(ArgParser, SpaceSyntax) {
  ArgParser p = make_parser();
  parse(p, {"--count", "7"});
  EXPECT_EQ(p.option_int("count"), 7);
}

TEST(ArgParser, FlagsSet) {
  ArgParser p = make_parser();
  parse(p, {"--verbose"});
  EXPECT_TRUE(p.flag("verbose"));
}

TEST(ArgParser, UnknownArgumentRejected) {
  ArgParser p = make_parser();
  EXPECT_THROW(parse(p, {"--bogus"}), util::CliError);
}

TEST(ArgParser, PositionalRejected) {
  ArgParser p = make_parser();
  EXPECT_THROW(parse(p, {"stray"}), util::CliError);
}

TEST(ArgParser, FlagWithValueRejected) {
  ArgParser p = make_parser();
  EXPECT_THROW(parse(p, {"--verbose=yes"}), util::CliError);
}

TEST(ArgParser, MissingValueRejected) {
  ArgParser p = make_parser();
  EXPECT_THROW(parse(p, {"--count"}), util::CliError);
}

TEST(ArgParser, NumericValidation) {
  ArgParser p = make_parser();
  parse(p, {"--count=abc"});
  EXPECT_THROW((void)p.option_int("count"), util::CliError);
  EXPECT_THROW((void)p.option_double("count"), util::CliError);
}

TEST(ArgParser, NegativeRejectedForUnsigned) {
  ArgParser p = make_parser();
  parse(p, {"--count=-5"});
  EXPECT_EQ(p.option_int("count"), -5);
  EXPECT_THROW((void)p.option_uint("count"), util::CliError);
}

TEST(ArgParser, DoubleParsing) {
  ArgParser p = make_parser();
  parse(p, {"--count=2.5e-3"});
  EXPECT_DOUBLE_EQ(p.option_double("count"), 2.5e-3);
}

TEST(ArgParser, HelpRequested) {
  ArgParser p = make_parser();
  parse(p, {"--help"});
  EXPECT_TRUE(p.help_requested());
  const std::string h = p.help();
  EXPECT_NE(h.find("--count"), std::string::npos);
  EXPECT_NE(h.find("how many"), std::string::npos);
  EXPECT_NE(h.find("default: 10"), std::string::npos);
}

TEST(ArgParser, TypeMisuseIsProgrammerError) {
  ArgParser p = make_parser();
  parse(p, {});
  EXPECT_THROW((void)p.flag("count"), util::InvalidArgument);
  EXPECT_THROW((void)p.option("verbose"), util::InvalidArgument);
  EXPECT_THROW((void)p.option("undeclared"), util::InvalidArgument);
}

TEST(EnvOr, ReadsEnvironment) {
  ::setenv("AYD_TEST_ENV_VAR", "hello", 1);
  EXPECT_EQ(env_or("AYD_TEST_ENV_VAR", "fallback"), "hello");
  ::unsetenv("AYD_TEST_ENV_VAR");
  EXPECT_EQ(env_or("AYD_TEST_ENV_VAR", "fallback"), "fallback");
}

TEST(ExperimentContext, DefaultsAndOverrides) {
  ::unsetenv("AYD_SCALE");
  ::unsetenv("AYD_RUNS");
  ::unsetenv("AYD_PATTERNS");
  ArgParser p("bench", "x");
  add_experiment_options(p);
  std::vector<const char*> argv{"bench", "--runs=33", "--patterns=44",
                                "--seed=5", "--des"};
  p.parse(static_cast<int>(argv.size()), argv.data());
  const ExperimentContext ctx = read_experiment_context(p);
  EXPECT_EQ(ctx.runs, 33u);
  EXPECT_EQ(ctx.patterns, 44u);
  EXPECT_EQ(ctx.seed, 5u);
  EXPECT_TRUE(ctx.use_des_engine);
  const auto rep = ctx.replication();
  EXPECT_EQ(rep.replicas, 33u);
  EXPECT_EQ(rep.backend, sim::Backend::kDes);
}

TEST(ExperimentContext, PaperScaleEnv) {
  ::setenv("AYD_SCALE", "paper", 1);
  ArgParser p("bench", "x");
  add_experiment_options(p);
  std::vector<const char*> argv{"bench"};
  p.parse(static_cast<int>(argv.size()), argv.data());
  const ExperimentContext ctx = read_experiment_context(p);
  EXPECT_EQ(ctx.runs, 500u);
  EXPECT_EQ(ctx.patterns, 500u);
  ::unsetenv("AYD_SCALE");
}

TEST(ExperimentContext, FlagsBeatEnv) {
  ::setenv("AYD_SCALE", "paper", 1);
  ArgParser p("bench", "x");
  add_experiment_options(p);
  std::vector<const char*> argv{"bench", "--runs=9"};
  p.parse(static_cast<int>(argv.size()), argv.data());
  const ExperimentContext ctx = read_experiment_context(p);
  EXPECT_EQ(ctx.runs, 9u);
  EXPECT_EQ(ctx.patterns, 500u);  // env still applies where not overridden
  ::unsetenv("AYD_SCALE");
}

}  // namespace
}  // namespace ayd::cli
