// Bit-compatibility pins for the simulator hot-path overhaul.
//
// The arena event queue, the batched unit-variate sampling, and the fast
// sampler's CDF-threshold filter are all required to be *bit-transparent*:
// same seed, same System, same pattern => the same PatternStats to the
// last bit as the straightforward implementations they replaced. Two
// layers of defense:
//
//  1. Hard pins: fixed-seed totals generated with the pre-overhaul
//     library (commit cdfae90), hex-float exact. Any future change that
//     perturbs a draw, a tie-break, or an accumulation order fails here.
//  2. A reference fast sampler reimplemented here from the paper's
//     semantics (draw-everything, no thresholds, no batching) run
//     against FastProtocolSimulator over many seeds and regimes.
//
// These pins define the *scalar reference tier* (rng/simd.hpp): the
// whole suite runs with the SIMD tier forced off, because the vectorized
// transcendental kernels are allowed to differ from libm by a few ULP
// and carry their own golden tier (tests/failure_dist_simd_test.cpp).
// The exponential fast path never calls a vectorized transform, so its
// pin holds under every tier — one case below checks that explicitly.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "ayd/model/failure_dist.hpp"
#include "ayd/model/system.hpp"
#include "ayd/rng/simd.hpp"
#include "ayd/sim/protocol.hpp"
#include "ayd/sim/runner.hpp"

namespace ayd::sim {
namespace {

/// Forces the scalar reference tier for every test in this binary.
const int kForceScalarTier = [] {
  rng::simd::force_tier(rng::simd::Tier::kScalar);
  return 0;
}();

using model::CostModel;
using model::FailureDistSpec;
using model::FailureModel;
using model::ResilienceCosts;
using model::Speedup;
using model::System;

System pinned_system(const FailureDistSpec& spec) {
  ResilienceCosts costs{CostModel::constant(300.0), CostModel::constant(300.0),
                        CostModel::constant(30.0)};
  return System(FailureModel(1e-7, 0.4), costs, 1800.0, Speedup::amdahl(0.1))
      .with_failure_dist(spec);
}

struct Pin {
  const char* name;
  Backend backend;
  double wall_time;  ///< hex-float exact, from the pre-overhaul library
  std::uint64_t attempts;
  std::uint64_t fail_stops;
  std::uint64_t recovery_fail_stops;
  std::uint64_t silent_detections;
  std::uint64_t masked_silent;
};

// Generated with the pre-overhaul library at seed 42, pattern
// (T=20000, P=256), 300 patterns (see file comment).
constexpr Pin kPins[] = {
    {"exponential", Backend::kFast, 0x1.150c3454631c6p+23, 481, 80, 0, 101, 8},
    {"exponential", Backend::kDes, 0x1.1117faaff9842p+23, 479, 83, 0, 96, 8},
    {"weibull_07", Backend::kFast, 0x1.80cc94f227779p+23, 751, 266, 13, 198, 40},
    {"weibull_07", Backend::kDes, 0x1.8b842c14d06b4p+23, 757, 248, 12, 221, 49},
    {"weibull_15", Backend::kFast, 0x1.bd186ac4ed94ep+22, 365, 24, 0, 41, 0},
    {"weibull_15", Backend::kDes, 0x1.bbdabd7fd7dabp+22, 363, 21, 0, 42, 1},
    {"lognormal_12", Backend::kFast, 0x1.52078d3e7fdefp+23, 587, 129, 0, 158, 25},
    {"lognormal_12", Backend::kDes, 0x1.6d0dd94723a49p+23, 637, 148, 0, 189, 28},
};

FailureDistSpec spec_for(const std::string& name) {
  if (name == "exponential") return FailureDistSpec::exponential();
  if (name == "weibull_07") return FailureDistSpec::weibull(0.7);
  if (name == "weibull_15") return FailureDistSpec::weibull(1.5);
  return FailureDistSpec::lognormal(1.2);
}

TEST(SimBitCompat, FixedSeedTotalsMatchPreOverhaulLibrary) {
  for (const Pin& pin : kPins) {
    const System sys = pinned_system(spec_for(pin.name));
    PatternStats totals;
    rng::RngStream rng(42);
    if (pin.backend == Backend::kFast) {
      FastProtocolSimulator simulator(sys, {20000.0, 256.0});
      for (int i = 0; i < 300; ++i) {
        totals.merge(simulator.simulate_pattern(rng));
      }
    } else {
      DesProtocolSimulator simulator(sys, {20000.0, 256.0});
      for (int i = 0; i < 300; ++i) {
        totals.merge(simulator.simulate_pattern(rng));
      }
    }
    const std::string label =
        std::string(pin.name) +
        (pin.backend == Backend::kFast ? "/fast" : "/des");
    // Bitwise, not approximate: the overhaul's contract is exactness.
    EXPECT_EQ(totals.wall_time, pin.wall_time) << label;
    EXPECT_EQ(totals.attempts, pin.attempts) << label;
    EXPECT_EQ(totals.fail_stop_errors, pin.fail_stops) << label;
    EXPECT_EQ(totals.recovery_fail_stops, pin.recovery_fail_stops) << label;
    EXPECT_EQ(totals.silent_detections, pin.silent_detections) << label;
    EXPECT_EQ(totals.masked_silent, pin.masked_silent) << label;
  }
}

/// Reference fast sampler: the historical draw-everything loop (one
/// sample per attempt and per recovery try, straight off
/// FailureDistribution::sample), with no threshold filtering and no
/// batching. FastProtocolSimulator must reproduce it bit-for-bit.
PatternStats reference_fast_pattern(const System& sys,
                                    const core::Pattern& pattern,
                                    rng::RngStream& rng) {
  const double lf = sys.fail_stop_rate(pattern.procs);
  const double ls = sys.silent_rate(pattern.procs);
  const double t = pattern.period;
  const double v = sys.verification_cost(pattern.procs);
  const double c = sys.checkpoint_cost(pattern.procs);
  const double r = sys.recovery_cost(pattern.procs);
  const double d = sys.downtime();
  const auto fail_dist = sys.failure().dist().instantiate(lf);
  const auto silent_dist = sys.failure().dist().instantiate(ls);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  PatternStats stats;
  double wall = 0.0;
  const auto sample_fail = [&] {
    return lf > 0.0 ? fail_dist->sample(rng) : kInf;
  };
  const auto sample_silent = [&] {
    return ls > 0.0 ? silent_dist->sample(rng) : kInf;
  };
  const auto run_recovery = [&] {
    for (;;) {
      const double y = sample_fail();
      if (y < r) {
        ++stats.fail_stop_errors;
        ++stats.recovery_fail_stops;
        wall += y + d;
        continue;
      }
      wall += r;
      return;
    }
  };
  for (;;) {
    ++stats.attempts;
    const double x = sample_fail();
    const double s_arrival = sample_silent();
    const bool silent = s_arrival < t;
    if (x < t + v) {
      ++stats.fail_stop_errors;
      if (silent && s_arrival < x) ++stats.masked_silent;
      wall += x + d;
      run_recovery();
      continue;
    }
    if (silent) {
      ++stats.silent_detections;
      wall += t + v;
      run_recovery();
      continue;
    }
    if (x < t + v + c) {
      ++stats.fail_stop_errors;
      wall += x + d;
      run_recovery();
      continue;
    }
    wall += t + v + c;
    stats.wall_time = wall;
    return stats;
  }
}

TEST(SimBitCompat, FastSamplerMatchesReferenceAcrossSeedsAndRegimes) {
  const FailureDistSpec specs[] = {
      FailureDistSpec::exponential(),
      FailureDistSpec::weibull(0.7),
      FailureDistSpec::weibull(1.5),
      FailureDistSpec::lognormal(1.2),
  };
  // Error-heavy and error-light regimes: exercise the no-error fast path,
  // every failure branch, recovery retries, and masking.
  const double lambdas[] = {3e-10, 1e-7, 8e-7};
  for (const auto& spec : specs) {
    for (const double lambda : lambdas) {
      ResilienceCosts costs{CostModel::constant(300.0),
                            CostModel::constant(300.0),
                            CostModel::constant(30.0)};
      const System sys =
          System(FailureModel(lambda, 0.4), costs, 1800.0,
                 Speedup::amdahl(0.1))
              .with_failure_dist(spec);
      const core::Pattern pattern{20000.0, 256.0};
      FastProtocolSimulator simulator(sys, pattern);
      for (std::uint64_t seed = 0; seed < 8; ++seed) {
        rng::RngStream ra(seed), rb(seed);
        for (int p = 0; p < 40; ++p) {
          const PatternStats got = simulator.simulate_pattern(ra);
          const PatternStats want = reference_fast_pattern(sys, pattern, rb);
          ASSERT_EQ(got.wall_time, want.wall_time)
              << "seed " << seed << " pattern " << p << " lambda " << lambda;
          ASSERT_EQ(got.attempts, want.attempts);
          ASSERT_EQ(got.fail_stop_errors, want.fail_stop_errors);
          ASSERT_EQ(got.recovery_fail_stops, want.recovery_fail_stops);
          ASSERT_EQ(got.silent_detections, want.silent_detections);
          ASSERT_EQ(got.masked_silent, want.masked_silent);
        }
        // Both consumed exactly the same words: the streams must be in
        // the same position.
        ASSERT_EQ(ra.next_u64(), rb.next_u64()) << "stream drift, seed "
                                                << seed;
      }
    }
  }
}

TEST(SimBitCompat, DesFiresFailStopOnExactAttemptEndTie) {
  // Trace-replay arrivals have atoms, so an arrival landing EXACTLY on
  // the attempt end (T+V+C) happens with real probability. The pending
  // fail-stop carries an older id than the checkpoint phase-end pushed
  // later, so on the (time, id) tie the fail-stop pops first and must
  // strike — the scheduling skip must not discard it. Gaps {2, 4} at
  // rate 1/6144 rescale to arrivals of exactly 4096 (== T+V+C, a tie
  // every time) or 8192 (beyond the attempt, never fires). Totals
  // generated with the pre-overhaul library at seed 5 (a discard-on-tie
  // bug shows up as fails == 0 and attempts == 100).
  ResilienceCosts costs{CostModel::constant(50.0), CostModel::constant(50.0),
                        CostModel::constant(46.0)};
  const System sys =
      System(FailureModel(1.0 / 6144.0 / 256.0, 1.0), costs, 10.0,
             Speedup::amdahl(0.1))
          .with_failure_dist(FailureDistSpec::trace_replay({2.0, 4.0}));
  DesProtocolSimulator des(sys, {4000.0, 256.0});
  rng::RngStream rng(5);
  PatternStats totals;
  for (int i = 0; i < 100; ++i) totals.merge(des.simulate_pattern(rng));
  EXPECT_EQ(totals.wall_time, 0x1.9f1bp+19);
  EXPECT_EQ(totals.attempts, 206u);
  EXPECT_EQ(totals.fail_stop_errors, 106u);
  EXPECT_EQ(totals.recovery_fail_stops, 0u);
}

TEST(SimBitCompat, WordThresholdIsSoundAtTheBoundary) {
  // Soundness contract of the fast sampler's filter: EVERY word at or
  // above safe_word_threshold(dist, window) must invert to an arrival
  // >= window. The dangerous region is just above the threshold, where
  // a cdf/quantile inconsistency (the lognormal's erfc cdf vs Acklam
  // quantile, ~1e-9 in z-space) could otherwise classify in-window
  // arrivals as "beyond the window". Scan it densely.
  constexpr std::uint64_t kScan = 300'000;
  constexpr std::uint64_t kWordMax = 1ULL << 53;
  const FailureDistSpec specs[] = {
      FailureDistSpec::exponential(),   FailureDistSpec::weibull(0.7),
      FailureDistSpec::weibull(1.5),    FailureDistSpec::lognormal(0.5),
      FailureDistSpec::lognormal(2.0),  FailureDistSpec::lognormal(8.0),
  };
  const double cdf_levels[] = {1e-12, 1e-6, 7e-3, 0.5};
  for (const auto& spec : specs) {
    const auto dist = spec.instantiate(1e-6);
    for (const double level : cdf_levels) {
      const double window = dist->quantile(level);
      if (!(window > 0.0)) continue;
      const std::uint64_t mthr = safe_word_threshold(*dist, window);
      std::uint64_t violations = 0;
      const std::uint64_t end = std::min(kWordMax, mthr + kScan);
      for (std::uint64_t m = mthr; m < end; ++m) {
        const double u = static_cast<double>(m) * 0x1.0p-53;
        if (dist->sample_value(u) < window) ++violations;
      }
      EXPECT_EQ(violations, 0u)
          << spec.to_string() << " at cdf level " << level
          << ": words above the threshold invert inside the window";
    }
  }
}

TEST(SimBitCompat, DesDetectsStreamSwitchAndDiscardsStalePrefetch) {
  // The DES prefetches unit variates in blocks. Handing the simulator a
  // different RngStream mid-life (without begin_replica) must not serve
  // the new stream variates prefetched from the old one: the engine
  // fingerprint detects the switch and the second stream behaves
  // exactly as it does on a fresh simulator.
  const System sys = pinned_system(FailureDistSpec::weibull(0.7));
  const core::Pattern pattern{20000.0, 256.0};

  DesProtocolSimulator reused(sys, pattern);
  rng::RngStream a(1), b(2);
  (void)reused.simulate_pattern(a);  // leaves prefetch from stream 1
  PatternStats switched;
  for (int i = 0; i < 20; ++i) switched.merge(reused.simulate_pattern(b));

  DesProtocolSimulator fresh(sys, pattern);
  rng::RngStream b2(2);
  PatternStats expect;
  for (int i = 0; i < 20; ++i) expect.merge(fresh.simulate_pattern(b2));

  EXPECT_EQ(switched.wall_time, expect.wall_time);
  EXPECT_EQ(switched.attempts, expect.attempts);
  EXPECT_EQ(switched.fail_stop_errors, expect.fail_stop_errors);
  EXPECT_EQ(switched.silent_detections, expect.silent_detections);
}

TEST(SimBitCompat, SimulateReplicaEqualsPatternLoop) {
  const System sys = pinned_system(FailureDistSpec::weibull(0.7));
  const core::Pattern pattern{20000.0, 256.0};
  for (const Backend backend : {Backend::kFast, Backend::kDes}) {
    rng::RngStream ra(7), rb(7);
    PatternStats loop;
    PatternStats replica;
    if (backend == Backend::kFast) {
      FastProtocolSimulator a(sys, pattern), b(sys, pattern);
      for (int i = 0; i < 50; ++i) loop.merge(a.simulate_pattern(ra));
      replica = b.simulate_replica(rb, 50);
    } else {
      DesProtocolSimulator a(sys, pattern), b(sys, pattern);
      for (int i = 0; i < 50; ++i) loop.merge(a.simulate_pattern(ra));
      replica = b.simulate_replica(rb, 50);
    }
    EXPECT_EQ(loop.wall_time, replica.wall_time);
    EXPECT_EQ(loop.attempts, replica.attempts);
    EXPECT_EQ(loop.fail_stop_errors, replica.fail_stop_errors);
    EXPECT_EQ(loop.silent_detections, replica.silent_detections);
    EXPECT_EQ(loop.masked_silent, replica.masked_silent);
  }
}

// The exponential *fast* path never calls a transcendental (the CDF
// threshold filter decides almost every draw from the raw word, and the
// exceptions go through the pinned scalar sample_value), so its
// pre-overhaul pin must hold under the auto-detected tier too — the
// byte-identical-by-default guarantee for the paper's model on the
// default backend. (The DES backend's batched refill does route -log
// through the tier-dispatched kernel, so its pin is scalar-tier only,
// like the non-exponential ones.)
TEST(SimBitCompat, ExponentialFastPinHoldsUnderAutoDetectedTier) {
  rng::simd::clear_forced_tier();
  const System sys = pinned_system(FailureDistSpec::exponential());
  for (const Pin& pin : kPins) {
    if (std::string(pin.name) != "exponential" || pin.backend != Backend::kFast)
      continue;
    PatternStats totals;
    rng::RngStream rng(42);
    FastProtocolSimulator simulator(sys, {20000.0, 256.0});
    for (int i = 0; i < 300; ++i) {
      totals.merge(simulator.simulate_pattern(rng));
    }
    EXPECT_EQ(totals.wall_time, pin.wall_time) << pin.name;
    EXPECT_EQ(totals.attempts, pin.attempts) << pin.name;
  }
  rng::simd::force_tier(rng::simd::Tier::kScalar);
}

}  // namespace
}  // namespace ayd::sim
