#include "ayd/stats/ci.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/rng/stream.hpp"
#include "ayd/util/error.hpp"

namespace ayd::stats {
namespace {

TEST(StudentTQuantile, MatchesReferenceTables) {
  // Standard two-sided 95% / 90% / 99% critical values.
  EXPECT_NEAR(student_t_quantile(0.975, 1.0), 12.7062047364, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.975, 2.0), 4.30265272991, 1e-7);
  EXPECT_NEAR(student_t_quantile(0.975, 5.0), 2.57058183661, 1e-8);
  EXPECT_NEAR(student_t_quantile(0.975, 10.0), 2.22813885196, 1e-8);
  EXPECT_NEAR(student_t_quantile(0.95, 5.0), 2.01504837333, 1e-8);
  EXPECT_NEAR(student_t_quantile(0.995, 10.0), 3.16927267261, 1e-8);
  EXPECT_NEAR(student_t_quantile(0.975, 30.0), 2.04227245630, 1e-8);
}

TEST(StudentTQuantile, SymmetricAboutZero) {
  for (const double df : {1.0, 3.0, 7.0, 29.0}) {
    EXPECT_DOUBLE_EQ(student_t_quantile(0.5, df), 0.0);
    EXPECT_NEAR(student_t_quantile(0.025, df),
                -student_t_quantile(0.975, df), 1e-9);
  }
}

TEST(StudentTQuantile, ConvergesToNormalQuantile) {
  EXPECT_NEAR(student_t_quantile(0.975, 1e6), normal_quantile(0.975), 1e-4);
  EXPECT_NEAR(student_t_quantile(0.9, 1e6), normal_quantile(0.9), 1e-4);
}

TEST(StudentTQuantile, RejectsInvalidArguments) {
  EXPECT_THROW((void)student_t_quantile(0.0, 5.0), util::InvalidArgument);
  EXPECT_THROW((void)student_t_quantile(1.0, 5.0), util::InvalidArgument);
  EXPECT_THROW((void)student_t_quantile(0.9, 0.0), util::InvalidArgument);
}

TEST(MeanCiStudent, WiderThanNormalTheoryAtSmallN) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 4.0, 8.0, 3.0}) s.add(x);
  const ConfidenceInterval t_ci = mean_ci_student(s, 0.95);
  const ConfidenceInterval z_ci = mean_ci(s.mean(), s.stderr_mean(), 0.95);
  EXPECT_GT(t_ci.half_width(), z_ci.half_width());
  // Ratio of the critical values: t_{0.975,4} / z_{0.975}.
  EXPECT_NEAR(t_ci.half_width() / z_ci.half_width(),
              student_t_quantile(0.975, 4.0) / normal_quantile(0.975), 1e-9);
}

TEST(MeanCiStudent, DegenerateBelowTwoSamples) {
  RunningStats s;
  s.add(3.5);
  const ConfidenceInterval ci = mean_ci_student(s, 0.95);
  EXPECT_DOUBLE_EQ(ci.lo, 3.5);
  EXPECT_DOUBLE_EQ(ci.hi, 3.5);
}

TEST(MeanCiStudent, CoverageProbabilityOnNormalSamples) {
  // 95% intervals from n = 8 standard-normal samples must cover the true
  // mean (0) about 95% of the time — and the z interval, with the same
  // data, must undercover (it is why the adaptive driver uses t). Fixed
  // seed: fully deterministic.
  rng::RngStream rng(0x51C1u, 0);
  const int trials = 3000;
  const int n = 8;
  int t_covered = 0;
  int z_covered = 0;
  for (int trial = 0; trial < trials; ++trial) {
    RunningStats s;
    for (int i = 0; i < n; ++i) {
      s.add(normal_quantile(rng.next_uniform01()));
    }
    if (mean_ci_student(s, 0.95).contains(0.0)) ++t_covered;
    if (mean_ci(s.mean(), s.stderr_mean(), 0.95).contains(0.0)) ++z_covered;
  }
  const double t_cov = static_cast<double>(t_covered) / trials;
  const double z_cov = static_cast<double>(z_covered) / trials;
  EXPECT_GT(t_cov, 0.93);
  EXPECT_LT(t_cov, 0.97);
  EXPECT_LT(z_cov, t_cov);  // normal theory undercovers at n = 8
}

TEST(RelativeHalfWidth, MatchesDefinitionAndGuardsZeroMean) {
  const ConfidenceInterval ci{0.9, 1.1, 0.95};
  EXPECT_NEAR(relative_half_width(ci, 2.0), 0.05, 1e-12);
  EXPECT_NEAR(relative_half_width(ci, -2.0), 0.05, 1e-12);
  EXPECT_TRUE(std::isinf(relative_half_width(ci, 0.0)));
}

TEST(BatchMeans, BatchSizeOneMatchesPlainStats) {
  BatchMeans bm(1);
  RunningStats plain;
  for (const double x : {0.4, 1.7, 2.9, 0.1, 5.5, 3.2}) {
    bm.add(x);
    plain.add(x);
  }
  EXPECT_EQ(bm.batches(), plain.count());
  EXPECT_DOUBLE_EQ(bm.mean(), plain.mean());
  EXPECT_NEAR(bm.variance_of_mean(),
              plain.variance() / static_cast<double>(plain.count()), 1e-15);
}

TEST(BatchMeans, TailBatchInMeanButNotVariance) {
  BatchMeans bm(4);
  for (int i = 0; i < 10; ++i) bm.add(static_cast<double>(i));
  EXPECT_EQ(bm.count(), 10u);
  EXPECT_EQ(bm.batches(), 2u);  // two full batches; 2-sample tail pending
  EXPECT_DOUBLE_EQ(bm.mean(), 4.5);
}

TEST(BatchMeans, AbsorbsSerialCorrelationTheNaiveEstimatorMisses) {
  // A strongly autocorrelated series: each independent draw is repeated
  // 8 times. The naive iid standard error is ~sqrt(8) too small; batch
  // means with batches spanning a full repeat block recover the honest
  // scale.
  rng::RngStream rng(0xBA7C4u, 1);
  BatchMeans bm(8);
  RunningStats naive;
  for (int i = 0; i < 400; ++i) {
    const double x = normal_quantile(rng.next_uniform01());
    for (int r = 0; r < 8; ++r) {
      bm.add(x);
      naive.add(x);
    }
  }
  const double naive_se = naive.stderr_mean();
  EXPECT_GT(bm.stderr_mean(), 2.0 * naive_se);
  EXPECT_LT(bm.stderr_mean(), 4.5 * naive_se);  // ~sqrt(8) ≈ 2.83 expected
  const ConfidenceInterval ci = bm.ci(0.95);
  EXPECT_GT(ci.half_width(), 0.0);
  EXPECT_TRUE(ci.contains(bm.mean()));
}

TEST(BatchMeans, RejectsZeroBatchSize) {
  EXPECT_THROW(BatchMeans bm(0), util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::stats
