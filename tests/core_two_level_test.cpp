// Tests of the two-level checkpointing extension (core/two_level.hpp):
// reduction to the base VC protocol at n = 1, the first-order formulas,
// the closed-form segment plan, and the exact (T, n) optimum.

#include "ayd/core/two_level.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/core/expected_time.hpp"
#include "ayd/core/first_order.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/math/special.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/util/error.hpp"

namespace ayd::core {
namespace {

using model::CostModel;
using model::FailureModel;
using model::ResilienceCosts;
using model::Scenario;
using model::Speedup;
using model::System;

System make_system(double lambda, double f, double c, double v, double d) {
  ResilienceCosts costs{CostModel::constant(c), CostModel::constant(c),
                        CostModel::constant(v)};
  return System(FailureModel(lambda, f), costs, d, Speedup::amdahl(0.1));
}

TEST(TwoLevelExact, ReducesToBaseProtocolAtOneSegment) {
  // With n = 1 and the level-1 recovery cost equal to the base recovery
  // cost, the two-level semantics are exactly the VC protocol; the two
  // exact expectations must agree to rounding.
  const System base = make_system(2e-8, 0.3, 300.0, 20.0, 1800.0);
  const TwoLevelSystem sys{base, base.costs().recovery};
  for (const double t : {1000.0, 8000.0, 40000.0}) {
    for (const double p : {64.0, 512.0, 4096.0}) {
      const double two_level =
          expected_two_level_time(sys, {t, p, 1});
      const double reference = expected_pattern_time(base, {t, p});
      EXPECT_NEAR(two_level, reference, 1e-9 * reference)
          << "t=" << t << " p=" << p;
    }
  }
}

TEST(TwoLevelExact, ErrorFreeIsDeterministic) {
  const System base = make_system(0.0, 0.0, 120.0, 10.0, 3600.0);
  const TwoLevelSystem sys{base, CostModel::constant(4.0)};
  // n segments: n·(w + V) + (n-1)·L1 + C2, with T = n·w.
  const double t = 9000.0;
  const int n = 3;
  const double expected = t + 3.0 * 10.0 + 2.0 * 4.0 + 120.0;
  EXPECT_NEAR(expected_two_level_time(sys, {t, 64.0, n}), expected, 1e-9);
}

TEST(TwoLevelExact, MoreSegmentsCutSilentRollbackCost) {
  // Silent-only system: deeper segmentation strictly reduces the expected
  // time as long as the extra boundaries (V + L1) stay small relative to
  // the rollback savings.
  const System base = make_system(4e-8, 0.0, 1000.0, 5.0, 0.0);
  const TwoLevelSystem sys{base, CostModel::constant(5.0)};
  const double t = 30000.0;
  const double p = 512.0;
  const double e1 = expected_two_level_time(sys, {t, p, 1});
  const double e4 = expected_two_level_time(sys, {t, p, 4});
  const double e16 = expected_two_level_time(sys, {t, p, 16});
  EXPECT_LT(e4, e1);
  EXPECT_LT(e16, e4);
}

TEST(TwoLevelExact, ExceedsFaultFreeFloor) {
  const System base = make_system(5e-8, 0.5, 200.0, 15.0, 600.0);
  const TwoLevelSystem sys = TwoLevelSystem::with_memory_level1(base);
  for (const int n : {1, 2, 5, 13}) {
    const double t = 20000.0;
    const double p = 256.0;
    const double floor = t + n * (15.0 + 15.0) - 15.0 /* last L1 -> C2 */ +
                         200.0 - 15.0;
    // floor = T + n·V + (n-1)·L1 + C2 (L1 == V here).
    EXPECT_GE(expected_two_level_time(sys, {t, p, n}), floor) << n;
  }
}

TEST(TwoLevelExact, OverflowReturnsInfinity) {
  const System base = make_system(1e-3, 0.5, 300.0, 15.0, 3600.0);
  const TwoLevelSystem sys = TwoLevelSystem::with_memory_level1(base);
  EXPECT_TRUE(std::isinf(expected_two_level_time(sys, {1e9, 1e5, 4})));
}

TEST(TwoLevelExact, RejectsInvalidPatterns) {
  const System base = make_system(1e-8, 0.5, 300.0, 15.0, 3600.0);
  const TwoLevelSystem sys = TwoLevelSystem::with_memory_level1(base);
  EXPECT_THROW((void)expected_two_level_time(sys, {0.0, 64.0, 1}),
               util::InvalidArgument);
  EXPECT_THROW((void)expected_two_level_time(sys, {100.0, 0.5, 1}),
               util::InvalidArgument);
  EXPECT_THROW((void)expected_two_level_time(sys, {100.0, 64.0, 0}),
               util::InvalidArgument);
}

TEST(TwoLevelFirstOrder, MatchesExactForSmallRates) {
  // Relative error of the first-order overhead must shrink ~linearly in λ.
  const System base = make_system(1e-7, 0.4, 400.0, 25.0, 0.0);
  const TwoLevelSystem hot = TwoLevelSystem::with_memory_level1(base);
  const TwoLevelSystem cold{base.with_lambda(1e-9),
                            base.costs().verification};
  const TwoLevelPattern pat{20000.0, 128.0, 4};
  const double err_hot =
      std::abs(first_order_two_level_overhead(hot, pat) -
               two_level_overhead(hot, pat)) /
      two_level_overhead(hot, pat);
  const double err_cold =
      std::abs(first_order_two_level_overhead(cold, pat) -
               two_level_overhead(cold, pat)) /
      two_level_overhead(cold, pat);
  EXPECT_LT(err_cold, err_hot / 20.0);
  EXPECT_LT(err_cold, 1e-3);
}

TEST(TwoLevelFirstOrder, OptimalPeriodIsStationary) {
  const System base = make_system(3e-8, 0.25, 600.0, 30.0, 3600.0);
  const TwoLevelSystem sys = TwoLevelSystem::with_memory_level1(base);
  for (const int n : {1, 3, 9}) {
    const double t_star = optimal_period_two_level(sys, 512.0, n);
    const double h_star =
        first_order_two_level_overhead(sys, {t_star, 512.0, n});
    for (const double factor : {0.6, 0.9, 1.1, 1.7}) {
      EXPECT_GT(first_order_two_level_overhead(
                    sys, {t_star * factor, 512.0, n}),
                h_star)
          << "n=" << n << " factor=" << factor;
    }
  }
}

TEST(TwoLevelFirstOrder, PeriodReducesToTheorem1AtOneSegment) {
  // With n = 1 the first-order period must be sqrt((V+L+C)/(λf/2+λs)) —
  // Theorem 1 with the level-1 cost folded into the segment boundary.
  const System base = make_system(2e-8, 0.3, 300.0, 20.0, 3600.0);
  const TwoLevelSystem sys{base, CostModel::zero()};
  // Zero level-1 cost: exactly Theorem 1.
  EXPECT_NEAR(optimal_period_two_level(sys, 512.0, 1),
              optimal_period_first_order(base, 512.0), 1e-9);
}

TEST(TwoLevelPlan, ClosedFormSegmentCount) {
  const System base = make_system(2e-8, 0.2, 1000.0, 10.0, 3600.0);
  const TwoLevelSystem sys{base, CostModel::constant(10.0)};
  const TwoLevelPlan plan = optimal_two_level_plan(sys, 512.0);
  // n* = sqrt(2·λs·(C−L) / (λf·(V+L))) = sqrt(2·0.8·990/(0.2·20)).
  EXPECT_NEAR(plan.segments_continuous, std::sqrt(396.0), 1e-9);
  // Rounded to the better first-order neighbour of 19.9.
  EXPECT_GE(plan.segments, 19);
  EXPECT_LE(plan.segments, 20);
}

TEST(TwoLevelPlan, MoreSilentErrorsMeanMoreSegments) {
  const System base = make_system(2e-8, 0.5, 1000.0, 10.0, 3600.0);
  const TwoLevelSystem balanced{base, CostModel::constant(10.0)};
  const TwoLevelSystem silent_heavy{
      make_system(2e-8, 0.05, 1000.0, 10.0, 3600.0),
      CostModel::constant(10.0)};
  EXPECT_GT(optimal_two_level_plan(silent_heavy, 512.0).segments,
            optimal_two_level_plan(balanced, 512.0).segments);
}

TEST(TwoLevelPlan, RequiresFailStopErrors) {
  const System base = make_system(2e-8, 0.0, 1000.0, 10.0, 3600.0);
  const TwoLevelSystem sys{base, CostModel::constant(10.0)};
  EXPECT_THROW((void)optimal_two_level_plan(sys, 512.0),
               util::InvalidArgument);
}

TEST(TwoLevelOptimum, AgreesWithFirstOrderPlanAtModerateRates) {
  const model::Platform hera = model::hera();
  const System base = System::from_platform(hera, Scenario::kS3);
  const TwoLevelSystem sys = TwoLevelSystem::with_memory_level1(base);
  const TwoLevelPlan plan = optimal_two_level_plan(sys, hera.measured_procs);
  const TwoLevelOptimum opt =
      optimal_two_level_pattern(sys, hera.measured_procs);
  EXPECT_TRUE(opt.converged);
  EXPECT_NEAR(opt.segments, plan.segments, 2.0);
  EXPECT_NEAR(opt.period, plan.period, 0.25 * plan.period);
  // The exact optimum can only be at or below the first-order prediction
  // evaluated exactly.
  EXPECT_LE(opt.overhead,
            two_level_overhead(
                sys, {plan.period, hera.measured_procs, plan.segments}) +
                1e-12);
}

TEST(TwoLevelOptimum, BeatsSingleLevelWhenSilentDominates) {
  // The headline of the extension: on a silent-dominated platform the
  // optimal two-level pattern has a strictly lower overhead than the
  // optimal base VC pattern at the same allocation.
  const model::Platform atlas = model::atlas();  // s = 0.9375
  const System base = System::from_platform(atlas, Scenario::kS3);
  const TwoLevelSystem sys = TwoLevelSystem::with_memory_level1(base);
  const double p = atlas.measured_procs;
  const TwoLevelOptimum two = optimal_two_level_pattern(sys, p);
  const double single = optimal_overhead_fixed_procs(base, p);
  EXPECT_GT(two.segments, 1);
  EXPECT_LT(two.overhead, single);
}

class TwoLevelSegmentSweep : public ::testing::TestWithParam<int> {};

TEST_P(TwoLevelSegmentSweep, FirstOrderPeriodTracksExactOptimum) {
  const int n = GetParam();
  const System base = make_system(1e-8, 0.3, 800.0, 12.0, 3600.0);
  const TwoLevelSystem sys = TwoLevelSystem::with_memory_level1(base);
  const double p = 1024.0;
  const double t_fo = optimal_period_two_level(sys, p, n);
  // Exact overhead at the first-order period is within 1% of the best
  // exact overhead over a fine local scan.
  const double h_fo = two_level_overhead(sys, {t_fo, p, n});
  double h_best = h_fo;
  for (double f = 0.5; f <= 2.0; f *= 1.02) {
    h_best = std::min(h_best, two_level_overhead(sys, {t_fo * f, p, n}));
  }
  EXPECT_LT((h_fo - h_best) / h_best, 1e-2) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Segments, TwoLevelSegmentSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace ayd::core
