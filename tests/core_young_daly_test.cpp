#include "ayd/core/young_daly.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/model/system.hpp"
#include "ayd/util/error.hpp"

namespace ayd::core {
namespace {

using model::CostModel;
using model::FailureModel;
using model::ResilienceCosts;
using model::Speedup;
using model::System;

TEST(Young, Formula) {
  EXPECT_DOUBLE_EQ(young_period(3600.0, 50.0), std::sqrt(2.0 * 3600.0 * 50.0));
  EXPECT_DOUBLE_EQ(young_period(1e6, 0.0), 0.0);
}

TEST(Young, OverheadFormula) {
  EXPECT_DOUBLE_EQ(young_overhead(3600.0, 50.0),
                   std::sqrt(2.0 * 50.0 / 3600.0));
}

TEST(Daly, ReducesToYoungForSmallCost) {
  // For C << μ, Daly's correction terms vanish relative to sqrt(2μC).
  const double mu = 1e8;
  const double c = 10.0;
  EXPECT_NEAR(daly_period(mu, c), young_period(mu, c),
              0.01 * young_period(mu, c));
}

TEST(Daly, CorrectionShortensThePeriod) {
  // The -C term dominates the positive series corrections for moderate
  // C/μ, so Daly < Young there.
  const double mu = 3600.0;
  const double c = 100.0;
  EXPECT_LT(daly_period(mu, c), young_period(mu, c));
}

TEST(Daly, SaturatesAtMtbf) {
  EXPECT_DOUBLE_EQ(daly_period(100.0, 1000.0), 100.0);
  EXPECT_DOUBLE_EQ(daly_period(100.0, 200.0), 100.0);
}

TEST(YoungDaly, Preconditions) {
  EXPECT_THROW((void)young_period(0.0, 10.0), util::InvalidArgument);
  EXPECT_THROW((void)young_period(100.0, -1.0), util::InvalidArgument);
  EXPECT_THROW((void)daly_period(-5.0, 10.0), util::InvalidArgument);
}

// The headline reduction: the paper's Theorem 1 collapses to Young's
// formula when silent errors, verification, and downtime are switched
// off — "When Amdahl meets Young/Daly".
TEST(Reduction, Theorem1ReducesToYoungWithoutSilentErrors) {
  const double lambda_ind = 1e-8;
  const double procs = 512.0;
  const double checkpoint = 300.0;
  const ResilienceCosts costs{CostModel::constant(checkpoint),
                              CostModel::constant(checkpoint),
                              CostModel::zero()};
  const System sys(FailureModel(lambda_ind, /*f=*/1.0), costs,
                   /*downtime=*/0.0, Speedup::amdahl(0.1));
  const double t_vc = optimal_period_first_order(sys, procs);
  const double platform_mtbf = 1.0 / (lambda_ind * procs);
  EXPECT_NEAR(t_vc, young_period(platform_mtbf, checkpoint), 1e-9 * t_vc);
}

TEST(Reduction, NumericalOptimumNearYoungDalyForFailStopOnly) {
  const double lambda_ind = 1e-9;
  const double procs = 1000.0;
  const double checkpoint = 120.0;
  const ResilienceCosts costs{CostModel::constant(checkpoint),
                              CostModel::constant(checkpoint),
                              CostModel::zero()};
  const System sys(FailureModel(lambda_ind, 1.0), costs, 0.0,
                   Speedup::amdahl(0.05));
  const double platform_mtbf = 1.0 / (lambda_ind * procs);
  const PeriodOptimum num = optimal_period(sys, procs);
  const double t_young = young_period(platform_mtbf, checkpoint);
  const double t_daly = daly_period(platform_mtbf, checkpoint);
  // Young's first-order formula is within a couple percent; Daly's
  // higher-order one is closer still.
  EXPECT_NEAR(num.period, t_young, 0.03 * t_young);
  EXPECT_LT(std::abs(num.period - t_daly), std::abs(num.period - t_young));
}

TEST(DalyVc, ReducesToDalyWithoutSilentErrors) {
  // With f = 1 and no verification cost, daly_period_vc must equal the
  // classical Daly formula with mu = platform MTBF and C the checkpoint.
  const double lambda_ind = 2e-9;
  const double procs = 800.0;
  const double checkpoint = 250.0;
  const ResilienceCosts costs{CostModel::constant(checkpoint),
                              CostModel::constant(checkpoint),
                              CostModel::zero()};
  const System sys(FailureModel(lambda_ind, 1.0), costs, 0.0,
                   Speedup::amdahl(0.1));
  const double platform_mtbf = 1.0 / (lambda_ind * procs);
  EXPECT_NEAR(daly_period_vc(sys, procs),
              daly_period(platform_mtbf, checkpoint),
              1e-9 * daly_period(platform_mtbf, checkpoint));
}

TEST(DalyVc, BeatsFirstOrderOnEveryPlatformScenario) {
  // The higher-order period must achieve an exact overhead at least as
  // close to the numerical optimum as Theorem 1's period, on all 24
  // platform x scenario pairs.
  for (const auto& platform : model::all_platforms()) {
    for (const auto scenario : model::all_scenarios()) {
      const System sys = System::from_platform(platform, scenario);
      const double p = platform.measured_procs;
      const double t1 = optimal_period_first_order(sys, p);
      const double td = daly_period_vc(sys, p);
      const PeriodOptimum num = optimal_period(sys, p);
      const double gap1 = pattern_overhead(sys, {t1, p}) - num.overhead;
      const double gapd = pattern_overhead(sys, {td, p}) - num.overhead;
      EXPECT_GE(gap1, -1e-12);
      EXPECT_GE(gapd, -1e-12);
      EXPECT_LE(gapd, gap1) << platform.name << " s"
                            << model::scenario_number(scenario);
    }
  }
}

TEST(DalyVc, LargeExposureFallsBackToMtbf) {
  // When the resilience cost exceeds the mean error interval the series
  // is invalid; Daly's fallback is T = mu (here 1/Lambda).
  const ResilienceCosts costs{CostModel::constant(5e5),
                              CostModel::constant(5e5),
                              CostModel::zero()};
  const System sys(FailureModel(1e-6, 1.0), costs, 0.0,
                   Speedup::amdahl(0.1));
  const double rate = sys.fail_stop_rate(100.0) / 2.0;
  EXPECT_DOUBLE_EQ(daly_period_vc(sys, 100.0), 1.0 / rate);
}

TEST(DalyVc, ErrorFreeNeverCheckpoints) {
  const ResilienceCosts costs{CostModel::constant(100.0),
                              CostModel::constant(100.0),
                              CostModel::zero()};
  const System sys(FailureModel::error_free(), costs, 0.0,
                   Speedup::amdahl(0.1));
  EXPECT_TRUE(std::isinf(daly_period_vc(sys, 100.0)));
}

TEST(Reduction, SilentErrorsShortenThePeriod) {
  // (f/2 + s) > f'/2 whenever some errors are silent at equal total rate:
  // silent errors waste the whole period, so the optimal period shrinks.
  const double lambda = 1e-8;
  const ResilienceCosts costs{CostModel::constant(300.0),
                              CostModel::constant(300.0),
                              CostModel::constant(15.0)};
  const System all_fail_stop(FailureModel(lambda, 1.0), costs, 0.0,
                             Speedup::amdahl(0.1));
  const System mostly_silent(FailureModel(lambda, 0.2), costs, 0.0,
                             Speedup::amdahl(0.1));
  EXPECT_LT(optimal_period_first_order(mostly_silent, 512.0),
            optimal_period_first_order(all_fail_stop, 512.0));
}

}  // namespace
}  // namespace ayd::core
