// Batched quantile inversion vs the scalar sampler: bitwise-equal
// streams per seed. This is the reproducibility contract the simulators
// lean on — from_unit(sample_units(...)[i]) == sample() fed the same
// words, and sample_value(u) == sample() had it drawn u.

#include <vector>

#include <gtest/gtest.h>

#include "ayd/model/failure_dist.hpp"
#include "ayd/rng/block.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/util/error.hpp"

namespace ayd::model {
namespace {

std::vector<FailureDistSpec> analytic_specs() {
  return {FailureDistSpec::exponential(), FailureDistSpec::weibull(0.7),
          FailureDistSpec::weibull(1.5), FailureDistSpec::lognormal(0.5),
          FailureDistSpec::lognormal(2.0)};
}

TEST(FailureDistBatch, AnalyticKindsAreUnitSamplable) {
  for (const auto& spec : analytic_specs()) {
    EXPECT_TRUE(spec.instantiate(1e-6)->unit_samplable())
        << spec.to_string();
  }
  // Trace replay consumes a variable number of words per draw; the
  // degenerate rate-0 distribution consumes none. Neither can batch.
  EXPECT_FALSE(FailureDistSpec::trace_replay({1.0, 2.0, 3.0})
                   .instantiate(1e-6)
                   ->unit_samplable());
  EXPECT_FALSE(FailureDistSpec::exponential().instantiate(0.0)
                   ->unit_samplable());
}

TEST(FailureDistBatch, BatchedStreamBitwiseEqualsScalarStream) {
  constexpr std::size_t kDraws = 1000;
  for (const auto& spec : analytic_specs()) {
    const auto dist = spec.instantiate(2.5e-7);
    for (std::uint64_t seed : {1ULL, 42ULL, 1234567ULL}) {
      rng::RngStream scalar(seed), batched(seed);
      rng::VariateBlock block;
      for (std::size_t i = 0; i < kDraws; ++i) {
        const double want = dist->sample(scalar);
        const double got = dist->from_unit(block.next(
            [&](double* z, std::size_t n) { dist->sample_units(batched, z, n); }));
        ASSERT_EQ(got, want)
            << spec.to_string() << " seed " << seed << " draw " << i;
      }
    }
  }
}

TEST(FailureDistBatch, UnitBlockServesBothRatesOfOneSpec) {
  // The simulators feed fail-stop and silent sources (same spec,
  // different rates) from one unit block; each scaled draw must equal
  // the scalar draw the historical alternating sequence would produce.
  for (const auto& spec : analytic_specs()) {
    const auto fail = spec.instantiate(4e-7);
    const auto silent = spec.instantiate(9e-8);
    rng::RngStream scalar(77), batched(77);
    rng::VariateBlock block;
    const auto refill = [&](double* z, std::size_t n) {
      fail->sample_units(batched, z, n);
    };
    for (int i = 0; i < 500; ++i) {
      const double want_fail = fail->sample(scalar);
      const double want_silent = silent->sample(scalar);
      ASSERT_EQ(fail->from_unit(block.next(refill)), want_fail)
          << spec.to_string() << " draw " << i;
      ASSERT_EQ(silent->from_unit(block.next(refill)), want_silent)
          << spec.to_string() << " draw " << i;
    }
  }
}

TEST(FailureDistBatch, SampleValueMatchesSampleGivenSameWord) {
  for (const auto& spec : analytic_specs()) {
    const auto dist = spec.instantiate(1.3e-6);
    rng::RngStream scalar(11), words(11);
    for (int i = 0; i < 1000; ++i) {
      const double u = words.next_uniform01();
      ASSERT_EQ(dist->sample_value(u), dist->sample(scalar))
          << spec.to_string() << " draw " << i;
    }
  }
}

TEST(FailureDistBatch, NonBatchableKindsThrowOnUnitApi) {
  const auto trace = FailureDistSpec::trace_replay({1.0, 5.0}).instantiate(1e-6);
  rng::RngStream rng(1);
  double z[4];
  EXPECT_THROW((void)trace->sample_value(0.5), util::LogicError);
  EXPECT_THROW(trace->sample_units(rng, z, 4), util::LogicError);
  EXPECT_THROW((void)trace->from_unit(1.0), util::LogicError);
}

}  // namespace
}  // namespace ayd::model
