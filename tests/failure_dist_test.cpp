// Unit and property tests for the pluggable failure distributions:
// quantile∘cdf identity, sample-mean convergence to the analytic mean,
// spec round-trips through the CLI syntax and JSON, and trace-replay
// round-trips through the failure-log CSV format.

#include "ayd/model/failure_dist.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "ayd/io/json.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/sim/trace.hpp"
#include "ayd/stats/running.hpp"
#include "ayd/util/error.hpp"

namespace ayd::model {
namespace {

std::vector<FailureDistSpec> continuous_specs() {
  return {FailureDistSpec::exponential(), FailureDistSpec::weibull(0.7),
          FailureDistSpec::weibull(1.5), FailureDistSpec::lognormal(0.8),
          FailureDistSpec::lognormal(1.5)};
}

TEST(FailureDistSpec, ToStringParseRoundTrip) {
  for (const auto& spec :
       {FailureDistSpec::exponential(), FailureDistSpec::weibull(0.7),
        FailureDistSpec::weibull(2.25), FailureDistSpec::lognormal(1.2)}) {
    EXPECT_EQ(FailureDistSpec::parse(spec.to_string()), spec)
        << spec.to_string();
  }
}

TEST(FailureDistSpec, ParseAcceptsCliVariants) {
  EXPECT_EQ(FailureDistSpec::parse("exp"), FailureDistSpec::exponential());
  EXPECT_EQ(FailureDistSpec::parse("poisson"),
            FailureDistSpec::exponential());
  EXPECT_EQ(FailureDistSpec::parse("Weibull:k=0.7"),
            FailureDistSpec::weibull(0.7));
  EXPECT_EQ(FailureDistSpec::parse("weibull:0.7"),
            FailureDistSpec::weibull(0.7));
  EXPECT_EQ(FailureDistSpec::parse("weibull:shape=1.5"),
            FailureDistSpec::weibull(1.5));
  EXPECT_EQ(FailureDistSpec::parse("lognormal:sigma=1.2"),
            FailureDistSpec::lognormal(1.2));
  EXPECT_EQ(FailureDistSpec::parse("lognorm:1.2"),
            FailureDistSpec::lognormal(1.2));
}

TEST(FailureDistSpec, ParseRejectsBadInput) {
  EXPECT_THROW((void)FailureDistSpec::parse("gaussian"),
               util::InvalidArgument);
  EXPECT_THROW((void)FailureDistSpec::parse("weibull"),
               util::InvalidArgument);
  EXPECT_THROW((void)FailureDistSpec::parse("weibull:q=2"),
               util::InvalidArgument);
  EXPECT_THROW((void)FailureDistSpec::parse("weibull:k=zero"),
               util::InvalidArgument);
  EXPECT_THROW((void)FailureDistSpec::parse("weibull:k=-1"),
               util::InvalidArgument);
  EXPECT_THROW((void)FailureDistSpec::parse("exponential:rate=2"),
               util::InvalidArgument);
  // Traces carry data, not just parameters; parse() points at the loader.
  EXPECT_THROW((void)FailureDistSpec::parse("trace:log.csv"),
               util::InvalidArgument);
}

TEST(FailureDistSpec, ValidatesParameters) {
  EXPECT_THROW((void)FailureDistSpec::weibull(0.0), util::InvalidArgument);
  // Out-of-range shapes would overflow tgamma in the scale factor and
  // silently produce 0/NaN samples; they must be rejected up front.
  EXPECT_THROW((void)FailureDistSpec::weibull(1e-3), util::InvalidArgument);
  EXPECT_THROW((void)FailureDistSpec::weibull(1e3), util::InvalidArgument);
  EXPECT_THROW((void)FailureDistSpec::lognormal(-1.0),
               util::InvalidArgument);
  EXPECT_THROW((void)FailureDistSpec::lognormal(11.0),
               util::InvalidArgument);
  EXPECT_THROW((void)FailureDistSpec::trace_replay({}),
               util::InvalidArgument);
  EXPECT_THROW((void)FailureDistSpec::trace_replay({0.0, 0.0}),
               util::InvalidArgument);
  EXPECT_THROW((void)FailureDistSpec::trace_replay({1.0, -2.0}),
               util::InvalidArgument);
}

TEST(FailureDistribution, QuantileCdfIsIdentity) {
  const double rate = 1e-5;
  for (const auto& spec : continuous_specs()) {
    const auto dist = spec.instantiate(rate);
    for (const double u :
         {0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999}) {
      const double x = dist->quantile(u);
      ASSERT_TRUE(std::isfinite(x)) << spec.to_string() << " u=" << u;
      EXPECT_NEAR(dist->cdf(x), u, 1e-9)
          << spec.to_string() << " u=" << u;
      // ... and back: quantile(cdf(x)) recovers x.
      EXPECT_NEAR(dist->quantile(dist->cdf(x)), x,
                  1e-6 * std::abs(x) + 1e-12)
          << spec.to_string() << " u=" << u;
    }
  }
}

TEST(FailureDistribution, CdfIsMonotoneAndPdfMatchesSlope) {
  const double rate = 2e-4;
  for (const auto& spec : continuous_specs()) {
    const auto dist = spec.instantiate(rate);
    double prev = -1.0;
    for (const double u : {0.05, 0.2, 0.4, 0.6, 0.8, 0.95}) {
      const double x = dist->quantile(u);
      const double f = dist->cdf(x);
      EXPECT_GT(f, prev) << spec.to_string();
      prev = f;
      // Central difference of the CDF approximates the density.
      const double h = 1e-5 * x;
      const double slope = (dist->cdf(x + h) - dist->cdf(x - h)) / (2 * h);
      EXPECT_NEAR(dist->pdf(x), slope,
                  1e-4 * dist->pdf(x) + 1e-12)
          << spec.to_string() << " u=" << u;
    }
  }
}

TEST(FailureDistribution, MeanIsInverseRateForEveryShape) {
  const double rate = 3.7e-6;
  auto specs = continuous_specs();
  specs.push_back(FailureDistSpec::trace_replay({5.0, 11.0, 2.5, 40.0}));
  for (const auto& spec : specs) {
    const auto dist = spec.instantiate(rate);
    EXPECT_NEAR(dist->mean(), 1.0 / rate, 1e-6 / rate) << spec.to_string();
    EXPECT_DOUBLE_EQ(dist->rate(), rate) << spec.to_string();
  }
}

TEST(FailureDistribution, SampleMeanConvergesToAnalyticMean) {
  const double rate = 1e-3;
  auto specs = continuous_specs();
  specs.push_back(
      FailureDistSpec::trace_replay({120.0, 800.0, 55.0, 1800.0, 300.0}));
  for (const auto& spec : specs) {
    const auto dist = spec.instantiate(rate);
    rng::RngStream rng(0xA4D2016ULL);
    stats::RunningStats s;
    for (int i = 0; i < 40000; ++i) s.add(dist->sample(rng));
    // Loose 5-sigma band around the analytic mean (the lognormal with
    // sigma = 1.5 is heavy-tailed, hence the sample stddev in the bound).
    const double tol = 5.0 * s.stddev() / std::sqrt(40000.0);
    EXPECT_NEAR(s.mean(), dist->mean(), tol) << spec.to_string();
  }
}

TEST(FailureDistribution, SamplesAreNonNegative) {
  const double rate = 1e-2;
  for (const auto& spec : continuous_specs()) {
    const auto dist = spec.instantiate(rate);
    rng::RngStream rng(7);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_GE(dist->sample(rng), 0.0) << spec.to_string();
    }
  }
}

TEST(FailureDistribution, ExponentialSamplesMatchHistoricalStream) {
  // The exponential implementation must consume the RNG word-for-word
  // like RngStream::next_exponential always did — this is what keeps all
  // pre-existing experiment outputs bit-identical.
  const double rate = 4e-6;
  const auto dist = FailureDistSpec::exponential().instantiate(rate);
  rng::RngStream a(42);
  rng::RngStream b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(dist->sample(a), b.next_exponential(rate));
  }
}

TEST(FailureDistribution, TraceReplayRescalesToTargetRate) {
  const auto spec = FailureDistSpec::trace_replay({1.0, 2.0, 3.0, 6.0});
  const auto dist = spec.instantiate(1.0 / 600.0);  // mean 600 s
  EXPECT_NEAR(dist->mean(), 600.0, 1e-9);
  // Gaps keep their relative pattern: the scaled support is {200, 400,
  // 600, 1200}.
  EXPECT_NEAR(dist->quantile(0.0), 200.0, 1e-9);
  EXPECT_NEAR(dist->quantile(0.99), 1200.0, 1e-9);
  rng::RngStream rng(11);
  for (int i = 0; i < 200; ++i) {
    const double g = dist->sample(rng);
    EXPECT_TRUE(g == 200.0 || g == 400.0 || g == 600.0 || g == 1200.0)
        << g;
  }
}

TEST(FailureLogCsv, TraceReplayRoundTripsThroughCsv) {
  const std::vector<double> gaps{86400.0, 3612.25, 1.0e-3, 7200.5,
                                 0.0,     123456.789};
  const std::string path =
      ::testing::TempDir() + "/ayd_failure_log_roundtrip.csv";
  sim::write_failure_log_csv(path, gaps);
  const std::vector<double> back = sim::read_failure_log_csv(path);
  ASSERT_EQ(back.size(), gaps.size());
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i], gaps[i]) << i;  // lossless round-trip
  }
  EXPECT_EQ(FailureDistSpec::trace_replay(back, path),
            FailureDistSpec::trace_replay(gaps, path));
  std::remove(path.c_str());
}

TEST(FailureLogCsv, ParsesAbsoluteFailureTimes) {
  const auto gaps = sim::parse_failure_log_csv(
      "failure_time\n100\n250\n250\n1000\n");
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_DOUBLE_EQ(gaps[0], 150.0);
  EXPECT_DOUBLE_EQ(gaps[1], 0.0);
  EXPECT_DOUBLE_EQ(gaps[2], 750.0);
}

TEST(FailureLogCsv, ParsesHeaderlessGaps) {
  const auto gaps = sim::parse_failure_log_csv("10\n20.5\n30\n");
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_DOUBLE_EQ(gaps[1], 20.5);
}

TEST(FailureLogCsv, HeaderSurvivesLeadingBlankLines) {
  const auto gaps = sim::parse_failure_log_csv("\n\ngap_seconds\n100\n200\n");
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 100.0);
}

TEST(FailureLogCsv, RejectsMalformedLogs) {
  EXPECT_THROW((void)sim::parse_failure_log_csv("gap_seconds\n"),
               util::InvalidArgument);
  EXPECT_THROW((void)sim::parse_failure_log_csv("gap_seconds\nabc\n"),
               util::InvalidArgument);
  EXPECT_THROW((void)sim::parse_failure_log_csv("failure_time\n100\n"),
               util::InvalidArgument);
  EXPECT_THROW((void)sim::parse_failure_log_csv("failure_time\n100\n50\n"),
               util::InvalidArgument);
  EXPECT_THROW((void)sim::read_failure_log_csv("/nonexistent/log.csv"),
               util::IoError);
}

TEST(FailureDistSpec, WritesJson) {
  const auto json_of = [](const FailureDistSpec& spec) {
    std::ostringstream os;
    io::JsonWriter w(os);
    spec.write_json(w);
    return os.str();
  };
  EXPECT_EQ(json_of(FailureDistSpec::exponential()),
            R"({"kind":"exponential"})");
  // Doubles go out at full %.17g precision (0.7 is not representable).
  EXPECT_EQ(json_of(FailureDistSpec::weibull(0.75)),
            R"({"kind":"weibull","shape":0.75})");
  EXPECT_EQ(json_of(FailureDistSpec::trace_replay({1.5, 2.0}, "log.csv")),
            R"({"kind":"trace","source":"log.csv","gaps":[1.5,2]})");
}

}  // namespace
}  // namespace ayd::model
