#include "ayd/math/minimize.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/util/error.hpp"

namespace ayd::math {
namespace {

TEST(GoldenSection, QuadraticMinimum) {
  const auto r =
      golden_section([](double x) { return (x - 3.0) * (x - 3.0); }, 0.0,
                     10.0);
  EXPECT_NEAR(r.x, 3.0, 1e-7);
  EXPECT_NEAR(r.fx, 0.0, 1e-12);
}

TEST(GoldenSection, NonSmoothObjective) {
  const auto r = golden_section([](double x) { return std::abs(x - 0.7); },
                                -1.0, 2.0);
  EXPECT_NEAR(r.x, 0.7, 1e-7);
}

TEST(GoldenSection, MonotoneConvergesToBoundary) {
  const auto r = golden_section([](double x) { return -x; }, 0.0, 5.0);
  EXPECT_NEAR(r.x, 5.0, 1e-5);
  EXPECT_TRUE(r.at_boundary);
}

TEST(BrentMinimize, QuadraticIsFast) {
  const auto r = brent_minimize(
      [](double x) { return 2.0 * (x - 1.5) * (x - 1.5) + 4.0; }, -10.0,
      10.0);
  EXPECT_TRUE(r.converged);
  // A derivative-free minimiser can locate the argmin only to ~sqrt(eps)
  // relative precision (the objective is flat to machine precision there).
  EXPECT_NEAR(r.x, 1.5, 1e-7);
  EXPECT_NEAR(r.fx, 4.0, 1e-12);
  EXPECT_LT(r.evaluations, 40);
}

TEST(BrentMinimize, TrigObjective) {
  // min of x + 2 cos(x) on [0, 3]: derivative 1 - 2 sin(x) = 0 at
  // x = pi - asin(1/2) = 2.617993877991494 (the interior minimum).
  const auto r = brent_minimize([](double x) { return x + 2.0 * std::cos(x); },
                                1.0, 3.0);
  EXPECT_NEAR(r.x, 2.617993877991494, 1e-7);
}

TEST(BrentMinimize, BeatsGoldenOnSmoothFunctions) {
  const auto f = [](double x) { return std::pow(x - 2.0, 4) + x; };
  const auto g = golden_section(f, -5.0, 5.0);
  const auto b = brent_minimize(f, -5.0, 5.0);
  EXPECT_NEAR(b.fx, g.fx, 1e-6);
  EXPECT_LE(b.evaluations, g.evaluations);
}

TEST(BracketMinimum, FindsValidTriple) {
  const auto f = [](double x) { return (x - 7.0) * (x - 7.0); };
  const Bracket br = bracket_minimum(f, 0.0, 1.0, -100.0, 100.0);
  ASSERT_TRUE(br.valid);
  EXPECT_LT(br.lo, br.mid);
  EXPECT_LT(br.mid, br.hi);
  EXPECT_LE(f(br.mid), f(br.lo));
  EXPECT_LT(f(br.mid), f(br.hi));
  EXPECT_LE(br.lo, 7.0);
  EXPECT_GE(br.hi, 7.0);
}

TEST(BracketMinimum, MonotoneReportsInvalidAtLimit) {
  const Bracket br =
      bracket_minimum([](double x) { return -x; }, 0.0, 1.0, -10.0, 10.0);
  EXPECT_FALSE(br.valid);
  EXPECT_DOUBLE_EQ(br.mid, 10.0);
}

TEST(MinimizeWithHint, UsesHintAndFindsInteriorMinimum) {
  const auto f = [](double x) { return std::cosh(x - 4.0); };
  const auto r = minimize_with_hint(f, -50.0, 50.0, 3.5);
  EXPECT_NEAR(r.x, 4.0, 1e-7);
  EXPECT_FALSE(r.at_boundary);
}

TEST(MinimizeWithHint, BadHintStillConverges) {
  const auto f = [](double x) { return (x - 4.0) * (x - 4.0); };
  const auto r = minimize_with_hint(f, -50.0, 50.0, -49.0);
  EXPECT_NEAR(r.x, 4.0, 1e-6);
}

TEST(MinimizeWithHint, MonotoneObjectiveHitsBoundary) {
  const auto r =
      minimize_with_hint([](double x) { return std::exp(-x); }, 0.0, 20.0,
                         1.0);
  EXPECT_NEAR(r.x, 20.0, 1e-3);
  EXPECT_TRUE(r.at_boundary);
}

TEST(MinimizeWithHint, RejectsEmptyDomain) {
  EXPECT_THROW(
      (void)minimize_with_hint([](double x) { return x; }, 1.0, 1.0, 1.0),
      util::InvalidArgument);
}

// The overhead objectives this library minimises look like
// a/T + b·T + const (Theorem 1): check the minimiser recovers the
// analytic optimum sqrt(a/b) across magnitudes.
class YoungDalyShape : public ::testing::TestWithParam<double> {};

TEST_P(YoungDalyShape, RecoversSqrtRatio) {
  const double a = GetParam();
  const double b = 3.7e-6;
  const auto f = [a, b](double logt) {
    const double t = std::exp(logt);
    return a / t + b * t;
  };
  const auto r = minimize_with_hint(f, std::log(1e-3), std::log(1e12),
                                    std::log(1.0));
  EXPECT_NEAR(std::exp(r.x), std::sqrt(a / b), std::sqrt(a / b) * 1e-5)
      << "a=" << a;
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, YoungDalyShape,
                         ::testing::Values(1e-2, 1.0, 300.0, 2500.0, 1e6));

}  // namespace
}  // namespace ayd::math
