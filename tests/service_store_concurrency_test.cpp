// Threads racing the MemoCache's disk tier against one AnswerStore:
// concurrent get_or_compute over a mix of pre-persisted keys (disk hits
// that promote into the LRU) and cold keys (computed once, written
// behind), all funnelled through the store's single mutex. Pins that
//  * every caller sees the correct value regardless of which thread
//    promoted/computed/persisted it first;
//  * disk hits are counted as disk_hits (not misses) and cold keys are
//    computed exactly once per key (single-flight across threads);
//  * the write-behind records survive into a fresh cache+store pair.

#include "ayd/service/memo_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ayd/service/canonical.hpp"
#include "ayd/service/store.hpp"

namespace ayd::service {
namespace {

namespace fs = std::filesystem;

class StoreConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ayd_store_conc_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string store_path() const {
    return (dir_ / AnswerStore::kFileName).string();
  }

  static CanonicalKey key_of(int i) {
    return CanonicalKeyBuilder("race")
        .field("i", static_cast<std::uint64_t>(i))
        .finish();
  }

  static std::string value_of(int i) {
    return "{\"answer\":" + std::to_string(i * 7) + "}";
  }

  fs::path dir_;
};

TEST_F(StoreConcurrencyTest, ThreadsRacingGetPromotePersistStayCoherent) {
  constexpr int kKeys = 32;
  constexpr int kPersisted = 16;  // keys 0..15 are on disk before the race
  constexpr int kThreads = 8;
  constexpr int kIterations = 400;

  {
    AnswerStore seed(store_path());
    for (int i = 0; i < kPersisted; ++i) {
      const CanonicalKey k = key_of(i);
      seed.put(k.text, k.hash, value_of(i));
    }
  }

  AnswerStore store(store_path());
  ASSERT_EQ(store.entries(), static_cast<std::size_t>(kPersisted));
  // Capacity far above kKeys even under shard skew: the exact-count
  // assertions below need zero evictions (an evicted key re-promotes
  // from disk and would inflate disk_hits).
  MemoCache cache(/*max_entries=*/kKeys * 8, /*shards=*/4, &store);

  std::atomic<int> computes{0};
  std::atomic<int> wrong_values{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int it = 0; it < kIterations; ++it) {
        // Interleave persisted and cold keys differently per thread so
        // promotions and computations overlap.
        const int i = (t * 13 + it) % kKeys;
        const MemoCache::Lookup lookup =
            cache.get_or_compute(key_of(i), [&, i] {
              computes.fetch_add(1);
              return value_of(i);
            });
        if (*lookup.value != value_of(i)) wrong_values.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong_values.load(), 0);
  // Persisted keys are served by promotion, never recomputed; each cold
  // key computes exactly once (single-flight) no matter how many
  // threads raced it.
  EXPECT_EQ(computes.load(), kKeys - kPersisted);

  const CacheStats stats = cache.stats();
  ASSERT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.disk_hits, static_cast<std::uint64_t>(kPersisted));
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kKeys - kPersisted));
  // Every one of the kThreads * kIterations lookups is accounted for.
  EXPECT_EQ(stats.hits + stats.misses + stats.disk_hits + stats.coalesced,
            static_cast<std::uint64_t>(kThreads * kIterations));

  // Write-behind persisted every cold key: a fresh store serves all 32
  // keys from disk alone.
  AnswerStore reopened(store_path());
  EXPECT_EQ(reopened.entries(), static_cast<std::size_t>(kKeys));
  MemoCache cold_cache(kKeys * 2, 4, &reopened);
  for (int i = 0; i < kKeys; ++i) {
    const MemoCache::Lookup lookup = cold_cache.get_or_compute(
        key_of(i), [] { return std::string("MUST-NOT-COMPUTE"); });
    EXPECT_EQ(*lookup.value, value_of(i)) << "key " << i;
  }
  EXPECT_EQ(cold_cache.stats().disk_hits,
            static_cast<std::uint64_t>(kKeys));
}

TEST_F(StoreConcurrencyTest, EvictionPressureWithDiskTierKeepsAnswers) {
  constexpr int kKeys = 48;
  constexpr int kThreads = 6;

  AnswerStore store(store_path());
  // A tiny cache forces constant eviction, so threads repeatedly re-load
  // keys through the disk tier while others persist new ones.
  MemoCache cache(/*max_entries=*/8, /*shards=*/2, &store);

  std::atomic<int> wrong_values{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int it = 0; it < 300; ++it) {
        const int i = (t * 7 + it) % kKeys;
        const MemoCache::Lookup lookup =
            cache.get_or_compute(key_of(i), [i] { return value_of(i); });
        if (*lookup.value != value_of(i)) wrong_values.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong_values.load(), 0);
  EXPECT_GT(cache.stats().evictions, 0u) << "the test must exert pressure";
  // Evicted-and-refetched keys come back from disk; once on disk, a key
  // never recomputes, so the store holds exactly one record per key.
  EXPECT_EQ(store.entries(), static_cast<std::size_t>(kKeys));
  EXPECT_GT(cache.stats().disk_hits, 0u);
}

}  // namespace
}  // namespace ayd::service
