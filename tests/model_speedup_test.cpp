#include "ayd/model/speedup.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/util/error.hpp"

namespace ayd::model {
namespace {

TEST(Amdahl, OneProcessorHasUnitSpeedup) {
  EXPECT_DOUBLE_EQ(Speedup::amdahl(0.1).speedup(1.0), 1.0);
  EXPECT_DOUBLE_EQ(Speedup::amdahl(0.0).speedup(1.0), 1.0);
  EXPECT_DOUBLE_EQ(Speedup::amdahl(1.0).speedup(1.0), 1.0);
}

TEST(Amdahl, BoundedByInverseAlpha) {
  const Speedup s = Speedup::amdahl(0.1);
  EXPECT_LT(s.speedup(1e12), 10.0);
  EXPECT_NEAR(s.speedup(1e12), 10.0, 1e-9);
}

TEST(Amdahl, KnownValue) {
  // S(P) = 1/(α + (1-α)/P); α=0.1, P=9: 1/(0.1 + 0.1) = 5.
  EXPECT_DOUBLE_EQ(Speedup::amdahl(0.1).speedup(9.0), 5.0);
}

TEST(Amdahl, StrictlyIncreasingInP) {
  const Speedup s = Speedup::amdahl(0.05);
  double prev = s.speedup(1.0);
  for (double p = 2.0; p <= 1e6; p *= 10.0) {
    const double cur = s.speedup(p);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(Amdahl, AlphaZeroIsPerfect) {
  const Speedup a = Speedup::amdahl(0.0);
  const Speedup p = Speedup::perfect();
  for (const double procs : {1.0, 7.0, 512.0, 1e6}) {
    EXPECT_DOUBLE_EQ(a.speedup(procs), p.speedup(procs));
  }
}

TEST(Amdahl, FullySequentialNeverSpeedsUp) {
  const Speedup s = Speedup::amdahl(1.0);
  EXPECT_DOUBLE_EQ(s.speedup(4096.0), 1.0);
}

TEST(Amdahl, RejectsOutOfRangeAlpha) {
  EXPECT_THROW((void)Speedup::amdahl(-0.1), util::InvalidArgument);
  EXPECT_THROW((void)Speedup::amdahl(1.1), util::InvalidArgument);
}

TEST(Overhead, IsReciprocalOfSpeedup) {
  const Speedup s = Speedup::amdahl(0.1);
  for (const double p : {1.0, 10.0, 512.0}) {
    EXPECT_DOUBLE_EQ(s.overhead(p), 1.0 / s.speedup(p));
    // H(P) = α + (1-α)/P directly.
    EXPECT_NEAR(s.overhead(p), 0.1 + 0.9 / p, 1e-15);
  }
}

TEST(Gustafson, LinearScaledSpeedup) {
  const Speedup s = Speedup::gustafson(0.2);
  EXPECT_DOUBLE_EQ(s.speedup(1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.speedup(10.0), 0.2 + 0.8 * 10.0);
}

TEST(PowerLaw, Exponent) {
  const Speedup s = Speedup::power_law(0.5);
  EXPECT_DOUBLE_EQ(s.speedup(1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.speedup(100.0), 10.0);
  EXPECT_THROW((void)Speedup::power_law(0.0), util::InvalidArgument);
  EXPECT_THROW((void)Speedup::power_law(1.5), util::InvalidArgument);
}

TEST(Custom, FunctionIsUsed) {
  const Speedup s =
      Speedup::custom([](double p) { return std::sqrt(p); }, "sqrt");
  EXPECT_DOUBLE_EQ(s.speedup(16.0), 4.0);
  EXPECT_EQ(s.name(), "sqrt");
}

TEST(Custom, NonPositiveOutputRejectedAtUse) {
  const Speedup s = Speedup::custom([](double) { return 0.0; }, "bad");
  EXPECT_THROW((void)s.speedup(2.0), util::InvalidArgument);
}

TEST(SequentialFraction, PerKind) {
  EXPECT_EQ(Speedup::amdahl(0.3).sequential_fraction(), 0.3);
  EXPECT_EQ(Speedup::perfect().sequential_fraction(), 0.0);
  EXPECT_EQ(Speedup::gustafson(0.25).sequential_fraction(), 0.25);
  EXPECT_FALSE(Speedup::power_law(0.5).sequential_fraction().has_value());
}

TEST(AmdahlFamily, Classification) {
  EXPECT_TRUE(Speedup::amdahl(0.1).is_amdahl_family());
  EXPECT_TRUE(Speedup::perfect().is_amdahl_family());
  EXPECT_FALSE(Speedup::gustafson(0.1).is_amdahl_family());
  EXPECT_FALSE(Speedup::power_law(0.9).is_amdahl_family());
}

TEST(Speedup, RejectsSubUnitProcessorCount) {
  EXPECT_THROW((void)Speedup::amdahl(0.1).speedup(0.5),
               util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::model
