// Multi-process stress of the shared-memory transport: >= 4 forked
// client processes fire >= 10k mixed cold/warm requests at one server.
// Every reply must correlate to its request id, and — because every
// answer in this repository is a pure function of its canonical key —
// must be byte-identical to what the pipe transport (handle_line)
// produces for the same request, which each child verifies against its
// own private PlanningService.
//
// Fork discipline: the children are forked BEFORE the parent constructs
// the PlanningService/ShmServer (both spawn threads; forking a threaded
// process leaves the child's heap locks in undefined hands). Children
// wait for the segment to appear, then are free to spawn their own
// threads. Skipped under ThreadSanitizer, which cannot follow forked
// children; the in-process concurrency tests in
// service_shm_transport_test.cpp are the TSan subjects.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "ayd/service/server.hpp"
#include "ayd/service/shm_transport.hpp"

#if defined(__SANITIZE_THREAD__)
#define AYD_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AYD_TSAN 1
#endif
#endif

namespace ayd::service {
namespace {

constexpr int kClients = 4;
constexpr int kScenarios = 64;

int requests_per_client() {
  // >= 10k requests total by default; AYD_SCALE=quick keeps developer
  // runs snappy (the cheap `plan` op still makes the full count fast,
  // but CI is where the full load matters).
  const char* scale = std::getenv("AYD_SCALE");
  if (scale != nullptr && std::string(scale) == "quick") return 500;
  return 2600;
}

/// The request of (client, i): round-robin over kScenarios distinct
/// plan problems, so each child's stream starts cold and turns warm,
/// and concurrent children race cold misses on the same keys
/// (single-flight) as well as warm hits.
std::string request_line(int client, int i) {
  const int scenario = i % kScenarios;
  return R"({"op":"plan","id":"c)" + std::to_string(client) + "-" +
         std::to_string(i) + R"(","platform":)" +
         (scenario % 2 == 0 ? R"("hera")" : R"("atlas")") +
         R"(,"work":)" + std::to_string(1 + scenario / 2) + "e17}";
}

/// Child body: attach, fire, verify, _exit(0) on success. Any mismatch
/// or transport error exits non-zero (the parent's waitpid asserts).
[[noreturn]] void run_client(const std::string& name, int client) {
  try {
    // Wait out the parent's server construction.
    std::unique_ptr<ShmClient> shm;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      try {
        shm = std::make_unique<ShmClient>(name);
        break;
      } catch (const ShmError&) {
        if (std::chrono::steady_clock::now() >= deadline) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    // The private reference service: what the pipe transport would
    // answer. Determinism makes this comparison exact across processes.
    PlanningService reference({/*threads=*/1});
    const int n = requests_per_client();
    for (int i = 0; i < n; ++i) {
      const std::string line = request_line(client, i);
      const std::string reply = shm->call(line);
      const std::string id_token =
          "\"id\":\"c" + std::to_string(client) + "-" + std::to_string(i) +
          "\"";
      if (reply.find(id_token) == std::string::npos) {
        std::fprintf(stderr, "client %d: reply lost its id: %s\n", client,
                     reply.c_str());
        std::_Exit(3);
      }
      if (reply != reference.handle_line(line)) {
        std::fprintf(stderr,
                     "client %d: shm reply diverged from pipe reply for "
                     "%s\n  shm:  %s\n",
                     client, line.c_str(), reply.c_str());
        std::_Exit(4);
      }
    }
    std::_Exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "client: %s\n", e.what());
    std::_Exit(2);
  }
}

TEST(ShmStress, FourProcessesTenThousandRequestsByteIdenticalToPipe) {
#ifdef AYD_TSAN
  GTEST_SKIP() << "fork-based stress is not TSan-compatible; the "
                  "in-process ring races cover the TSan tier";
#endif
  const std::string name = "stress" + std::to_string(::getpid());

  std::vector<pid_t> children;
  children.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) run_client(name, c);  // never returns
    children.push_back(pid);
  }

  // Threads may exist only after every fork.
  PlanningService service({/*threads=*/0});
  ShmOptions options;
  options.request_slots = 64;
  ShmServer server(name, service, options);

  bool all_ok = true;
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      all_ok = false;
      ADD_FAILURE() << "client pid " << pid << " failed with status "
                    << status;
    }
  }
  EXPECT_TRUE(all_ok);
  EXPECT_GE(server.stats().requests,
            static_cast<std::uint64_t>(kClients * requests_per_client()));
  EXPECT_EQ(server.stats().reclaimed_clients, 0u);
  EXPECT_EQ(server.stats().dropped_replies, 0u);
}

}  // namespace
}  // namespace ayd::service
