// Sweep-aware common random numbers at the engine level.
//
// The contract under test (sim/variate_pool.hpp):
//  1. Under the scalar reference tier, a CRN-pooled evaluation is
//     bit-identical to independent per-point sampling — the pool merely
//     materializes the exact unit variates the simulators would have
//     computed themselves, for both backends.
//  2. Grid points that differ only in swept rate/period/procs resolve to
//     one shared pool (one sampling pass per grid).
//  3. A CRN sweep is bit-identical at any thread count: chunk k of
//     replica i has exactly one possible content, whichever worker
//     generates it first.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ayd/engine/engine.hpp"
#include "ayd/engine/evaluator.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/model/system.hpp"
#include "ayd/rng/simd.hpp"
#include "ayd/sim/variate_pool.hpp"

namespace ayd::engine {
namespace {

using model::CostModel;
using model::FailureDistSpec;
using model::FailureModel;
using model::ResilienceCosts;
using model::Speedup;
using model::System;

System test_system(const FailureDistSpec& spec) {
  ResilienceCosts costs{CostModel::constant(300.0), CostModel::constant(300.0),
                        CostModel::constant(30.0)};
  return System(FailureModel(1e-7, 0.4), costs, 1800.0, Speedup::amdahl(0.1))
      .with_failure_dist(spec);
}

EvalSpec sim_spec(sim::Backend backend) {
  EvalSpec spec;
  spec.numerical = true;
  spec.simulate_numerical = true;
  spec.replication.replicas = 40;
  spec.replication.patterns_per_replica = 60;
  spec.replication.backend = backend;
  return spec;
}

TEST(EngineCrn, ScalarTierPooledEvaluationMatchesIndependentSampling) {
  rng::simd::force_tier(rng::simd::Tier::kScalar);
  for (const FailureDistSpec& dist :
       {FailureDistSpec::weibull(0.7), FailureDistSpec::lognormal(1.2),
        FailureDistSpec::exponential()}) {
    const System sys = test_system(dist);
    for (const sim::Backend backend : {sim::Backend::kFast,
                                       sim::Backend::kDes}) {
      const EvalSpec independent = sim_spec(backend);
      EvalSpec pooled = independent;
      sim::VariateCache cache;
      pooled.crn = &cache;

      const PointEval a = evaluate_point(sys, independent, 512.0);
      const PointEval b = evaluate_point(sys, pooled, 512.0);
      ASSERT_TRUE(a.sim_numerical.has_value());
      ASSERT_TRUE(b.sim_numerical.has_value());
      // Bitwise, not approximate: in the reference tier CRN must be
      // invisible in results.
      EXPECT_EQ(a.sim_numerical->overhead.mean, b.sim_numerical->overhead.mean)
          << dist.to_string();
      EXPECT_EQ(a.sim_numerical->overhead.stddev,
                b.sim_numerical->overhead.stddev)
          << dist.to_string();
      EXPECT_EQ(a.sim_numerical->attempts_per_pattern,
                b.sim_numerical->attempts_per_pattern)
          << dist.to_string();
      EXPECT_EQ(cache.size(), 1u);
    }
  }
  rng::simd::clear_forced_tier();
}

TEST(EngineCrn, LambdaSweepSharesOnePoolAndOneSamplingPass) {
  const System base = test_system(FailureDistSpec::weibull(0.7));
  EvalSpec spec = sim_spec(sim::Backend::kFast);
  sim::VariateCache cache;
  spec.crn = &cache;

  GridSpec grid;
  grid.axis(Axis::log_spaced("lambda", 1e-8, 1e-7, 4));
  const auto records = run_grid(grid, nullptr, [&](const Point& pt) {
    const System sys = apply_axes(base, pt);
    const PointEval eval = evaluate_point(sys, spec, 512.0);
    Record r;
    r.set("overhead", eval.sim_numerical->overhead.mean);
    return r;
  });
  ASSERT_EQ(records.size(), 4u);
  // Every lambda point mapped to the same (shape, seed) pool: the rate is
  // applied by from_unit, not baked into the variates.
  EXPECT_EQ(cache.size(), 1u);
  const auto pool = cache.pool_for(FailureDistSpec::weibull(0.7),
                                   spec.replication.seed);
  ASSERT_NE(pool, nullptr);
  EXPECT_GT(pool->generated(), 0u);
}

TEST(EngineCrn, CrnSweepIsBitIdenticalAcrossThreadCounts) {
  const System base = test_system(FailureDistSpec::lognormal(1.2));
  const auto run = [&](exec::ThreadPool* pool) {
    EvalSpec spec = sim_spec(sim::Backend::kFast);
    sim::VariateCache cache;  // fresh cache per run: no trivial sharing
    spec.crn = &cache;
    GridSpec grid;
    grid.axis(Axis::log_spaced("lambda", 1e-8, 1e-7, 5));
    std::vector<double> overheads;
    const auto records = run_grid(grid, pool, [&](const Point& pt) {
      const System sys = apply_axes(base, pt);
      Record r;
      r.set("overhead",
            evaluate_point(sys, spec, 256.0).sim_numerical->overhead.mean);
      return r;
    });
    for (const Record& r : records) overheads.push_back(r.num("overhead"));
    return overheads;
  };

  const std::vector<double> serial = run(nullptr);
  exec::ThreadPool pool(4);
  const std::vector<double> parallel = run(&pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
  }
}

TEST(EngineCrn, CorrelatedSweepIsBitIdenticalAcrossThreadCounts) {
  // Correlated worlds have no pooled mode, but the thread-invariance
  // contract is unchanged: replica i draws substream (seed, i), so a
  // shock-rho sweep is byte-identical serial vs pooled, on both
  // backends.
  model::HeterogeneousSpec hetero;
  hetero.groups = {{0.5, 1.5, FailureDistSpec::weibull(0.7)},
                   {0.5, 0.5, {}}};
  const System base =
      test_system(FailureDistSpec::exponential()).with_heterogeneity(hetero);
  ASSERT_TRUE(base.extended());

  for (const sim::Backend backend : {sim::Backend::kFast,
                                     sim::Backend::kDes}) {
    const auto run = [&](exec::ThreadPool* pool) {
      const EvalSpec spec = sim_spec(backend);
      GridSpec grid;
      grid.axis(Axis::spaced("shock_rho", 0.1, 0.7, 4, /*log=*/false));
      std::vector<double> overheads;
      const auto records = run_grid(grid, pool, [&](const Point& pt) {
        const System sys = apply_axes(base, pt);
        Record r;
        r.set("overhead",
              evaluate_point(sys, spec, 256.0).sim_numerical->overhead.mean);
        return r;
      });
      for (const Record& r : records) overheads.push_back(r.num("overhead"));
      return overheads;
    };

    const std::vector<double> serial = run(nullptr);
    exec::ThreadPool pool(4);
    const std::vector<double> parallel = run(&pool);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
    }
  }
}

TEST(EngineCrn, ExtendedSystemsAreExcludedFromCrnPooling) {
  // A CRN-enabled sweep over an extended world must not build (or worse,
  // use) a pool: evaluate_point gates pooling on !sys.extended(), so the
  // cache stays empty and the results equal the no-cache run bitwise.
  const System sys =
      test_system(FailureDistSpec::exponential()).with_shock({0.5, 0.05});
  ASSERT_TRUE(sys.extended());

  const EvalSpec independent = sim_spec(sim::Backend::kFast);
  EvalSpec pooled = independent;
  sim::VariateCache cache;
  pooled.crn = &cache;

  const PointEval a = evaluate_point(sys, independent, 512.0);
  const PointEval b = evaluate_point(sys, pooled, 512.0);
  ASSERT_TRUE(a.sim_numerical.has_value());
  ASSERT_TRUE(b.sim_numerical.has_value());
  EXPECT_EQ(a.sim_numerical->overhead.mean, b.sim_numerical->overhead.mean);
  EXPECT_EQ(a.sim_numerical->overhead.stddev,
            b.sim_numerical->overhead.stddev);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EngineCrn, CacheKeysOnShapeAndSeedAndRejectsTraces) {
  sim::VariateCache cache;
  const auto a = cache.pool_for(FailureDistSpec::weibull(0.7), 1);
  const auto b = cache.pool_for(FailureDistSpec::weibull(0.7), 1);
  const auto c = cache.pool_for(FailureDistSpec::weibull(0.7), 2);
  const auto d = cache.pool_for(FailureDistSpec::weibull(1.5), 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(cache.size(), 3u);
  // Trace replay cannot factor through unit variates: no pool, caller
  // falls back to independent sampling.
  const auto t = cache.pool_for(
      FailureDistSpec::trace_replay({1.0, 2.0, 3.0}, "test"), 1);
  EXPECT_EQ(t, nullptr);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(EngineCrn, PoolCursorReplaysTheReplicaSequence) {
  // Two cursors over the same replica see the same values; distinct
  // replicas see the substream-(seed, i) sequences.
  sim::UnitVariatePool pool(FailureDistSpec::weibull(0.7), 99);
  auto c1 = pool.cursor(0);
  auto c2 = pool.cursor(0);
  for (int i = 0; i < 3000; ++i) {  // crosses a chunk boundary
    ASSERT_EQ(c1.next(), c2.next()) << "draw " << i;
  }
  auto c3 = pool.cursor(1);
  auto c4 = pool.cursor(0);
  EXPECT_NE(c3.next(), c4.next());
}

}  // namespace
}  // namespace ayd::engine
