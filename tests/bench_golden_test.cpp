// Golden regression tests for the figure/table drivers.
//
// Runs the fig2 and table2 experiment bodies through the engine at tiny
// replica counts and compares the CSV series byte-for-byte against goldens
// checked into tests/data/. Any refactor that silently changes figure data
// (a different optimiser bracket, a reordered RNG draw, a reformatted
// cell) fails here first. Regenerate deliberately with
//   AYD_REGENERATE_GOLDENS=1 ./bench_golden_test
// and review the golden diff like any other code change.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

namespace {

using namespace ayd;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Compares produced CSV bytes against tests/data/<name>; with
/// AYD_REGENERATE_GOLDENS set, rewrites the golden instead.
void expect_matches_golden(const std::string& name,
                           const std::string& produced) {
  ASSERT_FALSE(produced.empty());
  const std::string golden_path =
      std::string(AYD_TEST_DATA_DIR) + "/" + name;
  if (std::getenv("AYD_REGENERATE_GOLDENS") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << produced;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  const std::string golden = read_file(golden_path);
  ASSERT_FALSE(golden.empty())
      << "missing golden " << golden_path
      << " (run with AYD_REGENERATE_GOLDENS=1 to create it)";
  EXPECT_EQ(golden, produced)
      << name << " drifted from its golden; if the change is intended, "
      << "regenerate with AYD_REGENERATE_GOLDENS=1 and review the diff";
}

/// Emits `records` through a CsvSink (the exact writer the benches use)
/// and returns the file bytes.
std::string csv_series(const std::vector<engine::Record>& records,
                       const std::vector<engine::ColumnSpec>& columns,
                       const std::string& tmp_name) {
  {
    engine::CsvSink csv(tmp_name, columns);
    engine::emit(records, {&csv});
  }
  return read_file(tmp_name);
}

// The fig2 driver at CI-smoke scale: platforms x scenarios, first-order +
// numerical optima, both patterns simulated. Serial on purpose (the engine
// guarantees thread-count invariance elsewhere; here we pin the simplest
// path).
TEST(BenchGolden, Fig2ScenariosQuickCsvIsStable) {
  engine::GridSpec grid;
  grid.platforms(model::all_platforms()).scenarios(model::all_scenarios());

  engine::EvalSpec spec;
  spec.first_order = true;
  spec.numerical = true;
  spec.simulate_numerical = true;
  spec.simulate_first_order = true;
  spec.search.max_procs = 1e8;
  spec.replication.replicas = 6;
  spec.replication.patterns_per_replica = 12;
  spec.replication.seed = 0xA4D2016ULL;

  const auto records =
      engine::run_grid(grid, nullptr, [&](const engine::Point& pt) {
        const model::System sys = model::System::from_platform(
            *pt.platform, *pt.scenario, 0.1, 3600.0);
        const engine::PointEval ev = engine::evaluate_point(sys, spec);
        engine::Record r;
        r.set("platform", pt.platform->name);
        r.set("scenario", model::scenario_name(*pt.scenario));
        if (ev.first_order->has_optimum) {
          r.set("fo_procs", std::max(1.0, std::round(ev.first_order->procs)));
          r.set("fo_period", ev.first_order->period);
          r.set("fo_overhead", ev.first_order->overhead);
          r.set("fo_sim_overhead", ev.sim_first_order->overhead.mean);
        }
        r.set("opt_procs", ev.allocation->procs);
        r.set("opt_period", ev.allocation->period);
        r.set("opt_overhead", ev.allocation->overhead);
        r.set("sim_overhead", ev.sim_numerical->overhead.mean);
        return r;
      });

  const std::vector<engine::ColumnSpec> series{{"platform"},
                                               {"scenario"},
                                               {"fo_procs", "", 4},
                                               {"fo_period", "", 4},
                                               {"fo_overhead", "", 4},
                                               {"fo_sim_overhead", "", 6},
                                               {"opt_procs", "", 6},
                                               {"opt_period", "", 6},
                                               {"opt_overhead", "", 6},
                                               {"sim_overhead", "", 6}};
  expect_matches_golden(
      "fig2_quick_golden.csv",
      csv_series(records, series, "bench_golden_fig2_out.csv"));
}

// The table2 driver's derived-coefficient series: pure model resolution,
// no simulation — pins the cost-model fits and case classification.
TEST(BenchGolden, Table2DerivedCoefficientsCsvIsStable) {
  engine::GridSpec grid;
  grid.platforms(model::all_platforms()).scenarios(model::all_scenarios());

  const auto records =
      engine::run_grid(grid, nullptr, [](const engine::Point& pt) {
        const auto rc = model::resolve(*pt.platform, *pt.scenario);
        const auto info = model::classify(rc);
        const char* case_name = "";
        switch (info.first_order_case) {
          case model::FirstOrderCase::kLinearCheckpoint:
            case_name = "case1";
            break;
          case model::FirstOrderCase::kConstantCost:
            case_name = "case2";
            break;
          case model::FirstOrderCase::kDecreasingCost:
            case_name = "case3";
            break;
        }
        engine::Record r;
        r.set("platform", pt.platform->name);
        r.set("scenario", model::scenario_name(*pt.scenario));
        r.set("checkpoint_model", rc.checkpoint.describe());
        r.set("verification_model", rc.verification.describe());
        r.set("case", case_name);
        r.set("case_coefficient", info.coefficient);
        return r;
      });

  const std::vector<engine::ColumnSpec> series{{"platform"},
                                               {"scenario"},
                                               {"checkpoint_model"},
                                               {"verification_model"},
                                               {"case"},
                                               {"case_coefficient", "", 6}};
  expect_matches_golden(
      "table2_quick_golden.csv",
      csv_series(records, series, "bench_golden_table2_out.csv"));
}

}  // namespace
