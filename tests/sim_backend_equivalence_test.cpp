// Backend equivalence: the fast closed-form sampler and the event-queue
// reference simulator sample the same stochastic process, so their
// replicated overhead estimates must agree within the normal-theory CI
// half-widths. Exercised on scenarios with different cost structures and
// on a silent-dominated platform (Atlas), where a divergence in the
// silent-error handling would show up first. Non-exponential failure
// distributions share the same renewal points across the backends (a
// fresh arrival per attempt and per recovery try), so the agreement must
// hold for Weibull / lognormal / trace-replay arrivals too — only the
// comparison against the exponential analytic prediction drops out.

#include "ayd/sim/runner.hpp"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "ayd/core/first_order.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

namespace ayd::sim {
namespace {

ReplicationOptions options(Backend backend) {
  ReplicationOptions opt;
  opt.replicas = 60;
  opt.patterns_per_replica = 80;
  opt.seed = 0xA4D2016ULL;
  opt.backend = backend;
  return opt;
}

void expect_backends_agree_on(const model::System& sys,
                              const std::string& label) {
  // Fixed allocation; the period still comes from the exponential
  // first-order planner (the pattern only has to be identical across the
  // backends, not optimal for the distribution).
  const double p = 512.0;
  const core::Pattern pattern{core::optimal_period_first_order(sys, p), p};

  const ReplicationResult fast =
      simulate_overhead(sys, pattern, options(Backend::kFast));
  const ReplicationResult des =
      simulate_overhead(sys, pattern, options(Backend::kDes));

  // The two estimates are independent draws of the same mean; their
  // difference should be within the combined 95% half-widths (a ~3-sigma
  // criterion, loose enough to be deterministic at this fixed seed).
  const double tolerance =
      fast.overhead.ci.half_width() + des.overhead.ci.half_width();
  EXPECT_NEAR(fast.overhead.mean, des.overhead.mean, tolerance) << label;
}

void expect_backends_agree(const model::Platform& platform,
                           model::Scenario scenario) {
  const model::System sys = model::System::from_platform(platform, scenario);
  const double procs = platform.measured_procs;
  const core::Pattern pattern{
      core::optimal_period_first_order(sys, procs), procs};

  const ReplicationResult fast =
      simulate_overhead(sys, pattern, options(Backend::kFast));
  const ReplicationResult des =
      simulate_overhead(sys, pattern, options(Backend::kDes));

  // The two estimates are independent draws of the same mean; their
  // difference should be within the combined 95% half-widths (a ~3-sigma
  // criterion, loose enough to be deterministic at this fixed seed).
  const double tolerance =
      fast.overhead.ci.half_width() + des.overhead.ci.half_width();
  EXPECT_NEAR(fast.overhead.mean, des.overhead.mean, tolerance)
      << platform.name << " scenario "
      << model::scenario_name(scenario);

  // Both must also sit near the analytic prediction.
  EXPECT_NEAR(fast.overhead.mean, fast.analytic_overhead,
              4.0 * fast.overhead.stderr_mean + 1e-3);
  EXPECT_NEAR(des.overhead.mean, des.analytic_overhead,
              4.0 * des.overhead.stderr_mean + 1e-3);
}

TEST(BackendEquivalence, HeraScenario1LinearCheckpointCost) {
  expect_backends_agree(model::hera(), model::Scenario::kS1);
}

TEST(BackendEquivalence, HeraScenario3ConstantCost) {
  expect_backends_agree(model::hera(), model::Scenario::kS3);
}

TEST(BackendEquivalence, AtlasScenario5SilentDominatedInMemory) {
  expect_backends_agree(model::atlas(), model::Scenario::kS5);
}

TEST(BackendEquivalence, WeibullBurstyArrivals) {
  const model::System sys =
      model::System::from_platform(model::hera(), model::Scenario::kS1)
          .with_failure_dist(model::FailureDistSpec::weibull(0.7));
  expect_backends_agree_on(sys, "hera S1 weibull k=0.7");
}

TEST(BackendEquivalence, WeibullWearOutArrivalsSilentDominated) {
  const model::System sys =
      model::System::from_platform(model::atlas(), model::Scenario::kS5)
          .with_failure_dist(model::FailureDistSpec::weibull(1.5));
  expect_backends_agree_on(sys, "atlas S5 weibull k=1.5");
}

TEST(BackendEquivalence, LogNormalArrivals) {
  const model::System sys =
      model::System::from_platform(model::hera(), model::Scenario::kS3)
          .with_failure_dist(model::FailureDistSpec::lognormal(1.2));
  expect_backends_agree_on(sys, "hera S3 lognormal sigma=1.2");
}

TEST(BackendEquivalence, TraceReplayArrivals) {
  const model::System sys =
      model::System::from_platform(model::hera(), model::Scenario::kS3)
          .with_failure_dist(model::FailureDistSpec::trace_replay(
              {300.0, 960.0, 55.0, 7200.0, 1800.0, 120.0, 86400.0, 600.0},
              "synthetic"));
  expect_backends_agree_on(sys, "hera S3 trace replay");
}

TEST(BackendEquivalence, ErrorFreeSystemIsDeterministicOnBothBackends) {
  // Regression for the lambda == 0 path: with no failures the wall time
  // is exactly n * (T + V + C) on both backends, for any distribution
  // shape (the degenerate distribution never schedules an arrival).
  const model::System sys =
      model::System::from_platform(model::hera(), model::Scenario::kS3)
          .with_lambda(0.0)
          .with_failure_dist(model::FailureDistSpec::weibull(0.7));
  const double p = 256.0;
  const core::Pattern pattern{10000.0, p};
  const double expected_pattern_time =
      10000.0 + sys.verification_cost(p) + sys.checkpoint_cost(p);

  for (const Backend backend : {Backend::kFast, Backend::kDes}) {
    const ReplicationResult r =
        simulate_overhead(sys, pattern, options(backend));
    EXPECT_NEAR(r.pattern_time.mean, expected_pattern_time,
                1e-9 * expected_pattern_time);
    EXPECT_EQ(r.fail_stops_per_pattern, 0.0);
    EXPECT_EQ(r.attempts_per_pattern, 1.0);
    EXPECT_FALSE(std::isnan(r.overhead.mean));
  }
}

// Correlated worlds route to their own pair of backends
// (sim/correlated.hpp); the same CI-agreement criterion holds them
// together across all three extension axes.
TEST(BackendEquivalence, CorrelatedShockArrivals) {
  const model::System sys =
      model::System::from_platform(model::hera(), model::Scenario::kS1)
          .with_shock({0.4, 0.05});
  ASSERT_TRUE(sys.extended());
  expect_backends_agree_on(sys, "hera S1 shock rho=0.4 g=0.05");
}

TEST(BackendEquivalence, CorrelatedHeterogeneousComponents) {
  model::HeterogeneousSpec hetero;
  hetero.groups = {{0.25, 3.0, model::FailureDistSpec::weibull(0.7)},
                   {0.75, 1.0 / 3.0, {}}};
  const model::System sys =
      model::System::from_platform(model::hera(), model::Scenario::kS3)
          .with_heterogeneity(hetero);
  ASSERT_TRUE(sys.extended());
  expect_backends_agree_on(sys, "hera S3 hetero 0.25*3*weibull");
}

TEST(BackendEquivalence, CorrelatedShockWithTwoTierRecovery) {
  model::System sys =
      model::System::from_platform(model::atlas(), model::Scenario::kS5)
          .with_shock({0.5, 0.1});
  sys = sys.with_two_tier(
      model::TwoTierCostSpec::from_penalty(sys.costs(), 8.0));
  ASSERT_TRUE(sys.extended());
  ASSERT_TRUE(sys.extension()->two_tier.has_value());
  expect_backends_agree_on(sys, "atlas S5 shock rho=0.5 pfs_penalty=8");
}

// Degeneracy pins, backend by backend: a degenerate extension must not
// merely be statistically close to the plain system — it must normalize
// away at construction and reproduce the plain simulators' streams
// bitwise.
TEST(BackendEquivalence, DegenerateExtensionsReproducePlainWorldBitwise) {
  const model::System plain =
      model::System::from_platform(model::hera(), model::Scenario::kS1);
  const double p = 512.0;
  const core::Pattern pattern{core::optimal_period_first_order(plain, p), p};

  // rho = 0 shock, single x1 group, and an equal-tier cost spec each
  // collapse to a non-extended System...
  const model::System no_shock = plain.with_shock({0.0, 0.05});
  model::HeterogeneousSpec uniform;
  uniform.groups = {{1.0, 1.0, plain.failure().dist()}};
  const model::System no_hetero = plain.with_heterogeneity(uniform);
  const model::System no_tier = plain.with_two_tier(
      model::TwoTierCostSpec::from_penalty(plain.costs(), 1.0));
  EXPECT_FALSE(no_shock.extended());
  EXPECT_FALSE(no_hetero.extended());
  EXPECT_FALSE(no_tier.extended());

  // ...so every backend runs the plain bit-pinned path: identical seeds
  // give byte-identical estimates, not merely CI-compatible ones.
  for (const Backend backend : {Backend::kFast, Backend::kDes}) {
    const ReplicationResult ref =
        simulate_overhead(plain, pattern, options(backend));
    for (const model::System* sys : {&no_shock, &no_hetero, &no_tier}) {
      const ReplicationResult got =
          simulate_overhead(*sys, pattern, options(backend));
      EXPECT_EQ(got.overhead.mean, ref.overhead.mean);
      EXPECT_EQ(got.pattern_time.mean, ref.pattern_time.mean);
      EXPECT_EQ(got.fail_stops_per_pattern, ref.fail_stops_per_pattern);
      EXPECT_EQ(got.shock_errors_per_pattern, 0.0);
    }
  }
}

TEST(BackendEquivalence, ShockTelemetryMatchesAcrossBackends) {
  // Failure-prone configuration: shocks vs individual events occur at
  // rho/(1-rho) / (gP) — small g and modest P keep the shock stream a
  // large share of the interruptions, and the raised lambda gives the
  // fixed-size replication enough events to measure.
  const model::System sys =
      model::System::from_platform(model::hera(), model::Scenario::kS1)
          .with_lambda(1e-8)
          .with_shock({0.6, 0.01});
  const double p = 64.0;
  const core::Pattern pattern{core::optimal_period_first_order(sys, p), p};

  const ReplicationResult fast =
      simulate_overhead(sys, pattern, options(Backend::kFast));
  const ReplicationResult des =
      simulate_overhead(sys, pattern, options(Backend::kDes));

  // Shocks occur on both backends at compatible per-pattern rates, and
  // never exceed the total fail-stop count.
  EXPECT_GT(fast.shock_errors_per_pattern, 0.0);
  EXPECT_GT(des.shock_errors_per_pattern, 0.0);
  EXPECT_LE(fast.shock_errors_per_pattern, fast.fail_stops_per_pattern);
  EXPECT_LE(des.shock_errors_per_pattern, des.fail_stops_per_pattern);
  EXPECT_NEAR(fast.shock_errors_per_pattern, des.shock_errors_per_pattern,
              0.25 * (fast.shock_errors_per_pattern +
                      des.shock_errors_per_pattern) +
                  0.01);
}

TEST(BackendEquivalence, TelemetryRatesMatchAcrossBackends) {
  const model::System sys =
      model::System::from_platform(model::hera(), model::Scenario::kS1);
  const double procs = model::hera().measured_procs;
  const core::Pattern pattern{
      core::optimal_period_first_order(sys, procs), procs};

  const ReplicationResult fast =
      simulate_overhead(sys, pattern, options(Backend::kFast));
  const ReplicationResult des =
      simulate_overhead(sys, pattern, options(Backend::kDes));

  EXPECT_EQ(fast.total_patterns, des.total_patterns);
  // Error processes are parameter-identical; per-pattern rates must agree
  // to within a loose sampling tolerance.
  EXPECT_NEAR(fast.fail_stops_per_pattern, des.fail_stops_per_pattern,
              0.25 * (fast.fail_stops_per_pattern +
                      des.fail_stops_per_pattern) +
                  0.01);
  EXPECT_NEAR(fast.silent_detections_per_pattern,
              des.silent_detections_per_pattern,
              0.25 * (fast.silent_detections_per_pattern +
                      des.silent_detections_per_pattern) +
                  0.01);
}

}  // namespace
}  // namespace ayd::sim
