// Backend equivalence: the fast closed-form sampler and the event-queue
// reference simulator sample the same stochastic process, so their
// replicated overhead estimates must agree within the normal-theory CI
// half-widths. Exercised on scenarios with different cost structures and
// on a silent-dominated platform (Atlas), where a divergence in the
// silent-error handling would show up first.

#include "ayd/sim/runner.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/core/first_order.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

namespace ayd::sim {
namespace {

ReplicationOptions options(Backend backend) {
  ReplicationOptions opt;
  opt.replicas = 60;
  opt.patterns_per_replica = 80;
  opt.seed = 0xA4D2016ULL;
  opt.backend = backend;
  return opt;
}

void expect_backends_agree(const model::Platform& platform,
                           model::Scenario scenario) {
  const model::System sys = model::System::from_platform(platform, scenario);
  const double procs = platform.measured_procs;
  const core::Pattern pattern{
      core::optimal_period_first_order(sys, procs), procs};

  const ReplicationResult fast =
      simulate_overhead(sys, pattern, options(Backend::kFast));
  const ReplicationResult des =
      simulate_overhead(sys, pattern, options(Backend::kDes));

  // The two estimates are independent draws of the same mean; their
  // difference should be within the combined 95% half-widths (a ~3-sigma
  // criterion, loose enough to be deterministic at this fixed seed).
  const double tolerance =
      fast.overhead.ci.half_width() + des.overhead.ci.half_width();
  EXPECT_NEAR(fast.overhead.mean, des.overhead.mean, tolerance)
      << platform.name << " scenario "
      << model::scenario_name(scenario);

  // Both must also sit near the analytic prediction.
  EXPECT_NEAR(fast.overhead.mean, fast.analytic_overhead,
              4.0 * fast.overhead.stderr_mean + 1e-3);
  EXPECT_NEAR(des.overhead.mean, des.analytic_overhead,
              4.0 * des.overhead.stderr_mean + 1e-3);
}

TEST(BackendEquivalence, HeraScenario1LinearCheckpointCost) {
  expect_backends_agree(model::hera(), model::Scenario::kS1);
}

TEST(BackendEquivalence, HeraScenario3ConstantCost) {
  expect_backends_agree(model::hera(), model::Scenario::kS3);
}

TEST(BackendEquivalence, AtlasScenario5SilentDominatedInMemory) {
  expect_backends_agree(model::atlas(), model::Scenario::kS5);
}

TEST(BackendEquivalence, TelemetryRatesMatchAcrossBackends) {
  const model::System sys =
      model::System::from_platform(model::hera(), model::Scenario::kS1);
  const double procs = model::hera().measured_procs;
  const core::Pattern pattern{
      core::optimal_period_first_order(sys, procs), procs};

  const ReplicationResult fast =
      simulate_overhead(sys, pattern, options(Backend::kFast));
  const ReplicationResult des =
      simulate_overhead(sys, pattern, options(Backend::kDes));

  EXPECT_EQ(fast.total_patterns, des.total_patterns);
  // Error processes are parameter-identical; per-pattern rates must agree
  // to within a loose sampling tolerance.
  EXPECT_NEAR(fast.fail_stops_per_pattern, des.fail_stops_per_pattern,
              0.25 * (fast.fail_stops_per_pattern +
                      des.fail_stops_per_pattern) +
                  0.01);
  EXPECT_NEAR(fast.silent_detections_per_pattern,
              des.silent_detections_per_pattern,
              0.25 * (fast.silent_detections_per_pattern +
                      des.silent_detections_per_pattern) +
                  0.01);
}

}  // namespace
}  // namespace ayd::sim
