#include "ayd/math/roots.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/util/error.hpp"

namespace ayd::math {
namespace {

TEST(Bisect, FindsQuadraticRoot) {
  const auto r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, ExactEndpointRoots) {
  const auto lo = bisect([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(lo.converged);
  EXPECT_DOUBLE_EQ(lo.x, 0.0);
  const auto hi = bisect([](double x) { return x - 1.0; }, 0.0, 1.0);
  EXPECT_TRUE(hi.converged);
  EXPECT_DOUBLE_EQ(hi.x, 1.0);
}

TEST(Bisect, RejectsInvalidBracket) {
  EXPECT_THROW(
      (void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      util::InvalidArgument);
  EXPECT_THROW((void)bisect([](double x) { return x; }, 2.0, 1.0),
               util::InvalidArgument);
}

TEST(BrentRoot, FindsTranscendentalRoot) {
  // x e^x = 1  =>  x = W(1) ≈ 0.5671432904097838
  const auto r =
      brent_root([](double x) { return x * std::exp(x) - 1.0; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.5671432904097838, 1e-12);
}

TEST(BrentRoot, HandlesSteepFunctions) {
  const auto r = brent_root(
      [](double x) { return std::expm1(50.0 * (x - 0.3)); }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.3, 1e-9);
}

TEST(BrentRoot, FasterThanBisection) {
  const auto f = [](double x) { return std::cos(x) - x; };
  const auto b = bisect(f, 0.0, 1.0);
  const auto br = brent_root(f, 0.0, 1.0);
  EXPECT_TRUE(b.converged);
  EXPECT_TRUE(br.converged);
  EXPECT_NEAR(br.x, b.x, 1e-9);
  EXPECT_LT(br.iterations, b.iterations);
}

TEST(BrentRoot, FTolStopsEarly) {
  RootOptions opt;
  opt.f_tol = 1e-3;
  const auto r = brent_root([](double x) { return x * x * x; }, -1.0, 2.0,
                            opt);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(std::abs(r.fx), 1e-3);
}

TEST(ExpandBracket, GrowsUntilSignChange) {
  double lo = 1.0, hi = 2.0;
  // Root at x = -10, far left of the seed interval.
  const bool ok =
      expand_bracket([](double x) { return x + 10.0; }, lo, hi);
  EXPECT_TRUE(ok);
  EXPECT_LE(lo, -10.0);
}

TEST(ExpandBracket, GivesUpOnRootlessFunction) {
  double lo = -1.0, hi = 1.0;
  const bool ok = expand_bracket(
      [](double x) { return x * x + 1.0; }, lo, hi, 1.6, /*max=*/20);
  EXPECT_FALSE(ok);
}

TEST(ExpandBracket, ImmediateSuccessIfAlreadyBracketing) {
  double lo = -2.0, hi = 2.0;
  EXPECT_TRUE(expand_bracket([](double x) { return x; }, lo, hi));
  EXPECT_DOUBLE_EQ(lo, -2.0);
  EXPECT_DOUBLE_EQ(hi, 2.0);
}

class RootMethodsAgree : public ::testing::TestWithParam<double> {};

TEST_P(RootMethodsAgree, OnShiftedCubic) {
  const double shift = GetParam();
  const auto f = [shift](double x) { return x * x * x - shift; };
  const double expected = std::cbrt(shift);
  const auto b = bisect(f, -10.0, 10.0);
  const auto br = brent_root(f, -10.0, 10.0);
  EXPECT_NEAR(b.x, expected, 1e-8);
  EXPECT_NEAR(br.x, expected, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shifts, RootMethodsAgree,
                         ::testing::Values(-27.0, -1.0, -0.001, 0.001, 1.0,
                                           8.0, 729.0));

}  // namespace
}  // namespace ayd::math
