// Statistical tier (ctest label `statistical`) of the online estimator:
// fit recovery on large fixed-seed samples (parameter tolerances + a KS
// goodness-of-fit pass against the *fitted* law), AIC family selection,
// the round-trip contract into model::FailureDistSpec, and the drift
// detector's false-positive guard on stationary streams. Everything is
// fixed-seed: a pass is a pass forever.

#include "ayd/stats/online_fit.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <limits>
#include <memory>
#include <vector>

#include "ayd/model/failure_dist.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/stats/ks.hpp"
#include "ayd/util/error.hpp"

namespace ayd::stats {
namespace {

constexpr std::uint64_t kSeed = 0x20160907ULL;

// Draws n gaps from the repo's own sampler (quantile inversion, so the
// sample is exactly the law the model layer deploys).
std::vector<double> draw(const model::FailureDistSpec& spec, double rate,
                         std::size_t n, std::uint64_t stream) {
  const auto dist = spec.instantiate(rate);
  rng::RngStream rng(kSeed, stream);
  std::vector<double> gaps;
  gaps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) gaps.push_back(dist->sample(rng));
  return gaps;
}

// KS pass of the sample against the law the fit claims, rebuilt through
// the model bridge — this checks the parameters *and* the round-trip in
// one shot.
void expect_ks_pass(const std::vector<double>& sample, const MleFit& fit) {
  const model::FittedFailureDist bridged = model::failure_dist_from_fit(fit);
  ASSERT_TRUE(bridged.valid);
  const auto dist = bridged.spec.instantiate(bridged.rate);
  const KsResult ks =
      ks_test(sample, [&](double x) { return dist->cdf(x); });
  EXPECT_GT(ks.p_value, 0.01) << "KS D=" << ks.statistic;
}

// -- Fit recovery on 10k samples -----------------------------------------

TEST(OnlineFitStatistical, WeibullWearOutRecoveredOn10kSamples) {
  const double k = 1.5;
  const double rate = 1.0 / 3600.0;
  const std::vector<double> gaps =
      draw(model::FailureDistSpec::weibull(k), rate, 10000, 1);
  const MleFit fit = fit_weibull_mle(gaps);
  ASSERT_TRUE(fit.valid);
  EXPECT_EQ(fit.count, 10000u);
  EXPECT_NEAR(fit.shape, k, 0.05 * k);
  EXPECT_NEAR(fit.rate, rate, 0.05 * rate);
  expect_ks_pass(gaps, fit);
}

TEST(OnlineFitStatistical, WeibullBurstyRecoveredOn10kSamples) {
  // k < 1 is the paper's bursty regime — the hard side for MLE (infant
  // mortality piles mass near zero).
  const double k = 0.7;
  const double rate = 1.0 / 3600.0;
  const std::vector<double> gaps =
      draw(model::FailureDistSpec::weibull(k), rate, 10000, 2);
  const MleFit fit = fit_weibull_mle(gaps);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.shape, k, 0.05 * k);
  EXPECT_NEAR(fit.rate, rate, 0.05 * rate);
  expect_ks_pass(gaps, fit);
}

TEST(OnlineFitStatistical, LognormalRecoveredOn10kSamples) {
  const double sigma = 0.8;
  const double rate = 1.0 / 7200.0;
  const std::vector<double> gaps =
      draw(model::FailureDistSpec::lognormal(sigma), rate, 10000, 3);
  const MleFit fit = fit_lognormal_mle(gaps);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.shape, sigma, 0.05 * sigma);
  EXPECT_NEAR(fit.rate, rate, 0.05 * rate);
  expect_ks_pass(gaps, fit);
}

TEST(OnlineFitStatistical, ExponentialRateRecoveredExactly) {
  const double rate = 1.0 / 1800.0;
  const std::vector<double> gaps =
      draw(model::FailureDistSpec::exponential(), rate, 10000, 4);
  const MleFit fit = fit_exponential_mle(gaps);
  ASSERT_TRUE(fit.valid);
  // The exponential MLE *is* the sample mean — exact, not approximate.
  double sum = 0.0;
  for (const double g : gaps) sum += g;
  EXPECT_DOUBLE_EQ(fit.scale, sum / static_cast<double>(gaps.size()));
  EXPECT_NEAR(fit.rate, rate, 0.05 * rate);
  expect_ks_pass(gaps, fit);
}

// -- Family selection -----------------------------------------------------

TEST(OnlineFitStatistical, AicSelectsTheGeneratingFamily) {
  const std::vector<double> bursty =
      draw(model::FailureDistSpec::weibull(0.7), 1.0 / 3600.0, 4000, 5);
  EXPECT_EQ(fit_best_mle(bursty).family, FitFamily::kWeibull);

  const std::vector<double> heavy =
      draw(model::FailureDistSpec::lognormal(1.2), 1.0 / 3600.0, 4000, 6);
  EXPECT_EQ(fit_best_mle(heavy).family, FitFamily::kLogNormal);
}

TEST(OnlineFitStatistical, ExponentialDataNeverGainsSpuriousShape) {
  // On memoryless data the two-parameter families cannot buy much
  // likelihood; whichever family AIC lands on, the implied law must be
  // (near-)exponential: mean right, and a Weibull winner must sit at
  // k ~= 1.
  const double rate = 1.0 / 3600.0;
  const std::vector<double> gaps =
      draw(model::FailureDistSpec::exponential(), rate, 4000, 7);
  const MleFit best = fit_best_mle(gaps);
  ASSERT_TRUE(best.valid);
  EXPECT_NEAR(best.rate, rate, 0.05 * rate);
  if (best.family == FitFamily::kWeibull) {
    EXPECT_NEAR(best.shape, 1.0, 0.1);
  }
  expect_ks_pass(gaps, best);
}

// -- Robustness and degenerate inputs ------------------------------------

TEST(OnlineFit, FittersIgnoreNonPositiveAndNonFiniteGaps) {
  const std::vector<double> clean =
      draw(model::FailureDistSpec::weibull(1.3), 1.0 / 600.0, 500, 8);
  std::vector<double> dirty = clean;
  dirty.insert(dirty.begin(), 0.0);
  dirty.push_back(-4.0);
  dirty.push_back(std::nan(""));
  dirty.push_back(std::numeric_limits<double>::infinity());
  const MleFit a = fit_weibull_mle(clean);
  const MleFit b = fit_weibull_mle(dirty);
  ASSERT_TRUE(a.valid);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.shape, b.shape);
  EXPECT_DOUBLE_EQ(a.scale, b.scale);
  EXPECT_DOUBLE_EQ(a.log_likelihood, b.log_likelihood);
}

TEST(OnlineFit, TooSmallSamplesAreInvalidNotThrowing) {
  EXPECT_FALSE(fit_exponential_mle({}).valid);
  const std::vector<double> one = {3600.0};
  EXPECT_TRUE(fit_exponential_mle(one).valid);
  EXPECT_FALSE(fit_weibull_mle(one).valid);
  EXPECT_FALSE(fit_lognormal_mle(one).valid);
  // fit_best falls back to the exponential when it is the only valid fit.
  EXPECT_EQ(fit_best_mle(one).family, FitFamily::kExponential);
}

// -- Round-trip contract --------------------------------------------------

TEST(OnlineFit, FitDensityMatchesTheBridgedModelDensity) {
  // MleFit::log_pdf and the FailureDistSpec rebuilt from the fit must be
  // the same function — the drift detector scores with the former, the
  // simulator deploys the latter.
  const std::vector<double> gaps =
      draw(model::FailureDistSpec::weibull(0.9), 1.0 / 3600.0, 2000, 9);
  for (const MleFit fit :
       {fit_exponential_mle(gaps), fit_weibull_mle(gaps),
        fit_lognormal_mle(gaps)}) {
    ASSERT_TRUE(fit.valid);
    const model::FittedFailureDist bridged = model::failure_dist_from_fit(fit);
    const auto dist = bridged.spec.instantiate(bridged.rate);
    for (const double x : {10.0, 600.0, 3600.0, 7200.0, 40000.0}) {
      EXPECT_NEAR(fit.log_pdf(x), std::log(dist->pdf(x)),
                  1e-9 * std::abs(fit.log_pdf(x)))
          << fit_family_name(fit.family) << " at x=" << x;
    }
  }
}

// -- Drift detector -------------------------------------------------------

OnlineFit make_detector(const model::FailureDistSpec& spec, double rate,
                        OnlineFitOptions options = {}) {
  OnlineFit fit(options);
  std::shared_ptr<const model::FailureDistribution> dist =
      spec.instantiate(rate);
  fit.set_baseline([dist](double x) {
    const double p = dist->pdf(x);
    return p > 0.0 ? std::log(p) : kLogDensityFloor;
  });
  return fit;
}

TEST(OnlineFitStatistical, NoFalsePositivesOnAStationaryStream) {
  // 5000 events from exactly the deployed law: with the default CI level
  // and noise floor, not one drift decision may fire. Fixed seed, so
  // this is a deterministic guarantee, not a flaky rate estimate.
  const double rate = 1.0 / 3600.0;
  const std::vector<double> gaps =
      draw(model::FailureDistSpec::exponential(), rate, 5000, 10);
  OnlineFit fit = make_detector(model::FailureDistSpec::exponential(), rate);
  std::size_t refits = 0;
  std::size_t drifts = 0;
  for (const double g : gaps) {
    const DriftDecision d = fit.add(g);
    refits += d.refit_ran ? 1 : 0;
    drifts += d.drift ? 1 : 0;
  }
  EXPECT_GT(refits, 100u);  // the detector was genuinely looking
  EXPECT_EQ(drifts, 0u);
  EXPECT_EQ(fit.count(), 5000u);
  EXPECT_EQ(fit.window_fill(), fit.options().window);
}

TEST(OnlineFitStatistical, ShapeSwitchDetectedWithinTwoWindows) {
  const double rate = 1.0 / 3600.0;
  std::vector<double> gaps =
      draw(model::FailureDistSpec::weibull(0.7), rate, 600, 11);
  const std::vector<double> after =
      draw(model::FailureDistSpec::weibull(1.4), rate, 1200, 12);
  gaps.insert(gaps.end(), after.begin(), after.end());

  OnlineFit fit = make_detector(model::FailureDistSpec::weibull(0.7), rate);
  std::size_t fired_at = 0;
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    const DriftDecision d = fit.add(gaps[i]);
    if (d.drift) {
      fired_at = i + 1;
      EXPECT_GE(d.mean_llr, fit.options().min_mean_llr);
      EXPECT_GT(d.llr_ci_lo, 0.0);
      break;
    }
  }
  ASSERT_GT(fired_at, 600u) << "drift fired on the stationary prefix";
  EXPECT_LE(fired_at, 600u + 2u * fit.options().window);
}

TEST(OnlineFit, RebasingOnEveryDriftConvergesToSilence) {
  // The loop's discipline: rebase after acting on each drift. During the
  // regime transition the mixed window keeps improving on the previous
  // (still partly stale) null, so a handful of drifts in a row is
  // legitimate — but once the window is purely post-switch the detector
  // must go quiet, and the whole episode must stay bounded (no
  // thrashing).
  const double rate = 1.0 / 3600.0;
  std::vector<double> gaps =
      draw(model::FailureDistSpec::weibull(0.7), rate, 400, 13);
  const std::vector<double> after =
      draw(model::FailureDistSpec::weibull(1.4), rate, 1600, 14);
  gaps.insert(gaps.end(), after.begin(), after.end());

  std::size_t last_drift_at = 0;
  std::size_t drifts = 0;
  {
    OnlineFit fit =
        make_detector(model::FailureDistSpec::weibull(0.7), rate);
    for (std::size_t i = 0; i < gaps.size(); ++i) {
      const DriftDecision d = fit.add(gaps[i]);
      if (!d.drift) continue;
      ++drifts;
      last_drift_at = i + 1;
      fit.rebase();
    }
  }
  ASSERT_GE(drifts, 1u);
  EXPECT_LE(drifts, 8u);  // a re-plan episode, not a storm
  // Quiet once the window is fully post-switch: nothing fires in the
  // last ~1200 stationary events.
  EXPECT_LE(last_drift_at, 400u + 3u * OnlineFitOptions{}.window);
}

TEST(OnlineFit, NoDriftBeforeMinEventsOrWithoutBaseline) {
  OnlineFitOptions opt;
  opt.min_events = 64;
  OnlineFit no_baseline{opt};  // never set_baseline
  const std::vector<double> gaps =
      draw(model::FailureDistSpec::weibull(2.0), 1.0 / 60.0, 300, 15);
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    const DriftDecision d = no_baseline.add(gaps[i]);
    if (i + 1 < opt.min_events) EXPECT_FALSE(d.refit_ran);
    EXPECT_FALSE(d.drift);
  }
}

}  // namespace
}  // namespace ayd::stats
