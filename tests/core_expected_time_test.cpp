#include "ayd/core/expected_time.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <tuple>

#include "ayd/core/first_order.hpp"
#include "ayd/math/special.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/model/system.hpp"
#include "ayd/util/error.hpp"

namespace ayd::core {
namespace {

using model::CostModel;
using model::FailureModel;
using model::ResilienceCosts;
using model::Speedup;
using model::System;

/// A hand-built system with explicit rates/costs for formula checks.
System make_system(double lambda, double f, double c, double r, double v,
                   double d, double alpha = 0.1) {
  ResilienceCosts costs{CostModel::constant(c), CostModel::constant(r),
                        CostModel::constant(v)};
  return System(FailureModel(lambda, f), costs, d, Speedup::amdahl(alpha));
}

TEST(ExpectedTime, ErrorFreeIsJustTheWork) {
  const System sys = make_system(0.0, 0.0, 120.0, 120.0, 30.0, 3600.0);
  const Pattern p{5000.0, 64.0};
  EXPECT_DOUBLE_EQ(expected_pattern_time(sys, p), 5000.0 + 30.0 + 120.0);
  EXPECT_DOUBLE_EQ(expected_pattern_time_direct(sys, p),
                   5000.0 + 30.0 + 120.0);
}

TEST(ExpectedTime, SilentOnlyClosedForm) {
  // λf = 0: E = e^{λs·T}(T+V) + (e^{λs·T} − 1)·R + C. (Geometric number of
  // attempts at success probability e^{-λs·T}.)
  const double lambda = 3e-6;
  const System sys = make_system(lambda, 0.0, 100.0, 100.0, 20.0, 3600.0);
  const Pattern p{10000.0, 50.0};
  const double ls = sys.silent_rate(50.0);
  const double b = std::exp(ls * 10000.0);
  const double expected = b * (10000.0 + 20.0) + (b - 1.0) * 100.0 + 100.0;
  EXPECT_NEAR(expected_pattern_time(sys, p), expected, expected * 1e-12);
}

TEST(ExpectedTime, FailStopOnlyClosedForm) {
  // λs = 0: E = (1/λf + D)·e^{λf·R}·(e^{λf(T+V+C)} − 1), the classical
  // fail-stop expectation with work T+V+C.
  const double lambda = 2e-6;
  const System sys = make_system(lambda, 1.0, 150.0, 150.0, 10.0, 600.0);
  const Pattern p{20000.0, 32.0};
  const double lf = sys.fail_stop_rate(32.0);
  const double expected = (1.0 / lf + 600.0) * std::exp(lf * 150.0) *
                          std::expm1(lf * (20000.0 + 10.0 + 150.0));
  EXPECT_NEAR(expected_pattern_time(sys, p), expected, expected * 1e-12);
}

TEST(ExpectedTime, ZeroDowntimeStillWorks) {
  const System sys = make_system(1e-6, 0.5, 100.0, 100.0, 10.0, 0.0);
  const Pattern p{5000.0, 100.0};
  const double e = expected_pattern_time(sys, p);
  EXPECT_GT(e, 5110.0);
  EXPECT_TRUE(std::isfinite(e));
}

TEST(ExpectedTime, AlwaysAtLeastTheFaultFreeTime) {
  const model::Platform platform = model::hera();
  for (const model::Scenario s : model::all_scenarios()) {
    const System sys = System::from_platform(platform, s);
    for (const double t : {100.0, 3000.0, 50000.0}) {
      for (const double p : {64.0, 512.0, 4096.0}) {
        const Pattern pat{t, p};
        const double floor =
            t + sys.verification_cost(p) + sys.checkpoint_cost(p);
        EXPECT_GE(expected_pattern_time(sys, pat), floor)
            << "scenario " << model::scenario_name(s) << " T=" << t
            << " P=" << p;
      }
    }
  }
}

TEST(ExpectedTime, ComponentsSumToTotal) {
  const System sys = make_system(5e-7, 0.3, 200.0, 200.0, 25.0, 1800.0);
  const Pattern p{15000.0, 128.0};
  const double total = expected_pattern_time(sys, p);
  const double etv = expected_work_time(sys, p);
  const double ec = expected_checkpoint_time(sys, p);
  EXPECT_NEAR(total, etv + ec, total * 1e-14);
}

TEST(ExpectedTime, RecoveryExpectationClosedForm) {
  // E(R) = (1/λf + D)(e^{λf·R} − 1).
  const System sys = make_system(1e-5, 1.0, 300.0, 300.0, 0.0, 3600.0);
  const double lf = sys.fail_stop_rate(100.0);
  const double expected = (1.0 / lf + 3600.0) * std::expm1(lf * 300.0);
  EXPECT_NEAR(expected_recovery_time(sys, 100.0), expected,
              expected * 1e-13);
}

TEST(ExpectedTime, RecoveryEqualsCostWhenNoFailStop) {
  const System sys = make_system(1e-5, 0.0, 300.0, 300.0, 0.0, 3600.0);
  EXPECT_DOUBLE_EQ(expected_recovery_time(sys, 1000.0), 300.0);
}

TEST(ExpectedTime, MonotoneInPeriod) {
  const System sys =
      System::from_platform(model::hera(), model::Scenario::kS1);
  double prev = expected_pattern_time(sys, {100.0, 512.0});
  for (const double t : {200.0, 1000.0, 5000.0, 20000.0, 100000.0}) {
    const double cur = expected_pattern_time(sys, {t, 512.0});
    EXPECT_GT(cur, prev) << "T=" << t;
    prev = cur;
  }
}

TEST(ExpectedTime, MonotoneInDowntime) {
  const System base = make_system(1e-6, 0.5, 100.0, 100.0, 10.0, 0.0);
  const Pattern p{10000.0, 256.0};
  double prev = expected_pattern_time(base, p);
  for (const double d : {600.0, 3600.0, 7200.0}) {
    const double cur = expected_pattern_time(base.with_downtime(d), p);
    EXPECT_GT(cur, prev) << "D=" << d;
    prev = cur;
  }
}

TEST(ExpectedTime, MonotoneInErrorRate) {
  const System base = make_system(1e-8, 0.3, 100.0, 100.0, 10.0, 3600.0);
  const Pattern p{10000.0, 256.0};
  double prev = expected_pattern_time(base, p);
  for (const double lambda : {1e-7, 1e-6, 1e-5}) {
    const double cur = expected_pattern_time(base.with_lambda(lambda), p);
    EXPECT_GT(cur, prev) << "lambda=" << lambda;
    prev = cur;
  }
}

TEST(ExpectedTime, DowntimeIrrelevantWithoutFailStop) {
  const System a = make_system(1e-6, 0.0, 100.0, 100.0, 10.0, 0.0);
  const System b = make_system(1e-6, 0.0, 100.0, 100.0, 10.0, 7200.0);
  const Pattern p{10000.0, 256.0};
  EXPECT_DOUBLE_EQ(expected_pattern_time(a, p), expected_pattern_time(b, p));
}

// Stable composition vs. the verbatim Prop.-1 closed form, across the
// whole (platform × scenario) grid at several pattern shapes.
class FormulaIdentity
    : public ::testing::TestWithParam<std::tuple<int, model::Scenario>> {};

TEST_P(FormulaIdentity, CompositionMatchesDirectClosedForm) {
  const model::Platform platform =
      model::all_platforms()[static_cast<std::size_t>(
          std::get<0>(GetParam()))];
  const System sys = System::from_platform(platform, std::get<1>(GetParam()));
  for (const double t : {50.0, 1000.0, 20000.0, 300000.0}) {
    for (const double p : {16.0, 512.0, 8192.0}) {
      const Pattern pat{t, p};
      const double a = expected_pattern_time(sys, pat);
      const double b = expected_pattern_time_direct(sys, pat);
      EXPECT_NEAR(a, b, 1e-9 * b) << "T=" << t << " P=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FormulaIdentity,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::ValuesIn(model::all_scenarios())));

TEST(LogExpectedTime, MatchesLinearWhenFinite) {
  const System sys =
      System::from_platform(model::coastal(), model::Scenario::kS3);
  for (const double t : {100.0, 10000.0}) {
    for (const double p : {64.0, 2048.0}) {
      const Pattern pat{t, p};
      EXPECT_NEAR(log_expected_pattern_time(sys, pat),
                  std::log(expected_pattern_time(sys, pat)), 1e-12);
    }
  }
}

TEST(LogExpectedTime, FiniteInOverflowRegime) {
  // P = 1e12 with a linear checkpoint cost: λf·C_P alone is astronomical;
  // linear space overflows but the log form must stay finite and ordered.
  const System sys =
      System::from_platform(model::hera(), model::Scenario::kS1);
  const Pattern huge{1e6, 1e12};
  EXPECT_TRUE(std::isinf(expected_pattern_time(sys, huge)));
  const double log_e = log_expected_pattern_time(sys, huge);
  EXPECT_TRUE(std::isfinite(log_e));
  EXPECT_GT(log_e, 700.0);  // beyond double exp range, as expected
  // Still monotone in T out there.
  EXPECT_GT(log_expected_pattern_time(sys, {2e6, 1e12}), log_e);
}

TEST(LogExpectedTime, FiniteForSilentOnlyOverflow) {
  const System sys = make_system(1e-4, 0.0, 10.0, 10.0, 1.0, 0.0);
  const Pattern pat{1e9, 1e5};  // λs·T ~ 1e10
  EXPECT_TRUE(std::isinf(expected_pattern_time(sys, pat)));
  const double log_e = log_expected_pattern_time(sys, pat);
  EXPECT_TRUE(std::isfinite(log_e));
  const double ls = sys.silent_rate(1e5);
  EXPECT_NEAR(log_e, ls * 1e9 + std::log(1e9 + 1.0 + 10.0), 1e-6);
}

TEST(FirstOrderTime, ConvergesToExactAsLambdaShrinks) {
  // The expansion drops O(λ²) terms: its relative error must shrink by
  // ~100x when λ shrinks by 10x.
  const System base = make_system(1e-6, 0.4, 60.0, 60.0, 12.0, 3600.0);
  const Pattern p{3000.0, 100.0};
  double prev_err = -1.0;
  for (const double lambda : {1e-6, 1e-7, 1e-8}) {
    const System sys = base.with_lambda(lambda);
    const double exact = expected_pattern_time(sys, p);
    const double approx = first_order_pattern_time(sys, p);
    const double err = std::abs(approx - exact) / exact;
    if (prev_err > 0.0) {
      EXPECT_LT(err, prev_err / 50.0) << "lambda=" << lambda;
    }
    prev_err = err;
  }
}

TEST(ExpectedTime, InvalidPatternsRejected) {
  const System sys = make_system(1e-6, 0.5, 100.0, 100.0, 10.0, 3600.0);
  EXPECT_THROW((void)expected_pattern_time(sys, {0.0, 10.0}),
               util::InvalidArgument);
  EXPECT_THROW((void)expected_pattern_time(sys, {-5.0, 10.0}),
               util::InvalidArgument);
  EXPECT_THROW((void)expected_pattern_time(sys, {100.0, 0.5}),
               util::InvalidArgument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)expected_pattern_time(sys, {nan, 10.0}),
               util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::core
